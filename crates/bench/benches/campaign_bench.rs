//! Criterion bench for the sharded campaign runner: one multi-cell grid
//! timed at several worker-pool sizes and both chunking granularities.
//!
//! On multi-core hardware the `workers2`/`workers4` lines should beat
//! `workers1` roughly linearly until the pool exceeds the core count (or
//! the unit count); on a single core they document the scheduling
//! overhead instead. Every configuration produces the bit-identical
//! report — the determinism contract is asserted once up front.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rl_bench::campaign::{Campaign, CampaignConfig, Chunking};
use rl_core::baselines::CentroidLocalizer;
use rl_core::multilateration::{MultilaterationConfig, MultilaterationSolver};
use rl_deploy::Scenario;

/// A grid with enough independent cells (2 scenarios × 2 localizers × 3
/// seeds = 12) to keep a small pool busy, but cheap enough per cell that
/// scheduling overhead stays visible.
fn town_and_metro_grid() -> Campaign {
    Campaign::new()
        .scenario(Scenario::town(2005))
        .scenario(Scenario::metro_sized(250, 0.10, 2005))
        .localizer(Box::new(MultilaterationSolver::new(
            MultilaterationConfig::paper().progressive(),
        )))
        .localizer(Box::new(CentroidLocalizer::new(22.0)))
        .trials(2005, 3)
}

fn bench_worker_scaling(c: &mut Criterion) {
    let campaign = town_and_metro_grid();
    let reference = campaign.run_with(CampaignConfig::serial()).fingerprint();
    for workers in [1usize, 2, 4] {
        let config = CampaignConfig::default().with_workers(workers);
        assert_eq!(
            campaign.run_with(config).fingerprint(),
            reference,
            "workers={workers} must reproduce the serial report"
        );
        c.bench_function(&format!("campaign/town+metro250_workers{workers}"), |b| {
            b.iter(|| black_box(campaign.run_with(config)))
        });
    }
}

fn bench_chunking(c: &mut Criterion) {
    let campaign = town_and_metro_grid();
    let config = CampaignConfig::default()
        .with_workers(4)
        .with_chunking(Chunking::Cell);
    c.bench_function("campaign/town+metro250_workers4_cellchunk", |b| {
        b.iter(|| black_box(campaign.run_with(config)))
    });
}

criterion_group!(benches, bench_worker_scaling, bench_chunking);
criterion_main!(benches);
