//! Criterion benches behind Figures 24/25: local map construction,
//! transform estimation (both methods), and the full protocol run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rl_core::distributed::{
    estimate_transform, run_distributed, DistributedConfig, LocalMap, TransformGuards,
    TransformMethod,
};
use rl_core::lss::LssConfig;
use rl_deploy::synth::SyntheticRanging;
use rl_geom::{Point2, RigidTransform, Vec2};
use rl_math::gradient::DescentConfig;
use rl_net::NodeId;
use rl_ranging::measurement::MeasurementSet;

fn grid(n_side: usize) -> (Vec<Point2>, MeasurementSet) {
    let truth: Vec<Point2> = (0..n_side * n_side)
        .map(|i| Point2::new((i % n_side) as f64 * 9.144, (i / n_side) as f64 * 9.144))
        .collect();
    let set = SyntheticRanging::paper().measure_all(&truth, &mut rl_math::rng::seeded(1));
    (truth, set)
}

fn bench_local_map(c: &mut Criterion) {
    let (_, set) = grid(4);
    let lss = LssConfig::default().with_min_spacing(9.14, 10.0);
    c.bench_function("distributed/local_map_center_node", |b| {
        let mut rng = rl_math::rng::seeded(2);
        b.iter(|| black_box(LocalMap::build(NodeId(5), &set, &lss, &mut rng).unwrap()))
    });
}

fn bench_transform(c: &mut Criterion) {
    let coords: Vec<Point2> = (0..12)
        .map(|i| Point2::new((i % 4) as f64 * 9.0, (i / 4) as f64 * 9.0))
        .collect();
    let nodes: Vec<NodeId> = (0..12).map(NodeId).collect();
    let hidden = RigidTransform::new(0.7, true, Vec2::new(4.0, -2.0));
    let source = LocalMap {
        center: NodeId(0),
        nodes: nodes.clone(),
        coords: coords.clone(),
    };
    let target = LocalMap {
        center: NodeId(1),
        nodes,
        coords: coords.iter().map(|&p| hidden.apply(p)).collect(),
    };
    c.bench_function("distributed/transform_covariance_12shared", |b| {
        b.iter(|| {
            black_box(
                estimate_transform(
                    &source,
                    &target,
                    &TransformMethod::Covariance,
                    &TransformGuards::default(),
                )
                .unwrap(),
            )
        })
    });
    let minimization = TransformMethod::Minimization(DescentConfig {
        step_size: 0.01,
        max_iterations: 1_000,
        restarts: 0,
        ..DescentConfig::default()
    });
    c.bench_function("distributed/transform_minimization_12shared", |b| {
        b.iter(|| {
            black_box(
                estimate_transform(&source, &target, &minimization, &TransformGuards::default())
                    .unwrap(),
            )
        })
    });
}

fn bench_protocol(c: &mut Criterion) {
    let (truth, set) = grid(4);
    let config = DistributedConfig::default().with_min_spacing(9.14, 10.0);
    c.bench_function("distributed/protocol_4x4_grid", |b| {
        let mut rng = rl_math::rng::seeded(3);
        b.iter(|| black_box(run_distributed(&set, &truth, NodeId(5), &config, &mut rng).unwrap()))
    });
}

criterion_group!(benches, bench_local_map, bench_transform, bench_protocol);
criterion_main!(benches);
