//! Criterion benches behind Figures 17-23: the LSS stress function, its
//! gradient, and end-to-end solves with and without the soft constraint.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rl_core::lss::{InitStrategy, LssConfig, LssObjective, LssSolver, SoftConstraint};
use rl_deploy::synth::SyntheticRanging;
use rl_geom::Point2;
use rl_math::gradient::Objective;
use rl_ranging::measurement::MeasurementSet;

fn grid_set(n_side: usize) -> (Vec<Point2>, MeasurementSet) {
    let truth: Vec<Point2> = (0..n_side * n_side)
        .map(|i| Point2::new((i % n_side) as f64 * 9.144, (i / n_side) as f64 * 9.144))
        .collect();
    let set = SyntheticRanging::paper().measure_all(&truth, &mut rl_math::rng::seeded(1));
    (truth, set)
}

fn bench_objective(c: &mut Criterion) {
    let (truth, set) = grid_set(7);
    let obj = LssObjective::new(
        &set,
        Some(SoftConstraint {
            min_spacing_m: 9.14,
            weight: 10.0,
        }),
    );
    let n = truth.len();
    let mut x = vec![0.0; 2 * n];
    for (i, p) in truth.iter().enumerate() {
        x[i] = p.x + 0.5;
        x[n + i] = p.y - 0.5;
    }
    let mut grad = vec![0.0; 2 * n];
    c.bench_function("lss/stress_49_nodes", |b| {
        b.iter(|| black_box(obj.value(black_box(&x))))
    });
    c.bench_function("lss/gradient_49_nodes", |b| {
        b.iter(|| {
            obj.gradient(black_box(&x), &mut grad);
            black_box(grad[0])
        })
    });
}

fn bench_solve(c: &mut Criterion) {
    let (_, set) = grid_set(4);
    // Warm-started solve isolates descent speed from restart luck.
    let config = LssConfig::default()
        .with_min_spacing(9.14, 10.0)
        .with_init(InitStrategy::MdsMap);
    let solver = LssSolver::new(config);
    c.bench_function("lss/solve_4x4_mdsmap_init", |b| {
        let mut rng = rl_math::rng::seeded(2);
        b.iter(|| black_box(solver.solve(&set, &mut rng).unwrap()))
    });

    let unconstrained = LssSolver::new(LssConfig::default().with_init(InitStrategy::MdsMap));
    c.bench_function("lss/solve_4x4_unconstrained", |b| {
        let mut rng = rl_math::rng::seeded(3);
        b.iter(|| black_box(unconstrained.solve(&set, &mut rng).unwrap()))
    });
}

criterion_group!(benches, bench_objective, bench_solve);
criterion_main!(benches);
