//! Criterion benches behind Figures 11-16 and 20: single-node least
//! squares, the intersection consistency check, and full network solves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rl_core::multilateration::{
    IntersectionConsistency, MultilaterationConfig, MultilaterationSolver, RangeToAnchor,
};
use rl_core::types::Anchor;
use rl_deploy::synth::SyntheticRanging;
use rl_deploy::Scenario;
use rl_geom::Point2;

fn observations() -> Vec<RangeToAnchor> {
    let node = Point2::new(5.0, 5.0);
    [
        (0.0, 0.0),
        (10.0, 0.0),
        (0.0, 10.0),
        (10.0, 10.0),
        (5.0, -5.0),
        (-5.0, 5.0),
    ]
    .iter()
    .map(|&(x, y)| RangeToAnchor {
        anchor: Point2::new(x, y),
        distance: Point2::new(x, y).distance(node) + 0.1,
        weight: 1.0,
    })
    .collect()
}

fn bench_consistency(c: &mut Criterion) {
    let obs = observations();
    let check = IntersectionConsistency::default();
    c.bench_function("multilateration/intersection_check_6anchors", |b| {
        b.iter(|| black_box(check.filter(black_box(&obs))))
    });
    c.bench_function("multilateration/mode_of_intersections", |b| {
        b.iter(|| black_box(check.mode_of_intersections(black_box(&obs))))
    });
}

fn bench_solve(c: &mut Criterion) {
    let scenario = Scenario::town(1);
    let truth = &scenario.deployment.positions;
    let set = SyntheticRanging::paper().measure_all(truth, &mut rl_math::rng::seeded(2));
    let anchors = Anchor::from_truth(&scenario.anchors, truth);
    let solver = MultilaterationSolver::new(MultilaterationConfig::paper());
    c.bench_function("multilateration/town_59_18anchors", |b| {
        let mut rng = rl_math::rng::seeded(3);
        b.iter(|| black_box(solver.solve(&set, &anchors, &mut rng).unwrap()))
    });
}

criterion_group!(benches, bench_consistency, bench_solve);
criterion_main!(benches);
