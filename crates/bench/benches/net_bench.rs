//! Criterion benches for the network substrate: flooding, topology
//! construction and shortest paths (the MDS-MAP completion step).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rl_geom::Point2;
use rl_net::flood::run_flood;
use rl_net::{NodeId, RadioModel, Topology};

fn positions(n_side: usize, spacing: f64) -> Vec<Point2> {
    (0..n_side * n_side)
        .map(|i| Point2::new((i % n_side) as f64 * spacing, (i / n_side) as f64 * spacing))
        .collect()
}

fn bench_topology(c: &mut Criterion) {
    let pts = positions(8, 9.0);
    c.bench_function("net/topology_64_nodes", |b| {
        b.iter(|| black_box(Topology::from_positions(black_box(&pts), 22.0)))
    });

    let topo = Topology::from_positions(&pts, 22.0);
    c.bench_function("net/shortest_paths_64_nodes", |b| {
        b.iter(|| black_box(topo.shortest_paths(|a, b| pts[a.index()].distance(pts[b.index()]))))
    });
}

fn bench_flood(c: &mut Criterion) {
    let pts = positions(8, 9.0);
    c.bench_function("net/flood_64_nodes", |b| {
        b.iter(|| black_box(run_flood(&pts, RadioModel::ideal(22.0), NodeId(0), 1).unwrap()))
    });
}

criterion_group!(benches, bench_topology, bench_flood);
criterion_main!(benches);
