//! Criterion benches behind the ranging figures (F2/F4/F6/F7/F8, MAXR):
//! chirp-train reception, detection, filtering and consistency checking.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use rl_ranging::consistency::{merge_bidirectional, ConsistencyConfig};
use rl_ranging::filter::StatFilter;
use rl_ranging::service::{RangingService, ServiceConfig};
use rl_signal::chirp::ChirpTrainConfig;
use rl_signal::detector::ReceptionSimulator;
use rl_signal::env::Environment;

fn bench_reception(c: &mut Criterion) {
    let sim = ReceptionSimulator::new(Environment::Grass.profile(), ChirpTrainConfig::paper());
    let mut rng = rl_math::rng::seeded(1);
    c.bench_function("reception/chirp_train_12m", |b| {
        b.iter(|| black_box(sim.receive(black_box(12.0), &mut rng)))
    });

    let outcome = sim.receive(12.0, &mut rl_math::rng::seeded(2));
    c.bench_function("reception/detect_signal", |b| {
        b.iter(|| black_box(outcome.detect_default()))
    });
}

fn bench_campaign(c: &mut Criterion) {
    let mut rng = rl_math::rng::seeded(3);
    let service =
        RangingService::new(Environment::Grass, ServiceConfig::refined(), &mut rng).unwrap();
    // A small 3x3 sub-grid keeps the bench wall-clock sane; the figure
    // harness runs the full 46-node field.
    let positions: Vec<rl_geom::Point2> = (0..9)
        .map(|i| rl_geom::Point2::new((i % 3) as f64 * 9.144, (i / 3) as f64 * 9.144))
        .collect();
    c.bench_function("campaign/grass_3x3_6rounds", |b| {
        b.iter(|| black_box(service.run_campaign(&positions, &mut rng)))
    });

    let campaign = service.run_campaign(&positions, &mut rl_math::rng::seeded(4));
    c.bench_function("campaign/median_filter", |b| {
        b.iter(|| black_box(StatFilter::Median.apply(&campaign)))
    });

    let estimates = StatFilter::Median.apply(&campaign);
    c.bench_function("campaign/bidirectional_merge", |b| {
        b.iter_batched(
            || estimates.clone(),
            |e| {
                black_box(merge_bidirectional(
                    &e,
                    campaign.n,
                    &ConsistencyConfig::default(),
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_reception, bench_campaign);
criterion_main!(benches);
