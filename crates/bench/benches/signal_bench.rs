//! Criterion benches behind Figure 10 and the detection ablations: the
//! sliding-DFT filter and the Figure-3 record/detect routines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rl_signal::detection::{detect_signal, record_signal, DetectionParams};
use rl_signal::dft::{Band, XsmFilter, XsmToneDetector};
use rl_signal::waveform::WaveformSpec;

fn bench_dft(c: &mut Criterion) {
    let wave = WaveformSpec::figure10_noisy().synthesize(&mut rl_math::rng::seeded(1));
    c.bench_function("dft/filter_800_samples", |b| {
        b.iter(|| {
            let mut f = XsmFilter::new();
            let mut acc = 0.0;
            for &s in &wave {
                acc += f.filter(black_box(s)).quarter;
            }
            black_box(acc)
        })
    });
    c.bench_function("dft/detect_chirps_800_samples", |b| {
        b.iter(|| {
            let mut det = XsmToneDetector::new(Band::Quarter);
            black_box(det.detect_chirps(&wave, 24))
        })
    });
}

fn bench_detection(c: &mut Criterion) {
    // A realistic accumulated buffer: signal at ~60% of a 1475-sample
    // buffer, accumulated over 10 chirps.
    let mut accumulated = vec![0u8; 1475];
    let mut rng = rl_math::rng::seeded(2);
    let hits: Vec<bool> = (0..1475).map(|i| (885..1013).contains(&i)).collect();
    for _ in 0..10 {
        record_signal(&mut accumulated, &hits);
    }
    // Sprinkle noise counts.
    for _ in 0..40 {
        let idx = (rand::Rng::random::<f64>(&mut rng) * 1475.0) as usize;
        accumulated[idx] = accumulated[idx].saturating_add(1);
    }
    c.bench_function("detection/record_signal_1475", |b| {
        b.iter(|| {
            let mut acc = accumulated.clone();
            record_signal(&mut acc, black_box(&hits));
            black_box(acc)
        })
    });
    c.bench_function("detection/detect_signal_1475", |b| {
        b.iter(|| black_box(detect_signal(&accumulated, &DetectionParams::paper())))
    });
}

criterion_group!(benches, bench_dft, bench_detection);
criterion_main!(benches);
