//! Dense-vs-sparse backend wall times on the town → metro ladder.
//!
//! Two head-to-heads, one per refactored solver family:
//!
//! * **MDS-MAP**: full dense path (Topology shortest paths + `O(n³)`
//!   Jacobi on the double-centered matrix) versus the sparse path (CSR
//!   Dijkstra + implicit centering operator + iterative top-2
//!   eigensolver).
//! * **LSS objective**: one stress value + gradient evaluation with the
//!   soft constraint on the dense backend (materialized `O(n²)`
//!   complement scan) versus the sparse backend (spatial-grid active
//!   set).
//!
//! The dense rungs stop at 500 nodes — at 1000 the dense MDS-MAP
//! eigendecomposition alone runs for minutes, which is precisely the
//! wall the sparse backend removes; the sparse paths are additionally
//! timed at the full metro-1000 rung. Expect the dense/sparse ratio to
//! widen with every rung (the asymptotic gap: O(n³) vs ~O(n² · k) for
//! MDS-MAP, O(n²) vs O(n + edges + active) per LSS evaluation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rl_core::lss::{LssObjective, SoftConstraint};
use rl_core::mds::mdsmap_coordinates_with;
use rl_core::problem::{Problem, SolverBackend};
use rl_deploy::Scenario;
use rl_math::gradient::Objective;

const SEED: u64 = 2005;

/// The ladder rungs both backends are timed on.
fn ladder() -> Vec<(&'static str, Problem)> {
    vec![
        ("town59", Scenario::town(SEED).instantiate(SEED)),
        (
            "metro250",
            Scenario::metro_sized(250, 0.10, SEED).instantiate(SEED),
        ),
        (
            "metro500",
            Scenario::metro_sized(500, 0.10, SEED).instantiate(SEED),
        ),
    ]
}

const BACKENDS: [(&str, SolverBackend); 2] = [
    ("dense", SolverBackend::Dense),
    ("sparse", SolverBackend::Sparse),
];

fn bench_mdsmap_backends(c: &mut Criterion) {
    for (label, problem) in ladder() {
        for (bname, backend) in BACKENDS {
            c.bench_function(&format!("mdsmap/{label}_{bname}"), |b| {
                b.iter(|| {
                    black_box(
                        mdsmap_coordinates_with(problem.measurements(), backend)
                            .expect("ladder graphs are connected"),
                    )
                })
            });
        }
    }
    // Sparse-only headroom rungs: the dense path at these sizes is the
    // minutes-long wall the backend exists to remove. The 2500 rung is
    // the multi-source-Dijkstra / blocked-eigensolver stress tier that
    // `sparse_smoke` wall-gates in CI.
    for (label, nodes) in [("metro1000", 1000), ("metro2500", 2500)] {
        let problem = Scenario::metro_sized(nodes, 0.10, SEED).instantiate(SEED);
        c.bench_function(&format!("mdsmap/{label}_sparse"), |b| {
            b.iter(|| {
                black_box(
                    mdsmap_coordinates_with(problem.measurements(), SolverBackend::Sparse)
                        .expect("metro graphs are connected"),
                )
            })
        });
    }
}

/// Flattens ground truth into the `[x.. , y..]` configuration layout.
fn truth_configuration(problem: &Problem) -> Vec<f64> {
    let truth = problem.truth().expect("scenario problems carry truth");
    let n = truth.len();
    let mut x = vec![0.0; 2 * n];
    for (i, p) in truth.iter().enumerate() {
        x[i] = p.x;
        x[n + i] = p.y;
    }
    x
}

fn bench_lss_objective_backends(c: &mut Criterion) {
    let soft = Some(SoftConstraint {
        min_spacing_m: 9.14,
        weight: 10.0,
    });
    for (label, problem) in ladder() {
        let x = truth_configuration(&problem);
        for (bname, backend) in BACKENDS {
            let obj = LssObjective::with_backend(problem.measurements(), soft, backend);
            let mut grad = vec![0.0; x.len()];
            c.bench_function(&format!("lss_objective/{label}_{bname}"), |b| {
                b.iter(|| {
                    let value = obj.value(&x);
                    obj.gradient(&x, &mut grad);
                    black_box((value, grad.last().copied()));
                })
            });
        }
    }
    let metro1000 = Scenario::metro(SEED).instantiate(SEED);
    let x = truth_configuration(&metro1000);
    let obj = LssObjective::with_backend(metro1000.measurements(), soft, SolverBackend::Sparse);
    let mut grad = vec![0.0; x.len()];
    c.bench_function("lss_objective/metro1000_sparse", |b| {
        b.iter(|| {
            let value = obj.value(&x);
            obj.gradient(&x, &mut grad);
            black_box((value, grad.last().copied()));
        })
    });
}

criterion_group!(benches, bench_mdsmap_backends, bench_lss_objective_backends);
criterion_main!(benches);
