//! Release-mode smoke test for the parallel campaign path; run by CI.
//!
//! ```text
//! cargo run --release -p rl-bench --bin campaign_smoke
//! ```
//!
//! Executes a multi-cell (scenarios × localizers × seeds) grid four ways —
//! serial, auto-sized pool, 4 workers with instance chunking, 4 workers
//! with cell chunking — asserts all four reports are **bit-identical**
//! (the determinism contract documented in `rl_bench::campaign`), and
//! prints each schedule's end-to-end wall time plus the observed
//! serial-vs-parallel speedup. Exits non-zero on any mismatch, so the
//! release-mode parallel path is exercised and verified on every CI run.
//!
//! The speedup line is informational, not a gate: the multi-core CI
//! runner is where worker-pool scaling is actually observable (a 1-core
//! dev container reports ~1×), so CI logs double as the scaling record
//! the ROADMAP asks for.

use rl_bench::campaign::{Campaign, CampaignConfig, Chunking};
use rl_bench::MASTER_SEED;
use rl_core::baselines::{CentroidLocalizer, DvHopLocalizer};
use rl_core::multilateration::{MultilaterationConfig, MultilaterationSolver};
use rl_deploy::Scenario;
use rl_net::RadioModel;

fn main() {
    let campaign = Campaign::new()
        .scenario(Scenario::town(MASTER_SEED))
        .scenario(Scenario::metro_sized(250, 0.10, MASTER_SEED))
        .localizer(Box::new(MultilaterationSolver::new(
            MultilaterationConfig::paper().progressive(),
        )))
        .localizer(Box::new(DvHopLocalizer::new(RadioModel::ideal(22.0))))
        .localizer(Box::new(CentroidLocalizer::new(22.0)))
        .trials(MASTER_SEED, 2);

    let schedules: [(&str, CampaignConfig); 4] = [
        ("serial", CampaignConfig::serial()),
        ("auto", CampaignConfig::default()),
        ("workers4", CampaignConfig::default().with_workers(4)),
        (
            "workers4-cell",
            CampaignConfig::default()
                .with_workers(4)
                .with_chunking(Chunking::Cell),
        ),
    ];

    let mut reference: Option<(u64, usize)> = None;
    let mut serial_wall = None;
    let mut best_parallel: Option<(&str, usize, f64)> = None;
    for (label, config) in schedules {
        let report = campaign.run_with(config);
        let fp = report.fingerprint();
        let wall = report.total_wall.as_secs_f64();
        println!(
            "{label:14} workers={} cells={} wall={:.1} ms fingerprint={fp:#018x}",
            report.workers,
            report.runs.len(),
            wall * 1e3,
        );
        if report.workers == 1 && serial_wall.is_none() {
            serial_wall = Some(wall);
        }
        if report.workers > 1 && best_parallel.is_none_or(|(_, _, w)| wall < w) {
            best_parallel = Some((label, report.workers, wall));
        }
        match reference {
            None => reference = Some((fp, report.runs.len())),
            Some((ref_fp, ref_cells)) => {
                if fp != ref_fp || report.runs.len() != ref_cells {
                    eprintln!(
                        "DETERMINISM VIOLATION: schedule `{label}` produced \
                         fingerprint {fp:#018x} ({} cells), expected \
                         {ref_fp:#018x} ({ref_cells} cells)",
                        report.runs.len()
                    );
                    std::process::exit(1);
                }
            }
        }
    }

    // Observed worker-pool scaling: only meaningful on a multi-core
    // runner (CI), where this line is the recorded evidence that the
    // sharded campaign actually speeds up end-to-end.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    match (serial_wall, best_parallel) {
        (Some(serial), Some((label, workers, parallel))) => println!(
            "serial-vs-parallel speedup: {:.2}x ({:.1} ms serial vs {:.1} ms `{label}` with \
             {workers} workers on a {cores}-core runner)",
            serial / parallel.max(1e-9),
            serial * 1e3,
            parallel * 1e3,
        ),
        _ => println!("serial-vs-parallel speedup: n/a (every schedule collapsed to one worker)"),
    }
    println!("all schedules bit-identical; parallel campaign path OK");
}
