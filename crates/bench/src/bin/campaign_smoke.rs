//! Release-mode smoke test for the parallel campaign path; run by CI.
//!
//! ```text
//! cargo run --release -p rl-bench --bin campaign_smoke
//! ```
//!
//! Executes a multi-cell (scenarios × localizers × seeds) grid four ways —
//! serial, auto-sized pool, 4 workers with instance chunking, 4 workers
//! with cell chunking — asserts all four reports are **bit-identical**
//! (the determinism contract documented in `rl_bench::campaign`), and
//! prints each schedule's end-to-end wall time. Exits non-zero on any
//! mismatch, so the release-mode parallel path is exercised and verified
//! on every CI run.

use rl_bench::campaign::{Campaign, CampaignConfig, Chunking};
use rl_bench::MASTER_SEED;
use rl_core::baselines::{CentroidLocalizer, DvHopLocalizer};
use rl_core::multilateration::{MultilaterationConfig, MultilaterationSolver};
use rl_deploy::Scenario;
use rl_net::RadioModel;

fn main() {
    let campaign = Campaign::new()
        .scenario(Scenario::town(MASTER_SEED))
        .scenario(Scenario::metro_sized(250, 0.10, MASTER_SEED))
        .localizer(Box::new(MultilaterationSolver::new(
            MultilaterationConfig::paper().progressive(),
        )))
        .localizer(Box::new(DvHopLocalizer::new(RadioModel::ideal(22.0))))
        .localizer(Box::new(CentroidLocalizer::new(22.0)))
        .trials(MASTER_SEED, 2);

    let schedules: [(&str, CampaignConfig); 4] = [
        ("serial", CampaignConfig::serial()),
        ("auto", CampaignConfig::default()),
        ("workers4", CampaignConfig::default().with_workers(4)),
        (
            "workers4-cell",
            CampaignConfig::default()
                .with_workers(4)
                .with_chunking(Chunking::Cell),
        ),
    ];

    let mut reference: Option<(u64, usize)> = None;
    for (label, config) in schedules {
        let report = campaign.run_with(config);
        let fp = report.fingerprint();
        println!(
            "{label:14} workers={} cells={} wall={:.1} ms fingerprint={fp:#018x}",
            report.workers,
            report.runs.len(),
            report.total_wall.as_secs_f64() * 1e3,
        );
        match reference {
            None => reference = Some((fp, report.runs.len())),
            Some((ref_fp, ref_cells)) => {
                if fp != ref_fp || report.runs.len() != ref_cells {
                    eprintln!(
                        "DETERMINISM VIOLATION: schedule `{label}` produced \
                         fingerprint {fp:#018x} ({} cells), expected \
                         {ref_fp:#018x} ({ref_cells} cells)",
                        report.runs.len()
                    );
                    std::process::exit(1);
                }
            }
        }
    }
    println!("all schedules bit-identical; parallel campaign path OK");
}
