//! Regenerates every figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p rl-bench --bin figures            # everything
//! cargo run --release -p rl-bench --bin figures -- F18 F21 # a selection
//! cargo run --release -p rl-bench --bin figures -- --list  # available ids
//! ```
//!
//! Tables print to stdout; CSV dumps land in `experiments/out/`.

use rl_bench::experiments::{self, ExperimentResult};
use rl_bench::MASTER_SEED;

type Runner = fn(u64) -> ExperimentResult;

/// Every experiment, in presentation order.
const EXPERIMENTS: &[(&str, &str, Runner)] = &[
    (
        "F2",
        "baseline ranging errors, urban",
        experiments::ranging::figure2_baseline_urban,
    ),
    (
        "F4",
        "baseline + median filter",
        experiments::ranging::figure4_median_filter,
    ),
    (
        "F6",
        "refined ranging histogram, grass",
        experiments::ranging::figure6_refined_histogram,
    ),
    (
        "F7",
        "bidirectional-only histogram",
        experiments::ranging::figure7_bidirectional,
    ),
    (
        "F8",
        "error vs distance",
        experiments::ranging::figure8_error_vs_distance,
    ),
    (
        "MAXR",
        "maximum-range study",
        experiments::ranging::max_range_study,
    ),
    (
        "SYNC",
        "clock-sync error bound",
        experiments::sync::sync_error_bound,
    ),
    (
        "F10",
        "DFT tone-detection filter",
        experiments::signal::figure10_dft_filter,
    ),
    (
        "F11",
        "intersection consistency demo",
        experiments::multilateration::figure11_intersection_consistency,
    ),
    (
        "F12",
        "parking-lot multilateration",
        experiments::multilateration::figure12_parking_lot,
    ),
    (
        "F14",
        "sparse-grid multilateration",
        experiments::multilateration::figure14_sparse_grid,
    ),
    (
        "F16",
        "augmented-grid multilateration",
        experiments::multilateration::figure16_augmented_grid,
    ),
    (
        "F18",
        "centralized LSS + constraint, grid",
        experiments::lss::figure18_grid_constrained,
    ),
    (
        "F19",
        "centralized LSS, no constraint, grid",
        experiments::lss::figure19_grid_unconstrained,
    ),
    (
        "F20",
        "town multilateration",
        experiments::multilateration::figure20_town,
    ),
    (
        "F21",
        "town LSS + constraint",
        experiments::lss::figure21_town_constrained,
    ),
    (
        "F22",
        "town LSS, no constraint",
        experiments::lss::figure22_town_unconstrained,
    ),
    (
        "F23",
        "stress vs epoch",
        experiments::lss::figure23_error_vs_epoch,
    ),
    (
        "F24",
        "distributed LSS, sparse",
        experiments::distributed::figure24_sparse,
    ),
    (
        "F25",
        "distributed LSS, augmented",
        experiments::distributed::figure25_augmented,
    ),
    (
        "BASELINES",
        "related-work baseline comparison",
        experiments::baselines::baseline_comparison,
    ),
    (
        "METRO",
        "metro-scale sweep, parallel campaign",
        experiments::metro::metro_sweep,
    ),
    (
        "DEGRADATION",
        "error-regime degradation ladder",
        experiments::degradation::degradation_ladder,
    ),
    (
        "TRACKING",
        "warm-started tracking vs cold re-solve, mobility streams",
        experiments::tracking::tracking_stream,
    ),
    (
        "ABL-FILTER",
        "median vs mode vs none",
        experiments::ranging::filter_ablation,
    ),
    (
        "ABL-CHIRP",
        "chirp-length sweep",
        experiments::signal::chirp_length_ablation,
    ),
    (
        "ABL-THRESH",
        "threshold sweep",
        experiments::signal::threshold_ablation,
    ),
    (
        "ABL-CONSIST",
        "consistency-check ablation",
        experiments::multilateration::consistency_ablation,
    ),
    (
        "ABL-WD",
        "constraint-weight sweep",
        experiments::lss::constraint_weight_ablation,
    ),
    (
        "ABL-INIT",
        "init-strategy ablation",
        experiments::lss::init_ablation,
    ),
    (
        "ABL-TRANSFORM",
        "transform-method ablation",
        experiments::distributed::transform_method_ablation,
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for (id, desc, _) in EXPERIMENTS {
            println!("{id:14} {desc}");
        }
        return;
    }
    let selected: Vec<&(&str, &str, Runner)> = if args.is_empty() {
        EXPERIMENTS.iter().collect()
    } else {
        let wanted: Vec<String> = args.iter().map(|a| a.to_uppercase()).collect();
        let picked: Vec<_> = EXPERIMENTS
            .iter()
            .filter(|(id, _, _)| wanted.iter().any(|w| w == id))
            .collect();
        if picked.is_empty() {
            eprintln!("no experiment matches {args:?}; try --list");
            std::process::exit(2);
        }
        picked
    };

    let out_dir = std::path::Path::new("experiments/out");
    let mut failures = 0;
    for (id, desc, runner) in selected {
        eprintln!(">>> running {id} ({desc}) ...");
        let started = std::time::Instant::now();
        let result = runner(MASTER_SEED);
        let elapsed = started.elapsed();
        println!("{result}");
        println!("  ({id} completed in {elapsed:.1?})\n");
        match result.save_csvs(out_dir) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("    wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("    CSV write failed: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
