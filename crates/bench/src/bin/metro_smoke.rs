//! Release-mode smoke test for the six-family metro panel; run by CI.
//!
//! ```text
//! cargo run --release -p rl-bench --bin metro_smoke
//! ```
//!
//! Runs **every** solver family — centralized LSS (sparse constraint
//! backend), progressive multilateration, distributed LSS, MDS-MAP
//! (sparse eigensolver path), DV-hop, centroid — on a metro-250 scenario
//! under a hard wall-time budget. Exits non-zero if any cell fails or
//! the budget is exceeded, so "all solvers run at metro scale" is a
//! property CI enforces, not a claim. (The budget is generous: it exists
//! to catch accidental reintroduction of an O(n²)–O(n³) dense stage,
//! which blows the runtime up by orders of magnitude, not to benchmark.)

use std::time::{Duration, Instant};

use rl_bench::campaign::Campaign;
use rl_bench::experiments::metro::metro_localizers;
use rl_bench::MASTER_SEED;
use rl_deploy::Scenario;

/// Hard end-to-end budget for the six-cell metro-250 panel. The sparse
/// paths finish the grid in seconds; a dense regression at this size
/// costs minutes.
const WALL_BUDGET: Duration = Duration::from_secs(300);

fn main() {
    let campaign = Campaign::new()
        .scenario(Scenario::metro_sized(250, 0.10, MASTER_SEED))
        .localizers(metro_localizers())
        .seeds(&[MASTER_SEED]);

    let started = Instant::now();
    let report = campaign.run();
    let elapsed = started.elapsed();

    println!("{}", report.summary_table());
    println!(
        "six-family metro-250 panel: {} cells in {:.1?} (budget {:.0?})",
        report.runs.len(),
        elapsed,
        WALL_BUDGET,
    );

    let mut failed = false;
    for run in &report.runs {
        if let Err(e) = &run.outcome {
            eprintln!("SOLVER FAILURE: {} on {}: {e}", run.localizer, run.scenario);
            failed = true;
        }
    }
    if elapsed > WALL_BUDGET {
        eprintln!(
            "WALL BUDGET EXCEEDED: {elapsed:.1?} > {WALL_BUDGET:.0?} — \
             a dense-path regression has likely crept into a metro cell"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("all six solver families run at metro scale; sparse backend OK");
}
