//! Release-mode smoke test and perf gate for the metro panel; run by CI.
//!
//! ```text
//! cargo run --release -p rl-bench --bin metro_smoke
//! ```
//!
//! Runs **every** solver family — centralized LSS (sparse constraint
//! backend), progressive multilateration, distributed LSS (pooled local
//! solves + Gauss–Newton/CG refinement), MDS-MAP (sparse eigensolver
//! path), DV-hop, centroid — on the metro-250 *and* metro-1000 rungs,
//! then enforces three budgets:
//!
//! 1. the whole grid finishes inside [`WALL_BUDGET`] (a dense `O(n²)`–
//!    `O(n³)` regression costs minutes, not seconds),
//! 2. distributed LSS at metro-1000 keeps its mean error at or below
//!    [`DIST_ERROR_BUDGET_M`] — the stitching-drift regression gate, and
//! 3. distributed LSS at metro-1000 finishes within
//!    [`DIST_WALL_FACTOR`] × the centralized sparse-LSS cell — the
//!    local-solve-cost regression gate.
//!
//! Every cell's wall time and mean error is also written to
//! `BENCH_metro.json` (machine-readable, uploaded as a CI artifact), so
//! the per-family perf trajectory is recorded on every run rather than
//! observed once in a PR description.

use std::time::{Duration, Instant};

use rl_bench::campaign::{Campaign, CampaignConfig, CampaignReport};
use rl_bench::experiments::metro::metro_localizers;
use rl_bench::MASTER_SEED;
use rl_deploy::Scenario;
use serde::Serialize;

/// Hard end-to-end budget for the twelve-cell metro panel. The sparse
/// paths finish the grid in seconds; a dense regression at this size
/// costs minutes.
const WALL_BUDGET: Duration = Duration::from_secs(300);

/// Mean-error ceiling for distributed LSS on the metro-1000 rung. The
/// refined pipeline lands ~0.13 m (the same regime as centralized sparse
/// LSS); before the refinement stage it degraded to ~15 m, so this gate
/// fails loudly if the stitching fix regresses.
const DIST_ERROR_BUDGET_M: f64 = 2.0;

/// Distributed LSS at metro-1000 must finish within this factor of the
/// centralized sparse-LSS cell on the same rung.
const DIST_WALL_FACTOR: f64 = 3.0;

/// The metro-1000 scenario name the budgets key on.
const METRO_1000: &str = "metro-1000-100anchors";

/// One `BENCH_metro.json` row: a (scenario, localizer) cell's wall time
/// and quality.
#[derive(Debug, Serialize)]
struct CellRecord {
    scenario: String,
    localizer: String,
    wall_ms: f64,
    mean_error_m: Option<f64>,
    localized: Option<usize>,
    nodes: Option<usize>,
    ok: bool,
}

/// The `BENCH_metro.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    seed: u64,
    workers: usize,
    total_wall_ms: f64,
    wall_budget_ms: f64,
    dist_error_budget_m: f64,
    dist_wall_factor: f64,
    cells: Vec<CellRecord>,
}

fn cell_records(report: &CampaignReport) -> Vec<CellRecord> {
    report
        .runs
        .iter()
        .map(|run| {
            let eval = run
                .outcome
                .as_ref()
                .ok()
                .and_then(|o| o.evaluation.as_ref());
            CellRecord {
                scenario: run.scenario.clone(),
                localizer: run.localizer.clone(),
                wall_ms: run.wall_time.as_secs_f64() * 1e3,
                mean_error_m: eval.map(|e| e.mean_error),
                localized: eval.map(|e| e.localized),
                nodes: eval.map(|e| e.total),
                ok: run.outcome.is_ok(),
            }
        })
        .collect()
}

fn main() {
    let campaign = Campaign::new()
        .scenario(Scenario::metro_sized(250, 0.10, MASTER_SEED))
        .scenario(Scenario::metro_sized(1000, 0.10, MASTER_SEED))
        .localizers(metro_localizers())
        .seeds(&[MASTER_SEED]);

    // Serial campaign schedule: the wall gate below compares two cells'
    // wall times, so cells must not contend with each other for cores.
    // Distributed LSS still shards its local-solve phase on its own
    // machine-sized rl_net::pool *inside* its cell — exactly the
    // configuration the 3x budget describes.
    let started = Instant::now();
    let report = campaign.run_with(CampaignConfig::serial());
    let elapsed = started.elapsed();

    println!("{}", report.summary_table());
    println!(
        "six-family metro-250 + metro-1000 panel: {} cells in {:.1?} (budget {:.0?})",
        report.runs.len(),
        elapsed,
        WALL_BUDGET,
    );

    let mut failed = false;
    for run in &report.runs {
        if let Err(e) = &run.outcome {
            eprintln!("SOLVER FAILURE: {} on {}: {e}", run.localizer, run.scenario);
            failed = true;
        }
    }
    if elapsed > WALL_BUDGET {
        eprintln!(
            "WALL BUDGET EXCEEDED: {elapsed:.1?} > {WALL_BUDGET:.0?} — \
             a dense-path regression has likely crept into a metro cell"
        );
        failed = true;
    }

    // Perf gates for the headline pipeline: distributed LSS at the
    // metro-1000 rung must stay in the centralized error regime and
    // within a small factor of the centralized sparse-LSS wall time.
    match report.mean_error(METRO_1000, "distributed-lss") {
        Some(err) if err <= DIST_ERROR_BUDGET_M => {
            println!("distributed-lss {METRO_1000} mean error {err:.3} m (budget {DIST_ERROR_BUDGET_M} m)");
        }
        Some(err) => {
            eprintln!(
                "DISTRIBUTED ERROR BUDGET EXCEEDED: {err:.3} m > {DIST_ERROR_BUDGET_M} m at \
                 {METRO_1000} — stitching drift is back; check the refinement stage"
            );
            failed = true;
        }
        None => {
            eprintln!("DISTRIBUTED ERROR MISSING: no evaluation for {METRO_1000}");
            failed = true;
        }
    }
    let wall_of = |localizer: &str| {
        report
            .wall_stats(METRO_1000, localizer)
            .map(|(mean, _)| mean)
    };
    match (
        wall_of("distributed-lss"),
        wall_of("lss-anchor-free+constraint"),
    ) {
        (Some(dist), Some(lss)) => {
            let ratio = dist.as_secs_f64() / lss.as_secs_f64().max(1e-9);
            if ratio <= DIST_WALL_FACTOR {
                println!(
                    "distributed-lss {METRO_1000} wall {:.0} ms = {ratio:.2}x sparse LSS \
                     (budget {DIST_WALL_FACTOR}x)",
                    dist.as_secs_f64() * 1e3
                );
            } else {
                eprintln!(
                    "DISTRIBUTED WALL BUDGET EXCEEDED: {:.0} ms is {ratio:.2}x the sparse-LSS \
                     cell ({:.0} ms), budget {DIST_WALL_FACTOR}x — the local-solve phase has \
                     regressed",
                    dist.as_secs_f64() * 1e3,
                    lss.as_secs_f64() * 1e3
                );
                failed = true;
            }
        }
        _ => {
            eprintln!("DISTRIBUTED WALL MISSING: no wall stats for {METRO_1000}");
            failed = true;
        }
    }

    // Machine-readable trajectory record, uploaded as a CI artifact.
    let bench = BenchReport {
        seed: MASTER_SEED,
        workers: report.workers,
        total_wall_ms: elapsed.as_secs_f64() * 1e3,
        wall_budget_ms: WALL_BUDGET.as_secs_f64() * 1e3,
        dist_error_budget_m: DIST_ERROR_BUDGET_M,
        dist_wall_factor: DIST_WALL_FACTOR,
        cells: cell_records(&report),
    };
    let json = serde_json::to_string(&bench).expect("report serializes");
    match std::fs::write("BENCH_metro.json", &json) {
        Ok(()) => println!("wrote BENCH_metro.json ({} bytes)", json.len()),
        Err(e) => {
            eprintln!("FAILED to write BENCH_metro.json: {e}");
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "all six solver families run at metro scale; distributed LSS within budget; sparse \
         backend OK"
    );
}
