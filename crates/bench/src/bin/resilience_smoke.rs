//! Release-mode resilience gate for the degradation ladder; run by CI.
//!
//! ```text
//! cargo run --release -p rl-bench --bin resilience_smoke
//! ```
//!
//! Runs the full degradation ladder — every solver family across the
//! error-regime rungs (ideal → clean → NLOS → multipath → clock drift →
//! contamination → hostile) at town and metro-250 scale — and enforces:
//!
//! 1. the ladder is **bit-identical across worker counts**: the pooled
//!    and serial campaign reports must share a fingerprint,
//! 2. on the contaminated rung (10% of nodes compromised), centralized
//!    LSS with the Cauchy loss keeps its town mean error at or below
//!    [`ROBUST_ERROR_BUDGET_M`] — the paper's resilience claim as a
//!    regression gate,
//! 3. the same solve with the squared loss **collapses**: its error must
//!    exceed the robust budget, or the contamination rung has silently
//!    gone soft and the A/B proves nothing,
//! 4. the whole ladder finishes inside [`WALL_BUDGET`].
//!
//! Every cell's wall time and mean error, plus the robust-loss A/B, is
//! written to `BENCH_degradation.json` (uploaded as a CI artifact next
//! to `BENCH_metro.json`).

use std::time::{Duration, Instant};

use rl_bench::campaign::{Campaign, CampaignConfig, CampaignReport};
use rl_bench::experiments::degradation::{contaminated_channel, degraded, regimes};
use rl_bench::experiments::metro::metro_localizers;
use rl_bench::MASTER_SEED;
use rl_core::lss::{LssConfig, LssSolver};
use rl_core::problem::Localizer;
use rl_core::RobustLoss;
use rl_deploy::Scenario;
use serde::Serialize;

/// Hard end-to-end budget for the ladder (both scales, both schedules).
const WALL_BUDGET: Duration = Duration::from_secs(300);

/// Mean-error ceiling for Cauchy-loss centralized LSS on the town's
/// contaminated rung (10% of nodes compromised, `U(0, 60 m)` garbage).
const ROBUST_ERROR_BUDGET_M: f64 = 2.0;

/// One `BENCH_degradation.json` row: a (scenario, localizer) cell.
#[derive(Debug, Serialize)]
struct CellRecord {
    scenario: String,
    localizer: String,
    wall_ms: f64,
    mean_error_m: Option<f64>,
    localized: Option<usize>,
    nodes: Option<usize>,
    ok: bool,
}

/// The robust-loss A/B on the contaminated town rung.
#[derive(Debug, Serialize)]
struct RobustAb {
    scenario: String,
    squared_l2_error_m: Option<f64>,
    cauchy_error_m: Option<f64>,
    budget_m: f64,
}

/// The `BENCH_degradation.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    seed: u64,
    workers: usize,
    total_wall_ms: f64,
    wall_budget_ms: f64,
    fingerprint: u64,
    robust_ab: RobustAb,
    cells: Vec<CellRecord>,
}

fn cell_records(report: &CampaignReport) -> Vec<CellRecord> {
    report
        .runs
        .iter()
        .map(|run| {
            let eval = run
                .outcome
                .as_ref()
                .ok()
                .and_then(|o| o.evaluation.as_ref());
            CellRecord {
                scenario: run.scenario.clone(),
                localizer: run.localizer.clone(),
                wall_ms: run.wall_time.as_secs_f64() * 1e3,
                mean_error_m: eval.map(|e| e.mean_error),
                localized: eval.map(|e| e.localized),
                nodes: eval.map(|e| e.total),
                ok: run.outcome.is_ok(),
            }
        })
        .collect()
}

/// Centralized LSS on `problem` with the given loss, evaluated against
/// ground truth.
fn lss_error(problem: &rl_core::problem::Problem, loss: RobustLoss) -> Option<f64> {
    let solver = LssSolver::new(LssConfig::metro().with_robust_loss(loss));
    let mut rng = rl_math::rng::seeded(MASTER_SEED);
    let solution = solver.localize(problem, &mut rng).ok()?;
    problem.evaluate(&solution).ok().map(|e| e.mean_error)
}

fn main() {
    let bases = [
        Scenario::town(MASTER_SEED),
        Scenario::metro_sized(250, 0.10, MASTER_SEED),
    ];
    let mut campaign = Campaign::new()
        .localizers(metro_localizers())
        .seeds(&[MASTER_SEED]);
    for base in &bases {
        for (rung, channel) in regimes() {
            campaign = campaign.scenario(degraded(base, rung, &channel));
        }
    }

    let started = Instant::now();
    let parallel = campaign.run();
    let serial = campaign.run_with(CampaignConfig::serial());
    let elapsed = started.elapsed();

    println!("{}", parallel.summary_table());
    println!(
        "degradation ladder: {} cells x 2 schedules in {:.1?} (budget {:.0?})",
        parallel.runs.len(),
        elapsed,
        WALL_BUDGET,
    );

    let mut failed = false;
    if parallel.fingerprint() != serial.fingerprint() {
        eprintln!(
            "DETERMINISM BROKEN: pooled ladder fingerprint {:#018x} != serial {:#018x} — the \
             degradation ladder must be bit-identical for any worker count",
            parallel.fingerprint(),
            serial.fingerprint()
        );
        failed = true;
    }
    for run in &parallel.runs {
        if let Err(e) = &run.outcome {
            eprintln!("SOLVER FAILURE: {} on {}: {e}", run.localizer, run.scenario);
            failed = true;
        }
    }
    if elapsed > WALL_BUDGET {
        eprintln!("WALL BUDGET EXCEEDED: {elapsed:.1?} > {WALL_BUDGET:.0?}");
        failed = true;
    }

    // The headline gate: robust-loss LSS survives the contamination that
    // collapses the squared loss, on the paper's own town geometry.
    let town_contaminated = degraded(&bases[0], "contaminated-10", &contaminated_channel());
    let problem = town_contaminated.instantiate(MASTER_SEED);
    let squared = lss_error(&problem, RobustLoss::SquaredL2);
    let cauchy = lss_error(&problem, RobustLoss::Cauchy { scale_m: 1.0 });
    match cauchy {
        Some(err) if err <= ROBUST_ERROR_BUDGET_M => {
            println!(
                "cauchy-loss LSS on {}: {err:.3} m (budget {ROBUST_ERROR_BUDGET_M} m)",
                town_contaminated.name
            );
        }
        Some(err) => {
            eprintln!(
                "ROBUST ERROR BUDGET EXCEEDED: cauchy-loss LSS at {err:.3} m > \
                 {ROBUST_ERROR_BUDGET_M} m on {} — the resilience claim has regressed",
                town_contaminated.name
            );
            failed = true;
        }
        None => {
            eprintln!("ROBUST SOLVE FAILED: no evaluation for the contaminated town");
            failed = true;
        }
    }
    match squared {
        Some(err) if err > ROBUST_ERROR_BUDGET_M => {
            println!(
                "squared-loss LSS on {}: {err:.3} m — collapses as expected",
                town_contaminated.name
            );
        }
        Some(err) => {
            eprintln!(
                "CONTAMINATION RUNG TOO SOFT: squared-loss LSS survives at {err:.3} m <= \
                 {ROBUST_ERROR_BUDGET_M} m — the A/B no longer demonstrates a collapse"
            );
            failed = true;
        }
        None => {
            // A structured error under contamination is a legitimate form
            // of collapse; the robust gate above is the one that must pass.
            println!(
                "squared-loss LSS on {}: failed to solve — collapses as expected",
                town_contaminated.name
            );
        }
    }

    let bench = BenchReport {
        seed: MASTER_SEED,
        workers: parallel.workers,
        total_wall_ms: elapsed.as_secs_f64() * 1e3,
        wall_budget_ms: WALL_BUDGET.as_secs_f64() * 1e3,
        fingerprint: parallel.fingerprint(),
        robust_ab: RobustAb {
            scenario: town_contaminated.name.clone(),
            squared_l2_error_m: squared,
            cauchy_error_m: cauchy,
            budget_m: ROBUST_ERROR_BUDGET_M,
        },
        cells: cell_records(&parallel),
    };
    let json = serde_json::to_string(&bench).expect("report serializes");
    match std::fs::write("BENCH_degradation.json", &json) {
        Ok(()) => println!("wrote BENCH_degradation.json ({} bytes)", json.len()),
        Err(e) => {
            eprintln!("FAILED to write BENCH_degradation.json: {e}");
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "degradation ladder bit-identical across worker counts; robust-loss LSS holds \
         <= {ROBUST_ERROR_BUDGET_M} m where the squared loss collapses"
    );
}
