//! Release-mode smoke test and perf gate for the sparse kernel layer;
//! run by CI.
//!
//! ```text
//! cargo run --release -p rl-bench --bin sparse_smoke
//! ```
//!
//! Exercises the preconditioned / warm-started / batched kernels end to
//! end on the metro ladder and enforces four budgets:
//!
//! 1. **PCG iteration gate** — IC(0)-preconditioned CG on the
//!    metro-1000 Gauss–Newton refinement normal equations (assembled at
//!    a drifted iterate, default Tikhonov damping, tight `1e-10`
//!    tolerance) must use at most **half** the iterations of
//!    unpreconditioned CG, and both solves must agree on the solution.
//! 2. **Warm-start gate** — warm-started refinement
//!    ([`DistributedConfig::metro_fast`]-style) at metro-1000 must spend
//!    no more cumulative CG iterations than the default zero-started
//!    path and land at the same refined stress (the never-worse
//!    contract).
//! 3. **metro-2500 wall gates** — the new 2,500-node preset rung must
//!    finish sparse MDS-MAP and drifted refinement inside their wall
//!    budgets (a dense or quadratic regression costs minutes here).
//! 4. **Stats plumbing** — a distributed-LSS solve with the
//!    [`DistributedConfig::metro_fast`] preset must report
//!    `SolveStats::cg_iterations` (the concrete consumer of the
//!    promoted counter).
//!
//! Every measurement is also written to `BENCH_sparse.json`
//! (machine-readable, uploaded as a CI artifact), so the kernel-layer
//! perf trajectory is recorded on every run.
//!
//! [`DistributedConfig::metro_fast`]: rl_core::distributed::DistributedConfig::metro_fast

use std::time::{Duration, Instant};

use rl_bench::MASTER_SEED;
use rl_core::distributed::refine::{refine_aligned, RefineConfig};
use rl_core::distributed::{DistributedConfig, DistributedSolver};
use rl_core::mds::mdsmap_coordinates_with;
use rl_core::problem::{Localizer, SolverBackend};
use rl_core::types::PositionMap;
use rl_deploy::presets;
use rl_geom::Point2;
use rl_math::sparse::cg::{
    conjugate_gradient_with, CgConfig, CgWorkspace, IncompleteCholesky, Preconditioner,
};
use rl_math::sparse::CsrMatrix;
use rl_net::NodeId;
use rl_ranging::MeasurementSet;
use serde::Serialize;

/// IC(0)-PCG must use at most `1/PCG_MIN_REDUCTION` of plain CG's
/// iterations on the metro-1000 normal equations (measured ~2.4x on the
/// reference machine).
const PCG_MIN_REDUCTION: usize = 2;

/// Wall budget for sparse MDS-MAP on the metro-2500 rung (~3.5 s on the
/// reference machine; the margin absorbs slow shared CI runners).
const MDS_2500_WALL_BUDGET: Duration = Duration::from_secs(120);

/// Wall budget for drifted Gauss–Newton refinement on the metro-2500
/// rung (~100 ms on the reference machine).
const REFINE_2500_WALL_BUDGET: Duration = Duration::from_secs(60);

/// Tolerance for the tight assembled-system solves: loose enough to
/// converge, tight enough that preconditioning quality dominates the
/// iteration count.
const TIGHT_TOLERANCE: f64 = 1e-10;

/// One gate's record in `BENCH_sparse.json`.
#[derive(Debug, Serialize)]
struct GateRecord {
    name: String,
    value: f64,
    budget: f64,
    ok: bool,
}

/// The `BENCH_sparse.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    seed: u64,
    plain_cg_iterations: usize,
    ic0_cg_iterations: usize,
    refine_default_cg_iterations: usize,
    refine_warm_cg_iterations: usize,
    mds_1000_wall_ms: f64,
    mds_2500_wall_ms: f64,
    refine_2500_wall_ms: f64,
    distributed_fast_cg_iterations: Option<usize>,
    gates: Vec<GateRecord>,
}

/// Deterministic smooth warp of the true positions: the refinement
/// starting point. Quadratic in `x` so the displacement field is
/// spatially correlated (rigid-ish near the origin, drifting with
/// distance) — the shape of real stitching drift.
fn drifted(truth: &[Point2], scale: f64) -> PositionMap {
    let span = truth.iter().map(|p| p.x.abs()).fold(1.0, f64::max);
    let mut positions = PositionMap::unlocalized(truth.len());
    for (i, p) in truth.iter().enumerate() {
        let t = p.x / span;
        positions.set(
            NodeId(i),
            Point2::new(p.x + scale * t * t, p.y + 0.5 * scale * t * t),
        );
    }
    positions
}

/// Assembles the damped Gauss–Newton normal equations `(JᵀWJ + λI)`
/// and gradient `−JᵀWr` of the stress objective at `positions`, in the
/// refinement layout (`[x coords; y coords]`, `2n × 2n`). Each edge
/// contributes the rank-1 block `w·ggᵀ` over `(xᵢ, yᵢ, xⱼ, yⱼ)` with
/// `g = (ux, uy, −ux, −uy)`.
fn assemble_normal_equations(
    set: &MeasurementSet,
    positions: &PositionMap,
    lambda: f64,
) -> (CsrMatrix, Vec<f64>) {
    let n = set.node_count();
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    let mut rhs = vec![0.0; 2 * n];
    for i in 0..2 * n {
        triplets.push((i, i, lambda));
    }
    for (a, b, d, w) in set.iter_weighted() {
        let (i, j) = (a.index(), b.index());
        let (pi, pj) = (
            positions.get(a).expect("drifted map is complete"),
            positions.get(b).expect("drifted map is complete"),
        );
        let (dx, dy) = (pi.x - pj.x, pi.y - pj.y);
        let dist = (dx * dx + dy * dy).sqrt().max(1e-9);
        let (ux, uy) = (dx / dist, dy / dist);
        let residual = dist - d;
        let idx = [i, n + i, j, n + j];
        let g = [ux, uy, -ux, -uy];
        for p in 0..4 {
            for q in 0..4 {
                triplets.push((idx[p], idx[q], w * g[p] * g[q]));
            }
            rhs[idx[p]] -= w * g[p] * residual;
        }
    }
    let a = CsrMatrix::from_triplets(2 * n, 2 * n, &triplets).expect("finite, in-bounds triplets");
    (a, rhs)
}

fn main() {
    let mut failed = false;
    let mut gates: Vec<GateRecord> = Vec::new();
    let mut gate = |name: &str, value: f64, budget: f64, ok: bool| -> bool {
        gates.push(GateRecord {
            name: name.to_string(),
            value,
            budget,
            ok,
        });
        ok
    };

    let problem_1000 = presets::preset("metro-1000")
        .expect("metro-1000 is a preset")
        .instantiate(MASTER_SEED);
    let truth_1000 = problem_1000.truth_required().expect("metro has truth");
    let set_1000 = problem_1000.measurements();

    // Gate 1: IC(0)-PCG vs plain CG on the assembled metro-1000
    // refinement normal equations, solved tight. λ is the refinement
    // default (`RefineConfig::default().tikhonov`).
    let (a, b) = assemble_normal_equations(set_1000, &drifted(truth_1000, 12.0), 1e-2);
    let cfg = CgConfig::default()
        .with_max_iterations(20_000)
        .with_tolerance(TIGHT_TOLERANCE);
    let mut ws = CgWorkspace::new();
    let plain =
        conjugate_gradient_with(&a, &b, None, None, &cfg, &mut ws).expect("plain CG converges");
    let ic = IncompleteCholesky::factor(&a).expect("SPD normal equations factor");
    let pcg = conjugate_gradient_with(
        &a,
        &b,
        None,
        Some(&ic as &dyn Preconditioner),
        &cfg,
        &mut ws,
    )
    .expect("IC(0)-PCG converges");
    let scale = plain.x.iter().map(|v| v.abs()).fold(1.0, f64::max);
    let max_diff = plain
        .x
        .iter()
        .zip(&pcg.x)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0, f64::max);
    println!(
        "metro-1000 normal equations ({}x{}, nnz {}): plain CG {} iters, IC(0)-PCG {} iters, \
         solution agreement {:.2e}",
        a.rows(),
        a.cols(),
        ic.nnz(),
        plain.iterations,
        pcg.iterations,
        max_diff / scale,
    );
    if !gate(
        "pcg-iteration-reduction",
        plain.iterations as f64 / pcg.iterations.max(1) as f64,
        PCG_MIN_REDUCTION as f64,
        pcg.iterations * PCG_MIN_REDUCTION <= plain.iterations,
    ) {
        eprintln!(
            "PCG GATE FAILED: IC(0) used {} iterations vs plain {} — less than the required \
             {PCG_MIN_REDUCTION}x reduction; the preconditioner has regressed",
            pcg.iterations, plain.iterations
        );
        failed = true;
    }
    if !gate(
        "pcg-solution-agreement",
        max_diff / scale,
        1e-4,
        max_diff / scale <= 1e-4,
    ) {
        eprintln!(
            "PCG AGREEMENT FAILED: preconditioned and plain solutions diverge by {:.2e} \
             (relative) — the preconditioned path is solving a different system",
            max_diff / scale
        );
        failed = true;
    }

    // Gate 2: warm-started refinement never spends more CG iterations
    // than the default path and lands at the same refined stress.
    let run_refine = |config: &RefineConfig| {
        let mut positions = drifted(truth_1000, 12.0);
        refine_aligned(set_1000, &mut positions, config).expect("metro refines")
    };
    let plain_refine = run_refine(&RefineConfig {
        max_iterations: 30,
        ..RefineConfig::default()
    });
    let warm_refine = run_refine(&RefineConfig {
        max_iterations: 30,
        cg_warm_start: true,
        ..RefineConfig::default()
    });
    println!(
        "metro-1000 refinement: default {} CG iters (stress {:.4e}), warm-started {} CG iters \
         (stress {:.4e})",
        plain_refine.cg_iterations,
        plain_refine.final_stress,
        warm_refine.cg_iterations,
        warm_refine.final_stress,
    );
    if !gate(
        "warm-start-never-worse",
        warm_refine.cg_iterations as f64,
        plain_refine.cg_iterations as f64,
        warm_refine.cg_iterations <= plain_refine.cg_iterations,
    ) {
        eprintln!(
            "WARM-START GATE FAILED: warm-started refinement spent {} CG iterations vs {} \
             zero-started — the never-worse contract is broken",
            warm_refine.cg_iterations, plain_refine.cg_iterations
        );
        failed = true;
    }
    let stress_rel = (warm_refine.final_stress - plain_refine.final_stress).abs()
        / plain_refine.final_stress.max(f64::MIN_POSITIVE);
    if !gate(
        "warm-start-same-stress",
        stress_rel,
        1e-2,
        stress_rel <= 1e-2,
    ) {
        eprintln!(
            "WARM-START QUALITY FAILED: warm-started stress {:.6e} vs default {:.6e} — the seed \
             changed the answer, not just the work",
            warm_refine.final_stress, plain_refine.final_stress
        );
        failed = true;
    }

    // Trajectory record: sparse MDS-MAP at metro-1000 (not gated — the
    // metro_smoke panel owns that rung's budget).
    let t = Instant::now();
    mdsmap_coordinates_with(set_1000, SolverBackend::Sparse).expect("metro-1000 MDS solves");
    let mds_1000_wall = t.elapsed();
    println!("metro-1000 sparse MDS-MAP: {mds_1000_wall:.1?}");

    // Gate 3: the metro-2500 rung. Multi-source Dijkstra + blocked
    // eigensolver keep sparse MDS-MAP in seconds; drifted refinement
    // exercises the matvec path at 2,500 nodes.
    let problem_2500 = presets::preset("metro-2500")
        .expect("metro-2500 is a preset")
        .instantiate(MASTER_SEED);
    let truth_2500 = problem_2500.truth_required().expect("metro has truth");
    let set_2500 = problem_2500.measurements();
    let t = Instant::now();
    mdsmap_coordinates_with(set_2500, SolverBackend::Sparse).expect("metro-2500 MDS solves");
    let mds_2500_wall = t.elapsed();
    println!("metro-2500 sparse MDS-MAP: {mds_2500_wall:.1?} (budget {MDS_2500_WALL_BUDGET:.0?})");
    if !gate(
        "mds-2500-wall-ms",
        mds_2500_wall.as_secs_f64() * 1e3,
        MDS_2500_WALL_BUDGET.as_secs_f64() * 1e3,
        mds_2500_wall <= MDS_2500_WALL_BUDGET,
    ) {
        eprintln!(
            "MDS WALL BUDGET EXCEEDED: {mds_2500_wall:.1?} > {MDS_2500_WALL_BUDGET:.0?} at \
             metro-2500 — a dense or per-source-allocating path has crept into MDS-MAP"
        );
        failed = true;
    }
    let mut positions_2500 = drifted(truth_2500, 12.0);
    let t = Instant::now();
    let refine_2500 = refine_aligned(
        set_2500,
        &mut positions_2500,
        &RefineConfig {
            max_iterations: 30,
            cg_warm_start: true,
            ..RefineConfig::default()
        },
    )
    .expect("metro-2500 refines");
    let refine_2500_wall = t.elapsed();
    println!(
        "metro-2500 refinement: {} GN / {} CG iters in {refine_2500_wall:.1?} (budget \
         {REFINE_2500_WALL_BUDGET:.0?})",
        refine_2500.iterations, refine_2500.cg_iterations
    );
    if !gate(
        "refine-2500-wall-ms",
        refine_2500_wall.as_secs_f64() * 1e3,
        REFINE_2500_WALL_BUDGET.as_secs_f64() * 1e3,
        refine_2500_wall <= REFINE_2500_WALL_BUDGET,
    ) {
        eprintln!(
            "REFINE WALL BUDGET EXCEEDED: {refine_2500_wall:.1?} > {REFINE_2500_WALL_BUDGET:.0?} \
             at metro-2500 — the Gauss–Newton/CG path has regressed"
        );
        failed = true;
    }

    // Gate 4: the promoted CG counter reaches SolveStats through the
    // fast preset (metro-250 keeps this cell cheap).
    let problem_250 = presets::preset("metro-250")
        .expect("metro-250 is a preset")
        .instantiate(MASTER_SEED);
    let solver = DistributedSolver::new(DistributedConfig::metro_fast());
    let mut rng = rl_math::rng::seeded(MASTER_SEED);
    let solution = solver
        .localize(&problem_250, &mut rng)
        .expect("metro-250 distributed solve");
    let dist_cg = solution.stats().cg_iterations;
    println!(
        "distributed-lss (metro_fast) at metro-250: cg_iterations = {dist_cg:?}, \
         {} messages",
        solution.stats().iterations
    );
    if !gate(
        "solvestats-cg-iterations",
        dist_cg.unwrap_or(0) as f64,
        1.0,
        dist_cg.is_some_and(|c| c > 0),
    ) {
        eprintln!(
            "STATS GATE FAILED: distributed-lss with metro_fast reported cg_iterations = \
             {dist_cg:?} — the counter is not reaching SolveStats"
        );
        failed = true;
    }

    let report = BenchReport {
        seed: MASTER_SEED,
        plain_cg_iterations: plain.iterations,
        ic0_cg_iterations: pcg.iterations,
        refine_default_cg_iterations: plain_refine.cg_iterations,
        refine_warm_cg_iterations: warm_refine.cg_iterations,
        mds_1000_wall_ms: mds_1000_wall.as_secs_f64() * 1e3,
        mds_2500_wall_ms: mds_2500_wall.as_secs_f64() * 1e3,
        refine_2500_wall_ms: refine_2500_wall.as_secs_f64() * 1e3,
        distributed_fast_cg_iterations: dist_cg,
        gates,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    match std::fs::write("BENCH_sparse.json", &json) {
        Ok(()) => println!("wrote BENCH_sparse.json ({} bytes)", json.len()),
        Err(e) => {
            eprintln!("FAILED to write BENCH_sparse.json: {e}");
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "sparse kernel layer OK: IC(0) halves the tight-solve iterations, warm starts are \
         never worse, metro-2500 stays inside its wall budgets"
    );
}
