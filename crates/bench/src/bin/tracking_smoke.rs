//! Release-mode smoke test and perf gate for the tracking layer; run by
//! CI.
//!
//! ```text
//! cargo run --release -p rl-bench --bin tracking_smoke
//! ```
//!
//! Drives the warm-started [`StreamingTracker`] and a forced-cold
//! reference over the same metro-250 mobility trace (identical per-tick
//! cold seeds), then enforces four budgets:
//!
//! 1. warm-started updates run at least [`SPEEDUP_FLOOR`]× faster than
//!    the per-tick cold re-solve (mean wall over warm ticks vs mean wall
//!    over cold ticks) — the whole point of the tracking layer,
//! 2. the warm stream's mean error stays within [`ERROR_FACTOR`]× of
//!    the cold stream's — speed must not be bought with drift,
//! 3. tracker replay is **bit-identical across worker counts**: the
//!    distributed-LSS cold engine at 1 and 2 workers produces the same
//!    per-tick solution fingerprints on a town-scale stream,
//! 4. the whole run finishes inside [`WALL_BUDGET`].
//!
//! Per-tick wall/error trajectories are written to
//! `BENCH_tracking.json` (machine-readable, uploaded as a CI artifact).

use std::time::{Duration, Instant};

use rl_bench::experiments::tracking::{run_stream, warm_vs_cold, StreamRun, ALWAYS_COLD};
use rl_bench::MASTER_SEED;
use rl_core::distributed::{DistributedConfig, DistributedSolver};
use rl_core::tracking::{StreamingTracker, TrackerConfig};
use rl_deploy::mobility::MobilityScenario;
use serde::Serialize;

/// Hard end-to-end budget for the whole smoke run.
const WALL_BUDGET: Duration = Duration::from_secs(300);

/// Warm ticks must be at least this many times faster than cold
/// re-solves at metro-250.
const SPEEDUP_FLOOR: f64 = 3.0;

/// The warm stream's mean error may exceed the cold stream's by at most
/// this factor.
const ERROR_FACTOR: f64 = 1.25;

/// Metro-250 trace length. Long enough that the warm path dominates the
/// mean, short enough that the cold arm (a full batch LSS per tick)
/// stays inside the wall budget.
const METRO_TICKS: usize = 10;

/// Town-scale replay trace length for the worker-count gate (every tick
/// is a cold distributed solve, the expensive arm).
const REPLAY_TICKS: usize = 3;

/// One per-tick row of `BENCH_tracking.json`.
#[derive(Debug, Serialize)]
struct TickRecord {
    tick: usize,
    warm: bool,
    wall_ms: f64,
    mean_error_m: f64,
    fingerprint: String,
}

/// One stream's rows plus its aggregates.
#[derive(Debug, Serialize)]
struct StreamRecord {
    stream: String,
    ticks: usize,
    warm_updates: u64,
    cold_solves: u64,
    mean_warm_tick_ms: Option<f64>,
    mean_cold_tick_ms: Option<f64>,
    mean_error_m: f64,
    per_tick: Vec<TickRecord>,
}

/// The `BENCH_tracking.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    seed: u64,
    speedup_floor: f64,
    error_factor: f64,
    wall_budget_ms: f64,
    speedup: f64,
    error_ratio: f64,
    replay_identical: bool,
    total_wall_ms: f64,
    streams: Vec<StreamRecord>,
}

fn stream_record(label: &str, run: &StreamRun) -> StreamRecord {
    StreamRecord {
        stream: label.to_string(),
        ticks: run.ticks,
        warm_updates: run.warm_updates,
        cold_solves: run.cold_solves,
        mean_warm_tick_ms: run.mean_wall(true).map(|d| d.as_secs_f64() * 1e3),
        mean_cold_tick_ms: run.mean_wall(false).map(|d| d.as_secs_f64() * 1e3),
        mean_error_m: run.mean_error(),
        per_tick: (0..run.ticks)
            .map(|t| TickRecord {
                tick: t,
                warm: run.warm[t],
                wall_ms: run.wall[t].as_secs_f64() * 1e3,
                mean_error_m: run.error_m[t],
                fingerprint: format!("{:#018x}", run.fingerprints[t]),
            })
            .collect(),
    }
}

/// The worker-count replay gate: a forced-cold tracker whose cold engine
/// is distributed LSS (the solver whose internals shard across a worker
/// pool) must emit bit-identical per-tick fingerprints at 1 and 2
/// workers.
fn replay_fingerprints(workers: usize) -> Vec<u64> {
    let scenario = MobilityScenario::town(MASTER_SEED).with_ticks(REPLAY_TICKS);
    let trace = scenario.trace(MASTER_SEED);
    let cold = DistributedSolver::new(DistributedConfig::metro().with_workers(workers));
    let mut tracker = StreamingTracker::new(
        TrackerConfig::new(MASTER_SEED).with_churn_restart_fraction(ALWAYS_COLD),
        Box::new(cold),
    );
    run_stream(&mut tracker, &trace).fingerprints
}

fn main() {
    let started = Instant::now();

    let scenario = MobilityScenario::metro_250(MASTER_SEED).with_ticks(METRO_TICKS);
    let (warm, cold) = warm_vs_cold(&scenario, MASTER_SEED);

    let warm_tick = warm
        .mean_wall(true)
        .expect("warm stream has warm ticks")
        .as_secs_f64();
    let cold_tick = cold
        .mean_wall(false)
        .expect("cold stream has cold ticks")
        .as_secs_f64();
    let speedup = cold_tick / warm_tick.max(1e-9);
    let error_ratio = warm.mean_error() / cold.mean_error().max(1e-9);

    println!(
        "metro-250 stream ({METRO_TICKS} ticks): warm {:.2} ms/tick ({} warm, {} cold), cold \
         re-solve {:.2} ms/tick => {speedup:.1}x; error warm {:.3} m vs cold {:.3} m \
         ({error_ratio:.2}x)",
        warm_tick * 1e3,
        warm.warm_updates,
        warm.cold_solves,
        cold_tick * 1e3,
        warm.mean_error(),
        cold.mean_error(),
    );

    let mut failed = false;
    if speedup < SPEEDUP_FLOOR {
        eprintln!(
            "SPEEDUP FLOOR MISSED: warm ticks are only {speedup:.2}x faster than cold re-solves \
             (floor {SPEEDUP_FLOOR}x) — the warm path is doing cold-solve work"
        );
        failed = true;
    }
    if !error_ratio.is_finite() || error_ratio > ERROR_FACTOR {
        eprintln!(
            "ERROR FACTOR EXCEEDED: warm mean error is {error_ratio:.3}x the cold re-solve \
             (budget {ERROR_FACTOR}x) — the warm seed is drifting"
        );
        failed = true;
    }

    let replay_1 = replay_fingerprints(1);
    let replay_2 = replay_fingerprints(2);
    let replay_identical = replay_1 == replay_2;
    if replay_identical {
        println!(
            "replay gate: {} town ticks bit-identical at 1 and 2 workers (tick 0 {:#018x})",
            replay_1.len(),
            replay_1[0],
        );
    } else {
        eprintln!(
            "REPLAY DIVERGED ACROSS WORKER COUNTS: {replay_1:#018x?} (1 worker) vs \
             {replay_2:#018x?} (2 workers) — a scheduling dependency has crept into the \
             tracking or distributed layer"
        );
        failed = true;
    }

    let elapsed = started.elapsed();
    if elapsed > WALL_BUDGET {
        eprintln!("WALL BUDGET EXCEEDED: {elapsed:.1?} > {WALL_BUDGET:.0?}");
        failed = true;
    }

    let bench = BenchReport {
        seed: MASTER_SEED,
        speedup_floor: SPEEDUP_FLOOR,
        error_factor: ERROR_FACTOR,
        wall_budget_ms: WALL_BUDGET.as_secs_f64() * 1e3,
        speedup,
        error_ratio,
        replay_identical,
        total_wall_ms: elapsed.as_secs_f64() * 1e3,
        streams: vec![
            stream_record("metro-250-warm", &warm),
            stream_record("metro-250-cold", &cold),
        ],
    };
    let json = serde_json::to_string(&bench).expect("report serializes");
    match std::fs::write("BENCH_tracking.json", &json) {
        Ok(()) => println!("wrote BENCH_tracking.json ({} bytes)", json.len()),
        Err(e) => {
            eprintln!("FAILED to write BENCH_tracking.json: {e}");
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "tracking smoke OK: warm updates {speedup:.1}x faster than cold re-solve at matched \
         accuracy ({error_ratio:.2}x), replay bit-identical across worker counts, {elapsed:.1?} \
         total"
    );
}
