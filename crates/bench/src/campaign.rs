//! Scenario-driven campaign execution: a (scenarios × localizers × seeds)
//! grid run through the unified [`Localizer`] trait.
//!
//! The paper's experimental object is never a single solve — it is the
//! *comparison matrix*: every algorithm family on the same deployments,
//! summarized as a head-to-head table. A [`Campaign`] encodes that matrix
//! once: problem sources on one axis (named [`Scenario`]s instantiated per
//! seed, or fixed pre-measured [`Problem`]s), boxed localizers on the
//! second, seeds on the third. [`Campaign::run`] executes every cell
//! deterministically and returns a [`CampaignReport`] with per-run records
//! and per-cell [`Evaluation`] summaries.
//!
//! ```
//! use rl_bench::campaign::Campaign;
//! use rl_core::lss::{LssConfig, LssSolver};
//! use rl_core::mds::MdsMapLocalizer;
//! use rl_deploy::Scenario;
//!
//! let report = Campaign::new()
//!     .scenario(Scenario::parking_lot(7))
//!     .localizer(Box::new(LssSolver::new(LssConfig::default())))
//!     .localizer(Box::new(MdsMapLocalizer::new()))
//!     .trials(1, 2)
//!     .run();
//! assert_eq!(report.runs.len(), 4);
//! println!("{}", report.summary_table());
//! ```

use rl_core::eval::Evaluation;
use rl_core::problem::{Localizer, Problem, Solution};
use rl_core::{LocalizationError, LssConfig, LssSolver, MultilaterationConfig};
use rl_deploy::Scenario;

use crate::report::m;
use crate::Table;

/// Where a campaign cell's problems come from.
enum ProblemSource {
    /// A named scenario, instantiated freshly for every seed (new
    /// synthetic measurements per trial).
    Scenario(Scenario),
    /// A fixed, pre-measured problem shared by every trial (seeds then
    /// vary only the solvers' randomness) — e.g. field measurements from
    /// the acoustic ranging service.
    Fixed(Problem),
}

impl ProblemSource {
    fn name(&self) -> &str {
        match self {
            ProblemSource::Scenario(s) => &s.name,
            ProblemSource::Fixed(p) => p.name(),
        }
    }

    fn instantiate(&self, seed: u64) -> Problem {
        match self {
            ProblemSource::Scenario(s) => s.instantiate(seed),
            ProblemSource::Fixed(p) => p.clone(),
        }
    }
}

/// A (scenarios × localizers × seeds) execution grid.
///
/// Built with the chained methods below; [`Campaign::run`] executes the
/// full grid. Runs are deterministic: each `(source, seed, localizer)`
/// cell derives its own RNG stream, so re-running a campaign reproduces
/// it bit-for-bit (wall-clock timings aside).
#[derive(Default)]
pub struct Campaign {
    sources: Vec<ProblemSource>,
    localizers: Vec<Box<dyn Localizer>>,
    seeds: Vec<u64>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Self {
        Campaign::default()
    }

    /// Adds a scenario, instantiated freshly for every seed.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.sources.push(ProblemSource::Scenario(scenario));
        self
    }

    /// Adds a fixed, pre-measured problem shared by every seed.
    pub fn problem(mut self, problem: Problem) -> Self {
        self.sources.push(ProblemSource::Fixed(problem));
        self
    }

    /// Adds a localizer to the comparison.
    pub fn localizer(mut self, localizer: Box<dyn Localizer>) -> Self {
        self.localizers.push(localizer);
        self
    }

    /// Adds several localizers at once.
    pub fn localizers(mut self, localizers: Vec<Box<dyn Localizer>>) -> Self {
        self.localizers.extend(localizers);
        self
    }

    /// Replaces the seed list.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Derives `n` distinct trial seeds from a base seed.
    pub fn trials(mut self, base_seed: u64, n: usize) -> Self {
        self.seeds = (0..n as u64)
            .map(|i| base_seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | i))
            .collect();
        self
    }

    /// Executes the grid: every source × seed × localizer cell, in that
    /// nesting order. With no seeds configured, a single seed `0` is
    /// used.
    pub fn run(&self) -> CampaignReport {
        let seeds: &[u64] = if self.seeds.is_empty() {
            &[0]
        } else {
            &self.seeds
        };
        let mut runs = Vec::with_capacity(self.sources.len() * seeds.len() * self.localizers.len());
        for source in &self.sources {
            for &seed in seeds {
                let problem = source.instantiate(seed);
                for (li, localizer) in self.localizers.iter().enumerate() {
                    // Every cell gets its own deterministic stream so
                    // adding or reordering localizers cannot perturb the
                    // others' draws.
                    let mut rng = rl_math::rng::seeded(
                        seed ^ (li as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03),
                    );
                    let outcome = localizer.localize(&problem, &mut rng).map(|solution| {
                        let evaluation = problem.evaluate(&solution).ok();
                        RunOutcome {
                            solution,
                            evaluation,
                        }
                    });
                    runs.push(RunRecord {
                        scenario: source.name().to_string(),
                        localizer: localizer.name().to_string(),
                        seed,
                        outcome,
                    });
                }
            }
        }
        CampaignReport { runs }
    }
}

/// One executed cell instance: a localizer on one instantiated problem.
#[derive(Debug)]
pub struct RunRecord {
    /// The problem source's name.
    pub scenario: String,
    /// The localizer's name.
    pub localizer: String,
    /// The seed the run derived its problem and RNG stream from.
    pub seed: u64,
    /// The solve outcome, or the solver's error.
    pub outcome: Result<RunOutcome, LocalizationError>,
}

/// A successful run: the solution plus its evaluation against ground
/// truth (when the problem carried truth and evaluation succeeded).
#[derive(Debug)]
pub struct RunOutcome {
    /// The localizer's solution.
    pub solution: Solution,
    /// Evaluation against ground truth; `None` without truth or when no
    /// (non-anchor) node was localized.
    pub evaluation: Option<Evaluation>,
}

/// The output of [`Campaign::run`]: per-run records plus aggregation
/// helpers.
#[derive(Debug)]
pub struct CampaignReport {
    /// Every run, in execution order (source-major, then seed, then
    /// localizer).
    pub runs: Vec<RunRecord>,
}

impl CampaignReport {
    /// The distinct `(scenario, localizer)` cells, in first-appearance
    /// order.
    pub fn cells(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        for r in &self.runs {
            let key = (r.scenario.clone(), r.localizer.clone());
            if !out.contains(&key) {
                out.push(key);
            }
        }
        out
    }

    /// Every run of one cell, in execution order.
    pub fn runs_for(&self, scenario: &str, localizer: &str) -> Vec<&RunRecord> {
        self.runs
            .iter()
            .filter(|r| r.scenario == scenario && r.localizer == localizer)
            .collect()
    }

    /// Mean localization error of a cell over its evaluated runs, or
    /// `None` when no run produced an evaluation.
    pub fn mean_error(&self, scenario: &str, localizer: &str) -> Option<f64> {
        let errors: Vec<f64> = self
            .runs_for(scenario, localizer)
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .filter_map(|o| o.evaluation.as_ref())
            .map(|e| e.mean_error)
            .collect();
        if errors.is_empty() {
            None
        } else {
            Some(errors.iter().sum::<f64>() / errors.len() as f64)
        }
    }

    /// The per-cell summary table: runs, solver failures, mean localized
    /// count, mean error, and mean wall time.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(
            "campaign summary",
            &[
                "scenario",
                "localizer",
                "runs",
                "failed",
                "localized",
                "mean_error_m",
                "mean_wall_ms",
            ],
        );
        for (scenario, localizer) in self.cells() {
            let runs = self.runs_for(&scenario, &localizer);
            let failed = runs.iter().filter(|r| r.outcome.is_err()).count();
            let evals: Vec<&Evaluation> = runs
                .iter()
                .filter_map(|r| r.outcome.as_ref().ok())
                .filter_map(|o| o.evaluation.as_ref())
                .collect();
            let localized = if evals.is_empty() {
                "n/a".to_string()
            } else {
                let mean_loc =
                    evals.iter().map(|e| e.localized as f64).sum::<f64>() / evals.len() as f64;
                format!("{:.1}/{}", mean_loc, evals[0].total)
            };
            let mean_error = self
                .mean_error(&scenario, &localizer)
                .map(m)
                .unwrap_or_else(|| "n/a".to_string());
            let wall: Vec<f64> = runs
                .iter()
                .filter_map(|r| r.outcome.as_ref().ok())
                .map(|o| o.solution.stats().wall_time.as_secs_f64() * 1e3)
                .collect();
            let mean_wall = if wall.is_empty() {
                "n/a".to_string()
            } else {
                format!("{:.1}", wall.iter().sum::<f64>() / wall.len() as f64)
            };
            t.push(&[
                scenario,
                localizer,
                runs.len().to_string(),
                failed.to_string(),
                localized,
                mean_error,
                mean_wall,
            ]);
        }
        t
    }
}

/// The canonical head-to-head campaign of the paper's evaluation: every
/// algorithm family on the Figure-5 grass grid (46 reporting motes, 13
/// random anchors, synthetic 22 m / N(0, 0.33 m) ranging). Used by both
/// the `BASELINES` bench experiment and the `compare_solvers` example.
///
/// LSS appears twice: anchor-free (the paper's algorithm — it never sees
/// the 13 anchors the other schemes get) and anchored (this library's
/// extension pinning anchors with springs).
pub fn figure5_head_to_head(seed: u64) -> Campaign {
    use rl_core::baselines::{CentroidLocalizer, DvHopLocalizer};
    use rl_core::distributed::{DistributedConfig, DistributedSolver};
    use rl_core::mds::MdsMapLocalizer;
    use rl_core::MultilaterationSolver;
    use rl_net::RadioModel;

    const RANGE_M: f64 = 22.0;
    Campaign::new()
        .scenario(Scenario::grass_grid_multilateration(seed))
        .localizer(Box::new(LssSolver::new(
            LssConfig::default()
                .with_min_spacing(9.14, 10.0)
                .anchor_free(),
        )))
        .localizer(Box::new(LssSolver::new(
            LssConfig::default().with_min_spacing(9.14, 10.0),
        )))
        .localizer(Box::new(MultilaterationSolver::new(
            MultilaterationConfig::paper(),
        )))
        .localizer(Box::new(MultilaterationSolver::new(
            MultilaterationConfig::paper().progressive(),
        )))
        .localizer(Box::new(DistributedSolver::new(
            DistributedConfig::default().with_min_spacing(9.14, 10.0),
        )))
        .localizer(Box::new(MdsMapLocalizer::new()))
        .localizer(Box::new(DvHopLocalizer::new(RadioModel::ideal(RANGE_M))))
        .localizer(Box::new(CentroidLocalizer::new(RANGE_M)))
        .seeds(&[seed])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_core::mds::MdsMapLocalizer;

    #[test]
    fn grid_executes_every_cell_deterministically() {
        let build = || {
            Campaign::new()
                .scenario(Scenario::parking_lot(3))
                .localizer(Box::new(LssSolver::new(LssConfig::default())))
                .localizer(Box::new(MdsMapLocalizer::new()))
                .trials(7, 2)
        };
        let a = build().run();
        assert_eq!(a.runs.len(), 4, "1 scenario x 2 seeds x 2 localizers");
        assert_eq!(a.cells().len(), 2);
        assert_eq!(a.runs_for("parking-lot-15-5anchors", "mds-map").len(), 2);

        let b = build().run();
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            let ea = ra.outcome.as_ref().unwrap().evaluation.as_ref().unwrap();
            let eb = rb.outcome.as_ref().unwrap().evaluation.as_ref().unwrap();
            assert_eq!(ea.mean_error, eb.mean_error, "campaigns must reproduce");
        }

        let table = a.summary_table();
        assert_eq!(table.len(), 2);
        let csv = table.to_csv();
        assert!(csv.contains("mds-map"));
        assert!(!csv.contains("NaN"));
    }

    #[test]
    fn solver_errors_are_recorded_not_fatal() {
        use rl_core::baselines::CentroidLocalizer;
        // A scenario with zero anchors: centroid must fail per run, and
        // the report must say so without panicking.
        let report = Campaign::new()
            .scenario(Scenario::grass_grid())
            .localizer(Box::new(CentroidLocalizer::new(22.0)))
            .seeds(&[1])
            .run();
        assert_eq!(report.runs.len(), 1);
        assert!(report.runs[0].outcome.is_err());
        assert_eq!(report.mean_error("grass-grid-47", "centroid"), None);
        let csv = report.summary_table().to_csv();
        assert!(csv.contains("n/a"));
    }
}
