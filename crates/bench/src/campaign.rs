//! Scenario-driven campaign execution: a (scenarios × localizers × seeds)
//! grid run through the unified [`Localizer`] trait, sharded across a
//! worker-thread pool.
//!
//! The paper's experimental object is never a single solve — it is the
//! *comparison matrix*: every algorithm family on the same deployments,
//! summarized as a head-to-head table. A [`Campaign`] encodes that matrix
//! once: problem sources on one axis (named [`Scenario`]s instantiated per
//! seed, or fixed pre-measured [`Problem`]s), boxed localizers on the
//! second, seeds on the third. [`Campaign::run`] executes every cell and
//! returns a [`CampaignReport`] with per-run records (including per-cell
//! wall time) and per-cell [`Evaluation`] summaries.
//!
//! # Parallel execution and the determinism contract
//!
//! Grid cells are independent by construction — each `(source, seed,
//! localizer)` cell instantiates its problem from `(source, seed)` alone
//! and derives a private RNG stream from `(seed, localizer index)` — so
//! [`Campaign::run`] shards them across `std::thread` workers
//! ([`CampaignConfig`] sets the pool size and the work-unit
//! [`Chunking`]). The contract, asserted by `tests/determinism.rs` at the
//! repository root and by the `campaign_smoke` release binary:
//!
//! **Same campaign, same seeds ⇒ a bit-identical [`CampaignReport`],
//! regardless of worker count or chunking.** Records land in canonical
//! grid order (source-major, then seed, then localizer) no matter which
//! worker ran them or when it finished, and no cell's randomness depends
//! on scheduling. Only the wall-clock fields ([`RunRecord::wall_time`],
//! [`CampaignReport::total_wall`]) and [`CampaignReport::workers`] vary
//! between runs; [`CampaignReport::fingerprint`] hashes everything *but*
//! those, so two runs agree iff their fingerprints do.
//!
//! ```
//! use rl_bench::campaign::{Campaign, CampaignConfig};
//! use rl_core::lss::{LssConfig, LssSolver};
//! use rl_core::mds::MdsMapLocalizer;
//! use rl_deploy::Scenario;
//!
//! let campaign = Campaign::new()
//!     .scenario(Scenario::parking_lot(7))
//!     .localizer(Box::new(LssSolver::new(LssConfig::default())))
//!     .localizer(Box::new(MdsMapLocalizer::new()))
//!     .trials(1, 2);
//! let report = campaign.run(); // worker pool sized to the machine
//! assert_eq!(report.runs.len(), 4);
//!
//! // Any explicit worker count reproduces the same report bit-for-bit.
//! let serial = campaign.run_with(CampaignConfig::serial());
//! assert_eq!(serial.fingerprint(), report.fingerprint());
//! println!("{}", report.summary_table());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rl_core::eval::Evaluation;
use rl_core::problem::{Localizer, Problem, Solution};
use rl_core::{LocalizationError, LssConfig, LssSolver, MultilaterationConfig};
use rl_deploy::Scenario;

use crate::report::m;
use crate::Table;

/// Where a campaign cell's problems come from.
enum ProblemSource {
    /// A named scenario, instantiated freshly for every seed (new
    /// synthetic measurements per trial).
    Scenario(Scenario),
    /// A fixed, pre-measured problem shared by every trial (seeds then
    /// vary only the solvers' randomness) — e.g. field measurements from
    /// the acoustic ranging service.
    Fixed(Problem),
}

impl ProblemSource {
    fn name(&self) -> &str {
        match self {
            ProblemSource::Scenario(s) => &s.name,
            ProblemSource::Fixed(p) => p.name(),
        }
    }

    fn instantiate(&self, seed: u64) -> Problem {
        match self {
            ProblemSource::Scenario(s) => s.instantiate(seed),
            ProblemSource::Fixed(p) => p.clone(),
        }
    }
}

/// How [`Campaign::run_with`] groups grid cells into work units for the
/// worker pool.
///
/// Either choice yields the identical [`CampaignReport`] (the problem a
/// cell sees is a pure function of `(source, seed)`); they trade
/// instantiation cost against scheduling granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Chunking {
    /// One `(source, seed)` instance per unit: the problem is instantiated
    /// once and every localizer in the campaign runs on it. Cheapest in
    /// total work (mirrors the serial execution exactly) and the right
    /// default when the grid has at least as many instances as workers.
    #[default]
    Instance,
    /// One `(source, seed, localizer)` cell per unit: each cell
    /// re-instantiates its problem, buying maximum scheduling granularity.
    /// Worth it when a few slow localizers dominate an otherwise small
    /// grid (e.g. one scenario, eight algorithms).
    Cell,
}

/// Execution knobs for [`Campaign::run_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignConfig {
    /// Worker threads. `0` (the default) resolves to the machine's
    /// available parallelism; the pool is never larger than the number of
    /// work units.
    pub workers: usize,
    /// How cells are grouped into work units.
    pub chunking: Chunking,
}

impl CampaignConfig {
    /// Single-threaded execution (one worker, instance chunking) — the
    /// reference schedule every parallel run must reproduce bit-for-bit.
    pub fn serial() -> Self {
        CampaignConfig {
            workers: 1,
            chunking: Chunking::Instance,
        }
    }

    /// Sets the worker count (builder style). `0` means "ask the OS".
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the chunking granularity (builder style).
    pub fn with_chunking(mut self, chunking: Chunking) -> Self {
        self.chunking = chunking;
        self
    }

    /// The effective pool size for `units` work units.
    fn resolve_workers(&self, units: usize) -> usize {
        let requested = if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        requested.clamp(1, units.max(1))
    }
}

/// A (scenarios × localizers × seeds) execution grid.
///
/// Built with the chained methods below; [`Campaign::run`] executes the
/// full grid across a worker pool ([`Campaign::config`] tunes it,
/// [`Campaign::run_with`] overrides it per call). Runs are deterministic:
/// each `(source, seed, localizer)` cell derives its own RNG stream, so
/// re-running a campaign — serially or on any number of threads —
/// reproduces it bit-for-bit (wall-clock timings aside; see the module
/// docs for the exact contract).
#[derive(Default)]
pub struct Campaign {
    sources: Vec<ProblemSource>,
    localizers: Vec<Box<dyn Localizer>>,
    seeds: Vec<u64>,
    config: CampaignConfig,
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Self {
        Campaign::default()
    }

    /// Adds a scenario, instantiated freshly for every seed.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.sources.push(ProblemSource::Scenario(scenario));
        self
    }

    /// Adds a fixed, pre-measured problem shared by every seed.
    pub fn problem(mut self, problem: Problem) -> Self {
        self.sources.push(ProblemSource::Fixed(problem));
        self
    }

    /// Adds a localizer to the comparison.
    pub fn localizer(mut self, localizer: Box<dyn Localizer>) -> Self {
        self.localizers.push(localizer);
        self
    }

    /// Adds several localizers at once.
    pub fn localizers(mut self, localizers: Vec<Box<dyn Localizer>>) -> Self {
        self.localizers.extend(localizers);
        self
    }

    /// Replaces the seed list.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Derives `n` distinct trial seeds from a base seed.
    pub fn trials(mut self, base_seed: u64, n: usize) -> Self {
        self.seeds = (0..n as u64)
            .map(|i| base_seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | i))
            .collect();
        self
    }

    /// Sets the execution configuration [`Campaign::run`] uses.
    pub fn config(mut self, config: CampaignConfig) -> Self {
        self.config = config;
        self
    }

    /// Executes the grid with the campaign's configured
    /// [`CampaignConfig`] (machine-sized worker pool by default).
    pub fn run(&self) -> CampaignReport {
        self.run_with(self.config)
    }

    /// Executes the grid with an explicit execution configuration.
    ///
    /// Every `(source, seed, localizer)` cell runs exactly once; records
    /// land in canonical grid order (source-major, then seed, then
    /// localizer) regardless of which worker ran them. With no seeds
    /// configured, a single seed `0` is used.
    pub fn run_with(&self, config: CampaignConfig) -> CampaignReport {
        let seeds: &[u64] = if self.seeds.is_empty() {
            &[0]
        } else {
            &self.seeds
        };
        let n_loc = self.localizers.len();
        let instances = self.sources.len() * seeds.len();
        let units = match config.chunking {
            Chunking::Instance => instances,
            Chunking::Cell => instances * n_loc,
        };
        let workers = config.resolve_workers(units);
        let started = Instant::now();

        let mut indexed: Vec<(usize, RunRecord)> = if workers <= 1 {
            let mut out = Vec::with_capacity(instances * n_loc);
            for unit in 0..units {
                self.execute_unit(unit, config.chunking, seeds, &mut out);
            }
            out
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            loop {
                                let unit = next.fetch_add(1, Ordering::Relaxed);
                                if unit >= units {
                                    break;
                                }
                                self.execute_unit(unit, config.chunking, seeds, &mut local);
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("campaign worker panicked"))
                    .collect()
            })
        };

        // Scheduling decided only who computed what; canonical grid order
        // is restored here so the report is schedule-independent.
        indexed.sort_by_key(|(cell, _)| *cell);
        CampaignReport {
            runs: indexed.into_iter().map(|(_, r)| r).collect(),
            workers,
            total_wall: started.elapsed(),
        }
    }

    /// Executes one work unit, pushing `(canonical cell index, record)`
    /// pairs. A unit is one problem instance (all localizers) under
    /// [`Chunking::Instance`], or a single cell under [`Chunking::Cell`].
    fn execute_unit(
        &self,
        unit: usize,
        chunking: Chunking,
        seeds: &[u64],
        out: &mut Vec<(usize, RunRecord)>,
    ) {
        let n_loc = self.localizers.len();
        match chunking {
            Chunking::Instance => {
                let source = &self.sources[unit / seeds.len()];
                let seed = seeds[unit % seeds.len()];
                let problem = source.instantiate(seed);
                for li in 0..n_loc {
                    let record = self.run_cell(&problem, source.name(), seed, li);
                    out.push((unit * n_loc + li, record));
                }
            }
            Chunking::Cell => {
                let (instance, li) = (unit / n_loc, unit % n_loc);
                let source = &self.sources[instance / seeds.len()];
                let seed = seeds[instance % seeds.len()];
                let problem = source.instantiate(seed);
                out.push((unit, self.run_cell(&problem, source.name(), seed, li)));
            }
        }
    }

    /// Runs one localizer on one instantiated problem, timing the cell.
    fn run_cell(&self, problem: &Problem, scenario: &str, seed: u64, li: usize) -> RunRecord {
        let localizer = &self.localizers[li];
        // Every cell owns a whole stream derived from (trial seed,
        // localizer index), so concurrent cells never share a generator
        // and scheduling cannot perturb any cell's draws. The stream is
        // tied to the localizer's *position* in the list: editing the
        // list shifts later cells onto different streams, so per-cell
        // results are comparable across runs of the same campaign, not
        // across campaigns with different localizer lists.
        let mut rng =
            rl_math::rng::seeded(seed ^ (li as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let cell_started = Instant::now();
        let outcome = localizer.localize(problem, &mut rng).map(|solution| {
            let evaluation = problem.evaluate(&solution).ok();
            RunOutcome {
                solution,
                evaluation,
            }
        });
        RunRecord {
            scenario: scenario.to_string(),
            localizer: localizer.name().to_string(),
            seed,
            wall_time: cell_started.elapsed(),
            outcome,
        }
    }
}

/// One executed cell instance: a localizer on one instantiated problem.
#[derive(Debug)]
pub struct RunRecord {
    /// The problem source's name.
    pub scenario: String,
    /// The localizer's name.
    pub localizer: String,
    /// The seed the run derived its problem and RNG stream from.
    pub seed: u64,
    /// Wall-clock time of the whole cell (solve plus evaluation), as
    /// measured on the worker that ran it. Unlike
    /// [`SolveStats::wall_time`](rl_core::problem::SolveStats), this is
    /// populated for failed solves too.
    pub wall_time: Duration,
    /// The solve outcome, or the solver's error.
    pub outcome: Result<RunOutcome, LocalizationError>,
}

/// A successful run: the solution plus its evaluation against ground
/// truth (when the problem carried truth and evaluation succeeded).
#[derive(Debug)]
pub struct RunOutcome {
    /// The localizer's solution.
    pub solution: Solution,
    /// Evaluation against ground truth; `None` without truth or when no
    /// (non-anchor) node was localized.
    pub evaluation: Option<Evaluation>,
}

/// The output of [`Campaign::run`]: per-run records plus aggregation
/// helpers.
#[derive(Debug)]
pub struct CampaignReport {
    /// Every run, in canonical grid order (source-major, then seed, then
    /// localizer) — independent of how cells were scheduled.
    pub runs: Vec<RunRecord>,
    /// Worker threads the run actually used.
    pub workers: usize,
    /// Wall-clock time of the whole campaign.
    pub total_wall: Duration,
}

impl CampaignReport {
    /// The distinct `(scenario, localizer)` cells, in first-appearance
    /// order.
    pub fn cells(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        for r in &self.runs {
            let key = (r.scenario.clone(), r.localizer.clone());
            if !out.contains(&key) {
                out.push(key);
            }
        }
        out
    }

    /// Every run of one cell, in execution order.
    pub fn runs_for(&self, scenario: &str, localizer: &str) -> Vec<&RunRecord> {
        self.runs
            .iter()
            .filter(|r| r.scenario == scenario && r.localizer == localizer)
            .collect()
    }

    /// Mean localization error of a cell over its evaluated runs, or
    /// `None` when no run produced an evaluation.
    pub fn mean_error(&self, scenario: &str, localizer: &str) -> Option<f64> {
        let errors: Vec<f64> = self
            .runs_for(scenario, localizer)
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .filter_map(|o| o.evaluation.as_ref())
            .map(|e| e.mean_error)
            .collect();
        if errors.is_empty() {
            None
        } else {
            Some(errors.iter().sum::<f64>() / errors.len() as f64)
        }
    }

    /// Mean solver-iteration count of a cell over its successful runs
    /// (descent iterations, protocol messages, eigensolver iterations —
    /// see [`SolveStats::iterations`](rl_core::problem::SolveStats)), or
    /// `None` when every run failed.
    pub fn mean_iterations(&self, scenario: &str, localizer: &str) -> Option<f64> {
        let iters: Vec<usize> = self
            .runs_for(scenario, localizer)
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .map(|o| o.solution.stats().iterations)
            .collect();
        if iters.is_empty() {
            None
        } else {
            Some(iters.iter().sum::<usize>() as f64 / iters.len() as f64)
        }
    }

    /// Convergence tally of a cell: `(converged, reporting)` over the
    /// successful runs whose solver reports a convergence criterion
    /// (`SolveStats::converged` of `Some(..)`), or `None` when no run
    /// reports one (closed-form baselines, protocol solvers).
    pub fn convergence(&self, scenario: &str, localizer: &str) -> Option<(usize, usize)> {
        let flags: Vec<bool> = self
            .runs_for(scenario, localizer)
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .filter_map(|o| o.solution.stats().converged)
            .collect();
        if flags.is_empty() {
            None
        } else {
            Some((flags.iter().filter(|&&c| c).count(), flags.len()))
        }
    }

    /// Per-cell wall-time statistics `(mean, max)` over every run of the
    /// cell (failed solves included), or `None` for an unknown cell.
    pub fn wall_stats(&self, scenario: &str, localizer: &str) -> Option<(Duration, Duration)> {
        let runs = self.runs_for(scenario, localizer);
        if runs.is_empty() {
            return None;
        }
        let total: Duration = runs.iter().map(|r| r.wall_time).sum();
        let max = runs.iter().map(|r| r.wall_time).max().unwrap_or_default();
        Some((total / runs.len() as u32, max))
    }

    /// A stable digest of the report's deterministic content: every
    /// record's identity, solution positions (bit-exact), solver stats
    /// (minus wall time), evaluations, and error messages. Two runs of the
    /// same campaign agree on this fingerprint **iff** they reproduced
    /// each other — regardless of worker count, chunking, or scheduling.
    /// Wall-clock fields and [`CampaignReport::workers`] are excluded.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a via the shared `rl_math::fingerprint` machinery (stable
        // across platforms and Rust versions, unlike `DefaultHasher`).
        // Length prefixes and Option discriminant bytes keep the encoding
        // prefix-free: no two distinct reports serialize to the same byte
        // stream. The byte stream is pinned bit-for-bit by the
        // `fingerprint_golden` integration tests — historical campaign
        // fingerprints must never change under refactors.
        let mut h = rl_math::Fnv1a::new();
        for r in &self.runs {
            h.write_str(&r.scenario);
            h.write_str(&r.localizer);
            h.write_u64(r.seed);
            match &r.outcome {
                Ok(o) => {
                    h.write(&[1, o.solution.frame() as u8]);
                    let positions = o.solution.positions();
                    for i in 0..positions.len() {
                        match positions.get(rl_core::types::NodeId(i)) {
                            Some(p) => {
                                h.write_u8(1);
                                h.write_f64(p.x);
                                h.write_f64(p.y);
                            }
                            None => h.write_u8(0),
                        }
                    }
                    let stats = o.solution.stats();
                    h.write_u64(stats.iterations as u64);
                    h.write_opt_f64(stats.residual);
                    match stats.converged {
                        Some(c) => h.write(&[1, c as u8]),
                        None => h.write_u8(0),
                    }
                    match &o.evaluation {
                        Some(e) => {
                            h.write_u8(1);
                            h.write_u64(e.localized as u64);
                            h.write_u64(e.total as u64);
                            h.write_f64(e.mean_error);
                            h.write_f64(e.max_error);
                            h.write_u64(e.per_node.len() as u64);
                            for &(id, err) in &e.per_node {
                                h.write_u64(id.index() as u64);
                                h.write_f64(err);
                            }
                        }
                        None => h.write_u8(0),
                    }
                }
                Err(e) => {
                    h.write_u8(0);
                    h.write_str(&e.to_string());
                }
            }
        }
        h.finish()
    }

    /// The per-cell summary table: runs, solver failures, mean localized
    /// count, mean error, mean iteration count, convergence tally, and
    /// per-cell wall time (mean and max).
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(
            "campaign summary",
            &[
                "scenario",
                "localizer",
                "runs",
                "failed",
                "localized",
                "mean_error_m",
                "iters_mean",
                "converged",
                "wall_mean_ms",
                "wall_max_ms",
            ],
        );
        for (scenario, localizer) in self.cells() {
            let runs = self.runs_for(&scenario, &localizer);
            let failed = runs.iter().filter(|r| r.outcome.is_err()).count();
            let evals: Vec<&Evaluation> = runs
                .iter()
                .filter_map(|r| r.outcome.as_ref().ok())
                .filter_map(|o| o.evaluation.as_ref())
                .collect();
            let localized = if evals.is_empty() {
                "n/a".to_string()
            } else {
                let mean_loc =
                    evals.iter().map(|e| e.localized as f64).sum::<f64>() / evals.len() as f64;
                format!("{:.1}/{}", mean_loc, evals[0].total)
            };
            let mean_error = self
                .mean_error(&scenario, &localizer)
                .map(m)
                .unwrap_or_else(|| "n/a".to_string());
            let iters_mean = self
                .mean_iterations(&scenario, &localizer)
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "n/a".to_string());
            let converged = self
                .convergence(&scenario, &localizer)
                .map(|(ok, total)| format!("{ok}/{total}"))
                .unwrap_or_else(|| "n/a".to_string());
            let (wall_mean, wall_max) = match self.wall_stats(&scenario, &localizer) {
                Some((mean, max)) => (
                    format!("{:.1}", mean.as_secs_f64() * 1e3),
                    format!("{:.1}", max.as_secs_f64() * 1e3),
                ),
                None => ("n/a".to_string(), "n/a".to_string()),
            };
            t.push(&[
                scenario,
                localizer,
                runs.len().to_string(),
                failed.to_string(),
                localized,
                mean_error,
                iters_mean,
                converged,
                wall_mean,
                wall_max,
            ]);
        }
        t
    }
}

/// The canonical head-to-head campaign of the paper's evaluation: every
/// algorithm family on the Figure-5 grass grid (46 reporting motes, 13
/// random anchors, synthetic 22 m / N(0, 0.33 m) ranging). Used by both
/// the `BASELINES` bench experiment and the `compare_solvers` example.
///
/// LSS appears twice: anchor-free (the paper's algorithm — it never sees
/// the 13 anchors the other schemes get) and anchored (this library's
/// extension pinning anchors with springs).
pub fn figure5_head_to_head(seed: u64) -> Campaign {
    use rl_core::baselines::{CentroidLocalizer, DvHopLocalizer};
    use rl_core::distributed::{DistributedConfig, DistributedSolver};
    use rl_core::mds::MdsMapLocalizer;
    use rl_core::MultilaterationSolver;
    use rl_net::RadioModel;

    const RANGE_M: f64 = 22.0;
    Campaign::new()
        .scenario(Scenario::grass_grid_multilateration(seed))
        .localizer(Box::new(LssSolver::new(
            LssConfig::default()
                .with_min_spacing(9.14, 10.0)
                .anchor_free(),
        )))
        .localizer(Box::new(LssSolver::new(
            LssConfig::default().with_min_spacing(9.14, 10.0),
        )))
        .localizer(Box::new(MultilaterationSolver::new(
            MultilaterationConfig::paper(),
        )))
        .localizer(Box::new(MultilaterationSolver::new(
            MultilaterationConfig::paper().progressive(),
        )))
        .localizer(Box::new(DistributedSolver::new(
            DistributedConfig::default().with_min_spacing(9.14, 10.0),
        )))
        .localizer(Box::new(MdsMapLocalizer::new()))
        .localizer(Box::new(DvHopLocalizer::new(RadioModel::ideal(RANGE_M))))
        .localizer(Box::new(CentroidLocalizer::new(RANGE_M)))
        .seeds(&[seed])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_core::mds::MdsMapLocalizer;

    #[test]
    fn grid_executes_every_cell_deterministically() {
        let build = || {
            Campaign::new()
                .scenario(Scenario::parking_lot(3))
                .localizer(Box::new(LssSolver::new(LssConfig::default())))
                .localizer(Box::new(MdsMapLocalizer::new()))
                .trials(7, 2)
        };
        let a = build().run();
        assert_eq!(a.runs.len(), 4, "1 scenario x 2 seeds x 2 localizers");
        assert_eq!(a.cells().len(), 2);
        assert_eq!(a.runs_for("parking-lot-15-5anchors", "mds-map").len(), 2);

        let b = build().run();
        assert_eq!(a.fingerprint(), b.fingerprint(), "campaigns must reproduce");
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            let ea = ra.outcome.as_ref().unwrap().evaluation.as_ref().unwrap();
            let eb = rb.outcome.as_ref().unwrap().evaluation.as_ref().unwrap();
            assert_eq!(ea.mean_error, eb.mean_error, "campaigns must reproduce");
        }

        let table = a.summary_table();
        assert_eq!(table.len(), 2);
        let csv = table.to_csv();
        assert!(csv.contains("mds-map"));
        assert!(csv.contains("iters_mean"));
        assert!(csv.contains("converged"));
        assert!(csv.contains("wall_mean_ms"));
        assert!(csv.contains("wall_max_ms"));
        assert!(!csv.contains("NaN"));
        // LSS reports a convergence criterion (2/2 here), mds-map reports
        // closed-form success; per-cell iteration means are exposed.
        assert_eq!(
            a.convergence("parking-lot-15-5anchors", "lss"),
            Some((2, 2))
        );
        assert_eq!(
            a.convergence("parking-lot-15-5anchors", "mds-map"),
            Some((2, 2))
        );
        assert!(a.mean_iterations("parking-lot-15-5anchors", "lss").unwrap() > 0.0);
        assert_eq!(a.mean_iterations("nope", "lss"), None);
        assert_eq!(a.convergence("nope", "lss"), None);
    }

    #[test]
    fn worker_count_and_chunking_never_change_the_report() {
        let campaign = Campaign::new()
            .scenario(Scenario::parking_lot(11))
            .scenario(Scenario::town(11))
            .localizer(Box::new(LssSolver::new(LssConfig::default())))
            .localizer(Box::new(MdsMapLocalizer::new()))
            .trials(3, 3);
        let reference = campaign.run_with(CampaignConfig::serial());
        assert_eq!(reference.workers, 1);
        assert_eq!(reference.runs.len(), 12, "2 scenarios x 3 seeds x 2 loc");
        for config in [
            CampaignConfig::default(),
            CampaignConfig::default().with_workers(4),
            CampaignConfig::default()
                .with_workers(4)
                .with_chunking(Chunking::Cell),
            CampaignConfig::default()
                .with_workers(3)
                .with_chunking(Chunking::Cell),
        ] {
            let parallel = campaign.run_with(config);
            assert_eq!(
                parallel.fingerprint(),
                reference.fingerprint(),
                "schedule {config:?} must reproduce the serial report"
            );
            // Canonical order, not completion order.
            for (a, b) in reference.runs.iter().zip(&parallel.runs) {
                assert_eq!(a.scenario, b.scenario);
                assert_eq!(a.localizer, b.localizer);
                assert_eq!(a.seed, b.seed);
            }
        }
    }

    #[test]
    fn workers_clamp_to_units_and_zero_means_auto() {
        let campaign = Campaign::new()
            .scenario(Scenario::parking_lot(5))
            .localizer(Box::new(MdsMapLocalizer::new()));
        // One instance: even a 16-worker request uses a single worker.
        let report = campaign.run_with(CampaignConfig::default().with_workers(16));
        assert_eq!(report.workers, 1);
        // Auto sizing resolves to at least one worker.
        let auto = campaign.run_with(CampaignConfig::default());
        assert!(auto.workers >= 1);
        assert_eq!(auto.fingerprint(), report.fingerprint());
    }

    #[test]
    fn wall_time_is_populated_per_record() {
        let report = Campaign::new()
            .scenario(Scenario::parking_lot(3))
            .localizer(Box::new(MdsMapLocalizer::new()))
            .seeds(&[1, 2])
            .run();
        assert!(report.runs.iter().all(|r| r.wall_time > Duration::ZERO));
        let (mean, max) = report
            .wall_stats("parking-lot-15-5anchors", "mds-map")
            .unwrap();
        assert!(mean > Duration::ZERO && max >= mean);
        assert!(report.total_wall >= max);
        assert_eq!(report.wall_stats("nope", "mds-map"), None);
    }

    #[test]
    fn solver_errors_are_recorded_not_fatal() {
        use rl_core::baselines::CentroidLocalizer;
        // A scenario with zero anchors: centroid must fail per run, and
        // the report must say so without panicking.
        let report = Campaign::new()
            .scenario(Scenario::grass_grid())
            .localizer(Box::new(CentroidLocalizer::new(22.0)))
            .seeds(&[1])
            .run();
        assert_eq!(report.runs.len(), 1);
        assert!(report.runs[0].outcome.is_err());
        assert_eq!(report.mean_error("grass-grid-47", "centroid"), None);
        let csv = report.summary_table().to_csv();
        assert!(csv.contains("n/a"));
        // Failed cells still report wall time.
        assert!(report
            .wall_stats("grass-grid-47", "centroid")
            .is_some_and(|(mean, _)| mean > Duration::ZERO));
    }
}
