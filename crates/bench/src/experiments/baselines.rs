//! Head-to-head comparison against the Related-Work baselines (§2):
//! centroid localization, DV-hop, classical MDS-MAP, multilateration and
//! LSS on identical data.

use rl_core::baselines::{centroid_localization, dv_hop};
use rl_core::eval::{evaluate_absolute, evaluate_against_truth};
use rl_core::lss::{LssConfig, LssSolver};
use rl_core::multilateration::{MultilaterationConfig, MultilaterationSolver};
use rl_core::types::{Anchor, PositionMap};
use rl_deploy::synth::SyntheticRanging;
use rl_deploy::Scenario;
use rl_net::RadioModel;

use super::ExperimentResult;
use crate::report::m;
use crate::Table;

/// **BASELINES** — every algorithm on the same town deployment: the
/// anchor-free LSS of the paper versus the anchor-based schemes it is
/// positioned against.
pub fn baseline_comparison(seed: u64) -> ExperimentResult {
    let scenario = Scenario::town(seed);
    let truth = &scenario.deployment.positions;
    let anchors = Anchor::from_truth(&scenario.anchors, truth);
    let mut rng = rl_math::rng::seeded(seed ^ 0xBA);
    let set = SyntheticRanging::paper().measure_all(truth, &mut rng);
    let radio = RadioModel::ideal(22.0);

    let mut t = Table::new(
        "baseline comparison (59-node town, 18 anchors where applicable)",
        &["algorithm", "anchors", "localized", "mean_error_m"],
    );
    let mut row = |name: &str, uses_anchors: bool, positions: &PositionMap, aligned: bool| {
        let eval = if aligned {
            evaluate_against_truth(positions, truth)
        } else {
            evaluate_absolute(positions, truth)
        };
        match eval {
            Ok(e) => t.push(&[
                name.into(),
                if uses_anchors { "18" } else { "0" }.into(),
                e.localized.to_string(),
                m(e.mean_error),
            ]),
            Err(_) => t.push(&[
                name.into(),
                if uses_anchors { "18" } else { "0" }.into(),
                "0".into(),
                "n/a".into(),
            ]),
        }
    };

    // Centroid (connectivity only, no ranging at all).
    let centroid = centroid_localization(truth, &anchors, radio.range_m).expect("anchors");
    row("centroid (Bulusu et al.)", true, &centroid, false);

    // DV-hop (connectivity + anchor coordinates).
    let dvhop = dv_hop(truth, &anchors, &radio, &mut rng).expect("anchors");
    row("DV-hop (APS)", true, &dvhop.positions, false);

    // Classical MDS-MAP (ranging, anchor-free, aligned post hoc).
    match rl_core::mds::mdsmap_coordinates(&set) {
        Ok(coords) => {
            let pm = PositionMap::complete(coords);
            row("MDS-MAP (Shang et al.)", false, &pm, true);
        }
        Err(_) => row(
            "MDS-MAP (Shang et al.)",
            false,
            &PositionMap::unlocalized(truth.len()),
            true,
        ),
    }

    // Multilateration (ranging + anchors).
    let multi = MultilaterationSolver::new(MultilaterationConfig::paper())
        .solve(&set, &anchors, &mut rng)
        .expect("anchors");
    row("multilateration (§4.1)", true, &multi.positions, false);

    // LSS with soft constraint (ranging, anchor-free).
    let lss = LssSolver::new(LssConfig::default().with_min_spacing(9.0, 10.0))
        .solve(&set, &mut rng)
        .expect("solvable");
    row("LSS + constraint (§4.2)", false, &lss.positions(), true);

    ExperimentResult::new(
        "BASELINES",
        "centroid / DV-hop / MDS-MAP / multilateration / LSS on identical data",
    )
    .with_table(t)
    .with_note(
        "the paper's positioning: connectivity-only schemes are coarse, anchor-based \
         ranging schemes need density, anchor-free LSS matches or beats them all",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lss_wins_the_comparison() {
        let r = baseline_comparison(5);
        let csv = r.tables[0].to_csv();
        let error_of = |prefix: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(prefix))
                .and_then(|l| l.rsplit(',').next())
                .and_then(|v| v.parse().ok())
                .unwrap_or(f64::INFINITY)
        };
        let lss = error_of("LSS + constraint");
        let centroid = error_of("centroid");
        let dvhop = error_of("DV-hop");
        assert!(lss < 1.0, "LSS error {lss}");
        assert!(lss < centroid, "LSS {lss} vs centroid {centroid}");
        assert!(lss < dvhop, "LSS {lss} vs DV-hop {dvhop}");
    }
}
