//! Head-to-head comparison against the Related-Work baselines (§2):
//! centroid localization, DV-hop, MDS-MAP, multilateration (plain and
//! progressive), distributed LSS and centralized LSS on identical data.
//!
//! The comparison is one [`Campaign`](crate::Campaign) invocation — the
//! canonical [`figure5_head_to_head`] grid shared with the
//! `compare_solvers` example — so every algorithm family runs through the
//! same [`Localizer`](rl_core::problem::Localizer) trait on the same
//! instantiated problem.

use crate::campaign::figure5_head_to_head;
use crate::report::m;
use crate::Table;

use super::ExperimentResult;

/// **BASELINES** — every algorithm family on the Figure-5 grass grid (46
/// motes, 13 anchors where applicable, synthetic 22 m / N(0, 0.33 m)
/// ranging): the anchor-free LSS of the paper versus the anchor-based
/// schemes it is positioned against.
pub fn baseline_comparison(seed: u64) -> ExperimentResult {
    let report = figure5_head_to_head(seed).run();

    let mut t = Table::new(
        "head-to-head on the Figure-5 grid (46 nodes, 13 anchors where applicable)",
        &["algorithm", "localized", "mean_error_m", "iterations"],
    );
    for (scenario, localizer) in report.cells() {
        let runs = report.runs_for(&scenario, &localizer);
        let record = runs[0];
        match &record.outcome {
            Ok(outcome) => {
                let (localized, err) = match &outcome.evaluation {
                    Some(eval) => (eval.localized.to_string(), m(eval.mean_error)),
                    None => ("0".into(), "n/a".into()),
                };
                t.push(&[
                    localizer.clone(),
                    localized,
                    err,
                    outcome.solution.stats().iterations.to_string(),
                ]);
            }
            Err(e) => t.push(&[
                localizer.clone(),
                "0".into(),
                format!("error: {e}"),
                "-".into(),
            ]),
        }
    }

    ExperimentResult::new(
        "BASELINES",
        "centroid / DV-hop / MDS-MAP / multilateration / distributed / LSS on identical data",
    )
    .with_table(t)
    .with_table(report.summary_table())
    .with_note(
        "the paper's positioning: connectivity-only schemes are coarse, anchor-based \
         ranging schemes need density, and the anchor-free LSS (the lss-anchor-free row \
         — it never sees the 13 anchors the other schemes get) matches or beats them \
         all; lss+constraint additionally pins the anchors with springs",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lss_wins_the_comparison() {
        let r = baseline_comparison(5);
        let csv = r.tables[0].to_csv();
        let error_of = |prefix: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(prefix))
                .and_then(|l| l.split(',').nth(2))
                .and_then(|v| v.parse().ok())
                .unwrap_or(f64::INFINITY)
        };
        // The paper's claim rests on the *anchor-free* LSS row: it beats
        // the anchor-consuming baselines without ever seeing an anchor.
        let lss = error_of("lss-anchor-free+constraint");
        let centroid = error_of("centroid");
        let dvhop = error_of("dv-hop");
        assert!(lss < 1.0, "LSS error {lss}");
        assert!(lss < centroid, "LSS {lss} vs centroid {centroid}");
        assert!(lss < dvhop, "LSS {lss} vs DV-hop {dvhop}");
        // All six algorithm families appear in the table.
        for name in [
            "lss-anchor-free+constraint",
            "lss+constraint",
            "multilateration,",
            "multilateration-progressive",
            "distributed-lss",
            "mds-map",
            "dv-hop",
            "centroid",
        ] {
            assert!(csv.contains(name), "missing {name} in:\n{csv}");
        }
    }
}
