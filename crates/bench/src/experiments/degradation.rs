//! Degradation ladder: the six-family panel under increasingly hostile
//! ranging-error regimes.
//!
//! The paper's evaluation stays inside one error regime — the clean
//! `N(0, 0.33 m)` synthetic recipe — so its *resilience* claims are
//! never actually stressed. This experiment composes the
//! [`rl_ranging::channel::RangingChannel`] stack into a ladder of
//! regimes (ideal → clean → NLOS → multipath → clock drift →
//! adversarial contamination → everything at once) and runs **all six
//! solver families** across every rung at two scales: the paper's
//! 59-node town and a metro-250 deployment. Per rung it reports mean
//! localization error and convergence rate, plus a robust-loss A/B on
//! the contaminated rung showing where the squared loss collapses and
//! the Cauchy loss holds.

use rl_core::lss::{LssConfig, LssSolver};
use rl_core::problem::Localizer;
use rl_core::RobustLoss;
use rl_deploy::Scenario;
use rl_ranging::channel::{ChannelStage, RangingChannel};

use super::metro::metro_localizers;
use super::ExperimentResult;
use crate::campaign::{Campaign, CampaignConfig};
use crate::Table;

/// The paper's ranging cutoff, shared by every rung.
const RANGE_M: f64 = 22.0;

/// NLOS rung: mean 1.5 m excess path, 0.5 m spread.
const NLOS: ChannelStage = ChannelStage::NlosBias {
    mean_m: 1.5,
    std_m: 0.5,
};
/// Multipath rung: 2 m mean delay spread.
const MULTIPATH: ChannelStage = ChannelStage::Multipath {
    delay_spread_m: 2.0,
};
/// Clock-drift rung: 5000 ppm per-node frequency error (uncalibrated
/// resonator class).
const DRIFT: ChannelStage = ChannelStage::ClockDrift { std_ppm: 5_000.0 };
/// Contamination rung: 10% of nodes compromised, garbage in `U(0, 60 m)`.
const ADVERSARIAL: ChannelStage = ChannelStage::Adversarial {
    node_fraction: 0.10,
    corruption_m: 60.0,
};

/// The degradation ladder's rungs, mildest first. Every rung past
/// `ideal` stacks on the paper's clean `N(0, 0.33 m)` recipe.
pub fn regimes() -> Vec<(&'static str, RangingChannel)> {
    vec![
        ("ideal", RangingChannel::ideal(RANGE_M)),
        ("clean", RangingChannel::paper()),
        ("nlos", RangingChannel::paper().with_stage(NLOS)),
        ("multipath", RangingChannel::paper().with_stage(MULTIPATH)),
        ("clock-drift", RangingChannel::paper().with_stage(DRIFT)),
        (
            "contaminated-10",
            RangingChannel::paper().with_stage(ADVERSARIAL),
        ),
        (
            "hostile",
            RangingChannel::paper()
                .with_stage(NLOS)
                .with_stage(MULTIPATH)
                .with_stage(DRIFT)
                .with_stage(ADVERSARIAL),
        ),
    ]
}

/// The contaminated rung's channel alone (the `resilience_smoke` CI gate
/// runs exactly this regime).
pub fn contaminated_channel() -> RangingChannel {
    RangingChannel::paper().with_stage(ADVERSARIAL)
}

/// Applies a regime to a base scenario, tagging the scenario name with
/// the rung so campaign cells stay distinct.
pub fn degraded(base: &Scenario, rung: &str, channel: &RangingChannel) -> Scenario {
    let mut s = base.clone().with_channel(channel.clone());
    s.name = format!("{}+{rung}", base.name);
    s
}

/// Formats an optional mean error for a ladder cell.
fn fmt_err(e: Option<f64>) -> String {
    e.map_or_else(|| "-".into(), |e| format!("{e:.2}"))
}

/// **DEGRADATION** — the full six-family panel over the error-regime
/// ladder at town and metro-250 scale: mean error and convergence rate
/// per rung, serial-vs-parallel bit-identity asserted, plus the
/// robust-loss A/B on the contaminated rung.
pub fn degradation_ladder(seed: u64) -> ExperimentResult {
    let bases = [Scenario::town(seed), Scenario::metro_sized(250, 0.10, seed)];
    let rungs = regimes();

    let mut campaign = Campaign::new()
        .localizers(metro_localizers())
        .seeds(&[seed]);
    for base in &bases {
        for (rung, channel) in &rungs {
            campaign = campaign.scenario(degraded(base, rung, channel));
        }
    }
    let parallel = campaign.run();
    let serial = campaign.run_with(CampaignConfig::serial());
    assert_eq!(
        parallel.fingerprint(),
        serial.fingerprint(),
        "parallel degradation ladder must reproduce the serial report bit-for-bit"
    );

    let families = [
        "lss-anchor-free+constraint",
        "multilateration-progressive",
        "distributed-lss",
        "mds-map",
        "dv-hop",
        "centroid",
    ];
    let mut result = ExperimentResult::new(
        "DEGRADATION",
        "error-regime ladder (ideal..hostile), six families, town + metro-250",
    );
    for base in &bases {
        let mut ladder = Table::new(
            "degradation ladder: mean error (m) per rung",
            &[
                "regime", "lss", "mlat", "dist", "mds", "dvhop", "centroid", "lss_conv",
            ],
        );
        for (rung, _) in &rungs {
            let cell = format!("{}+{rung}", base.name);
            let mut row = vec![cell.clone()];
            for family in &families {
                row.push(fmt_err(parallel.mean_error(&cell, family)));
            }
            row.push(match parallel.convergence(&cell, families[0]) {
                Some((c, n)) => format!("{c}/{n}"),
                None => "-".into(),
            });
            ladder.push(&row);
        }
        result = result.with_table(ladder);
    }

    // Robust-loss A/B: the contaminated rung, centralized LSS, squared
    // vs Cauchy loss — same problem, same seed, only the loss differs.
    let mut ab = Table::new(
        "robust-loss A/B on the contaminated rung (centralized LSS)",
        &["scenario", "loss", "mean_error_m"],
    );
    for base in &bases {
        let scenario = degraded(base, "contaminated-10", &contaminated_channel());
        let problem = scenario.instantiate(seed);
        for (label, loss) in [
            ("squared-l2", RobustLoss::SquaredL2),
            ("cauchy", RobustLoss::Cauchy { scale_m: 1.0 }),
        ] {
            let solver = LssSolver::new(LssConfig::metro().with_robust_loss(loss));
            let mut rng = rl_math::rng::seeded(seed);
            let err = solver
                .localize(&problem, &mut rng)
                .ok()
                .and_then(|sol| problem.evaluate(&sol).ok())
                .map(|e| e.mean_error);
            ab.push(&[scenario.name.clone(), label.into(), fmt_err(err)]);
        }
    }

    result
        .with_table(ab)
        .with_note(format!(
            "{} cells ({} rungs x {} scales x {} families), reports bit-identical across worker \
             counts (fingerprint {:#018x})",
            parallel.runs.len(),
            rungs.len(),
            bases.len(),
            families.len(),
            parallel.fingerprint(),
        ))
        .with_note(
            "every rung past `ideal` stacks on the paper's clean 22 m / N(0, 0.33 m) recipe; \
             stages draw independent per-kind sub-streams, so a rung's shared stages are \
             bit-identical across rungs",
        )
        .with_note(
            "the contaminated rung compromises 10% of nodes (their surviving reports are \
             U(0, 60 m) garbage): the squared loss drags the whole map toward the garbage while \
             the Cauchy IRLS loss down-weights it — the A/B table is the paper's resilience \
             claim made falsifiable",
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_has_at_least_five_distinct_regimes() {
        let rungs = regimes();
        assert!(rungs.len() >= 5, "only {} rungs", rungs.len());
        for window in rungs.windows(2) {
            assert_ne!(window[0].1, window[1].1, "adjacent rungs identical");
        }
        // Rung names are distinct (they key campaign cells).
        let mut names: Vec<&str> = rungs.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), rungs.len());
    }

    #[test]
    fn degraded_scenarios_keep_geometry_and_tag_names() {
        let base = Scenario::town(3);
        for (rung, channel) in regimes() {
            let s = degraded(&base, rung, &channel);
            assert_eq!(s.deployment, base.deployment);
            assert_eq!(s.anchors, base.anchors);
            assert!(s.name.ends_with(rung), "{} !~ {rung}", s.name);
            assert!(s.channel.is_some());
        }
    }

    #[test]
    fn robust_loss_survives_the_contamination_that_collapses_squared_loss() {
        // The resilience_smoke CI gate in debug miniature: town scale,
        // contaminated rung, centralized LSS with both losses.
        let scenario = degraded(
            &Scenario::town(7),
            "contaminated-10",
            &contaminated_channel(),
        );
        let problem = scenario.instantiate(7);
        let solve = |loss: RobustLoss| {
            let mut rng = rl_math::rng::seeded(7);
            let sol = LssSolver::new(LssConfig::metro().with_robust_loss(loss))
                .localize(&problem, &mut rng)
                .expect("town solvable");
            problem.evaluate(&sol).expect("evaluable").mean_error
        };
        let squared = solve(RobustLoss::SquaredL2);
        let cauchy = solve(RobustLoss::Cauchy { scale_m: 1.0 });
        assert!(
            cauchy < squared,
            "robust loss ({cauchy:.2} m) must beat squared loss ({squared:.2} m) at 10% \
             contamination"
        );
        assert!(
            cauchy <= 2.0,
            "robust-loss LSS must hold <= 2 m under contamination, got {cauchy:.2} m"
        );
    }
}
