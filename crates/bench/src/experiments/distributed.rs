//! Distributed-LSS experiments: Figures 24 and 25, plus the
//! transform-method ablation.

use rl_core::distributed::{DistributedConfig, DistributedSolver, TransformMethod};
use rl_core::eval::evaluate_against_truth;
use rl_deploy::synth::SyntheticRanging;
use rl_geom::Point2;
use rl_math::gradient::DescentConfig;
use rl_net::NodeId;
use rl_ranging::measurement::MeasurementSet;

use super::multilateration::grass_grid_measurements;
use super::ExperimentResult;
use crate::report::m;
use crate::Table;

/// The paper's root node sits at (27, 36); pick the node closest to it.
fn root_near(truth: &[Point2], target: Point2) -> NodeId {
    let mut best = NodeId(0);
    let mut best_d = f64::INFINITY;
    for (i, p) in truth.iter().enumerate() {
        let d = p.distance(target);
        if d < best_d {
            best_d = d;
            best = NodeId(i);
        }
    }
    best
}

fn distributed_config() -> DistributedConfig {
    DistributedConfig::default().with_min_spacing(9.14, 10.0)
}

fn run_and_summarize(
    set: &MeasurementSet,
    truth: &[Point2],
    config: &DistributedConfig,
    seed: u64,
) -> (Table, usize, f64) {
    let mut rng = rl_math::rng::seeded(seed);
    let root = root_near(truth, Point2::new(27.0, 36.0));
    let out = DistributedSolver::new(config.clone())
        .with_root(root)
        .solve(set, truth, &mut rng)
        .expect("protocol runs");

    let mut t = Table::new("summary", &["metric", "value"]);
    t.push(&["nodes".into(), truth.len().to_string()]);
    t.push(&["measured pairs".into(), set.len().to_string()]);
    t.push(&["root".into(), root.to_string()]);
    t.push(&["local maps built".into(), out.local_maps_built.to_string()]);
    t.push(&[
        "localized".into(),
        out.positions.localized_count().to_string(),
    ]);
    t.push(&[
        "messages delivered".into(),
        out.messages_delivered.to_string(),
    ]);

    let (localized, mean_err) = match evaluate_against_truth(&out.positions, truth) {
        Ok(eval) => {
            t.push(&["average error (m)".into(), m(eval.mean_error)]);
            t.push(&["max error (m)".into(), m(eval.max_error)]);
            (eval.localized, eval.mean_error)
        }
        Err(_) => {
            t.push(&["average error (m)".into(), "n/a".into()]);
            (out.positions.localized_count(), f64::NAN)
        }
    };
    (t, localized, mean_err)
}

/// **F24** — distributed LSS on the sparse grass-grid field measurements.
///
/// Run twice: with the paper's unguarded transform acceptance *and* no
/// refinement stage (reproducing its failure mode — "the bad transform
/// of a pair of nodes caused large localization errors which were
/// amplified and propagated", 9.5 m average) and with this library's
/// full hardened pipeline — transform guards that route the alignment
/// flood around untrustworthy transforms, plus the Gauss–Newton/CG
/// refinement of the stitched map.
pub fn figure24_sparse(seed: u64) -> ExperimentResult {
    use rl_core::distributed::TransformGuards;
    let (scenario, set) = grass_grid_measurements(seed);
    let truth = &scenario.deployment.positions;

    // Paper-faithful: any ≥3-shared-node transform accepted, uniform
    // (unweighted) registration, raw flood output (the center-weighted
    // registration and the refinement stage are this library's
    // extensions).
    let permissive = DistributedConfig {
        guards: TransformGuards::permissive(),
        transform: TransformMethod::CovarianceUniform,
        ..distributed_config()
    }
    .with_refine(None);
    let (mut table_p, loc_p, err_p) = run_and_summarize(&set, truth, &permissive, seed ^ 0x30);
    let (mut table_g, loc_g, err_g) =
        run_and_summarize(&set, truth, &distributed_config(), seed ^ 0x30);
    // Retitle via a combined comparison table.
    let mut comparison = crate::Table::new(
        "paper-faithful vs hardened transform guards",
        &["configuration", "localized", "mean_error_m"],
    );
    comparison.push(&["permissive (paper)".into(), loc_p.to_string(), m(err_p)]);
    comparison.push(&["hardened + refined".into(), loc_g.to_string(), m(err_g)]);
    table_p = {
        let mut t = crate::Table::new("permissive run detail", &["metric", "value"]);
        for line in table_p.to_csv().lines().skip(1) {
            let mut cells = line.splitn(2, ',');
            t.push(&[
                cells.next().unwrap_or_default().to_string(),
                cells.next().unwrap_or_default().to_string(),
            ]);
        }
        t
    };
    table_g = {
        let mut t = crate::Table::new("hardened run detail", &["metric", "value"]);
        for line in table_g.to_csv().lines().skip(1) {
            let mut cells = line.splitn(2, ',');
            t.push(&[
                cells.next().unwrap_or_default().to_string(),
                cells.next().unwrap_or_default().to_string(),
            ]);
        }
        t
    };

    ExperimentResult::new("F24", "distributed LSS, sparse grass-grid measurements")
        .with_table(comparison)
        .with_table(table_p)
        .with_table(table_g)
        .with_note(format!(
            "paper: 9.5 m average from 247 pairs (bad transforms propagate); measured \
             permissive: {} m over {loc_p} nodes; hardened pipeline: {} m over {loc_g} nodes \
             from {} pairs",
            m(err_p),
            m(err_g),
            set.len()
        ))
}

/// Field measurements merged with the *strict* bidirectional policy
/// (Figure 7's step): the paper's successful distributed run rests on data
/// whose gross errors have been consistency-checked away.
fn strict_grass_measurements(seed: u64) -> (rl_deploy::Scenario, MeasurementSet) {
    use rl_ranging::consistency::{merge_bidirectional, BidirectionalPolicy, ConsistencyConfig};
    use rl_ranging::filter::StatFilter;
    use rl_ranging::service::{RangingService, ServiceConfig};
    use rl_signal::env::Environment;

    let scenario = rl_deploy::Scenario::grass_grid_multilateration(seed);
    let mut rng = rl_math::rng::seeded(seed ^ 0x14);
    let service = RangingService::new(Environment::Grass, ServiceConfig::refined(), &mut rng)
        .expect("grass calibrates");
    let campaign = service.run_campaign(&scenario.deployment.positions, &mut rng);
    let estimates = StatFilter::Median.apply(&campaign);
    let strict = ConsistencyConfig {
        bidirectional_tolerance_m: 1.0,
        policy: BidirectionalPolicy::RequireBoth,
    };
    let set = merge_bidirectional(&estimates, campaign.n, &strict);
    (scenario, set)
}

/// **F25** — distributed LSS after augmenting the measurements with
/// synthetic distances (paper added 370 pairs; every node localized with
/// 0.5 m average error). The field pairs pass the bidirectional
/// consistency check first — without it, retained gross one-way errors
/// poison the local maps.
pub fn figure25_augmented(seed: u64) -> ExperimentResult {
    let (scenario, mut set) = strict_grass_measurements(seed);
    let truth = &scenario.deployment.positions;
    let mut rng = rl_math::rng::seeded(seed ^ 0x31);
    let added = SyntheticRanging::paper().augment(&mut set, truth, &mut rng);
    // Paper-comparable run: guarded transforms but no refinement stage,
    // so the figure isolates the paper's variable (measurement
    // augmentation) exactly as its 0.534 m number does.
    let paper_cfg = distributed_config().with_refine(None);
    let (table, localized, mean_err) = run_and_summarize(&set, truth, &paper_cfg, seed ^ 0x32);
    // The full hardened pipeline on the same data, reported alongside.
    let (_, _, refined_err) = run_and_summarize(&set, truth, &distributed_config(), seed ^ 0x32);
    ExperimentResult::new("F25", "distributed LSS, augmented measurements")
        .with_table(table)
        .with_note(format!(
            "paper: +370 synthetic pairs, all nodes localized, 0.534 m average; measured \
             (paper protocol, no refinement): +{added} pairs, {localized} localized, {} m; \
             with the Gauss-Newton/CG refinement stage: {} m",
            m(mean_err),
            m(refined_err)
        ))
}

/// **Ablation** — transform estimation method: the mote-friendly
/// covariance closed form versus full minimization (§4.3.1 discusses the
/// trade-off but reports no numbers).
pub fn transform_method_ablation(seed: u64) -> ExperimentResult {
    let (scenario, mut set) = strict_grass_measurements(seed);
    let truth = &scenario.deployment.positions;
    let mut rng = rl_math::rng::seeded(seed ^ 0x33);
    SyntheticRanging::paper().augment(&mut set, truth, &mut rng);

    let mut t = Table::new(
        "transform method comparison (augmented grid)",
        &["method", "localized", "mean_error_m"],
    );
    for (label, method) in [
        (
            "covariance closed form (paper)",
            TransformMethod::CovarianceUniform,
        ),
        ("covariance, center-weighted", TransformMethod::Covariance),
        (
            "full minimization",
            TransformMethod::Minimization(DescentConfig {
                step_size: 0.01,
                max_iterations: 2_000,
                restarts: 2,
                perturbation: 1.0,
                ..DescentConfig::default()
            }),
        ),
    ] {
        // Refinement off: it pulls every leg toward the centralized
        // solution, which would flatten exactly the per-method
        // stitching differences this ablation measures.
        let config = DistributedConfig {
            transform: method,
            ..distributed_config()
        }
        .with_refine(None);
        let (_, localized, mean_err) = run_and_summarize(&set, truth, &config, seed ^ 0x34);
        t.push(&[label.into(), localized.to_string(), m(mean_err)]);
    }
    ExperimentResult::new(
        "ABL-TRANSFORM",
        "covariance (uniform vs center-weighted) vs minimization transform estimation",
    )
    .with_table(t)
    .with_note(
        "paper: the closed form is 'slightly less accurate, but computationally tractable' \
         on motes; the center-weighted variant and the (disabled here) refinement stage are \
         this library's extensions",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn augmented_beats_sparse() {
        let sparse = figure24_sparse(11);
        let augmented = figure25_augmented(11);
        let mean = |r: &ExperimentResult| -> f64 {
            r.tables[0]
                .to_csv()
                .lines()
                .find(|l| l.starts_with("average error (m)"))
                .and_then(|l| l.split(',').nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(f64::INFINITY)
        };
        assert!(
            mean(&augmented) < mean(&sparse),
            "augmentation should improve distributed LSS: {} vs {}",
            mean(&augmented),
            mean(&sparse)
        );
        assert!(
            mean(&augmented) < 2.0,
            "augmented error {}",
            mean(&augmented)
        );
    }
}
