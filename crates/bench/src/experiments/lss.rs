//! Centralized-LSS experiments: Figures 17/18, 19, 21, 22 and 23, plus the
//! soft-constraint-weight and initialization ablations.
//!
//! The per-trial figures run through the [`Campaign`] grid and the unified
//! [`Localizer`](rl_core::problem::Localizer) trait; only the
//! trace-recording Figure 23 and the ablations drive the inherent
//! [`LssSolver`] API directly (traces are not part of the trait surface).

use rl_core::eval::evaluate_against_truth;
use rl_core::lss::{InitStrategy, LssConfig, LssSolver};
use rl_core::problem::Problem;
use rl_core::types::PositionMap;
use rl_deploy::synth::SyntheticRanging;
use rl_deploy::Scenario;
use rl_geom::Point2;
use rl_ranging::measurement::MeasurementSet;

use super::multilateration::grass_grid_measurements;
use super::ExperimentResult;
use crate::report::m;
use crate::{Campaign, Table};

/// The paper's grass-grid constraint parameters.
const GRID_MIN_SPACING: f64 = 9.14;
const GRID_WD: f64 = 10.0;

fn aligned_positions_table(aligned: &PositionMap, truth: &[Point2]) -> Table {
    let mut t = Table::new(
        "aligned positions",
        &["node", "true_x", "true_y", "est_x", "est_y", "error_m"],
    );
    for (id, pos) in aligned.iter() {
        let tp = truth[id.index()];
        match pos {
            Some(p) => t.push(&[
                id.to_string(),
                m(tp.x),
                m(tp.y),
                m(p.x),
                m(p.y),
                m(p.distance(tp)),
            ]),
            None => t.push(&[
                id.to_string(),
                m(tp.x),
                m(tp.y),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t
}

fn run_lss(
    set: &MeasurementSet,
    truth: &[Point2],
    config: LssConfig,
    seed: u64,
) -> (rl_core::eval::Evaluation, rl_core::lss::LssSolution) {
    let mut rng = rl_math::rng::seeded(seed);
    let solution = LssSolver::new(config)
        .solve(set, &mut rng)
        .expect("measurement set is usable");
    let eval =
        evaluate_against_truth(&solution.positions(), truth).expect("all nodes localized by LSS");
    (eval, solution)
}

/// How many independent solver trials the LSS figures run: convergence
/// from random initialization is seed-dependent, so the figures report a
/// distribution instead of the paper's single anecdotal run.
const TRIALS: usize = 10;

/// A trial counts as a convergence failure above this mean error.
const FAIL_THRESHOLD_M: f64 = 3.0;

/// Restart budget used when comparing constrained and unconstrained runs:
/// the paper bounds both by "maximum computation time", and the comparison
/// is only meaningful at equal budgets (given unbounded restarts even the
/// unconstrained problem eventually stumbles into the global basin on
/// dense data).
fn fixed_budget(config: LssConfig) -> LssConfig {
    let mut descent = config.descent.clone();
    descent.restarts = 23;
    LssConfig { descent, ..config }
}

/// Wraps a pre-measured set into an anchor-free [`Problem`] for the
/// campaign runner (the LSS figures always solve anchor-free, as the
/// paper does).
fn lss_problem(set: MeasurementSet, truth: &[Point2], name: &str) -> Problem {
    Problem::builder(set)
        .name(name)
        .truth(truth.to_vec())
        .build()
        .expect("figure measurement sets are consistent")
}

/// Runs `TRIALS` independent LSS solves of one fixed problem through the
/// campaign grid and tabulates per-trial outcomes.
fn trial_table(
    problem: Problem,
    config: LssConfig,
    seed: u64,
) -> (Table, Vec<f64>, rl_core::eval::Evaluation) {
    let report = Campaign::new()
        .problem(problem)
        .localizer(Box::new(LssSolver::new(config)))
        .trials(seed, TRIALS)
        .run();
    let mut t = Table::new(
        "per-trial outcomes",
        &[
            "trial",
            "mean_error_m",
            "w/o_worst_5_m",
            "stress",
            "iterations",
        ],
    );
    let mut errors = Vec::with_capacity(TRIALS);
    let mut best: Option<(f64, rl_core::eval::Evaluation)> = None;
    for (trial, record) in report.runs.iter().enumerate() {
        let outcome = record.outcome.as_ref().expect("measurement set is usable");
        let eval = outcome
            .evaluation
            .as_ref()
            .expect("all nodes localized by LSS");
        let stress = outcome
            .solution
            .stats()
            .residual
            .expect("LSS reports stress");
        t.push(&[
            trial.to_string(),
            m(eval.mean_error),
            m(eval.mean_error_without_worst(5)),
            format!("{stress:.1}"),
            outcome.solution.stats().iterations.to_string(),
        ]);
        errors.push(eval.mean_error);
        if best.as_ref().is_none_or(|(s, _)| stress < *s) {
            best = Some((stress, eval.clone()));
        }
    }
    (t, errors, best.expect("at least one trial").1)
}

fn failures(errors: &[f64]) -> usize {
    errors.iter().filter(|e| **e > FAIL_THRESHOLD_M).count()
}

/// **F17/F18** — centralized LSS with the minimum-spacing soft constraint
/// on the sparse grass-grid field measurements (paper: 2.2 m average,
/// 1.5 m without the largest five errors).
pub fn figure18_grid_constrained(seed: u64) -> ExperimentResult {
    let (scenario, set) = grass_grid_measurements(seed);
    let truth = &scenario.deployment.positions;
    let (trials, errors, best_eval) = trial_table(
        lss_problem(set.clone(), truth, "grass-grid-field"),
        LssConfig::default().with_min_spacing(GRID_MIN_SPACING, GRID_WD),
        seed ^ 0x18,
    );
    let med = rl_math::stats::median_of(&errors).unwrap_or(f64::NAN);
    ExperimentResult::new(
        "F18",
        "centralized LSS + soft constraint, sparse grass-grid measurements",
    )
    .with_table(trials)
    .with_table(aligned_positions_table(&best_eval.aligned, truth))
    .with_note(format!(
        "paper: 2.2 m average (1.5 m w/o worst 5) from 247 pairs; measured over {TRIALS} trials \
         from {} pairs: median {} m, best-stress run {} m ({} m w/o worst 5), {} failures",
        set.len(),
        m(med),
        m(best_eval.mean_error),
        m(best_eval.mean_error_without_worst(5)),
        failures(&errors)
    ))
}

/// **F19** — the same data *without* the soft constraint: the
/// configuration folds and never converges near the truth (paper: 16.6 m
/// average after a full day of minimization).
pub fn figure19_grid_unconstrained(seed: u64) -> ExperimentResult {
    let (scenario, set) = grass_grid_measurements(seed);
    let truth = &scenario.deployment.positions;
    let (trials, errors, best_eval) = trial_table(
        lss_problem(set.clone(), truth, "grass-grid-field"),
        LssConfig::default().without_constraint(),
        seed ^ 0x19,
    );
    let med = rl_math::stats::median_of(&errors).unwrap_or(f64::NAN);
    ExperimentResult::new("F19", "centralized LSS without the soft constraint (grid)")
        .with_table(trials)
        .with_note(format!(
            "paper: 16.6 m average, failed to converge; measured over {TRIALS} trials: \
             median {} m, best-stress run {} m, {} of {TRIALS} trials failed (>{FAIL_THRESHOLD_M} m)",
            m(med),
            m(best_eval.mean_error),
            failures(&errors)
        ))
}

/// The town measurement set of Figures 21/22 (synthetic, no anchors used).
fn town_measurements(seed: u64) -> (Scenario, MeasurementSet) {
    let scenario = Scenario::town(seed);
    let mut rng = rl_math::rng::seeded(seed ^ 0x21);
    let set = SyntheticRanging::paper().measure_all(&scenario.deployment.positions, &mut rng);
    (scenario, set)
}

/// **F21** — centralized LSS with the constraint on the town map (paper:
/// every node localized, 0.55 m average — better than multilateration
/// despite using *no anchors*).
pub fn figure21_town_constrained(seed: u64) -> ExperimentResult {
    let (scenario, set) = town_measurements(seed);
    let truth = &scenario.deployment.positions;
    let (trials, errors, best_eval) = trial_table(
        lss_problem(set.clone(), truth, "town-synthetic"),
        fixed_budget(LssConfig::default().with_min_spacing(9.0, GRID_WD)),
        seed ^ 0x22,
    );
    let med = rl_math::stats::median_of(&errors).unwrap_or(f64::NAN);
    ExperimentResult::new("F21", "centralized LSS + constraint, town map, no anchors")
        .with_table(trials)
        .with_table(aligned_positions_table(&best_eval.aligned, truth))
        .with_note(format!(
            "paper: all 59 localized, 0.548 m average; measured over {TRIALS} trials from {} \
             pairs: median {} m, {} failures",
            set.len(),
            m(med),
            failures(&errors)
        ))
}

/// **F22** — the town map without the constraint (paper: 13.6 m average,
/// the lower half of the network never unfolds).
pub fn figure22_town_unconstrained(seed: u64) -> ExperimentResult {
    let (scenario, set) = town_measurements(seed);
    let truth = &scenario.deployment.positions;
    let (trials, errors, best_eval) = trial_table(
        lss_problem(set.clone(), truth, "town-synthetic"),
        fixed_budget(LssConfig::default().without_constraint()),
        seed ^ 0x23,
    );
    let med = rl_math::stats::median_of(&errors).unwrap_or(f64::NAN);
    ExperimentResult::new("F22", "centralized LSS without constraint, town map")
        .with_table(trials)
        .with_note(format!(
            "paper: 13.6 m average, most of the lower half misplaced; measured over {TRIALS} \
             trials: median {} m, best {} m, {} of {TRIALS} trials failed (>{FAIL_THRESHOLD_M} m)",
            m(med),
            m(best_eval.mean_error),
            failures(&errors)
        ))
}

/// **F23** — error-versus-epoch traces for the constrained and
/// unconstrained town runs (paper: the constraint drastically shortens the
/// time to a good minimum).
pub fn figure23_error_vs_epoch(seed: u64) -> ExperimentResult {
    let (scenario, set) = town_measurements(seed);
    let truth = &scenario.deployment.positions;

    let mut result = ExperimentResult::new("F23", "stress E versus descent epoch");
    let mut final_values = Vec::new();
    for (label, config) in [
        (
            "with constraint",
            LssConfig::default()
                .with_min_spacing(9.0, GRID_WD)
                .with_trace(),
        ),
        (
            "without constraint",
            LssConfig::default().without_constraint().with_trace(),
        ),
    ] {
        let (eval, solution) = run_lss(&set, truth, config, seed ^ 0x24);
        let trace = solution.trace().expect("trace enabled");
        let mut t = Table::new(format!("E(t) {label}"), &["epoch", "stress"]);
        // Subsample long traces to keep the CSV manageable.
        let step = (trace.values.len() / 400).max(1);
        for (i, v) in trace.values.iter().enumerate().step_by(step) {
            t.push(&[i.to_string(), format!("{v:.3}")]);
        }
        result = result.with_table(t);
        final_values.push((
            label,
            trace.values.len(),
            solution.stress(),
            eval.mean_error,
        ));
    }
    let (_, epochs_c, stress_c, err_c) = final_values[0];
    let (_, epochs_u, stress_u, err_u) = final_values[1];
    result.with_note(format!(
        "constrained: {epochs_c} epochs to stress {stress_c:.1} (err {} m); unconstrained: \
         {epochs_u} epochs to stress {stress_u:.1} (err {} m). paper: the constraint greatly \
         reduces the time to reach a good minimum",
        m(err_c),
        m(err_u)
    ))
}

/// **Ablation** — soft-constraint weight sweep `w_D ∈ {0, 1, 10, 100}` on
/// the grass-grid measurements.
pub fn constraint_weight_ablation(seed: u64) -> ExperimentResult {
    let (scenario, set) = grass_grid_measurements(seed);
    let truth = &scenario.deployment.positions;
    let mut t = Table::new(
        "soft-constraint weight sweep (grass grid)",
        &["w_D", "mean_error_m", "stress", "iterations"],
    );
    for wd in [0.0, 1.0, 10.0, 100.0] {
        let config = if wd == 0.0 {
            LssConfig::default().without_constraint()
        } else {
            LssConfig::default().with_min_spacing(GRID_MIN_SPACING, wd)
        };
        let (eval, solution) = run_lss(&set, truth, config, seed ^ 0x25 ^ wd as u64);
        t.push(&[
            format!("{wd:.0}"),
            m(eval.mean_error),
            format!("{:.1}", solution.stress()),
            solution.iterations().to_string(),
        ]);
    }
    ExperimentResult::new("ABL-WD", "soft-constraint weight sensitivity")
        .with_table(t)
        .with_note("paper used w_D = 10 with w_ij = 1")
}

/// **Ablation** — initialization strategy: random restarts versus the
/// MDS-MAP seed (extension beyond the paper).
pub fn init_ablation(seed: u64) -> ExperimentResult {
    let (scenario, set) = town_measurements(seed);
    let truth = &scenario.deployment.positions;
    let mut t = Table::new(
        "LSS initialization comparison (town)",
        &["init", "mean_error_m", "iterations"],
    );
    for (label, init) in [
        ("random", InitStrategy::Random),
        ("MDS-MAP seed", InitStrategy::MdsMap),
    ] {
        let config = LssConfig::default()
            .with_min_spacing(9.0, GRID_WD)
            .with_init(init);
        let (eval, solution) = run_lss(&set, truth, config, seed ^ 0x26);
        t.push(&[
            label.into(),
            m(eval.mean_error),
            solution.iterations().to_string(),
        ]);
    }
    ExperimentResult::new("ABL-INIT", "random vs MDS-MAP initialization")
        .with_table(t)
        .with_note("the MDS-MAP seed typically reaches the stress target in fewer iterations")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_beats_no_constraint_on_town() {
        // The headline claim of the paper: at an equal computation budget,
        // the constraint is what makes the minimization converge — every
        // constrained trial succeeds, unconstrained trials fold or burn
        // far more epochs.
        let with = figure21_town_constrained(3);
        let without = figure22_town_unconstrained(3);
        let column = |r: &ExperimentResult, idx: usize| -> Vec<f64> {
            r.tables[0]
                .to_csv()
                .lines()
                .skip(1)
                .map(|l| l.split(',').nth(idx).unwrap().parse().unwrap())
                .collect()
        };
        let with_fail = failures(&column(&with, 1));
        assert!(
            with_fail <= 1,
            "constrained trials should nearly always converge, {with_fail} failed"
        );
        let with_med = rl_math::stats::median_of(&column(&with, 1)).unwrap();
        assert!(with_med < 1.0, "constrained median error {with_med}");

        let without_fail = failures(&column(&without, 1));
        assert!(
            without_fail >= with_fail + 3,
            "unconstrained should fold far more often: {without_fail} vs {with_fail}"
        );
        let without_med = rl_math::stats::median_of(&column(&without, 1)).unwrap();
        assert!(
            without_med > with_med,
            "unconstrained median should be worse: {without_med} vs {with_med}"
        );
    }
}
