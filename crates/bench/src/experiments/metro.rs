//! Metro-scale sweep: the campaign grid on deployments ~10× (and beyond)
//! the paper's largest simulation, driven through the parallel runner.
//!
//! The paper tops out at a 59-node town (Figures 20–22). This experiment
//! sweeps that same evaluation shape — identical error model, identical
//! anchor protocol — up through metro deployments of 250, 500 and 1000
//! nodes ([`rl_deploy::MetroMap`] district grids with obstruction
//! belts), and runs **all six solver families** over the whole ladder:
//! the sparse linear-algebra backend (`rl_math::sparse`) makes
//! centralized LSS and MDS-MAP — formerly `O(n²)`-dense / `O(n³)` and
//! town-bound — tractable at the 1000-node rung, so the head-to-head
//! comparison the paper's resilience claims rest on finally covers every
//! family at every scale. The grid runs twice, once serially and once on
//! the machine-sized worker pool, asserting the two reports are
//! bit-identical before reporting per-cell error, iterations,
//! convergence and wall time.

use rl_core::baselines::{CentroidLocalizer, DvHopLocalizer};
use rl_core::distributed::{DistributedConfig, DistributedSolver};
use rl_core::lss::{LssConfig, LssSolver};
use rl_core::mds::MdsMapLocalizer;
use rl_core::multilateration::{MultilaterationConfig, MultilaterationSolver};
use rl_core::problem::Localizer;
use rl_deploy::Scenario;
use rl_net::RadioModel;

use super::ExperimentResult;
use crate::campaign::{Campaign, CampaignConfig};
use crate::Table;

/// The paper's ranging cutoff, shared by every metro cell.
const RANGE_M: f64 = 22.0;

/// The full six-family panel, metro-tuned where it matters:
///
/// * centralized LSS runs [`LssConfig::metro`] (anchor-free + soft
///   constraint, MDS-MAP seeding, short restart schedule) on the sparse
///   constraint backend,
/// * distributed LSS runs [`DistributedConfig::metro`]: MDS-seeded local
///   solves sharded on the `rl_net::pool` worker pool, plus the
///   Gauss–Newton/CG refinement that collapses cross-district stitching
///   drift,
/// * MDS-MAP auto-selects the sparse path (CSR Dijkstra completion +
///   iterative top-2 eigensolver) above the backend threshold,
/// * the remaining three families were already metro-tractable and run
///   their standard configurations.
pub fn metro_localizers() -> Vec<Box<dyn Localizer>> {
    vec![
        Box::new(LssSolver::new(LssConfig::metro())),
        Box::new(MultilaterationSolver::new(
            MultilaterationConfig::paper().progressive(),
        )),
        Box::new(DistributedSolver::new(DistributedConfig::metro())),
        Box::new(MdsMapLocalizer::new()),
        Box::new(DvHopLocalizer::new(RadioModel::ideal(RANGE_M))),
        Box::new(CentroidLocalizer::new(RANGE_M)),
    ]
}

/// The sweep's scenario ladder: the paper's town, then metros at 250,
/// 500 and 1000 nodes (10% anchors throughout, like the town's 18 of 59).
fn metro_ladder(seed: u64) -> Vec<Scenario> {
    vec![
        Scenario::town(seed),
        Scenario::metro_sized(250, 0.10, seed),
        Scenario::metro_sized(500, 0.10, seed),
        Scenario::metro(seed),
    ]
}

/// **METRO** — town → metro-1000 scale sweep of the full six-family
/// panel through the parallel campaign: per-scenario geometry, per-cell
/// error / iterations / convergence / wall time, and the
/// serial-vs-parallel end-to-end comparison (bit-identical reports
/// asserted).
pub fn metro_sweep(seed: u64) -> ExperimentResult {
    let scenarios = metro_ladder(seed);

    let mut geometry = Table::new(
        "metro ladder geometry",
        &["scenario", "nodes", "anchors", "pairs_lt_22m"],
    );
    for s in &scenarios {
        geometry.push(&[
            s.name.clone(),
            s.deployment.len().to_string(),
            s.anchors.len().to_string(),
            s.deployment.pairs_within(RANGE_M).to_string(),
        ]);
    }

    let mut campaign = Campaign::new()
        .localizers(metro_localizers())
        .seeds(&[seed]);
    for s in scenarios {
        campaign = campaign.scenario(s);
    }

    let parallel = campaign.run();
    let serial = campaign.run_with(CampaignConfig::serial());
    assert_eq!(
        parallel.fingerprint(),
        serial.fingerprint(),
        "parallel metro sweep must reproduce the serial report bit-for-bit"
    );

    let speedup = serial.total_wall.as_secs_f64() / parallel.total_wall.as_secs_f64().max(1e-9);
    ExperimentResult::new(
        "METRO",
        "metro-scale sweep (town..1000 nodes), all six families, parallel campaign",
    )
    .with_table(geometry)
    .with_table(parallel.summary_table())
    .with_note(format!(
        "serial {:.2?} vs {} workers {:.2?} => {speedup:.2}x end-to-end; reports bit-identical \
         (fingerprint {:#018x})",
        serial.total_wall,
        parallel.workers,
        parallel.total_wall,
        parallel.fingerprint(),
    ))
    .with_note(
        "all six solver families run at every rung: the sparse backend (CSR shortest paths, \
         iterative top-2 eigensolver, spatial-grid soft constraint) replaces the dense \
         O(n^2)-O(n^3) stages that previously confined LSS and MDS-MAP to town scale",
    )
    .with_note(
        "distributed LSS runs its metro configuration: per-node local solves sharded on the \
         deterministic rl_net::pool workers, and a Tikhonov-regularized Gauss-Newton/CG \
         refinement that collapses cross-district stitching drift to the same error regime \
         as centralized sparse LSS",
    )
    .with_note(
        "the metro generator tiles street-aligned districts behind obstruction belts; \
         the 1000-node cell is ~17x the paper's 59-node town under the identical \
         22 m / N(0, 0.33 m) error model",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_covers_all_six_families() {
        let names: Vec<String> = metro_localizers()
            .iter()
            .map(|l| l.name().to_string())
            .collect();
        assert_eq!(
            names,
            vec![
                "lss-anchor-free+constraint",
                "multilateration-progressive",
                "distributed-lss",
                "mds-map",
                "dv-hop",
                "centroid",
            ]
        );
    }

    #[test]
    fn six_family_panel_solves_the_town_rung() {
        // The full panel on the ladder's first rung (the paper's town)
        // keeps this test debug-fast while exercising exactly the cells
        // the experiment runs; the metro rungs run in release via the
        // `metro_smoke` CI binary and the figures experiment.
        let campaign = Campaign::new()
            .scenario(Scenario::town(5))
            .localizers(metro_localizers())
            .seeds(&[5]);
        let parallel = campaign.run();
        let serial = campaign.run_with(CampaignConfig::serial());
        assert_eq!(parallel.fingerprint(), serial.fingerprint());
        assert_eq!(parallel.runs.len(), 6);
        for run in &parallel.runs {
            assert!(
                run.outcome.is_ok(),
                "{} failed: {:?}",
                run.localizer,
                run.outcome.as_ref().err()
            );
        }
    }

    #[test]
    fn metro_sweep_covers_the_ladder() {
        // A reduced ladder with the metro-tractable subset keeps the test
        // fast in debug while exercising the same path as the experiment:
        // metro scenarios through the parallel campaign with bit-identical
        // serial replay.
        let cheap: Vec<Box<dyn Localizer>> = vec![
            Box::new(MultilaterationSolver::new(
                MultilaterationConfig::paper().progressive(),
            )),
            Box::new(DvHopLocalizer::new(RadioModel::ideal(RANGE_M))),
            Box::new(CentroidLocalizer::new(RANGE_M)),
        ];
        let campaign = Campaign::new()
            .scenario(Scenario::metro_sized(250, 0.10, 5))
            .localizers(cheap)
            .seeds(&[5]);
        let parallel = campaign.run();
        let serial = campaign.run_with(CampaignConfig::serial());
        assert_eq!(parallel.fingerprint(), serial.fingerprint());
        assert_eq!(parallel.runs.len(), 3);
        let csv = parallel.summary_table().to_csv();
        assert!(csv.contains("metro-250-25anchors"));
        // The anchor-based scheme must beat the connectivity baselines at
        // metro scale too.
        let mlat = parallel
            .mean_error("metro-250-25anchors", "multilateration-progressive")
            .unwrap();
        let centroid = parallel
            .mean_error("metro-250-25anchors", "centroid")
            .unwrap();
        assert!(
            mlat < centroid,
            "multilateration {mlat} vs centroid {centroid}"
        );
    }
}
