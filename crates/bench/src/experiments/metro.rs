//! Metro-scale sweep: the campaign grid on deployments ~10× (and beyond)
//! the paper's largest simulation, driven through the parallel runner.
//!
//! The paper tops out at a 59-node town (Figures 20–22). This experiment
//! sweeps that same evaluation shape — identical error model, identical
//! anchor protocol — up through metro deployments of 250, 500 and 1000
//! nodes ([`rl_deploy::MetroMap`] district grids with obstruction
//! belts), and runs the whole grid twice: once serially and once on the
//! machine-sized worker pool, asserting the two reports are bit-identical
//! before reporting per-cell wall times and the end-to-end speedup.

use rl_core::baselines::{CentroidLocalizer, DvHopLocalizer};
use rl_core::multilateration::{MultilaterationConfig, MultilaterationSolver};
use rl_core::problem::Localizer;
use rl_deploy::Scenario;
use rl_net::RadioModel;

use super::ExperimentResult;
use crate::campaign::{Campaign, CampaignConfig};
use crate::Table;

/// The paper's ranging cutoff, shared by every metro cell.
const RANGE_M: f64 = 22.0;

/// The localizer panel that stays tractable at metro scale: progressive
/// multilateration plus the two connectivity-only baselines. (Centralized
/// LSS and MDS-MAP are O(n²)-dense / O(n³) respectively and are studied
/// at town scale in the other experiments.)
fn metro_localizers() -> Vec<Box<dyn Localizer>> {
    vec![
        Box::new(MultilaterationSolver::new(
            MultilaterationConfig::paper().progressive(),
        )),
        Box::new(DvHopLocalizer::new(RadioModel::ideal(RANGE_M))),
        Box::new(CentroidLocalizer::new(RANGE_M)),
    ]
}

/// The sweep's scenario ladder: the paper's town, then metros at 250,
/// 500 and 1000 nodes (10% anchors throughout, like the town's 18 of 59).
fn metro_ladder(seed: u64) -> Vec<Scenario> {
    vec![
        Scenario::town(seed),
        Scenario::metro_sized(250, 0.10, seed),
        Scenario::metro_sized(500, 0.10, seed),
        Scenario::metro(seed),
    ]
}

/// **METRO** — town → metro-1000 scale sweep through the parallel
/// campaign: per-scenario geometry, per-cell error and wall time, and the
/// serial-vs-parallel end-to-end comparison (bit-identical reports
/// asserted).
pub fn metro_sweep(seed: u64) -> ExperimentResult {
    let scenarios = metro_ladder(seed);

    let mut geometry = Table::new(
        "metro ladder geometry",
        &["scenario", "nodes", "anchors", "pairs_lt_22m"],
    );
    for s in &scenarios {
        geometry.push(&[
            s.name.clone(),
            s.deployment.len().to_string(),
            s.anchors.len().to_string(),
            s.deployment.pairs_within(RANGE_M).to_string(),
        ]);
    }

    let mut campaign = Campaign::new()
        .localizers(metro_localizers())
        .seeds(&[seed]);
    for s in scenarios {
        campaign = campaign.scenario(s);
    }

    let parallel = campaign.run();
    let serial = campaign.run_with(CampaignConfig::serial());
    assert_eq!(
        parallel.fingerprint(),
        serial.fingerprint(),
        "parallel metro sweep must reproduce the serial report bit-for-bit"
    );

    let speedup = serial.total_wall.as_secs_f64() / parallel.total_wall.as_secs_f64().max(1e-9);
    ExperimentResult::new(
        "METRO",
        "metro-scale sweep (town..1000 nodes) through the parallel campaign",
    )
    .with_table(geometry)
    .with_table(parallel.summary_table())
    .with_note(format!(
        "serial {:.2?} vs {} workers {:.2?} => {speedup:.2}x end-to-end; reports bit-identical \
         (fingerprint {:#018x})",
        serial.total_wall,
        parallel.workers,
        parallel.total_wall,
        parallel.fingerprint(),
    ))
    .with_note(
        "the metro generator tiles street-aligned districts behind obstruction belts; \
         the 1000-node cell is ~17x the paper's 59-node town under the identical \
         22 m / N(0, 0.33 m) error model",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metro_sweep_covers_the_ladder() {
        // A reduced ladder keeps the test fast while exercising the same
        // path as the experiment: metro scenarios through the parallel
        // campaign with bit-identical serial replay.
        let campaign = Campaign::new()
            .scenario(Scenario::metro_sized(250, 0.10, 5))
            .localizers(metro_localizers())
            .seeds(&[5]);
        let parallel = campaign.run();
        let serial = campaign.run_with(CampaignConfig::serial());
        assert_eq!(parallel.fingerprint(), serial.fingerprint());
        assert_eq!(parallel.runs.len(), 3);
        let csv = parallel.summary_table().to_csv();
        assert!(csv.contains("metro-250-25anchors"));
        // The anchor-based scheme must beat the connectivity baselines at
        // metro scale too.
        let mlat = parallel
            .mean_error("metro-250-25anchors", "multilateration-progressive")
            .unwrap();
        let centroid = parallel
            .mean_error("metro-250-25anchors", "centroid")
            .unwrap();
        assert!(
            mlat < centroid,
            "multilateration {mlat} vs centroid {centroid}"
        );
    }
}
