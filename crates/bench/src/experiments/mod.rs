//! One module per figure family of the paper's evaluation.
//!
//! Every experiment is a pure function of a seed, returning an
//! [`ExperimentResult`] with the tables the paper's figure reports plus
//! paper-vs-measured notes. Ablation functions live next to the figures
//! they extend.

pub mod baselines;
pub mod degradation;
pub mod distributed;
pub mod lss;
pub mod metro;
pub mod multilateration;
pub mod ranging;
pub mod signal;
pub mod sync;
pub mod tracking;

use crate::Table;

/// The output of one experiment: identifier, result tables, and
/// paper-vs-measured notes.
#[derive(Debug, Clone, Default)]
pub struct ExperimentResult {
    /// Experiment id, e.g. `"F18"`.
    pub id: &'static str,
    /// Human-readable description of the workload.
    pub description: &'static str,
    /// Result tables (first one is the headline).
    pub tables: Vec<Table>,
    /// Notes comparing against the paper's reported numbers.
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Creates an empty result.
    pub fn new(id: &'static str, description: &'static str) -> Self {
        ExperimentResult {
            id,
            description,
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a table (builder style).
    pub fn with_table(mut self, table: Table) -> Self {
        self.tables.push(table);
        self
    }

    /// Adds a note (builder style).
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Saves every table as CSV under `dir`, slugged by experiment id and
    /// table index.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_csvs(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        let mut out = Vec::new();
        for (k, table) in self.tables.iter().enumerate() {
            let slug = format!("{}_{}", self.id.to_lowercase(), k);
            out.push(table.save_csv(dir, &slug)?);
        }
        Ok(out)
    }
}

impl core::fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "### [{}] {}", self.id, self.description)?;
        for table in &self.tables {
            writeln!(f, "{table}")?;
        }
        for note in &self.notes {
            writeln!(f, "  * {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_builder_and_display() {
        let mut t = Table::new("t", &["a"]);
        t.push(&["1".into()]);
        let r = ExperimentResult::new("F0", "demo")
            .with_table(t)
            .with_note("paper: 1, measured: 1");
        let s = r.to_string();
        assert!(s.contains("[F0] demo"));
        assert!(s.contains("paper: 1"));
        assert_eq!(r.tables.len(), 1);
    }
}
