//! Multilateration experiments: Figures 11, 12, 13/14, 15/16 and 20.
//!
//! The solver figures (12, 14, 16, 20) run through the [`Campaign`] grid
//! and the unified [`Localizer`](rl_core::problem::Localizer) trait —
//! non-anchor error accounting comes from
//! [`Problem::evaluate`](rl_core::problem::Problem::evaluate), which
//! excludes anchors from the metric exactly as the paper reports it. The
//! intersection-consistency illustration (Figure 11) exercises the check
//! directly.

use rl_core::multilateration::{
    mean_anchors_available, IntersectionConsistency, MultilaterationConfig, MultilaterationSolver,
    RangeToAnchor,
};
use rl_core::problem::Problem;
use rl_core::types::{Anchor, PositionMap};
use rl_deploy::synth::SyntheticRanging;
use rl_deploy::Scenario;
use rl_geom::Point2;
use rl_net::NodeId;
use rl_ranging::consistency::{merge_bidirectional, ConsistencyConfig};
use rl_ranging::filter::StatFilter;
use rl_ranging::measurement::MeasurementSet;
use rl_ranging::service::{NodeHardware, RangingService, ServiceConfig};
use rl_signal::env::Environment;

use super::ExperimentResult;
use crate::report::{m, pct};
use crate::{Campaign, Table};

/// Runs one multilateration configuration on a fixed problem through the
/// campaign grid, returning `(solution positions, localized non-anchors,
/// mean non-anchor error, sorted non-anchor errors)`.
fn solve_via_campaign(
    problem: Problem,
    config: MultilaterationConfig,
    seed: u64,
) -> (PositionMap, usize, f64, Vec<f64>) {
    let report = Campaign::new()
        .problem(problem)
        .localizer(Box::new(MultilaterationSolver::new(config)))
        .seeds(&[seed])
        .run();
    let record = &report.runs[0];
    let outcome = record.outcome.as_ref().expect("anchors supplied");
    let positions = outcome.solution.positions().clone();
    match &outcome.evaluation {
        Some(eval) => {
            let mut errors: Vec<f64> = eval.per_node.iter().map(|&(_, e)| e).collect();
            errors.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
            (positions, eval.localized, eval.mean_error, errors)
        }
        None => (positions, 0, 0.0, Vec::new()),
    }
}

fn positions_table(positions: &PositionMap, truth: &[Point2]) -> Table {
    let mut t = Table::new(
        "positions",
        &["node", "true_x", "true_y", "est_x", "est_y", "error_m"],
    );
    for (id, pos) in positions.iter() {
        let truth_p = truth[id.index()];
        match pos {
            Some(p) => t.push(&[
                id.to_string(),
                m(truth_p.x),
                m(truth_p.y),
                m(p.x),
                m(p.y),
                m(p.distance(truth_p)),
            ]),
            None => t.push(&[
                id.to_string(),
                m(truth_p.x),
                m(truth_p.y),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t
}

/// **F11** — the intersection-consistency illustration: near-collinear
/// anchors with a small range error produce displaced intersection points
/// and are filtered out.
pub fn figure11_intersection_consistency(_seed: u64) -> ExperimentResult {
    // A node at the origin; three well-placed anchors; one distant anchor
    // nearly collinear with the node whose range carries a +2.5 m error.
    let node = Point2::new(0.0, 0.0);
    let mk = |x: f64, y: f64, err: f64| RangeToAnchor {
        anchor: Point2::new(x, y),
        distance: Point2::new(x, y).distance(node) + err,
        weight: 1.0,
    };
    let observations = vec![
        mk(-10.0, 8.0, 0.0),
        mk(10.0, 8.0, 0.0),
        mk(0.0, -12.0, 0.0),
        mk(-30.0, 0.1, 2.5), // near-collinear with the node, erroneous
    ];
    let check = IntersectionConsistency::default();
    let kept = check.filter(&observations);

    let mut t = Table::new(
        "anchors",
        &["anchor", "distance_m", "range_error_m", "kept"],
    );
    for (i, o) in observations.iter().enumerate() {
        let err = o.distance - o.anchor.distance(node);
        t.push(&[
            format!("({:.0}, {:.1})", o.anchor.x, o.anchor.y),
            m(o.distance),
            m(err),
            if kept.contains(&i) { "yes" } else { "DROPPED" }.into(),
        ]);
    }

    // Least-squares position estimates with and without the filter (the
    // paper's estimator; the erroneous collinear anchor displaces it).
    let solve = |obs: &[RangeToAnchor]| -> Point2 {
        let mut set = MeasurementSet::new(obs.len() + 1);
        let target = NodeId(obs.len());
        let anchors: Vec<Anchor> = obs
            .iter()
            .enumerate()
            .map(|(i, o)| {
                set.insert(NodeId(i), target, o.distance);
                Anchor::new(NodeId(i), o.anchor)
            })
            .collect();
        let mut rng = rl_math::rng::seeded(11);
        let out =
            MultilaterationSolver::new(MultilaterationConfig::paper().with_consistency(false))
                .solve(&set, &anchors, &mut rng)
                .expect("enough anchors");
        out.positions.get(target).expect("target localized")
    };
    let with_filter: Vec<RangeToAnchor> = kept.iter().map(|&k| observations[k]).collect();
    let est_filtered = solve(&with_filter);
    let est_all = solve(&observations);

    ExperimentResult::new("F11", "intersection consistency with collinear anchors")
        .with_table(t)
        .with_note(format!(
            "least-squares position error: all anchors {} m, after filtering {} m (paper: the \
             collinear anchor with no nearby intersections is discarded)",
            m(est_all.distance(node)),
            m(est_filtered.distance(node))
        ))
}

/// **F12** — the 15-node parking-lot experiment: 5 loudspeaker-equipped
/// anchors produce one-way measurements; median filtering; average error
/// about 0.87 m in the paper.
pub fn figure12_parking_lot(seed: u64) -> ExperimentResult {
    let scenario = Scenario::parking_lot(seed);
    let truth = &scenario.deployment.positions;
    let mut rng = rl_math::rng::seeded(seed ^ 0x12);

    // The experiment predates the chirp pattern: baseline service on
    // pavement, median of five rounds, anchors chirp / everyone listens.
    let service = RangingService::new(
        Environment::Pavement,
        ServiceConfig {
            rounds: 5,
            ..ServiceConfig::baseline()
        },
        &mut rng,
    )
    .expect("pavement calibrates");
    let hardware: Vec<NodeHardware> = (0..truth.len())
        .map(|_| NodeHardware::sample(&mut rng, &service.config().hardware))
        .collect();

    let mut set = MeasurementSet::new(truth.len());
    for &a in &scenario.anchors {
        for j in 0..truth.len() {
            if NodeId(j) == a {
                continue;
            }
            let d = truth[a.index()].distance(truth[j]);
            let mut samples = Vec::new();
            for _ in 0..service.config().rounds {
                let pair = NodeHardware::pair(&hardware[a.index()], &hardware[j]);
                if let Some(est) = service.measure_pair(d, &pair, &mut rng) {
                    samples.push(est);
                }
            }
            if let Some(est) = StatFilter::Median.reduce(&samples) {
                set.insert(a, NodeId(j), est);
            }
        }
    }

    let anchors = Anchor::from_truth(&scenario.anchors, truth);
    let problem = Problem::builder(set)
        .name("parking-lot-field")
        .anchors(anchors)
        .truth(truth.clone())
        .build()
        .expect("scenario data is consistent");
    let (positions, localized, mean_err, _) =
        solve_via_campaign(problem, MultilaterationConfig::paper(), seed ^ 0x12);

    let mut summary = Table::new("summary", &["metric", "value"]);
    summary.push(&["nodes".into(), truth.len().to_string()]);
    summary.push(&["anchors".into(), scenario.anchors.len().to_string()]);
    summary.push(&["localized non-anchors".into(), localized.to_string()]);
    summary.push(&["average error (m)".into(), m(mean_err)]);

    ExperimentResult::new(
        "F12",
        "15-node parking lot, 5 anchors, one-way baseline ranging",
    )
    .with_table(summary)
    .with_table(positions_table(&positions, truth))
    .with_note(format!(
        "paper: average error 0.868 m over 10 non-anchors; measured: {} m over {localized}",
        m(mean_err)
    ))
}

/// The sparse grass-grid measurement set used by Figures 13/14 and the LSS
/// experiments: refined service, median filter, one-way pairs accepted.
pub fn grass_grid_measurements(seed: u64) -> (Scenario, MeasurementSet) {
    let scenario = Scenario::grass_grid_multilateration(seed);
    let mut rng = rl_math::rng::seeded(seed ^ 0x14);
    let service = RangingService::new(Environment::Grass, ServiceConfig::refined(), &mut rng)
        .expect("grass calibrates");
    let campaign = service.run_campaign(&scenario.deployment.positions, &mut rng);
    let estimates = StatFilter::Median.apply(&campaign);
    let set = merge_bidirectional(&estimates, campaign.n, &ConsistencyConfig::default());
    (scenario, set)
}

/// **F13/F14** — multilateration on the sparse 46-node grid with 13 random
/// anchors: the paper localized only 7 of 33 non-anchors (1.47 anchors per
/// node on average).
pub fn figure14_sparse_grid(seed: u64) -> ExperimentResult {
    let (scenario, set) = grass_grid_measurements(seed);
    let truth = &scenario.deployment.positions;
    let anchors = Anchor::from_truth(&scenario.anchors, truth);
    let available = mean_anchors_available(&set, &anchors);
    let pairs = set.len();
    let problem = Problem::builder(set)
        .name("grass-grid-field")
        .anchors(anchors)
        .truth(truth.clone())
        .build()
        .expect("scenario data is consistent");
    let (positions, localized, mean_err, _) =
        solve_via_campaign(problem, MultilaterationConfig::paper(), seed ^ 0x15);
    let non_anchors = truth.len() - scenario.anchors.len();

    let mut summary = Table::new("summary", &["metric", "value"]);
    summary.push(&["measured pairs".into(), pairs.to_string()]);
    summary.push(&["non-anchor nodes".into(), non_anchors.to_string()]);
    summary.push(&[
        "localized".into(),
        format!(
            "{localized} ({})",
            pct(localized as f64 / non_anchors as f64)
        ),
    ]);
    summary.push(&["mean anchors available per node".into(), m(available)]);
    summary.push(&["average error (m)".into(), m(mean_err)]);

    ExperimentResult::new(
        "F14",
        "multilateration, sparse grass grid, 13 of 46 anchors",
    )
    .with_table(summary)
    .with_table(positions_table(&positions, truth))
    .with_note(format!(
        "paper: 7 of 33 localized (avg 1.47 anchors/node), error 0.7 m; measured: \
             {localized} of {non_anchors} (avg {} anchors/node), error {} m",
        m(available),
        m(mean_err)
    ))
}

/// **F15/F16** — the same grid with synthetic distances added
/// (N(0, 0.33 m), cutoff 22 m): ~80 % localized, average error pulled up
/// by a few gross failures.
pub fn figure16_augmented_grid(seed: u64) -> ExperimentResult {
    let (scenario, mut set) = grass_grid_measurements(seed);
    let truth = &scenario.deployment.positions;
    let mut rng = rl_math::rng::seeded(seed ^ 0x16);
    let added = SyntheticRanging::paper().augment(&mut set, truth, &mut rng);
    let pairs = set.len();

    let anchors = Anchor::from_truth(&scenario.anchors, truth);
    let problem = Problem::builder(set)
        .name("grass-grid-augmented")
        .anchors(anchors)
        .truth(truth.clone())
        .build()
        .expect("scenario data is consistent");
    // "Intersection consistency checking was omitted in this localization
    // simulation" (paper footnote 5) — and the paper's solver had no
    // mirror-ambiguity rejection either, which is what produces its
    // "victims of the gradient descent falling into a local minimum".
    let (positions, localized, mean_err, errors) = solve_via_campaign(
        problem,
        MultilaterationConfig::paper()
            .with_consistency(false)
            .with_ambiguity_rejection(false),
        seed ^ 0x16,
    );
    let non_anchors = truth.len() - scenario.anchors.len();
    let keep = errors.len().saturating_sub(3);
    let trimmed = if keep == 0 {
        0.0
    } else {
        errors[..keep].iter().sum::<f64>() / keep as f64
    };

    let mut summary = Table::new("summary", &["metric", "value"]);
    summary.push(&["synthetic pairs added".into(), added.to_string()]);
    summary.push(&["total pairs".into(), pairs.to_string()]);
    summary.push(&[
        "localized".into(),
        format!(
            "{localized} ({})",
            pct(localized as f64 / non_anchors as f64)
        ),
    ]);
    summary.push(&["average error (m)".into(), m(mean_err)]);
    summary.push(&["average error w/o worst 3 (m)".into(), m(trimmed)]);

    ExperimentResult::new("F16", "multilateration, grid + synthetic distances")
        .with_table(summary)
        .with_table(positions_table(&positions, truth))
        .with_note(format!(
            "paper: ~80% localized, 3.5 m average (0.9 m without 3 gross failures); measured: \
             {} localized, {} m average ({} m without worst 3)",
            pct(localized as f64 / non_anchors as f64),
            m(mean_err),
            m(trimmed)
        ))
}

/// **F20** — multilateration on the 59-node town map with 18 anchors and
/// synthetic ranging (paper: 35 localized, ~0.95 m average error).
pub fn figure20_town(seed: u64) -> ExperimentResult {
    let scenario = Scenario::town(seed);
    let truth = &scenario.deployment.positions;
    // The scenario bundles the paper's synthetic error model, so the
    // problem comes straight from `instantiate`.
    let problem = scenario.instantiate(seed ^ 0x20);
    let pairs = problem.measurements().len();
    let (positions, localized, mean_err, _) = solve_via_campaign(
        problem,
        MultilaterationConfig::paper().with_consistency(false),
        seed ^ 0x20,
    );
    let non_anchors = truth.len() - scenario.anchors.len();

    let mut summary = Table::new("summary", &["metric", "value"]);
    summary.push(&["pairs under 22 m".into(), pairs.to_string()]);
    summary.push(&["non-anchor nodes".into(), non_anchors.to_string()]);
    summary.push(&[
        "localized".into(),
        format!(
            "{localized} ({})",
            pct(localized as f64 / non_anchors as f64)
        ),
    ]);
    summary.push(&["average error (m)".into(), m(mean_err)]);

    ExperimentResult::new("F20", "multilateration, town map, 18 of 59 anchors")
        .with_table(summary)
        .with_table(positions_table(&positions, truth))
        .with_note(format!(
            "paper: 35 of 41 localized, ~0.95 m average; measured: {localized} of {non_anchors}, {} m",
            m(mean_err)
        ))
}

/// **Ablation** — intersection consistency on/off under injected outlier
/// ranges (extends Figure 11 quantitatively).
pub fn consistency_ablation(seed: u64) -> ExperimentResult {
    let scenario = Scenario::parking_lot(seed);
    let truth = &scenario.deployment.positions;
    let mut rng = rl_math::rng::seeded(seed ^ 0xAB);
    // Oracle distances to anchors, then corrupt 15 % of them grossly.
    let mut set = MeasurementSet::new(truth.len());
    for &a in &scenario.anchors {
        for j in 0..truth.len() {
            if NodeId(j) == a {
                continue;
            }
            let d = truth[a.index()].distance(truth[j]);
            let corrupted = if rl_math::rng::normal(&mut rng, 0.0, 1.0) > 1.0 {
                d * 0.4 // echo-style gross underestimate
            } else {
                d + rl_math::rng::normal(&mut rng, 0.0, 0.3)
            };
            set.insert(a, NodeId(j), corrupted.max(0.1));
        }
    }
    let anchors = Anchor::from_truth(&scenario.anchors, truth);

    let mut t = Table::new(
        "consistency check under 15% gross outliers",
        &["configuration", "localized", "mean_error_m"],
    );
    let mut note_vals = Vec::new();
    for (label, enabled) in [("with check", true), ("without check", false)] {
        let problem = Problem::builder(set.clone())
            .name("parking-lot-corrupted")
            .anchors(anchors.clone())
            .truth(truth.clone())
            .build()
            .expect("scenario data is consistent");
        let (_, localized, mean_err, _) = solve_via_campaign(
            problem,
            MultilaterationConfig::paper().with_consistency(enabled),
            seed ^ 0xAB,
        );
        t.push(&[label.into(), localized.to_string(), m(mean_err)]);
        note_vals.push(mean_err);
    }
    ExperimentResult::new(
        "ABL-CONSIST",
        "intersection consistency vs gross range outliers",
    )
    .with_table(t)
    .with_note(format!(
        "filtering {} the error ({} -> {} m)",
        if note_vals[0] <= note_vals[1] {
            "reduces"
        } else {
            "did not reduce"
        },
        m(note_vals[1]),
        m(note_vals[0])
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_drops_the_bad_anchor() {
        let r = figure11_intersection_consistency(0);
        let csv = r.tables[0].to_csv();
        assert!(csv.contains("DROPPED"));
        // Exactly one anchor dropped.
        assert_eq!(csv.matches("DROPPED").count(), 1);
    }

    #[test]
    fn sparse_grid_localizes_fewer_than_augmented() {
        let sparse = figure14_sparse_grid(7);
        let augmented = figure16_augmented_grid(7);
        let loc = |r: &ExperimentResult| -> usize {
            r.tables[0]
                .to_csv()
                .lines()
                .find(|l| l.starts_with("localized"))
                .unwrap()
                .split(',')
                .nth(1)
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(
            loc(&augmented) > loc(&sparse),
            "augmentation should raise coverage: {} vs {}",
            loc(&augmented),
            loc(&sparse)
        );
    }
}
