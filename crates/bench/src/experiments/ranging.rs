//! Ranging-service experiments: Figures 2, 4, 6, 7, 8 and the §3.6.2
//! maximum-range study.

use rl_math::stats::{median_of, Histogram};
use rl_ranging::consistency::{merge_bidirectional, BidirectionalPolicy, ConsistencyConfig};
use rl_ranging::filter::StatFilter;
use rl_ranging::measurement::RangingCampaign;
use rl_ranging::service::{RangingService, ServiceConfig};
use rl_signal::chirp::ChirpTrainConfig;
use rl_signal::detection::DetectionParams;
use rl_signal::detector::{NodeAcoustics, ReceptionSimulator};
use rl_signal::env::Environment;

use super::ExperimentResult;
use crate::report::{m, pct};
use crate::Table;

/// Error statistics shared by the ranging figures.
fn error_stats(errors: &[f64]) -> Table {
    let mut t = Table::new("error statistics", &["metric", "value"]);
    let n = errors.len();
    t.push(&["samples".into(), n.to_string()]);
    let abs: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
    t.push(&[
        "median |error| (m)".into(),
        m(median_of(&abs).unwrap_or(0.0)),
    ]);
    let gross = errors.iter().filter(|e| e.abs() > 1.0).count();
    t.push(&[
        "|error| > 1 m".into(),
        format!("{gross} ({})", pct(gross as f64 / n.max(1) as f64)),
    ]);
    let under = errors.iter().filter(|&&e| e < -1.0).count();
    let over = errors.iter().filter(|&&e| e > 1.0).count();
    t.push(&["underestimates (< -1 m)".into(), under.to_string()]);
    t.push(&["overestimates (> 1 m)".into(), over.to_string()]);
    let min = errors.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = errors.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    t.push(&["min error (m)".into(), m(min)]);
    t.push(&["max error (m)".into(), m(max)]);
    t
}

/// Scatter table `(true_d, measured, error)` for CSV plotting.
fn scatter_table(campaign: &RangingCampaign) -> Table {
    let mut t = Table::new("samples", &["true_m", "measured_m", "error_m"]);
    for s in &campaign.samples {
        let truth = campaign.true_distance(s.from, s.to);
        t.push(&[m(truth), m(s.measured_m), m(s.measured_m - truth)]);
    }
    t
}

/// The urban 60-node deployment used by the baseline experiments.
fn urban_campaign(seed: u64) -> RangingCampaign {
    let scenario = rl_deploy::Scenario::urban_60(seed);
    let mut rng = rl_math::rng::seeded(seed ^ 0xF2);
    let service = RangingService::new(Environment::Urban, ServiceConfig::baseline(), &mut rng)
        .expect("urban baseline calibrates");
    service.run_campaign(&scenario.deployment.positions, &mut rng)
}

/// The grass-grid deployment used by the refined-service experiments
/// (46 reporting motes, 6 rounds).
pub fn grass_campaign(seed: u64) -> RangingCampaign {
    let deployment = rl_deploy::grid::OffsetGrid::paper_figure5()
        .generate()
        .without_nodes(&[0]);
    let mut rng = rl_math::rng::seeded(seed ^ 0xF6);
    let service = RangingService::new(Environment::Grass, ServiceConfig::refined(), &mut rng)
        .expect("grass refined calibrates");
    service.run_campaign(&deployment.positions, &mut rng)
}

/// **F2** — baseline ranging errors on the urban 60-node deployment
/// (Figure 2: "many of the measurements with >1 m errors are
/// underestimates").
pub fn figure2_baseline_urban(seed: u64) -> ExperimentResult {
    let campaign = urban_campaign(seed);
    let errors = campaign.errors();
    let under = errors.iter().filter(|&&e| e < -1.0).count();
    let over = errors.iter().filter(|&&e| e > 1.0).count();
    ExperimentResult::new(
        "F2",
        "baseline acoustic ranging, urban 60-node deployment, d <= 30 m",
    )
    .with_table(error_stats(&errors))
    .with_table(scatter_table(&campaign))
    .with_note(format!(
        "paper: many >1 m errors, mostly underestimates; measured: {under} under vs {over} over"
    ))
}

/// **F4** — the same baseline data after median filtering of up to five
/// measurements per directed pair (Figure 4).
pub fn figure4_median_filter(seed: u64) -> ExperimentResult {
    let campaign = urban_campaign(seed);
    let raw_errors = campaign.errors();
    let filtered = StatFilter::Median.apply_limited(&campaign, 5);
    let errors: Vec<f64> = filtered
        .iter()
        .map(|(&(a, b), &est)| est - campaign.true_distance(a, b))
        .collect();
    let gross_raw =
        raw_errors.iter().filter(|e| e.abs() > 1.0).count() as f64 / raw_errors.len().max(1) as f64;
    let gross_filtered =
        errors.iter().filter(|e| e.abs() > 1.0).count() as f64 / errors.len().max(1) as f64;
    ExperimentResult::new(
        "F4",
        "baseline ranging + median filter (up to 5 measurements)",
    )
    .with_table(error_stats(&errors))
    .with_note(format!(
        "gross-error rate: raw {} -> filtered {} (paper: most outliers suppressed)",
        pct(gross_raw),
        pct(gross_filtered)
    ))
}

/// Histogram table over ranging errors (the Figure 6/7 presentation).
fn histogram_table(errors: &[f64]) -> Table {
    let mut h = Histogram::new(-2.0, 2.0, 40);
    h.extend(errors.iter().cloned());
    let mut t = Table::new("error histogram", &["bin_center_m", "count"]);
    for (i, &c) in h.bins().iter().enumerate() {
        t.push(&[m(h.bin_center(i)), c.to_string()]);
    }
    t.push(&["< -2".into(), h.underflow().to_string()]);
    t.push(&[">= 2".into(), h.overflow().to_string()]);
    t
}

/// **F6** — refined-service error histogram on the 46-node grass grid
/// after six rounds (Figure 6: zero-mean ±30 cm core plus rare
/// large-magnitude errors).
pub fn figure6_refined_histogram(seed: u64) -> ExperimentResult {
    let campaign = grass_campaign(seed);
    let errors = campaign.errors();
    let mut h = Histogram::new(-0.3, 0.3, 2);
    h.extend(errors.iter().cloned());
    let core = 1.0 - (h.underflow() + h.overflow()) as f64 / errors.len().max(1) as f64;
    let gross = errors.iter().filter(|e| e.abs() > 1.0).count();
    ExperimentResult::new(
        "F6",
        "refined ranging error histogram, 46-node grass grid, 6 rounds",
    )
    .with_table(error_stats(&errors))
    .with_table(histogram_table(&errors))
    .with_note(format!(
        "paper: bell-shaped core within ±30 cm + outliers up to 11 m; measured: {} of samples within ±30 cm, {gross} gross errors",
        pct(core)
    ))
}

/// **F7** — the same data restricted to pairs with *agreeing bidirectional*
/// measurements (Figure 7: the consistency check eliminates most
/// large-magnitude errors).
pub fn figure7_bidirectional(seed: u64) -> ExperimentResult {
    let campaign = grass_campaign(seed);
    let estimates = StatFilter::Median.apply(&campaign);
    let strict = ConsistencyConfig {
        bidirectional_tolerance_m: 1.0,
        policy: BidirectionalPolicy::RequireBoth,
    };
    let set = merge_bidirectional(&estimates, campaign.n, &strict);
    let errors: Vec<f64> = set
        .iter()
        .map(|(a, b, d)| d - campaign.true_distance(a, b))
        .collect();
    let gross = errors.iter().filter(|e| e.abs() > 1.0).count();

    // For comparison: one-way estimates carry the gross errors.
    let lenient = ConsistencyConfig::default();
    let one_way = merge_bidirectional(&estimates, campaign.n, &lenient);
    let gross_oneway = one_way
        .iter()
        .map(|(a, b, d)| d - campaign.true_distance(a, b))
        .filter(|e| e.abs() > 1.0)
        .count();

    ExperimentResult::new("F7", "bidirectional-only error histogram (grass grid)")
        .with_table(error_stats(&errors))
        .with_table(histogram_table(&errors))
        .with_note(format!(
            "paper: most large-magnitude errors eliminated; measured: {gross} gross errors in {} bidirectional pairs vs {gross_oneway} with one-way pairs included ({})",
            set.len(),
            one_way.len()
        ))
}

/// **F8** — measured and filtered distances versus actual distance
/// (Figure 8: "large-magnitude errors are more common at longer
/// distances").
pub fn figure8_error_vs_distance(seed: u64) -> ExperimentResult {
    let campaign = grass_campaign(seed);
    let mut t = Table::new(
        "error by distance band",
        &["band_m", "samples", "median_|e|_m", "gross_rate"],
    );
    let mut gross_rates = Vec::new();
    for band in [(0.0, 5.0), (5.0, 10.0), (10.0, 15.0), (15.0, 21.0)] {
        let errors: Vec<f64> = campaign
            .samples
            .iter()
            .filter(|s| {
                let d = campaign.true_distance(s.from, s.to);
                d >= band.0 && d < band.1
            })
            .map(|s| campaign.error_of(s))
            .collect();
        let abs: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
        let gross =
            errors.iter().filter(|e| e.abs() > 1.0).count() as f64 / errors.len().max(1) as f64;
        gross_rates.push(gross);
        t.push(&[
            format!("{:.0}-{:.0}", band.0, band.1),
            errors.len().to_string(),
            m(median_of(&abs).unwrap_or(0.0)),
            pct(gross),
        ]);
    }
    let increasing = gross_rates.windows(2).all(|w| w[1] >= w[0] - 0.02);
    ExperimentResult::new("F8", "measured vs actual distance, grass grid")
        .with_table(t)
        .with_table(scatter_table(&campaign))
        .with_note(format!(
            "paper: large errors grow with distance; measured gross rates {} ({})",
            gross_rates
                .iter()
                .map(|g| pct(*g))
                .collect::<Vec<_>>()
                .join(" -> "),
            if increasing {
                "increasing"
            } else {
                "NOT increasing"
            }
        ))
}

/// **MAXR** — the §3.6.2 maximum-range study: detection rate versus
/// distance on grass and pavement at thresholds 1 and 2.
pub fn max_range_study(seed: u64) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "MAXR",
        "detection rate vs distance (grass / pavement, thresholds 1 / 2)",
    );
    let mut ranges_note = Vec::new();
    let mut table = Table::new(
        "detection rate",
        &["environment", "threshold", "distance_m", "rate"],
    );
    for env in [Environment::Grass, Environment::Pavement] {
        for threshold in [1u8, 2] {
            let params = DetectionParams {
                threshold,
                ..DetectionParams::paper()
            };
            let config = ChirpTrainConfig {
                max_distance_m: 55.0,
                ..ChirpTrainConfig::paper()
            };
            // §3.6.2 ran the lowest threshold "in a quiet environment":
            // no noise bursts, minimal ambient floor.
            let mut profile = env.profile();
            profile.burst_rate_hz = 0.0;
            profile.noise_rate *= 0.25;
            let sim = ReceptionSimulator::new(profile, config);
            let mut rng = rl_math::rng::seeded(seed ^ u64::from(threshold) ^ (env as u64) << 8);
            let mut max_range = 0.0f64;
            let mut reliable_range = 0.0f64;
            let trials = 40;
            let mut d = 2.0;
            while d <= 52.0 {
                let mut detections = 0;
                for _ in 0..trials {
                    let pair = NodeAcoustics::nominal();
                    let out = sim.receive_with(d, &pair, &mut rng);
                    if let Some(idx) = out.detect(&params) {
                        // Count only detections near the truth (a noise
                        // detection at 40 m is not "range").
                        if out.error_meters(idx).abs() < 3.0 {
                            detections += 1;
                        }
                    }
                }
                let rate = detections as f64 / trials as f64;
                table.push(&[
                    env.to_string(),
                    threshold.to_string(),
                    format!("{d:.0}"),
                    pct(rate),
                ]);
                if rate >= 0.05 {
                    max_range = d;
                }
                if rate >= 0.80 {
                    reliable_range = d;
                }
                d += 2.0;
            }
            ranges_note.push(format!(
                "{env}/T={threshold}: max {max_range:.0} m, reliable {reliable_range:.0} m"
            ));
        }
    }
    result = result.with_table(table);
    result = result.with_note(format!(
        "paper: grass max ~20 m / reliable ~10 m; pavement max 35-50 m / reliable ~25 m. measured: {}",
        ranges_note.join("; ")
    ));
    result
}

/// **Ablation** — statistical filter comparison (none / median / mode) on
/// the grass campaign, extending §3.5's discussion.
pub fn filter_ablation(seed: u64) -> ExperimentResult {
    let campaign = grass_campaign(seed);
    let mut t = Table::new(
        "statistical filter comparison",
        &["filter", "pairs", "median_|e|_m", "gross_rate"],
    );
    for (name, filter) in [
        ("none (first sample)", StatFilter::None),
        ("median", StatFilter::Median),
        ("mode (0.5 m bins)", StatFilter::mode_default()),
    ] {
        let estimates = filter.apply(&campaign);
        let errors: Vec<f64> = estimates
            .iter()
            .map(|(&(a, b), &est)| est - campaign.true_distance(a, b))
            .collect();
        let abs: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
        let gross =
            errors.iter().filter(|e| e.abs() > 1.0).count() as f64 / errors.len().max(1) as f64;
        t.push(&[
            name.into(),
            estimates.len().to_string(),
            m(median_of(&abs).unwrap_or(0.0)),
            pct(gross),
        ]);
    }
    ExperimentResult::new(
        "ABL-FILTER",
        "median vs mode vs unfiltered (grass campaign)",
    )
    .with_table(t)
    .with_note("paper: median/mode limit the effect of outliers; mode needs more samples")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny smoke seed keeps these fast; full runs happen in the
    /// `figures` binary.
    const SEED: u64 = 9;

    #[test]
    fn figure6_has_core_distribution() {
        let r = figure6_refined_histogram(SEED);
        assert_eq!(r.id, "F6");
        assert!(!r.tables.is_empty());
        assert!(r.notes[0].contains("±30 cm"));
    }

    #[test]
    fn figure7_reduces_gross_errors() {
        let campaign = grass_campaign(SEED);
        let estimates = StatFilter::Median.apply(&campaign);
        let strict = ConsistencyConfig {
            bidirectional_tolerance_m: 1.0,
            policy: BidirectionalPolicy::RequireBoth,
        };
        let set = merge_bidirectional(&estimates, campaign.n, &strict);
        let gross_bidi = set
            .iter()
            .map(|(a, b, d)| d - campaign.true_distance(a, b))
            .filter(|e| e.abs() > 1.0)
            .count() as f64
            / set.len().max(1) as f64;
        let lenient = merge_bidirectional(&estimates, campaign.n, &ConsistencyConfig::default());
        let gross_oneway = lenient
            .iter()
            .map(|(a, b, d)| d - campaign.true_distance(a, b))
            .filter(|e| e.abs() > 1.0)
            .count() as f64
            / lenient.len().max(1) as f64;
        assert!(
            gross_bidi <= gross_oneway + 1e-9,
            "bidirectional {gross_bidi} vs one-way {gross_oneway}"
        );
    }
}
