//! Signal-processing experiments: Figure 10 plus the chirp-length and
//! detection-threshold calibrations discussed in §3.6.

use rl_signal::chirp::ChirpTrainConfig;
use rl_signal::detection::DetectionParams;
use rl_signal::detector::ReceptionSimulator;
use rl_signal::dft::{Band, XsmToneDetector};
use rl_signal::env::Environment;
use rl_signal::waveform::WaveformSpec;

use super::ExperimentResult;
use crate::report::{m, pct};
use crate::Table;

/// **F10** — the XSM sliding-DFT tone detector on clean and noisy chirp
/// waveforms (Figure 10: all four chirps found in the clean signal, three
/// of four in the noisy one, no false positives).
pub fn figure10_dft_filter(seed: u64) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "F10",
        "sliding-DFT software tone detector on clean and noisy chirp trains",
    );
    let mut summary = Table::new(
        "detection summary",
        &[
            "signal",
            "true_chirps",
            "detected",
            "aligned",
            "false_positives",
        ],
    );
    for (label, spec, rng_seed) in [
        ("clean", WaveformSpec::figure10_clean(), seed),
        ("noisy", WaveformSpec::figure10_noisy(), seed ^ 1),
    ] {
        let mut rng = rl_math::rng::seeded(rng_seed);
        let wave = spec.synthesize(&mut rng);
        let mut detector = XsmToneDetector::new(Band::Quarter);
        let onsets = detector.detect_chirps(&wave, 24);
        let truth = spec.chirp_onsets();
        let aligned = onsets
            .iter()
            .filter(|&&o| {
                truth
                    .iter()
                    .any(|&t| (o as i64 - t as i64).unsigned_abs() < spec.chirp_len as u64)
            })
            .count();
        let false_positives = onsets.len() - aligned;
        summary.push(&[
            label.into(),
            truth.len().to_string(),
            onsets.len().to_string(),
            aligned.to_string(),
            false_positives.to_string(),
        ]);

        // Filtered-output series for the figure itself.
        let mut series = Table::new(
            format!("{label} filtered output"),
            &["t", "raw", "filtered"],
        );
        let mut tracer = XsmToneDetector::new(Band::Quarter);
        for (i, &s) in wave.iter().enumerate() {
            let (filtered, _) = tracer.step(s);
            series.push(&[i.to_string(), m(s), m(filtered)]);
        }
        result = result.with_table(series);
    }
    result.tables.insert(0, summary);
    result.with_note(
        "paper (noisy): three of four chirps detected, no false positives; \
         clean: all four",
    )
}

/// **Ablation** — chirp-length sweep (§3.6: long chirps overestimate when
/// their early part is missed; chirps under 8 ms miss the speaker ramp).
pub fn chirp_length_ablation(seed: u64) -> ExperimentResult {
    let mut t = Table::new(
        "chirp length sweep, grass at 12 m",
        &[
            "chirp_ms",
            "detection_rate",
            "gross_over_rate",
            "max_over_m",
        ],
    );
    for chirp_ms in [2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let config = ChirpTrainConfig {
            chirp_ms,
            ..ChirpTrainConfig::paper()
        };
        let sim = ReceptionSimulator::new(Environment::Grass.profile(), config);
        let mut rng = rl_math::rng::seeded(seed ^ chirp_ms as u64);
        let trials = 80;
        let mut detections = 0;
        let mut gross_over = 0;
        let mut max_over: f64 = 0.0;
        for _ in 0..trials {
            let out = sim.receive(12.0, &mut rng);
            if let Some(idx) = out.detect(&DetectionParams::paper()) {
                detections += 1;
                let e = out.error_meters(idx);
                if e > 1.0 {
                    gross_over += 1;
                }
                max_over = max_over.max(e);
            }
        }
        t.push(&[
            format!("{chirp_ms:.0}"),
            pct(detections as f64 / trials as f64),
            pct(gross_over as f64 / detections.max(1) as f64),
            m(max_over),
        ]);
    }
    ExperimentResult::new("ABL-CHIRP", "chirp length vs detection and overestimation")
        .with_table(t)
        .with_note(
            "paper: 64 ms chirps caused many overestimates; 8 ms removed them; \
             below 8 ms the speaker cannot power up",
        )
}

/// **Ablation** — detection-threshold sweep (§3.6.2: high thresholds limit
/// false positives in noise, low thresholds catch weak signals).
pub fn threshold_ablation(seed: u64) -> ExperimentResult {
    let mut t = Table::new(
        "threshold sweep, grass",
        &["T", "k", "detect@12m", "false@26m"],
    );
    let sim = ReceptionSimulator::new(Environment::Grass.profile(), ChirpTrainConfig::paper());
    for threshold in [1u8, 2, 3, 4] {
        for required in [4usize, 6, 8] {
            let params = DetectionParams {
                threshold,
                required,
                window: 32,
            };
            let mut rng =
                rl_math::rng::seeded(seed ^ (u64::from(threshold) << 4) ^ required as u64);
            let trials = 60;
            let mut hits = 0;
            let mut false_hits = 0;
            for _ in 0..trials {
                let near = sim.receive(12.0, &mut rng);
                if near.detect(&params).is_some() {
                    hits += 1;
                }
                // Beyond hard range: any detection is a false positive.
                let far = sim.receive(26.0, &mut rng);
                if far.detect(&params).is_some() {
                    false_hits += 1;
                }
            }
            t.push(&[
                threshold.to_string(),
                required.to_string(),
                pct(hits as f64 / trials as f64),
                pct(false_hits as f64 / trials as f64),
            ]);
        }
    }
    ExperimentResult::new(
        "ABL-THRESH",
        "detection thresholds: sensitivity vs false positives",
    )
    .with_table(t)
    .with_note("paper calibrated T=2, k=6 of 32 for the grass deployment")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_detects_most_chirps() {
        let r = figure10_dft_filter(3);
        // Summary table is first; read aligned counts.
        let csv = r.tables[0].to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines.len() >= 3);
        let clean: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(clean[0], "clean");
        assert_eq!(clean[4], "0", "clean signal must have no false positives");
        let clean_detected: usize = clean[2].parse().unwrap();
        assert_eq!(clean_detected, 4);
    }

    #[test]
    fn eight_ms_beats_sixtyfour_on_overestimates() {
        let r = chirp_length_ablation(5);
        let csv = r.tables[0].to_csv();
        let row = |ms: &str| -> Vec<String> {
            csv.lines()
                .find(|l| l.starts_with(&format!("{ms},")))
                .unwrap()
                .split(',')
                .map(String::from)
                .collect()
        };
        let over8: f64 = row("8")[2].trim_end_matches('%').parse().unwrap();
        let over64: f64 = row("64")[2].trim_end_matches('%').parse().unwrap();
        assert!(
            over64 >= over8,
            "64 ms should overestimate at least as often: {over64} vs {over8}"
        );
    }
}
