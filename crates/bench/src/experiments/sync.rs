//! Clock-synchronization error analysis (§3.1: "time synchronization by
//! itself is not a significant source of error").

use rl_net::clock::{DriftingClock, TimeSync};

use super::ExperimentResult;
use crate::report::pct;
use crate::Table;

/// **SYNC** — ranging error caused by clock drift: the paper's analytic
/// bound (50 µs/s ⇒ ~0.15 cm at 30 m) plus simulated FTSP exchanges.
pub fn sync_error_bound(seed: u64) -> ExperimentResult {
    let mut analytic = Table::new(
        "analytic bound",
        &["drift_us_per_s", "distance_m", "ranging_error_cm"],
    );
    for drift_us in [10.0, 50.0, 100.0] {
        for distance in [10.0, 20.0, 30.0] {
            let err_m = TimeSync::max_ranging_error_m(drift_us * 1e-6, distance, 340.0);
            analytic.push(&[
                format!("{drift_us:.0}"),
                format!("{distance:.0}"),
                format!("{:.4}", err_m * 100.0),
            ]);
        }
    }

    // Simulated exchanges: convert sender timestamps 88 ms after sync and
    // measure the conversion error distribution.
    let sync = TimeSync::ftsp();
    let mut rng = rl_math::rng::seeded(seed);
    let mut worst_err_s: f64 = 0.0;
    let mut sum_err_s = 0.0;
    let trials = 500;
    for _ in 0..trials {
        let a = DriftingClock::sample(&mut rng, 100.0, 5.0e-5);
        let b = DriftingClock::sample(&mut rng, 100.0, 5.0e-5);
        let t0 = 10.0;
        let state = sync.synchronize(&a, &b, t0, &mut rng);
        let t1 = t0 + 30.0 / 340.0; // sound flight time at 30 m
        let converted = state.sender_to_receiver(a.local_from_global(t1));
        let err = (converted - b.local_from_global(t1)).abs();
        worst_err_s = worst_err_s.max(err);
        sum_err_s += err;
    }
    let mut simulated = Table::new(
        "simulated FTSP exchange (30 m flight)",
        &["metric", "value"],
    );
    simulated.push(&[
        "mean |error| (µs)".into(),
        format!("{:.2}", sum_err_s / trials as f64 * 1e6),
    ]);
    simulated.push(&[
        "max |error| (µs)".into(),
        format!("{:.2}", worst_err_s * 1e6),
    ]);
    simulated.push(&[
        "max ranging error (cm)".into(),
        format!("{:.3}", worst_err_s * 340.0 * 100.0),
    ]);

    let bound_cm = TimeSync::max_ranging_error_m(5.0e-5, 30.0, 340.0) * 100.0;
    ExperimentResult::new("SYNC", "clock-drift contribution to ranging error")
        .with_table(analytic)
        .with_table(simulated)
        .with_note(format!(
            "paper: 50 µs/s over 30 m flight => ~0.15 cm; measured analytic {bound_cm:.3} cm \
             (simulated exchanges include µs-scale MAC jitter, still sub-millimeter ranging impact: {})",
            pct(0.0015 / 0.33) // relative to the 33 cm core error
        ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_matches_paper() {
        let r = sync_error_bound(1);
        assert!(r.notes[0].contains("0.150 cm") || r.notes[0].contains("0.15 cm"));
        // The analytic table contains the 50/30 entry.
        let csv = r.tables[0].to_csv();
        assert!(csv.lines().any(|l| l.starts_with("50,30,0.1500")));
    }
}
