//! Online tracking: warm-started incremental updates vs cold re-solves
//! on mobility streams.
//!
//! The paper's evaluation is batch: one measurement set, one solve. The
//! tracking layer ([`rl_core::tracking`]) turns that into a stream —
//! this experiment measures what the stream buys. A
//! [`StreamingTracker`] consumes a [`MobilityScenario`] trace twice:
//! once warm (previous solution as seed, a few Gauss–Newton steps per
//! tick) and once forced cold (a from-scratch batch solve every tick,
//! seeded identically via [`rl_core::tracking::cold_seed`]). Sustained
//! updates/sec and per-tick error are reported side by side at town and
//! metro-250 scale.

use std::time::Duration;

use rl_core::eval::evaluate_absolute;
use rl_core::tracking::{solution_fingerprint, StreamingTracker, Tracker, TrackerConfig};
use rl_deploy::mobility::{MobilityScenario, MobilityTrace};

use super::ExperimentResult;
use crate::Table;

/// A churn-restart threshold no churn fraction can satisfy: with it, the
/// warm seed is never declared valid and **every** tick is solved cold —
/// the reference arm of the warm-vs-cold comparison.
pub const ALWAYS_COLD: f64 = f64::NEG_INFINITY;

/// Per-stream aggregates of one tracker pass over one trace.
#[derive(Debug, Clone)]
pub struct StreamRun {
    /// Ticks consumed.
    pub ticks: usize,
    /// Ticks answered by the warm incremental path.
    pub warm_updates: u64,
    /// Ticks answered by the cold fallback.
    pub cold_solves: u64,
    /// Per-tick solve wall time, index = tick.
    pub wall: Vec<Duration>,
    /// Whether each tick went through the warm path.
    pub warm: Vec<bool>,
    /// Per-tick mean localization error against that tick's ground
    /// truth, meters.
    pub error_m: Vec<f64>,
    /// Per-tick solution fingerprints (bit-exact replay digests).
    pub fingerprints: Vec<u64>,
}

impl StreamRun {
    /// Mean wall time over the ticks selected by `warm_path`
    /// (`true` = warm ticks, `false` = cold ticks), or `None` when no
    /// tick took that path.
    pub fn mean_wall(&self, warm_path: bool) -> Option<Duration> {
        let selected: Vec<&Duration> = self
            .wall
            .iter()
            .zip(&self.warm)
            .filter(|(_, &w)| w == warm_path)
            .map(|(d, _)| d)
            .collect();
        if selected.is_empty() {
            return None;
        }
        Some(selected.iter().copied().sum::<Duration>() / selected.len() as u32)
    }

    /// Mean per-tick localization error over the whole stream, meters.
    pub fn mean_error(&self) -> f64 {
        if self.error_m.is_empty() {
            return f64::NAN;
        }
        self.error_m.iter().sum::<f64>() / self.error_m.len() as f64
    }
}

/// Drives `tracker` through every tick of `trace`, recording per-tick
/// wall time, path (warm/cold), error against ground truth, and the
/// bit-exact solution fingerprint.
///
/// # Panics
///
/// Panics if any tick fails to solve or to evaluate — the mobility
/// traces this experiment builds are connected by construction, so a
/// failure is a tracking-layer bug, not a workload property.
pub fn run_stream(tracker: &mut StreamingTracker, trace: &MobilityTrace) -> StreamRun {
    let mut run = StreamRun {
        ticks: 0,
        warm_updates: 0,
        cold_solves: 0,
        wall: Vec::with_capacity(trace.len()),
        warm: Vec::with_capacity(trace.len()),
        error_m: Vec::with_capacity(trace.len()),
        fingerprints: Vec::with_capacity(trace.len()),
    };
    for obs in trace.iter() {
        let warm_before = tracker.warm_updates();
        let (wall, fingerprint, error_m) = {
            let solution = tracker
                .observe(obs)
                .unwrap_or_else(|e| panic!("tick {} failed: {e}", obs.tick));
            let truth = obs.truth.as_ref().expect("mobility traces carry truth");
            let eval = evaluate_absolute(solution.positions(), truth)
                .unwrap_or_else(|e| panic!("tick {} unevaluable: {e}", obs.tick));
            (
                solution.stats().wall_time,
                solution_fingerprint(solution),
                eval.mean_error,
            )
        };
        run.wall.push(wall);
        run.warm.push(tracker.warm_updates() > warm_before);
        run.fingerprints.push(fingerprint);
        run.error_m.push(error_m);
        run.ticks += 1;
    }
    run.warm_updates = tracker.warm_updates();
    run.cold_solves = tracker.cold_solves();
    run
}

/// Runs the warm-vs-cold pair on one mobility scenario: the same trace,
/// the same per-tick cold seeds, one tracker warm-started and one forced
/// cold. Returns `(warm, cold)`.
pub fn warm_vs_cold(scenario: &MobilityScenario, seed: u64) -> (StreamRun, StreamRun) {
    let trace = scenario.trace(seed);
    let mut warm = StreamingTracker::with_lss(TrackerConfig::new(seed));
    let mut cold = StreamingTracker::with_lss(
        TrackerConfig::new(seed).with_churn_restart_fraction(ALWAYS_COLD),
    );
    (run_stream(&mut warm, &trace), run_stream(&mut cold, &trace))
}

/// **TRACKING** — sustained updates/sec and per-tick error of the
/// warm-started tracker vs a cold re-solve every tick, on town- and
/// metro-250-scale mobility streams (random-walk motion + light churn).
pub fn tracking_stream(seed: u64) -> ExperimentResult {
    let cells = [
        (MobilityScenario::town(seed).with_ticks(16), "town"),
        (MobilityScenario::metro_250(seed).with_ticks(8), "metro-250"),
    ];
    let mut table = Table::new(
        "warm-started tracking vs cold re-solve",
        &[
            "stream",
            "ticks",
            "warm_ticks",
            "cold_ticks",
            "warm_ms_per_tick",
            "cold_ms_per_tick",
            "speedup",
            "warm_upd_per_s",
            "warm_err_m",
            "cold_err_m",
            "err_ratio",
        ],
    );
    let mut notes = Vec::new();
    for (scenario, label) in cells {
        let (warm, cold) = warm_vs_cold(&scenario, seed);
        let warm_tick = warm
            .mean_wall(true)
            .expect("warm stream has warm ticks")
            .as_secs_f64();
        let cold_tick = cold
            .mean_wall(false)
            .expect("cold stream has cold ticks")
            .as_secs_f64();
        let speedup = cold_tick / warm_tick.max(1e-9);
        let err_ratio = warm.mean_error() / cold.mean_error().max(1e-9);
        table.push(&[
            label.to_string(),
            warm.ticks.to_string(),
            warm.warm_updates.to_string(),
            warm.cold_solves.to_string(),
            format!("{:.2}", warm_tick * 1e3),
            format!("{:.2}", cold_tick * 1e3),
            format!("{speedup:.1}x"),
            format!("{:.0}", 1.0 / warm_tick.max(1e-9)),
            format!("{:.3}", warm.mean_error()),
            format!("{:.3}", cold.mean_error()),
            format!("{err_ratio:.2}"),
        ]);
        notes.push(format!(
            "{label}: warm path solves {:.0} updates/s vs {:.0} cold re-solves/s at {:.2}x the \
             cold error",
            1.0 / warm_tick.max(1e-9),
            1.0 / cold_tick.max(1e-9),
            err_ratio,
        ));
    }
    let mut result = ExperimentResult::new(
        "TRACKING",
        "warm-started tracking vs cold re-solve on mobility streams (town, metro-250)",
    )
    .with_table(table)
    .with_note(
        "both arms consume the identical trace and identical per-tick cold seeds \
         (rl_core::tracking::cold_seed); the warm arm re-pins anchors and takes 4 bounded \
         Gauss-Newton/CG steps per tick, the cold arm re-solves from scratch every tick",
    );
    for note in notes {
        result = result.with_note(note);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_and_cold_arms_disagree_on_path_but_not_workload() {
        let scenario = MobilityScenario::town(5).with_ticks(4);
        let (warm, cold) = warm_vs_cold(&scenario, 5);
        assert_eq!(warm.ticks, 4);
        assert_eq!(cold.ticks, 4);
        // Warm arm: one cold bootstrap tick, then warm updates.
        assert_eq!(warm.cold_solves, 1);
        assert_eq!(warm.warm_updates, 3);
        // Cold arm: never warm.
        assert_eq!(cold.cold_solves, 4);
        assert_eq!(cold.warm_updates, 0);
        // Tick 0 is the same cold solve in both arms, bit for bit.
        assert_eq!(warm.fingerprints[0], cold.fingerprints[0]);
        // Errors are finite and comparable.
        for run in [&warm, &cold] {
            for e in &run.error_m {
                assert!(e.is_finite() && *e >= 0.0);
            }
        }
        assert!(warm.mean_error() <= cold.mean_error() * 2.0 + 0.5);
    }

    #[test]
    fn stream_runs_replay_bit_identically() {
        let scenario = MobilityScenario::town(9).with_ticks(3);
        let (a, _) = warm_vs_cold(&scenario, 9);
        let (b, _) = warm_vs_cold(&scenario, 9);
        assert_eq!(a.fingerprints, b.fingerprints);
    }
}
