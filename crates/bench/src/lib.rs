//! Experiment harness regenerating every figure of the paper.
//!
//! Each evaluation artifact of Kwon et al. (ICDCS 2005) has a matching
//! experiment function in [`experiments`]; the `figures` binary runs them
//! and prints the same rows/series the paper reports, alongside CSV dumps
//! for plotting. The Criterion benches in `benches/` time the underlying
//! algorithms.
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | F2   | Fig. 2 baseline ranging errors (urban) | [`experiments::ranging::figure2_baseline_urban`] |
//! | F4   | Fig. 4 baseline + median filter | [`experiments::ranging::figure4_median_filter`] |
//! | F6   | Fig. 6 refined-service error histogram | [`experiments::ranging::figure6_refined_histogram`] |
//! | F7   | Fig. 7 bidirectional-only histogram | [`experiments::ranging::figure7_bidirectional`] |
//! | F8   | Fig. 8 error vs distance | [`experiments::ranging::figure8_error_vs_distance`] |
//! | MAXR | §3.6.2 maximum-range study | [`experiments::ranging::max_range_study`] |
//! | SYNC | §3.1 clock-sync error bound | [`experiments::sync::sync_error_bound`] |
//! | F10  | Fig. 10 DFT tone-detection filter | [`experiments::signal::figure10_dft_filter`] |
//! | F11  | Fig. 11 intersection consistency demo | [`experiments::multilateration::figure11_intersection_consistency`] |
//! | F12  | Fig. 12 parking-lot multilateration | [`experiments::multilateration::figure12_parking_lot`] |
//! | F13/14 | Figs. 13–14 sparse-grid multilateration | [`experiments::multilateration::figure14_sparse_grid`] |
//! | F15/16 | Figs. 15–16 augmented multilateration | [`experiments::multilateration::figure16_augmented_grid`] |
//! | F17/18 | Figs. 17–18 centralized LSS (grid) | [`experiments::lss::figure18_grid_constrained`] |
//! | F19  | Fig. 19 LSS without constraint (grid) | [`experiments::lss::figure19_grid_unconstrained`] |
//! | F20  | Fig. 20 town multilateration | [`experiments::multilateration::figure20_town`] |
//! | F21  | Fig. 21 town LSS with constraint | [`experiments::lss::figure21_town_constrained`] |
//! | F22  | Fig. 22 town LSS without constraint | [`experiments::lss::figure22_town_unconstrained`] |
//! | F23  | Fig. 23 error vs epoch | [`experiments::lss::figure23_error_vs_epoch`] |
//! | F24  | Fig. 24 distributed LSS, sparse | [`experiments::distributed::figure24_sparse`] |
//! | F25  | Fig. 25 distributed LSS, augmented | [`experiments::distributed::figure25_augmented`] |
//! | METRO | metro-scale sweep (beyond the paper) | [`experiments::metro::metro_sweep`] |
//!
//! Ablations beyond the paper's figures: soft-constraint weight sweep,
//! statistical-filter comparison, chirp-length sweep, detection-threshold
//! sweep, transform-method comparison, and LSS initialization comparison —
//! see the `ablations` module.
//!
//! The [`campaign`] module is the batch-scale seam: a [`Campaign`] shards
//! a (scenarios × localizers × seeds) grid across a `std::thread` worker
//! pool, runs every cell through the unified
//! [`Localizer`](rl_core::problem::Localizer) trait, and summarizes error
//! and per-cell wall time. The report is bit-identical for any worker
//! count (see the module docs for the determinism contract); the
//! solver-comparison experiments above are built on it, and the `METRO`
//! experiment pushes it to 1000-node deployments.
//!
//! ```
//! use rl_bench::campaign::{Campaign, CampaignConfig};
//! use rl_core::baselines::CentroidLocalizer;
//! use rl_core::multilateration::{MultilaterationConfig, MultilaterationSolver};
//! use rl_deploy::Scenario;
//!
//! let campaign = Campaign::new()
//!     .scenario(Scenario::town(2005))
//!     .localizer(Box::new(MultilaterationSolver::new(
//!         MultilaterationConfig::paper().progressive(),
//!     )))
//!     .localizer(Box::new(CentroidLocalizer::new(22.0)))
//!     .trials(2005, 2);
//!
//! // Machine-sized worker pool and an explicit 2-worker pool produce
//! // the bit-identical report.
//! let report = campaign.run();
//! let two = campaign.run_with(CampaignConfig::default().with_workers(2));
//! assert_eq!(report.fingerprint(), two.fingerprint());
//! assert_eq!(report.runs.len(), 4);
//! println!("{}", report.summary_table());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod experiments;
pub mod report;

pub use campaign::{Campaign, CampaignConfig, CampaignReport, Chunking};
pub use report::Table;

/// The master seed all experiments derive their RNG streams from, so the
/// whole figure set is reproducible bit-for-bit.
pub const MASTER_SEED: u64 = 20050614;
