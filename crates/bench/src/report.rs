//! Tabular experiment output: pretty printing plus CSV dumps.

use std::fmt::Write as _;
use std::path::Path;

/// A simple experiment results table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable cells.
    pub fn push_display<D: core::fmt::Display>(&mut self, cells: &[D]) {
        let row: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.push(&row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to `dir/<slug>.csv`, creating the
    /// directory if needed; returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_csv(&self, dir: &Path, slug: &str) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{slug}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with three decimals (the workspace's standard precision
/// for meters).
pub fn m(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push(&["alpha".into(), "1.5".into()]);
        t.push_display(&["beta", "2"]);
        t
    }

    #[test]
    fn render_contains_everything() {
        let t = sample();
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("name"));
        assert!(s.contains("alpha"));
        assert!(s.contains("beta"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "demo");
        assert_eq!(t.to_string(), s);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("csv", &["a", "b"]);
        t.push(&["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("bad", &["only one"]);
        t.push(&["a".into(), "b".into()]);
    }

    #[test]
    fn save_csv_roundtrip() {
        let t = sample();
        let dir = std::env::temp_dir().join("rl-bench-test-report");
        let path = t.save_csv(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("name,value"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn formatters() {
        assert_eq!(m(1.23456), "1.235");
        assert_eq!(pct(0.5), "50.0%");
    }
}
