//! Baseline localization schemes from the paper's Related Work (§2).
//!
//! The paper positions its LSS scheme against the anchor-based families of
//! the early-2000s literature. Two representatives are implemented here so
//! the benchmark harness can compare against them directly:
//!
//! * [`dv_hop`] — APS DV-hop (Niculescu & Nath): anchors flood hop counts;
//!   each anchor converts its known distances to other anchors into an
//!   average distance-per-hop; nodes multilaterate using
//!   `hops × meters_per_hop` as range estimates. Works "well only for
//!   isotropic networks with uniform node density".
//! * [`centroid_localization`] — GPS-less centroid localization (Bulusu, Heidemann &
//!   Estrin): each node localizes to the centroid of the anchors it can
//!   hear. Coarse but nearly free.

use rl_geom::Point2;
use rl_net::flood::FloodNode;
use rl_net::sim::Simulator;
use rl_net::{NodeId, RadioModel, Topology};

use crate::multilateration::{MultilaterationConfig, MultilaterationSolver};
use crate::types::{Anchor, PositionMap};
use crate::{LocalizationError, Result};

/// Outcome of a DV-hop run.
#[derive(Debug, Clone)]
pub struct DvHopOutcome {
    /// Estimated positions (anchors at their known positions).
    pub positions: PositionMap,
    /// The network-wide average meters-per-hop each anchor computed,
    /// indexed like `anchors`.
    pub meters_per_hop: Vec<f64>,
}

/// Runs DV-hop over the connectivity graph induced by `radio` on the true
/// positions (connectivity is physical; the algorithm itself only ever
/// sees hop counts and anchor coordinates).
///
/// # Errors
///
/// * [`LocalizationError::TooFewAnchors`] with fewer than 3 anchors,
/// * [`LocalizationError::InvalidConfig`] for out-of-range anchor ids,
/// * [`LocalizationError::InsufficientMeasurements`] if no anchor pair is
///   mutually reachable (no meters-per-hop estimate possible).
pub fn dv_hop<R: rand::Rng + ?Sized>(
    truth_positions: &[Point2],
    anchors: &[Anchor],
    radio: &RadioModel,
    rng: &mut R,
) -> Result<DvHopOutcome> {
    let n = truth_positions.len();
    if anchors.len() < 3 {
        return Err(LocalizationError::TooFewAnchors {
            needed: 3,
            got: anchors.len(),
        });
    }
    for a in anchors {
        if a.id.index() >= n {
            return Err(LocalizationError::InvalidConfig("anchor id out of range"));
        }
    }

    // Phase 1: every anchor floods; every node learns hop counts.
    let anchor_ids: Vec<NodeId> = anchors.iter().map(|a| a.id).collect();
    let nodes: Vec<FloodNode<()>> = (0..n)
        .map(|i| {
            if anchor_ids.contains(&NodeId(i)) {
                FloodNode::origin(())
            } else {
                FloodNode::relay()
            }
        })
        .collect();
    let seed = rng.random::<u64>();
    let sim = Simulator::new(nodes, truth_positions, radio.clone(), seed);
    // The default event budget is a runaway-protocol guard sized for
    // town-scale networks; `anchors` concurrent floods legitimately cost
    // on the order of anchors x directed-edges events, so at metro scale
    // (1000 nodes, 100 anchors) the budget must grow with the workload.
    let edges = sim.topology().edge_count();
    let budget = 1_000_000usize.max(8 * anchors.len() * edges + 1_000 * n);
    let mut sim = sim.with_event_budget(budget);
    sim.run()
        .map_err(|_| LocalizationError::InvalidConfig("flooding exhausted the event budget"))?;

    // hops[i][k]: hop count from node i to anchor k.
    let hops: Vec<Vec<Option<usize>>> = (0..n)
        .map(|i| {
            anchor_ids
                .iter()
                .map(|&aid| {
                    if NodeId(i) == aid {
                        Some(0)
                    } else {
                        sim.node(NodeId(i)).hops_from(aid)
                    }
                })
                .collect()
        })
        .collect();

    // Phase 2: each anchor computes average meters-per-hop from its known
    // straight-line distances to the other anchors.
    let mut meters_per_hop = Vec::with_capacity(anchors.len());
    for (k, a) in anchors.iter().enumerate() {
        let mut total_m = 0.0;
        let mut total_hops = 0usize;
        for (j, b) in anchors.iter().enumerate() {
            if j == k {
                continue;
            }
            if let Some(h) = hops[a.id.index()][j] {
                total_m += a.position.distance(b.position);
                total_hops += h;
            }
        }
        meters_per_hop.push(if total_hops > 0 {
            total_m / total_hops as f64
        } else {
            f64::NAN
        });
    }
    if meters_per_hop.iter().all(|m| !m.is_finite()) {
        return Err(LocalizationError::InsufficientMeasurements(
            "no anchor pair is mutually reachable",
        ));
    }

    // Phase 3: each node converts hop counts into distance estimates using
    // the meters-per-hop of its *closest* anchor (the value it would have
    // received first), then multilaterates.
    let mut set = rl_ranging::measurement::MeasurementSet::new(n);
    for (i, node_hops) in hops.iter().enumerate().take(n) {
        if anchor_ids.contains(&NodeId(i)) {
            continue;
        }
        // Closest anchor by hops with a finite calibration value.
        let mph = anchor_ids
            .iter()
            .enumerate()
            .filter_map(|(k, _)| node_hops[k].map(|h| (h, meters_per_hop[k])))
            .filter(|(_, m)| m.is_finite())
            .min_by_key(|&(h, _)| h)
            .map(|(_, m)| m);
        let Some(mph) = mph else { continue };
        for (k, a) in anchors.iter().enumerate() {
            if let Some(h) = node_hops[k] {
                if h > 0 {
                    set.insert(NodeId(i), a.id, mph * h as f64);
                }
            }
        }
    }
    let solver = MultilaterationSolver::new(MultilaterationConfig {
        // Hop-distance estimates are coarse; the intersection check would
        // reject nearly everything, so DV-hop runs without it.
        consistency: None,
        reject_ambiguous: false,
        ..MultilaterationConfig::default()
    });
    let outcome = solver.solve(&set, anchors, rng)?;
    Ok(DvHopOutcome {
        positions: outcome.positions,
        meters_per_hop,
    })
}

/// Centroid localization: each non-anchor localizes to the centroid of
/// the anchors within radio range; nodes hearing no anchor stay
/// unlocalized.
///
/// # Errors
///
/// * [`LocalizationError::TooFewAnchors`] with no anchors at all,
/// * [`LocalizationError::InvalidConfig`] for out-of-range anchor ids.
pub fn centroid_localization(
    truth_positions: &[Point2],
    anchors: &[Anchor],
    radio_range_m: f64,
) -> Result<PositionMap> {
    let n = truth_positions.len();
    if anchors.is_empty() {
        return Err(LocalizationError::TooFewAnchors { needed: 1, got: 0 });
    }
    for a in anchors {
        if a.id.index() >= n {
            return Err(LocalizationError::InvalidConfig("anchor id out of range"));
        }
    }
    let topology = Topology::from_positions(truth_positions, radio_range_m);
    let mut positions = PositionMap::unlocalized(n);
    for a in anchors {
        positions.set(a.id, a.position);
    }
    for i in 0..n {
        if positions.is_localized(NodeId(i)) {
            continue;
        }
        let heard: Vec<Point2> = anchors
            .iter()
            .filter(|a| topology.are_neighbors(NodeId(i), a.id))
            .map(|a| a.position)
            .collect();
        if let Some(c) = rl_geom::centroid(&heard) {
            positions.set(NodeId(i), c);
        }
    }
    Ok(positions)
}

/// DV-hop as a [`Localizer`](crate::problem::Localizer). Requires the
/// problem to carry ground truth (radio connectivity) and at least three
/// anchors; the solution is absolute.
#[derive(Debug, Clone)]
pub struct DvHopLocalizer {
    radio: RadioModel,
}

impl DvHopLocalizer {
    /// Creates the localizer with the radio model the hop-count floods run
    /// on.
    pub fn new(radio: RadioModel) -> Self {
        DvHopLocalizer { radio }
    }
}

impl crate::problem::Localizer for DvHopLocalizer {
    fn name(&self) -> &str {
        "dv-hop"
    }

    fn localize(
        &self,
        problem: &crate::problem::Problem,
        rng: &mut dyn rand::RngCore,
    ) -> Result<crate::problem::Solution> {
        use crate::problem::{Frame, Solution, SolveStats};
        let start = std::time::Instant::now();
        let truth = problem.truth_required()?;
        let out = dv_hop(truth, problem.anchors(), &self.radio, rng)?;
        Ok(Solution::new(
            out.positions,
            Frame::Absolute,
            SolveStats {
                iterations: 0,
                residual: None,
                converged: None,
                cg_iterations: None,
                wall_time: start.elapsed(),
            },
        ))
    }
}

/// Centroid localization as a [`Localizer`](crate::problem::Localizer).
/// Requires ground truth (radio connectivity) and at least one anchor; the
/// solution is absolute.
#[derive(Debug, Clone, Copy)]
pub struct CentroidLocalizer {
    radio_range_m: f64,
}

impl CentroidLocalizer {
    /// Creates the localizer with the radio range anchors are heard
    /// within.
    pub fn new(radio_range_m: f64) -> Self {
        CentroidLocalizer { radio_range_m }
    }
}

impl crate::problem::Localizer for CentroidLocalizer {
    fn name(&self) -> &str {
        "centroid"
    }

    fn localize(
        &self,
        problem: &crate::problem::Problem,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<crate::problem::Solution> {
        use crate::problem::{Frame, Solution, SolveStats};
        let start = std::time::Instant::now();
        let truth = problem.truth_required()?;
        let positions = centroid_localization(truth, problem.anchors(), self.radio_range_m)?;
        Ok(Solution::new(
            positions,
            Frame::Absolute,
            SolveStats {
                iterations: 0,
                residual: None,
                converged: None,
                cg_iterations: None,
                wall_time: start.elapsed(),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_absolute;
    use rl_math::rng::seeded;

    fn grid(nx: usize, ny: usize, spacing: f64) -> Vec<Point2> {
        (0..nx * ny)
            .map(|i| Point2::new((i % nx) as f64 * spacing, (i / nx) as f64 * spacing))
            .collect()
    }

    fn corner_anchors(truth: &[Point2], nx: usize, ny: usize) -> Vec<Anchor> {
        [0, nx - 1, nx * (ny - 1), nx * ny - 1]
            .iter()
            .map(|&i| Anchor::new(NodeId(i), truth[i]))
            .collect()
    }

    #[test]
    fn dv_hop_on_isotropic_grid() {
        // The favorable case the APS paper assumes: uniform density,
        // isotropic. Radio range slightly over one grid step.
        let truth = grid(5, 5, 10.0);
        let anchors = corner_anchors(&truth, 5, 5);
        let mut rng = seeded(1);
        let out = dv_hop(&truth, &anchors, &RadioModel::ideal(15.0), &mut rng).unwrap();
        let eval = evaluate_absolute(&out.positions, &truth).unwrap();
        assert!(
            eval.localized >= 20,
            "dv-hop should localize most nodes, got {}",
            eval.localized
        );
        assert!(
            eval.mean_error < 6.0,
            "isotropic grid error {} m",
            eval.mean_error
        );
        // Meters-per-hop should be near the diagonal-ish step length.
        for mph in &out.meters_per_hop {
            assert!((8.0..20.0).contains(mph), "meters/hop {mph}");
        }
    }

    #[test]
    fn dv_hop_degrades_on_anisotropic_layout() {
        // A bent corridor: hop counts no longer track Euclidean distance.
        let mut truth: Vec<Point2> = (0..8).map(|i| Point2::new(i as f64 * 10.0, 0.0)).collect();
        truth.extend((1..8).map(|i| Point2::new(70.0, i as f64 * 10.0)));
        let anchors = vec![
            Anchor::new(NodeId(0), truth[0]),
            Anchor::new(NodeId(7), truth[7]),
            Anchor::new(NodeId(14), truth[14]),
        ];
        let mut rng = seeded(2);
        let out = dv_hop(&truth, &anchors, &RadioModel::ideal(15.0), &mut rng).unwrap();
        let eval = evaluate_absolute(&out.positions, &truth).unwrap();
        let isotropic_truth = grid(5, 3, 10.0);
        let isotropic_anchors = corner_anchors(&isotropic_truth, 5, 3);
        let iso = dv_hop(
            &isotropic_truth,
            &isotropic_anchors,
            &RadioModel::ideal(15.0),
            &mut rng,
        )
        .unwrap();
        let iso_eval = evaluate_absolute(&iso.positions, &isotropic_truth).unwrap();
        assert!(
            eval.mean_error > iso_eval.mean_error,
            "anisotropy should hurt dv-hop: corridor {} vs grid {}",
            eval.mean_error,
            iso_eval.mean_error
        );
    }

    #[test]
    fn dv_hop_error_cases() {
        let truth = grid(3, 3, 10.0);
        let mut rng = seeded(3);
        let too_few = vec![Anchor::new(NodeId(0), truth[0])];
        assert!(matches!(
            dv_hop(&truth, &too_few, &RadioModel::ideal(15.0), &mut rng),
            Err(LocalizationError::TooFewAnchors { .. })
        ));
        let bad = vec![Anchor::new(NodeId(99), Point2::ORIGIN); 3];
        assert!(matches!(
            dv_hop(&truth, &bad, &RadioModel::ideal(15.0), &mut rng),
            Err(LocalizationError::InvalidConfig(_))
        ));
    }

    #[test]
    fn centroid_is_coarse_but_total() {
        let truth = grid(4, 4, 10.0);
        let anchors = corner_anchors(&truth, 4, 4);
        // Range long enough that everyone hears all four corners.
        let positions = centroid_localization(&truth, &anchors, 100.0).unwrap();
        let eval = evaluate_absolute(&positions, &truth).unwrap();
        assert_eq!(eval.localized, 16);
        // Everyone lands on the global centroid: coarse by design.
        assert!(eval.mean_error > 5.0);
        assert!(eval.mean_error < 25.0);
    }

    #[test]
    fn centroid_with_short_range_leaves_gaps() {
        let truth = grid(4, 4, 10.0);
        let anchors = corner_anchors(&truth, 4, 4);
        let positions = centroid_localization(&truth, &anchors, 11.0).unwrap();
        // Center nodes hear no anchor.
        assert!(positions.localized_count() < 16);
        assert!(positions.localized_count() >= 4);
    }

    #[test]
    fn centroid_error_cases() {
        let truth = grid(2, 2, 10.0);
        assert!(matches!(
            centroid_localization(&truth, &[], 10.0),
            Err(LocalizationError::TooFewAnchors { .. })
        ));
        let bad = vec![Anchor::new(NodeId(9), Point2::ORIGIN)];
        assert!(centroid_localization(&truth, &bad, 10.0).is_err());
    }
}
