//! Distributed LSS localization (Section 4.3).
//!
//! The centralized algorithm does not scale: every added node grows the
//! stress function and its local-minima count. The distributed variant
//! splits the work in three steps:
//!
//! 1. **Local localization** — every node runs LSS over itself and its
//!    ranging neighbors, producing a *local map* in an arbitrary relative
//!    frame.
//! 2. **Pairwise transforms** — neighbors exchange local maps and estimate
//!    the rigid transform (rotation + reflection + translation) relating
//!    their frames from shared nodes, either by full minimization or by
//!    the cheap center-of-mass/covariance closed form.
//! 3. **Alignment** — starting from a root, a flood carries the global
//!    frame (origin + axis vectors) through the network; each node maps it
//!    into its own frame, computes its global position as
//!    `((p − ô)·x̂, (p − ô)·ŷ)`, and forwards.
//!
//! The protocol runs on the `rl-net` discrete-event simulator with real
//! message passing ("two local data exchanges per node and one round of
//! flooding").
//!
//! # Metro scale
//!
//! Two additions beyond the paper keep the pipeline competitive on
//! metro-size deployments (hundreds to thousands of nodes):
//!
//! * the **local-solve phase** — by far the dominant cost, one LSS solve
//!   per node — shards across [`rl_net::pool`]'s deterministic worker
//!   pool ([`DistributedConfig::workers`]), each node drawing from its
//!   own RNG stream derived from `(run seed, node id)` so the result is
//!   bit-identical for any worker count, and
//! * a **refinement stage** ([`refine`]) after the alignment flood:
//!   Tikhonov-regularized Gauss–Newton over the stitched map, each step
//!   solved with [`rl_math::sparse::cg`], which collapses the
//!   registration drift that accumulates hop over hop across districts
//!   (tens of meters at metro-1000) back to the measurement noise floor.
//!
//! [`DistributedConfig::metro`] bundles the metro-tuned settings.

pub mod refine;

pub use refine::{refine_aligned, refine_anchored, RefineConfig, RefineOutcome};

use std::collections::BTreeMap;

use rand::Rng;
use rl_geom::{fit_rigid_transform, Point2, RigidTransform, Vec2};
use rl_math::gradient::{minimize, DescentConfig, Objective};
use rl_net::sim::{Api, Node, Simulator};
use rl_net::{NodeId, RadioModel};
use rl_ranging::measurement::MeasurementSet;
use serde::{Deserialize, Serialize};

use crate::lss::{LssConfig, LssSolver};
use crate::types::PositionMap;
use crate::{LocalizationError, Result};

/// A node's local relative map: itself plus its ranging neighbors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalMap {
    /// The node that computed the map.
    pub center: NodeId,
    /// Nodes covered by the map (center included).
    pub nodes: Vec<NodeId>,
    /// Their coordinates in the map's arbitrary local frame.
    pub coords: Vec<Point2>,
}

impl LocalMap {
    /// The local coordinate of `id`, if covered.
    pub fn coord_of(&self, id: NodeId) -> Option<Point2> {
        self.nodes
            .iter()
            .position(|&n| n == id)
            .map(|k| self.coords[k])
    }

    /// Nodes covered by both maps, ascending.
    pub fn shared_nodes(&self, other: &LocalMap) -> Vec<NodeId> {
        self.nodes
            .iter()
            .copied()
            .filter(|id| other.coord_of(*id).is_some())
            .collect()
    }

    /// Builds the local map of `center` from the measurement set by
    /// running LSS over `center` and its neighbors.
    ///
    /// # Errors
    ///
    /// [`LocalizationError::InsufficientMeasurements`] when the cluster
    /// has fewer than three nodes.
    pub fn build<R: Rng + ?Sized>(
        center: NodeId,
        set: &MeasurementSet,
        lss: &LssConfig,
        rng: &mut R,
    ) -> Result<LocalMap> {
        let mut cluster: Vec<NodeId> = vec![center];
        cluster.extend(set.neighbors_of(center).into_iter().map(|(id, _)| id));
        cluster.sort();
        cluster.dedup();
        if cluster.len() < 3 {
            return Err(LocalizationError::InsufficientMeasurements(
                "local cluster needs at least three nodes",
            ));
        }
        let (sub, mapping) = set.subgraph(&cluster);
        let solution = LssSolver::new(lss.clone()).solve(&sub, rng)?;
        Ok(LocalMap {
            center,
            nodes: mapping,
            coords: solution.coordinates().to_vec(),
        })
    }
}

/// How pairwise frame transforms are estimated.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum TransformMethod {
    /// The computationally cheap closed form — translation between
    /// centers of mass, rotation from cross-covariances, reflection by
    /// error comparison (Section 4.3.1's mote-friendly method) —
    /// *center-weighted*: shared nodes far from either map's center get
    /// less pull on the fit, since a local LSS map is most accurate
    /// near its center. An extension beyond the paper; use
    /// [`TransformMethod::CovarianceUniform`] for the paper's exact
    /// uniform-weight registration.
    #[default]
    Covariance,
    /// The paper's closed form with uniform weights over the shared
    /// nodes — Section 4.3.1 exactly, kept for paper-faithful runs.
    CovarianceUniform,
    /// Full gradient-descent minimization over `(θ, t_x, t_y)` for both
    /// reflection factors ("fairly accurate … but too computationally
    /// intensive" for motes).
    Minimization(DescentConfig),
}

/// Sanity guards applied to pairwise transform estimation.
///
/// The paper's algorithm accepts any transform computable from the shared
/// nodes — which is exactly how one bad transform wrecked half of its
/// Figure 24. The hardened defaults reject geometrically untrustworthy
/// transforms so the alignment flood routes around them;
/// [`TransformGuards::permissive`] reproduces the paper's behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransformGuards {
    /// Minimum shared nodes required to relate two frames.
    pub min_shared: usize,
    /// Maximum RMS residual (meters) the fitted transform may leave on the
    /// shared nodes.
    pub max_rmse_m: f64,
    /// Whether to reject nearly collinear shared sets (reflection
    /// ambiguity).
    pub reject_collinear: bool,
}

impl Default for TransformGuards {
    fn default() -> Self {
        TransformGuards {
            min_shared: 4,
            max_rmse_m: 1.5,
            reject_collinear: true,
        }
    }
}

impl TransformGuards {
    /// The paper's unguarded behavior: any transform from at least three
    /// shared nodes is accepted.
    pub fn permissive() -> Self {
        TransformGuards {
            min_shared: 3,
            max_rmse_m: f64::INFINITY,
            reject_collinear: false,
        }
    }
}

/// Estimates the rigid transform mapping `source`-frame coordinates to
/// `target`-frame coordinates using their shared nodes.
///
/// # Errors
///
/// * [`LocalizationError::InsufficientMeasurements`] when a guard rejects
///   the shared set (too few nodes, near-collinear, or residual above
///   `max_rmse_m`),
/// * geometric errors from degenerate configurations.
pub fn estimate_transform(
    source: &LocalMap,
    target: &LocalMap,
    method: &TransformMethod,
    guards: &TransformGuards,
) -> Result<RigidTransform> {
    let shared = source.shared_nodes(target);
    if shared.len() < guards.min_shared {
        return Err(LocalizationError::InsufficientMeasurements(
            "too few shared nodes between local maps",
        ));
    }
    let src: Vec<Point2> = shared
        .iter()
        .map(|&id| source.coord_of(id).expect("shared"))
        .collect();
    let tgt: Vec<Point2> = shared
        .iter()
        .map(|&id| target.coord_of(id).expect("shared"))
        .collect();
    // Near-collinear shared sets leave the reflection factor ambiguous and
    // produce mirror-image transforms; reject them so the alignment flood
    // routes through a geometrically richer neighbor instead.
    if guards.reject_collinear && (is_near_collinear(&src) || is_near_collinear(&tgt)) {
        return Err(LocalizationError::InsufficientMeasurements(
            "shared nodes are nearly collinear; transform reflection is ambiguous",
        ));
    }
    let transform = match method {
        TransformMethod::Covariance => {
            // Weighted registration: a local LSS map is most accurate
            // near its center (where the measurement graph is densest),
            // so shared nodes far from *either* map's center get less
            // pull on the fit. Weights are scale-normalized by the mean
            // center distance, so tight and sprawling clusters behave
            // alike; a map that cannot locate its own center falls back
            // to uniform weights.
            let centers = (
                source.coord_of(source.center),
                target.coord_of(target.center),
            );
            let fit = if let (Some(sc), Some(tc)) = centers {
                // `src`/`tgt` already hold the shared nodes' coordinates
                // in shared order; no per-node map lookups needed.
                let center_dist: Vec<f64> = src
                    .iter()
                    .zip(&tgt)
                    .map(|(&s, &t)| 0.5 * (s.distance(sc) + t.distance(tc)))
                    .collect();
                let mean = (center_dist.iter().sum::<f64>() / center_dist.len() as f64).max(1e-9);
                let weights: Vec<f64> = center_dist
                    .iter()
                    .map(|&d| 1.0 / (1.0 + (d / mean) * (d / mean)))
                    .collect();
                rl_geom::fit_rigid_transform_weighted(&src, &tgt, &weights, true)?
            } else {
                fit_rigid_transform(&src, &tgt, true)?
            };
            fit.transform
        }
        TransformMethod::CovarianceUniform => fit_rigid_transform(&src, &tgt, true)?.transform,
        TransformMethod::Minimization(descent) => {
            let mut best: Option<(f64, RigidTransform)> = None;
            for reflected in [false, true] {
                let objective = TransformObjective {
                    src: &src,
                    tgt: &tgt,
                    reflected,
                };
                let outcome = minimize(
                    &objective,
                    &[0.0, 0.0, 0.0],
                    descent,
                    &mut rl_math::rng::seeded(0),
                );
                let t = RigidTransform::new(
                    outcome.x[0],
                    reflected,
                    Vec2::new(outcome.x[1], outcome.x[2]),
                );
                if best.as_ref().is_none_or(|(e, _)| outcome.value < *e) {
                    best = Some((outcome.value, t));
                }
            }
            best.expect("two candidates evaluated").1
        }
    };
    // Residual guard: local maps that disagree beyond `max_rmse_m` on
    // their shared nodes yield transforms that misplace everything
    // downstream; better to let the alignment flood route around them.
    let rmse = (src
        .iter()
        .zip(&tgt)
        .map(|(&s, &t)| transform.apply(s).distance_sq(t))
        .sum::<f64>()
        / src.len() as f64)
        .sqrt();
    if rmse > guards.max_rmse_m {
        return Err(LocalizationError::InsufficientMeasurements(
            "local maps disagree on shared nodes beyond the residual guard",
        ));
    }
    Ok(transform)
}

/// Whether a point set is too close to a line for a reliable reflection
/// decision: the minor principal axis must carry at least 4 % of the major
/// axis' standard deviation and at least 0.5 m of spread.
fn is_near_collinear(points: &[Point2]) -> bool {
    let Some(mu) = rl_geom::centroid(points) else {
        return true;
    };
    let (mut sxx, mut sxy, mut syy) = (0.0, 0.0, 0.0);
    for p in points {
        let d = *p - mu;
        sxx += d.x * d.x;
        sxy += d.x * d.y;
        syy += d.y * d.y;
    }
    let n = points.len() as f64;
    let (sxx, sxy, syy) = (sxx / n, sxy / n, syy / n);
    // Eigenvalues of the 2x2 covariance matrix.
    let trace = sxx + syy;
    let det = sxx * syy - sxy * sxy;
    let disc = (trace * trace / 4.0 - det).max(0.0).sqrt();
    let lambda_max = trace / 2.0 + disc;
    let lambda_min = (trace / 2.0 - disc).max(0.0);
    // Minor-axis spread below 1 m (variance 1 m²), or below 5 % of the
    // major axis, is too thin for a trustworthy reflection decision.
    lambda_min < 1.0 || lambda_min < 0.0025 * lambda_max
}

/// Objective for the full-minimization transform: squared residuals of
/// `T(src) − tgt` over `(θ, t_x, t_y)` at a fixed reflection factor.
struct TransformObjective<'a> {
    src: &'a [Point2],
    tgt: &'a [Point2],
    reflected: bool,
}

impl Objective for TransformObjective<'_> {
    fn dim(&self) -> usize {
        3
    }

    fn value(&self, x: &[f64]) -> f64 {
        let t = RigidTransform::new(x[0], self.reflected, Vec2::new(x[1], x[2]));
        self.src
            .iter()
            .zip(self.tgt)
            .map(|(&s, &g)| t.apply(s).distance_sq(g))
            .sum()
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        // Analytic gradient over theta and translation.
        let (sin, cos) = x[0].sin_cos();
        let f = if self.reflected { -1.0 } else { 1.0 };
        grad.iter_mut().for_each(|g| *g = 0.0);
        for (&s, &g) in self.src.iter().zip(self.tgt) {
            // T(s) with row-vector convention:
            // x' = s.x cos + s.y f sin + tx ; y' = -s.x sin + s.y f cos + ty
            let px = s.x * cos + s.y * f * sin + x[1];
            let py = -s.x * sin + s.y * f * cos + x[2];
            let rx = px - g.x;
            let ry = py - g.y;
            // d px/dθ = -s.x sin + s.y f cos ; d py/dθ = -s.x cos - s.y f sin
            let dpx = -s.x * sin + s.y * f * cos;
            let dpy = -s.x * cos - s.y * f * sin;
            grad[0] += 2.0 * (rx * dpx + ry * dpy);
            grad[1] += 2.0 * rx;
            grad[2] += 2.0 * ry;
        }
    }
}

/// Configuration of the distributed algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedConfig {
    /// LSS settings for the per-node local maps (smaller budget than the
    /// centralized solver).
    pub local_lss: LssConfig,
    /// Transform estimation method.
    pub transform: TransformMethod,
    /// Sanity guards on pairwise transforms
    /// ([`TransformGuards::permissive`] reproduces the paper's unguarded
    /// behavior).
    pub guards: TransformGuards,
    /// Radio model for the protocol run.
    pub radio: RadioModel,
    /// Delay before the root starts the alignment flood, seconds (must
    /// exceed one map-exchange round trip).
    pub alignment_delay_s: f64,
    /// Post-alignment Gauss–Newton/CG refinement of the stitched map
    /// (`None` reproduces the paper's raw flood output). See [`refine`].
    pub refine: Option<RefineConfig>,
    /// Worker threads for the per-node local-solve phase, sharded on
    /// [`rl_net::pool`]: `0` (the default) sizes the pool to the
    /// machine, `1` runs serially. The outcome is bit-identical for any
    /// value.
    pub workers: usize,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            local_lss: LssConfig {
                descent: DescentConfig {
                    step_size: 0.005,
                    max_iterations: 2_500,
                    tolerance: 1e-10,
                    patience: 40,
                    restarts: 10,
                    perturbation: 5.0,
                    record_trace: false,
                },
                // Local maps are small, so a single gross ranging outlier
                // can fold them; robust reweighting suppresses it before
                // the map is shared with neighbors.
                robust: Some(crate::lss::RobustReweight::default()),
                ..LssConfig::default()
            },
            transform: TransformMethod::Covariance,
            guards: TransformGuards::default(),
            radio: RadioModel::mica2(),
            alignment_delay_s: 1.0,
            refine: Some(RefineConfig::default()),
            workers: 0,
        }
    }
}

impl DistributedConfig {
    /// A configuration tuned for metro-scale deployments (hundreds to
    /// thousands of nodes), the distributed counterpart of
    /// [`LssConfig::metro`](crate::lss::LssConfig::metro):
    ///
    /// * per-node local solves are seeded from cluster-local MDS-MAP
    ///   (clusters are small and dense, so the seed is nearly right and
    ///   long perturbation searches are wasted work) with a short
    ///   restart schedule and the paper's minimum-spacing constraint,
    /// * robust local reweighting is off — the refinement stage's Cauchy
    ///   weights handle outliers globally, once, instead of per node,
    /// * refinement runs a deeper Gauss–Newton budget, since at metro
    ///   diameters the accumulated stitching drift is the dominant error
    ///   term and the CG solves are cheap (`O(edges)` per iteration).
    pub fn metro() -> Self {
        DistributedConfig {
            local_lss: LssConfig {
                descent: DescentConfig {
                    step_size: 0.005,
                    max_iterations: 800,
                    tolerance: 1e-9,
                    patience: 30,
                    restarts: 2,
                    perturbation: 4.0,
                    record_trace: false,
                },
                robust: None,
                init: crate::lss::InitStrategy::MdsMap,
                ..LssConfig::default()
            }
            .with_min_spacing(9.14, 10.0),
            refine: Some(RefineConfig {
                max_iterations: 30,
                ..RefineConfig::default()
            }),
            ..DistributedConfig::default()
        }
    }

    /// [`DistributedConfig::metro`] plus the sparse-kernel acceleration
    /// that measures as a win on this pipeline: warm-started inner CG
    /// solves, seeded from the previous Gauss–Newton delta (rescaled by
    /// a one-matvec line search; CG's never-worse guard makes the seed
    /// risk-free). Jacobi preconditioning is deliberately *not* enabled:
    /// the damped normal equations' diagonal is near-uniform on metro
    /// deployments (uniform edge weights, narrow degree spread), so
    /// Jacobi measured as a slight iteration-count *increase* there —
    /// the preconditioner that pays at metro scale is [`IC(0)`] on
    /// explicitly assembled systems, which the `sparse_smoke` CI bin
    /// gates at ≥2x iteration reduction.
    ///
    /// Same optimization problem and stopping rules as `metro()` — the
    /// acceleration changes the *path* to the solution, not its quality —
    /// but **not** bit-identical to it: `metro()` predates the kernel
    /// work and its output bits are fingerprint-pinned
    /// (`tests/robust_parity.rs`), so the warm-started variant is a
    /// separate opt-in preset rather than a silent upgrade.
    ///
    /// [`IC(0)`]: rl_math::sparse::cg::IncompleteCholesky
    pub fn metro_fast() -> Self {
        let mut config = Self::metro();
        if let Some(refine) = &mut config.refine {
            refine.cg_warm_start = true;
        }
        config
    }

    /// Replaces the refinement configuration (builder style); `None`
    /// reproduces the paper's raw flood output.
    pub fn with_refine(mut self, refine: Option<RefineConfig>) -> Self {
        self.refine = refine;
        self
    }

    /// Selects the robust loss for the whole pipeline (builder style):
    /// both the per-node local LSS reweighting and the post-alignment
    /// Gauss–Newton refinement use `loss`.
    /// [`RobustLoss`](rl_math::RobustLoss)`::SquaredL2` turns every IRLS
    /// stage into its plain least-squares baseline.
    pub fn with_robust_loss(mut self, loss: rl_math::RobustLoss) -> Self {
        self.local_lss = self.local_lss.with_robust_loss(loss);
        if let Some(refine) = &mut self.refine {
            refine.loss = loss;
        }
        self
    }

    /// Sets the local-solve worker count (builder style); `0` sizes the
    /// pool to the machine. Any value produces the bit-identical
    /// outcome.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables the minimum-spacing soft constraint for the per-node local
    /// maps (builder style). Local clusters are small and sparse, so
    /// without the constraint they fold as readily as the global problem
    /// does — folded local maps then poison the pairwise transforms.
    pub fn with_min_spacing(mut self, min_spacing_m: f64, weight: f64) -> Self {
        self.local_lss = self.local_lss.with_min_spacing(min_spacing_m, weight);
        self
    }

    /// Replaces the LSS configuration used for per-node local maps
    /// (builder style).
    pub fn with_local_lss(mut self, local_lss: LssConfig) -> Self {
        self.local_lss = local_lss;
        self
    }

    /// Replaces the pairwise transform estimation method (builder style).
    pub fn with_transform(mut self, transform: TransformMethod) -> Self {
        self.transform = transform;
        self
    }

    /// Replaces the transform sanity guards (builder style);
    /// [`TransformGuards::permissive`] reproduces the paper's unguarded
    /// behavior.
    pub fn with_guards(mut self, guards: TransformGuards) -> Self {
        self.guards = guards;
        self
    }

    /// Replaces the radio model used for the protocol run (builder
    /// style).
    pub fn with_radio(mut self, radio: RadioModel) -> Self {
        self.radio = radio;
        self
    }

    /// Replaces the delay before the root starts the alignment flood
    /// (builder style).
    pub fn with_alignment_delay(mut self, delay_s: f64) -> Self {
        self.alignment_delay_s = delay_s;
        self
    }
}

/// The distributed-LSS solver: the config-struct entry point to
/// [`run_distributed`], consistent with
/// [`LssSolver`] and
/// [`MultilaterationSolver`](crate::multilateration::MultilaterationSolver).
///
/// ```
/// use rl_core::distributed::{DistributedConfig, DistributedSolver};
/// use rl_geom::Point2;
/// use rl_net::NodeId;
/// use rl_ranging::measurement::MeasurementSet;
///
/// let truth: Vec<Point2> = (0..16)
///     .map(|i| Point2::new((i % 4) as f64 * 9.0, (i / 4) as f64 * 9.0))
///     .collect();
/// let set = MeasurementSet::oracle(&truth, 22.0);
/// let solver = DistributedSolver::new(DistributedConfig::default()).with_root(NodeId(5));
/// let mut rng = rl_math::rng::seeded(3);
/// let out = solver.solve(&set, &truth, &mut rng)?;
/// assert_eq!(out.positions.localized_count(), 16);
/// # Ok::<(), rl_core::LocalizationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DistributedSolver {
    config: DistributedConfig,
    root: NodeId,
}

impl DistributedSolver {
    /// Creates a solver with the alignment flood rooted at node 0.
    pub fn new(config: DistributedConfig) -> Self {
        DistributedSolver {
            config,
            root: NodeId(0),
        }
    }

    /// Picks the node the alignment flood starts from (builder style).
    /// The global frame is this node's local frame.
    pub fn with_root(mut self, root: NodeId) -> Self {
        self.root = root;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &DistributedConfig {
        &self.config
    }

    /// Runs the full three-step protocol; `truth_positions` provides radio
    /// connectivity only.
    ///
    /// # Errors
    ///
    /// Same as [`run_distributed`].
    pub fn solve<R: Rng + ?Sized>(
        &self,
        set: &MeasurementSet,
        truth_positions: &[Point2],
        rng: &mut R,
    ) -> Result<DistributedOutcome> {
        run_distributed(set, truth_positions, self.root, &self.config, rng)
    }
}

impl crate::problem::Localizer for DistributedSolver {
    fn name(&self) -> &str {
        "distributed-lss"
    }

    fn localize(
        &self,
        problem: &crate::problem::Problem,
        rng: &mut dyn rand::RngCore,
    ) -> Result<crate::problem::Solution> {
        use crate::problem::{Frame, Solution, SolveStats};
        let start = std::time::Instant::now();
        let truth = problem.truth_required()?;
        let out = self.solve(problem.measurements(), truth, rng)?;
        Ok(Solution::new(
            out.positions,
            Frame::Relative,
            SolveStats {
                iterations: out.messages_delivered,
                // The flood itself terminates by message quiescence, not
                // by a numerical criterion; when the refinement stage ran
                // it contributes its stress and convergence flag.
                residual: out.refine.map(|r| r.final_stress),
                converged: out.refine.map(|r| r.converged),
                cg_iterations: out.refine.map(|r| r.cg_iterations),
                wall_time: start.elapsed(),
            },
        ))
    }
}

/// Message exchanged by the distributed protocol.
#[derive(Debug, Clone)]
pub enum DistMsg {
    /// A node's local map (step 2's "local data exchange").
    Map(LocalMap),
    /// The alignment wave: global origin and axis vectors expressed in the
    /// sender's local frame.
    Align {
        /// Global origin in the sender's local frame.
        origin: Point2,
        /// Global x-axis unit vector in the sender's local frame.
        ex: Vec2,
        /// Global y-axis unit vector in the sender's local frame.
        ey: Vec2,
    },
}

const ALIGN_TIMER: u64 = 1;

/// Per-node protocol state.
#[derive(Debug)]
struct DistNode {
    local_map: Option<LocalMap>,
    neighbor_maps: BTreeMap<NodeId, LocalMap>,
    global_pos: Option<Point2>,
    is_root: bool,
    transform: TransformMethod,
    guards: TransformGuards,
    align_delay_s: f64,
}

impl DistNode {
    fn align_and_forward(
        &mut self,
        origin: Point2,
        ex: Vec2,
        ey: Vec2,
        api: &mut Api<'_, DistMsg>,
    ) {
        let Some(map) = &self.local_map else { return };
        let Some(p) = map.coord_of(map.center) else {
            return;
        };
        let rel = p - origin;
        self.global_pos = Some(Point2::new(rel.dot(ex), rel.dot(ey)));
        api.broadcast(DistMsg::Align { origin, ex, ey });
    }
}

impl Node for DistNode {
    type Msg = DistMsg;

    fn on_start(&mut self, api: &mut Api<'_, DistMsg>) {
        if let Some(map) = self.local_map.clone() {
            api.broadcast(DistMsg::Map(map));
        }
        if self.is_root {
            // Give the map exchange time to complete, then start the
            // alignment flood from this node's frame.
            api.set_timer(self.align_delay_s, ALIGN_TIMER);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: DistMsg, api: &mut Api<'_, DistMsg>) {
        match msg {
            DistMsg::Map(map) => {
                self.neighbor_maps.insert(from, map);
            }
            DistMsg::Align { origin, ex, ey } => {
                if self.global_pos.is_some() {
                    return; // first alignment wins
                }
                let Some(my_map) = self.local_map.clone() else {
                    return;
                };
                let Some(sender_map) = self.neighbor_maps.get(&from) else {
                    return;
                };
                // Transform from the sender's frame into mine.
                let Ok(t) = estimate_transform(sender_map, &my_map, &self.transform, &self.guards)
                else {
                    return;
                };
                let origin_here = t.apply(origin);
                let ex_here = t.apply_vec(ex);
                let ey_here = t.apply_vec(ey);
                self.align_and_forward(origin_here, ex_here, ey_here, api);
            }
        }
    }

    fn on_timer(&mut self, timer: u64, api: &mut Api<'_, DistMsg>) {
        if timer == ALIGN_TIMER && self.is_root {
            // The global frame IS the root's local frame.
            self.align_and_forward(
                Point2::ORIGIN,
                Vec2::new(1.0, 0.0),
                Vec2::new(0.0, 1.0),
                api,
            );
        }
    }
}

/// Outcome of a distributed localization run.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// Global positions (in the root's local frame); nodes the alignment
    /// wave could not reach (or that had no usable local map) stay `None`.
    pub positions: PositionMap,
    /// Nodes that managed to build a local map.
    pub local_maps_built: usize,
    /// Messages delivered during the protocol run.
    pub messages_delivered: usize,
    /// What the post-alignment refinement stage did; `None` when it was
    /// disabled or had nothing to work on (fewer than two aligned nodes,
    /// or no measured edge between aligned nodes).
    pub refine: Option<RefineOutcome>,
}

/// The per-node RNG-stream derivation constant for the local-solve
/// phase: node `i` draws from `seeded(base ^ (i+1) · STREAM)`, so every
/// node owns a whole stream regardless of which pool worker solves it.
const LOCAL_STREAM: u64 = 0xA076_1D64_78BD_642F;

/// Runs the full distributed LSS pipeline: local solves (sharded on the
/// [`rl_net::pool`] worker pool), map exchange and alignment flood on the
/// discrete-event simulator, then the optional Gauss–Newton/CG
/// refinement of the stitched map.
///
/// `truth_positions` provides radio connectivity only (the algorithm never
/// reads them as coordinates).
///
/// # Errors
///
/// * [`LocalizationError::InvalidConfig`] for an out-of-range root or
///   mismatched lengths,
/// * simulator errors if the protocol fails to quiesce.
pub fn run_distributed<R: Rng + ?Sized>(
    set: &MeasurementSet,
    truth_positions: &[Point2],
    root: NodeId,
    config: &DistributedConfig,
    rng: &mut R,
) -> Result<DistributedOutcome> {
    let n = set.node_count();
    if truth_positions.len() != n {
        return Err(LocalizationError::InvalidConfig(
            "positions and measurements disagree on node count",
        ));
    }
    if root.index() >= n {
        return Err(LocalizationError::InvalidConfig("root out of range"));
    }

    // Step 1: local maps (computation only; no messages involved). Each
    // node's solve draws from its own stream derived from (base seed,
    // node id), never from a generator shared across nodes, so the pool
    // returns bit-identical maps for any worker count — clause 5 of the
    // `rl_math::rng` seeding contract.
    let local_seed = rng.random::<u64>();
    let local_maps: Vec<Option<LocalMap>> = rl_net::pool::par_map_indexed(n, config.workers, |i| {
        let mut node_rng =
            rl_math::rng::seeded(local_seed ^ (i as u64 + 1).wrapping_mul(LOCAL_STREAM));
        LocalMap::build(NodeId(i), set, &config.local_lss, &mut node_rng).ok()
    });
    let local_maps_built = local_maps.iter().filter(|m| m.is_some()).count();
    let nodes: Vec<DistNode> = local_maps
        .into_iter()
        .enumerate()
        .map(|(i, local_map)| DistNode {
            local_map,
            neighbor_maps: BTreeMap::new(),
            global_pos: None,
            is_root: i == root.index(),
            transform: config.transform.clone(),
            guards: config.guards,
            align_delay_s: config.alignment_delay_s,
        })
        .collect();

    // Steps 2-3: map exchange + alignment flood on the simulator.
    let seed = rng.random::<u64>();
    let mut sim = Simulator::new(nodes, truth_positions, config.radio.clone(), seed);
    let stats = sim.run().map_err(|_| {
        LocalizationError::InvalidConfig("network simulation exhausted its event budget")
    })?;

    let mut positions = PositionMap::unlocalized(n);
    for (id, node) in sim.iter() {
        if let Some(p) = node.global_pos {
            positions.set(id, p);
        }
    }

    // Step 4: pull the stitched map back onto the measurements,
    // collapsing the registration drift the flood accumulated.
    let refine = config
        .refine
        .as_ref()
        .and_then(|cfg| refine_aligned(set, &mut positions, cfg));

    Ok(DistributedOutcome {
        positions,
        local_maps_built,
        messages_delivered: stats.delivered,
        refine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_against_truth;
    use rl_math::rng::seeded;

    fn grid(nx: usize, ny: usize, spacing: f64) -> Vec<Point2> {
        let mut out = Vec::new();
        for gy in 0..ny {
            for gx in 0..nx {
                out.push(Point2::new(gx as f64 * spacing, gy as f64 * spacing));
            }
        }
        out
    }

    #[test]
    fn local_map_covers_cluster() {
        let truth = grid(3, 3, 9.0);
        let set = MeasurementSet::oracle(&truth, 14.0);
        let mut rng = seeded(1);
        let map = LocalMap::build(NodeId(4), &set, &LssConfig::default(), &mut rng).unwrap();
        // Center node 4 (middle) has all 8 others as neighbors at <= 13 m.
        assert_eq!(map.center, NodeId(4));
        assert_eq!(map.nodes.len(), 9);
        assert!(map.coord_of(NodeId(4)).is_some());
        assert_eq!(map.coord_of(NodeId(99)), None);
        // Local map distances match measurements (relative frame).
        let d01 = map
            .coord_of(NodeId(0))
            .unwrap()
            .distance(map.coord_of(NodeId(1)).unwrap());
        assert!((d01 - 9.0).abs() < 0.3, "local map distance {d01}");
    }

    #[test]
    fn local_map_needs_three_nodes() {
        let mut set = MeasurementSet::new(3);
        set.insert(NodeId(0), NodeId(1), 5.0);
        let mut rng = seeded(2);
        assert!(matches!(
            LocalMap::build(NodeId(2), &set, &LssConfig::default(), &mut rng),
            Err(LocalizationError::InsufficientMeasurements(_))
        ));
    }

    #[test]
    fn transform_estimation_recovers_hidden_transform() {
        let truth = grid(3, 3, 9.0);
        let shared: Vec<NodeId> = (0..9).map(NodeId).collect();
        let hidden = RigidTransform::new(0.9, true, Vec2::new(4.0, -2.0));
        let source = LocalMap {
            center: NodeId(0),
            nodes: shared.clone(),
            coords: truth.clone(),
        };
        let target = LocalMap {
            center: NodeId(1),
            nodes: shared,
            coords: truth.iter().map(|&p| hidden.apply(p)).collect(),
        };
        for method in [
            TransformMethod::Covariance,
            TransformMethod::CovarianceUniform,
            TransformMethod::Minimization(DescentConfig {
                step_size: 0.01,
                max_iterations: 3_000,
                restarts: 2,
                perturbation: 1.0,
                ..DescentConfig::default()
            }),
        ] {
            let t =
                estimate_transform(&source, &target, &method, &TransformGuards::default()).unwrap();
            for &p in &truth {
                assert!(
                    t.apply(p).distance(hidden.apply(p)) < 0.05,
                    "{method:?} failed at {p}"
                );
            }
        }
    }

    #[test]
    fn guards_reject_collinear_shared_sets_but_permissive_accepts() {
        // Shared nodes on a line: the reflection is ambiguous.
        let line: Vec<Point2> = (0..5).map(|i| Point2::new(i as f64 * 9.0, 0.0)).collect();
        let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
        let source = LocalMap {
            center: NodeId(0),
            nodes: nodes.clone(),
            coords: line.clone(),
        };
        let hidden = RigidTransform::new(0.4, false, Vec2::new(2.0, 2.0));
        let target = LocalMap {
            center: NodeId(1),
            nodes,
            coords: line.iter().map(|&p| hidden.apply(p)).collect(),
        };
        assert!(matches!(
            estimate_transform(
                &source,
                &target,
                &TransformMethod::Covariance,
                &TransformGuards::default()
            ),
            Err(LocalizationError::InsufficientMeasurements(_))
        ));
        // The paper-faithful guards accept it.
        let t = estimate_transform(
            &source,
            &target,
            &TransformMethod::Covariance,
            &TransformGuards::permissive(),
        )
        .unwrap();
        assert!(t.apply(line[2]).distance(hidden.apply(line[2])) < 1e-6);
    }

    #[test]
    fn guards_reject_disagreeing_maps() {
        // Rich 2-D shared set, but the target map is warped (not rigid):
        // the residual guard must fire.
        let grid_pts: Vec<Point2> = (0..9)
            .map(|i| Point2::new((i % 3) as f64 * 9.0, (i / 3) as f64 * 9.0))
            .collect();
        let nodes: Vec<NodeId> = (0..9).map(NodeId).collect();
        let source = LocalMap {
            center: NodeId(0),
            nodes: nodes.clone(),
            coords: grid_pts.clone(),
        };
        let target = LocalMap {
            center: NodeId(1),
            nodes,
            coords: grid_pts
                .iter()
                .map(|&p| Point2::new(p.x * 1.4, p.y * 0.6)) // sheared
                .collect(),
        };
        assert!(matches!(
            estimate_transform(
                &source,
                &target,
                &TransformMethod::Covariance,
                &TransformGuards::default()
            ),
            Err(LocalizationError::InsufficientMeasurements(_))
        ));
    }

    #[test]
    fn transform_needs_shared_nodes() {
        let source = LocalMap {
            center: NodeId(0),
            nodes: vec![NodeId(0), NodeId(1)],
            coords: vec![Point2::ORIGIN, Point2::new(1.0, 0.0)],
        };
        let target = LocalMap {
            center: NodeId(5),
            nodes: vec![NodeId(5), NodeId(6)],
            coords: vec![Point2::ORIGIN, Point2::new(1.0, 0.0)],
        };
        assert!(matches!(
            estimate_transform(
                &source,
                &target,
                &TransformMethod::Covariance,
                &TransformGuards::default()
            ),
            Err(LocalizationError::InsufficientMeasurements(_))
        ));
    }

    #[test]
    fn distributed_on_dense_measurements_localizes_all() {
        let truth = grid(4, 4, 9.0);
        let set = MeasurementSet::oracle(&truth, 22.0);
        let mut rng = seeded(3);
        let config = DistributedConfig::default();
        let out = run_distributed(&set, &truth, NodeId(5), &config, &mut rng).unwrap();
        assert_eq!(out.local_maps_built, 16);
        assert_eq!(
            out.positions.localized_count(),
            16,
            "all nodes should align"
        );
        let eval = evaluate_against_truth(&out.positions, &truth).unwrap();
        assert!(eval.mean_error < 1.0, "mean error {}", eval.mean_error);
        assert!(out.messages_delivered > 0);
    }

    #[test]
    fn distributed_with_noise_stays_meter_level() {
        let truth = grid(4, 3, 9.0);
        let mut rng = seeded(4);
        let mut set = MeasurementSet::new(truth.len());
        for i in 0..truth.len() {
            for j in (i + 1)..truth.len() {
                let d = truth[i].distance(truth[j]);
                if d <= 22.0 {
                    set.insert(
                        NodeId(i),
                        NodeId(j),
                        (d + rl_math::rng::normal(&mut rng, 0.0, 0.33)).max(0.1),
                    );
                }
            }
        }
        let config = DistributedConfig::default().with_min_spacing(9.0, 10.0);
        let out = run_distributed(&set, &truth, NodeId(0), &config, &mut rng).unwrap();
        assert!(out.positions.localized_count() >= 10);
        let eval = evaluate_against_truth(&out.positions, &truth).unwrap();
        assert!(eval.mean_error < 1.5, "mean error {}", eval.mean_error);
    }

    #[test]
    fn sparse_measurements_break_alignment() {
        // A long chain of nodes where consecutive local maps share too few
        // nodes: alignment cannot propagate past the gaps.
        let truth: Vec<Point2> = (0..8).map(|i| Point2::new(i as f64 * 9.0, 0.0)).collect();
        let set = MeasurementSet::oracle(&truth, 9.5); // nearest neighbors only
        let mut rng = seeded(5);
        let out = run_distributed(
            &set,
            &truth,
            NodeId(0),
            &DistributedConfig::default(),
            &mut rng,
        )
        .unwrap();
        // Local maps are collinear triples; transforms are degenerate or
        // under-shared, so most nodes stay unlocalized.
        assert!(
            out.positions.localized_count() < truth.len(),
            "alignment should not fully propagate on a bare chain"
        );
    }

    #[test]
    fn metro_preset_and_builders() {
        let metro = DistributedConfig::metro();
        assert!(metro.refine.is_some(), "metro preset refines");
        assert_eq!(metro.workers, 0, "metro preset auto-sizes the pool");
        assert!(metro.local_lss.soft_constraint.is_some());
        assert!(
            metro.local_lss.descent.restarts
                < DistributedConfig::default().local_lss.descent.restarts,
            "MDS-seeded local solves need fewer restarts"
        );
        let custom = DistributedConfig::default()
            .with_workers(2)
            .with_refine(None);
        assert_eq!(custom.workers, 2);
        assert_eq!(custom.refine, None);
    }

    #[test]
    fn refinement_stays_in_regime_on_a_noisy_run() {
        // Same seed, refinement on versus off. At town scale the flood
        // accumulates almost no drift, so refinement is a wash within
        // the measurement noise (its real work — collapsing tens of
        // meters of metro-scale drift — is covered by the refine module
        // tests and the metro_smoke error budget); what this asserts is
        // that the stage reports what it did and never *degrades* a
        // good run beyond noise level.
        let truth = grid(5, 4, 9.0);
        let mut seed_rng = seeded(12);
        let mut set = MeasurementSet::new(truth.len());
        for i in 0..truth.len() {
            for j in (i + 1)..truth.len() {
                let d = truth[i].distance(truth[j]);
                if d <= 22.0 {
                    set.insert(
                        NodeId(i),
                        NodeId(j),
                        (d + rl_math::rng::normal(&mut seed_rng, 0.0, 0.33)).max(0.1),
                    );
                }
            }
        }
        let error_with = |refine: Option<RefineConfig>| {
            let mut rng = seeded(13);
            let config = DistributedConfig::default()
                .with_min_spacing(9.0, 10.0)
                .with_refine(refine);
            let out = run_distributed(&set, &truth, NodeId(7), &config, &mut rng).unwrap();
            let eval = evaluate_against_truth(&out.positions, &truth).unwrap();
            (eval.mean_error, out.refine)
        };
        let (raw, no_stats) = error_with(None);
        let (refined, stats) = error_with(Some(RefineConfig::default()));
        assert_eq!(no_stats, None);
        let stats = stats.expect("refinement ran");
        assert!(stats.final_stress <= stats.initial_stress);
        assert!(stats.edges > 0 && stats.nodes > 2);
        assert!(
            refined <= (raw * 1.25).max(raw + 0.1),
            "refined {refined} left the regime of raw {raw}"
        );
        assert!(refined < 0.5, "refined error {refined} m");
    }

    #[test]
    fn error_cases() {
        let truth = grid(2, 2, 9.0);
        let set = MeasurementSet::oracle(&truth, 22.0);
        let mut rng = seeded(6);
        assert!(matches!(
            run_distributed(
                &set,
                &truth[..2],
                NodeId(0),
                &DistributedConfig::default(),
                &mut rng
            ),
            Err(LocalizationError::InvalidConfig(_))
        ));
        assert!(matches!(
            run_distributed(
                &set,
                &truth,
                NodeId(9),
                &DistributedConfig::default(),
                &mut rng
            ),
            Err(LocalizationError::InvalidConfig(_))
        ));
    }
}
