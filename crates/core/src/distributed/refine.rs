//! Tikhonov-regularized Gauss–Newton refinement of a stitched map.
//!
//! The alignment flood composes one rigid transform per hop, so every
//! hop's registration error — fractions of a meter on noisy local maps —
//! *accumulates* along the flood tree. At town scale (a few hops) the
//! drift is invisible; across a metro's district after district it grows
//! into tens of meters of smooth, low-frequency warp even though every
//! *local* distance is still known to ±0.33 m. The fix mirrors DILAND
//! (Khan et al.): iterative refinement that pulls the stitched
//! configuration back onto the measurements, converging toward the
//! centralized LSS solution.
//!
//! Each outer iteration linearizes the stress
//! `E(p) = Σ w̃_ij (‖p_i − p_j‖ − d_ij)²` around the current
//! configuration and solves the damped normal equations
//!
//! ```text
//! (JᵀWJ + λI) δ = −JᵀW r
//! ```
//!
//! with [`rl_math::sparse::cg`] — `JᵀWJ` is applied matrix-free from the
//! edge list (`O(edges)` per CG iteration, nothing materialized). The
//! Tikhonov term `λI` does double duty: it anchors each step to the
//! current (flood-aligned) configuration, which both removes the rigid
//! null space (translations/rotations cost `λ‖δ‖²`, so the solution
//! stays in the root's frame instead of drifting) and acts as
//! Levenberg–Marquardt damping, grown on rejected steps and shrunk on
//! accepted ones. A [`rl_math::RobustLoss`] kernel
//! ([`RefineConfig::loss`], Cauchy at a 2 m scale by default:
//! `w̃ = w / (1 + (r/c)²)`, recomputed per outer iteration) keeps the
//! handful of badly stitched nodes a metro flood produces from bending
//! the refit around them; `RobustLoss::SquaredL2` turns the
//! reweighting off.
//!
//! The inner solves support two opt-in accelerations from the sparse
//! kernel layer: **Jacobi-preconditioned CG** (the operator's diagonal
//! falls straight out of the edge list, see
//! `DampedNormalOperator::diagonal_into`) and **warm starts** seeding
//! each solve from the previous accepted delta
//! ([`RefineConfig::cg_warm_start`]). Both are off by default — the
//! historical zero-started, unpreconditioned path is fingerprint-pinned.
//! The throughput presets enable warm starts only: Jacobi measured as a
//! slight loss on metro deployments, whose normal equations carry a
//! near-uniform diagonal (see
//! [`DistributedConfig::metro_fast`](super::DistributedConfig::metro_fast)).
//!
//! The whole stage is deterministic: no randomness, fixed iteration
//! order (edges in measurement-set order), so it preserves the
//! bit-identical replay contract of the surrounding protocol.

use rl_geom::Point2;
use rl_math::sparse::cg::{conjugate_gradient_with, resolve_preconditioner, CgConfig, CgWorkspace};
use rl_math::sparse::LinearOperator;
use rl_math::RobustLoss;
use rl_net::NodeId;
use rl_ranging::measurement::MeasurementSet;

use crate::types::PositionMap;

/// Configuration of the post-alignment refinement stage.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineConfig {
    /// Maximum Gauss–Newton (outer) iterations.
    pub max_iterations: usize,
    /// Initial Tikhonov damping `λ` (per coordinate, against edge weights
    /// of ~1). Adapted multiplicatively: ×0.3 on accepted steps, ×10 on
    /// rejected ones.
    pub tikhonov: f64,
    /// The robust loss kernel applied to edge residuals: an edge's
    /// weight is multiplied by the loss's IRLS factor at its current
    /// residual each outer iteration. The default Cauchy loss at a 2 m
    /// scale keeps badly stitched outlier nodes from bending the refit;
    /// [`RobustLoss::SquaredL2`] disables reweighting (the historical
    /// `robust_scale_m: None`).
    pub loss: RobustLoss,
    /// Inner CG settings. The default loosens the tolerance to `1e-4` —
    /// each linearization is approximate, so solving it to machine
    /// precision buys nothing — and caps iterations at 200 (a truncated
    /// solve still yields a usable damped-Newton direction; the damping
    /// loop simply stiffens `λ`, which also improves the system's
    /// conditioning for the retry).
    pub cg: CgConfig,
    /// Seed each inner CG solve with the *previous accepted step's*
    /// delta, rescaled by a one-matvec line search against the new
    /// right-hand side (the raw delta is sized to the previous, larger
    /// gradient and would overshoot). Combined with CG's never-worse
    /// guard the seed is risk-free: measured a few percent fewer inner
    /// iterations on metro refinement, never more. `false` by default:
    /// the zero-started path is fingerprint-pinned; the fast presets
    /// ([`DistributedConfig::metro_fast`](super::DistributedConfig::metro_fast))
    /// opt in.
    pub cg_warm_start: bool,
    /// Stop once the relative stress improvement of an accepted step
    /// falls below this.
    pub min_relative_improvement: f64,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            max_iterations: 12,
            tikhonov: 1e-2,
            loss: RobustLoss::Cauchy { scale_m: 2.0 },
            cg: CgConfig::default()
                .with_max_iterations(200)
                .with_tolerance(1e-4),
            cg_warm_start: false,
            min_relative_improvement: 1e-6,
        }
    }
}

/// What the refinement stage did, reported on
/// [`DistributedOutcome`](super::DistributedOutcome).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineOutcome {
    /// Aligned nodes the refinement optimized over.
    pub nodes: usize,
    /// Measured edges with both endpoints aligned.
    pub edges: usize,
    /// Accepted Gauss–Newton steps.
    pub iterations: usize,
    /// Total inner CG iterations across all solves.
    pub cg_iterations: usize,
    /// Robust stress before the first step.
    pub initial_stress: f64,
    /// Robust stress after the last accepted step.
    pub final_stress: f64,
    /// Whether the loop stopped at a (numerical) stationary point —
    /// via the relative-improvement criterion or because no damping
    /// level could find a descending step — rather than exhausting
    /// `max_iterations` while still improving.
    pub converged: bool,
}

/// Compact-index sentinel marking an edge whose second endpoint is a
/// *pinned* node: a constant of the optimization, not a variable. Edges
/// carrying this sentinel contribute a Jacobian row with an entry at the
/// free endpoint only.
const PINNED: usize = usize::MAX;

/// One linearization's damped normal operator `JᵀWJ + λI`, applied
/// matrix-free from the edge list. Layout matches the LSS objective:
/// `[x_0 … x_{m−1}, y_0 … y_{m−1}]`.
struct DampedNormalOperator<'a> {
    m: usize,
    /// `(i, j, w̃)` per edge, compact indices (`j == PINNED` marks a
    /// free–pinned edge).
    edges: &'a [(usize, usize, f64)],
    /// Unit vector of `p_i − p_j` per edge at the linearization point.
    units: &'a [(f64, f64)],
    lambda: f64,
}

impl LinearOperator for DampedNormalOperator<'_> {
    fn dim(&self) -> usize {
        2 * self.m
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let m = self.m;
        for (out, v) in y.iter_mut().zip(x) {
            *out = self.lambda * v;
        }
        for (&(i, j, w), &(ux, uy)) in self.edges.iter().zip(self.units) {
            if j == PINNED {
                // Row of J: +u at i only; the pinned endpoint is constant.
                let s = w * (ux * x[i] + uy * x[m + i]);
                y[i] += s * ux;
                y[m + i] += s * uy;
            } else {
                // Row of J for this edge: +u at i, −u at j (per coordinate).
                let s = w * (ux * (x[i] - x[j]) + uy * (x[m + i] - x[m + j]));
                y[i] += s * ux;
                y[j] -= s * ux;
                y[m + i] += s * uy;
                y[m + j] -= s * uy;
            }
        }
    }

    /// The diagonal of `JᵀWJ + λI` falls straight out of the edge list —
    /// `λ + Σ_edges w ux²` per x-coordinate (resp. `uy²` per y) — which
    /// unlocks the Jacobi preconditioner without materializing anything.
    fn diagonal_into(&self, out: &mut [f64]) -> bool {
        let m = self.m;
        out.fill(self.lambda);
        for (&(i, j, w), &(ux, uy)) in self.edges.iter().zip(self.units) {
            let (cx, cy) = (w * ux * ux, w * uy * uy);
            out[i] += cx;
            out[m + i] += cy;
            if j != PINNED {
                out[j] += cx;
                out[m + j] += cy;
            }
        }
        true
    }
}

/// Guard against division by a vanishing computed distance.
const MIN_DISTANCE: f64 = 1e-9;

/// Refines the aligned subset of `positions` in place against the
/// measured distances; returns `None` (leaving positions untouched) when
/// fewer than two nodes aligned or no measured edge connects two aligned
/// nodes.
pub fn refine_aligned(
    set: &MeasurementSet,
    positions: &mut PositionMap,
    config: &RefineConfig,
) -> Option<RefineOutcome> {
    refine_anchored(set, positions, &[], config)
}

/// [`refine_aligned`] with hard position constraints: nodes listed in
/// `pinned` (and localized in `positions`) are treated as *constants* of
/// the optimization — their coordinates enter edge residuals but are not
/// variables, so they cannot move. This is the warm-update engine of the
/// tracking layer ([`crate::tracking`]): anchors are pinned at their
/// surveyed positions, which keeps incremental refinement in the
/// absolute frame tick after tick instead of letting it drift.
///
/// Pinned ids that are out of range or not localized are ignored. With
/// `pinned` empty this is exactly `refine_aligned` — same arithmetic,
/// same bit-identical output. Returns `None` (positions untouched) when
/// there are no free localized nodes, fewer than two localized nodes
/// overall, or no measured edge touches a free localized node.
pub fn refine_anchored(
    set: &MeasurementSet,
    positions: &mut PositionMap,
    pinned: &[NodeId],
    config: &RefineConfig,
) -> Option<RefineOutcome> {
    let n = set.node_count();
    let mut is_pinned = vec![false; n];
    for &p in pinned {
        if p.index() < n {
            is_pinned[p.index()] = true;
        }
    }

    // Compact the aligned free nodes: refinement variables are their
    // coordinates only; unaligned nodes stay untouched, pinned localized
    // nodes become per-edge constants.
    let mut compact_of = vec![usize::MAX; n];
    let mut pin_pos: Vec<Option<Point2>> = vec![None; n];
    let mut original: Vec<usize> = Vec::new();
    let mut x: Vec<f64> = Vec::new();
    let mut pinned_aligned = 0usize;
    for i in 0..n {
        if let Some(p) = positions.get(NodeId(i)) {
            if is_pinned[i] {
                pin_pos[i] = Some(p);
                pinned_aligned += 1;
            } else {
                compact_of[i] = original.len();
                original.push(i);
                x.push(p.x);
            }
        }
    }
    let m = original.len();
    if m == 0 || m + pinned_aligned < 2 {
        return None;
    }
    x.resize(2 * m, 0.0);
    for (k, &i) in original.iter().enumerate() {
        x[m + k] = positions.get(NodeId(i)).expect("aligned").y;
    }

    // Edges with both endpoints aligned and at least one free, in
    // measurement-set order (deterministic: the set iterates its sorted
    // edge map). A free–pinned edge is oriented free-first and carries
    // the `PINNED` sentinel plus the pinned endpoint's coordinates;
    // pinned–pinned edges are constant and skipped.
    let mut edges: Vec<(usize, usize, f64, f64)> = Vec::new();
    let mut edge_pin: Vec<(f64, f64)> = Vec::new();
    for (a, b, d, w) in set.iter_weighted() {
        let (ia, ib) = (compact_of[a.index()], compact_of[b.index()]);
        match (ia != usize::MAX, ib != usize::MAX) {
            (true, true) => {
                edges.push((ia, ib, d, w));
                edge_pin.push((0.0, 0.0));
            }
            (true, false) => {
                if let Some(p) = pin_pos[b.index()] {
                    edges.push((ia, PINNED, d, w));
                    edge_pin.push((p.x, p.y));
                }
            }
            (false, true) => {
                if let Some(p) = pin_pos[a.index()] {
                    edges.push((ib, PINNED, d, w));
                    edge_pin.push((p.x, p.y));
                }
            }
            (false, false) => {}
        }
    }
    if edges.is_empty() {
        return None;
    }

    // Robust stress and per-edge IRLS weights at configuration `x`.
    let linearize = |x: &[f64]| -> Linearization {
        let mut lin = Linearization {
            stress: 0.0,
            w_tilde: Vec::with_capacity(edges.len()),
            residuals: Vec::with_capacity(edges.len()),
            units: Vec::with_capacity(edges.len()),
        };
        for (&(i, j, d, w), &(px, py)) in edges.iter().zip(&edge_pin) {
            let (dx, dy) = if j == PINNED {
                (x[i] - px, x[m + i] - py)
            } else {
                (x[i] - x[j], x[m + i] - x[m + j])
            };
            let dist = (dx * dx + dy * dy).sqrt();
            let r = dist - d;
            let wr = config.loss.reweight(w, r);
            lin.stress += wr * r * r;
            lin.w_tilde.push(wr);
            lin.residuals.push(r);
            let safe = dist.max(MIN_DISTANCE);
            lin.units.push((dx / safe, dy / safe));
        }
        lin
    };

    let mut lambda = config.tikhonov.max(f64::MIN_POSITIVE);
    let lambda_ceiling = lambda * 1e9;
    let mut iterations = 0usize;
    let mut cg_iterations = 0usize;
    let mut lin = linearize(&x);
    let initial_stress = lin.stress;
    let mut converged = false;
    // CG scratch shared across every inner solve, and the previous
    // accepted delta for warm starts (opt-in; `None` keeps the
    // fingerprint-pinned zero-start bits).
    let mut cg_ws = CgWorkspace::new();
    let mut prev_delta: Option<Vec<f64>> = None;

    for _ in 0..config.max_iterations {
        // rhs g = −JᵀW r.
        let mut g = vec![0.0; 2 * m];
        for (k, &(i, j, _, _)) in edges.iter().enumerate() {
            let s = lin.w_tilde[k] * lin.residuals[k];
            let (ux, uy) = lin.units[k];
            g[i] -= s * ux;
            g[m + i] -= s * uy;
            if j != PINNED {
                g[j] += s * ux;
                g[m + j] += s * uy;
            }
        }
        let op_edges: Vec<(usize, usize, f64)> = edges
            .iter()
            .zip(&lin.w_tilde)
            .map(|(&(i, j, _, _), &w)| (i, j, w))
            .collect();

        // Damping loop: retry the linear solve with stiffer λ until the
        // step actually reduces the (robust) stress.
        let mut accepted = false;
        while lambda <= lambda_ceiling {
            let op = DampedNormalOperator {
                m,
                edges: &op_edges,
                units: &lin.units,
                lambda,
            };
            // The operator changes with every reweight and damping level,
            // so the preconditioner is rebuilt per solve (a diagonal
            // extraction — cheap next to even one CG iteration).
            let precond = resolve_preconditioner(&op, config.cg.preconditioner);
            // Warm seed: the previous accepted delta, *rescaled* by a
            // one-matvec line search `α = gᵀ(Ad) / ||Ad||²`. The raw
            // delta is sized to the previous (larger) gradient and
            // overshoots — its residual exceeds ||g|| and CG's
            // never-worse guard would just discard it. The optimally
            // scaled seed starts at or below the cold residual by
            // construction whenever the old direction still has a
            // component along the new gradient.
            let seed: Option<Vec<f64>> = if config.cg_warm_start {
                prev_delta.as_deref().and_then(|d| {
                    let mut ad = vec![0.0; 2 * m];
                    op.apply(d, &mut ad);
                    let denom: f64 = ad.iter().map(|v| v * v).sum();
                    let alpha = g.iter().zip(&ad).map(|(gi, ai)| gi * ai).sum::<f64>() / denom;
                    (alpha.is_finite() && alpha != 0.0)
                        .then(|| d.iter().map(|di| alpha * di).collect())
                })
            } else {
                None
            };
            let Ok(solve) = conjugate_gradient_with(
                &op,
                &g,
                seed.as_deref(),
                precond.as_deref(),
                &config.cg,
                &mut cg_ws,
            ) else {
                // CG only fails here by iteration budget on a
                // near-singular system; stiffer damping fixes that.
                lambda *= 10.0;
                continue;
            };
            cg_iterations += solve.iterations;
            let trial: Vec<f64> = x.iter().zip(&solve.x).map(|(xi, di)| xi + di).collect();
            let trial_lin = linearize(&trial);
            if trial_lin.stress < lin.stress {
                let improvement =
                    (lin.stress - trial_lin.stress) / lin.stress.max(f64::MIN_POSITIVE);
                x = trial;
                lin = trial_lin;
                lambda = (lambda * 0.3).max(config.tikhonov * 1e-3);
                iterations += 1;
                accepted = true;
                prev_delta = Some(solve.x);
                if improvement < config.min_relative_improvement {
                    converged = true;
                }
                break;
            }
            lambda *= 10.0;
        }
        if !accepted {
            // The damping ceiling was reached without any descent: the
            // configuration is at (a numerical) stationary point —
            // converged, whether or not any earlier step was accepted
            // (a map that arrives already optimal takes zero steps).
            converged = true;
            break;
        }
        if converged {
            break;
        }
    }

    for (k, &i) in original.iter().enumerate() {
        positions.set(NodeId(i), Point2::new(x[k], x[m + k]));
    }
    Some(RefineOutcome {
        nodes: m,
        edges: edges.len(),
        iterations,
        cg_iterations,
        initial_stress,
        final_stress: lin.stress,
        converged,
    })
}

/// One linearization of the robust stress at a configuration: the
/// per-edge IRLS weights, residuals, and unit directions the normal
/// equations are assembled from.
struct Linearization {
    stress: f64,
    w_tilde: Vec<f64>,
    residuals: Vec<f64>,
    units: Vec<(f64, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_geom::{RigidTransform, Vec2};

    fn grid(nx: usize, ny: usize, spacing: f64) -> Vec<Point2> {
        (0..nx * ny)
            .map(|i| Point2::new((i % nx) as f64 * spacing, (i / nx) as f64 * spacing))
            .collect()
    }

    /// A smoothly warped copy of the truth, mimicking accumulated
    /// registration drift: displacement grows quadratically with x.
    fn drifted(truth: &[Point2], scale: f64) -> PositionMap {
        let mut positions = PositionMap::unlocalized(truth.len());
        for (i, p) in truth.iter().enumerate() {
            let t = p.x / 40.0;
            positions.set(
                NodeId(i),
                Point2::new(p.x + scale * t * t, p.y + 0.5 * scale * t * t),
            );
        }
        positions
    }

    #[test]
    fn refinement_pulls_drifted_map_back_onto_measurements() {
        let truth = grid(6, 4, 9.0);
        let set = MeasurementSet::oracle(&truth, 15.0);
        let mut positions = drifted(&truth, 8.0);
        let before = crate::eval::evaluate_against_truth(&positions, &truth).unwrap();
        let out = refine_aligned(&set, &mut positions, &RefineConfig::default()).unwrap();
        let after = crate::eval::evaluate_against_truth(&positions, &truth).unwrap();
        assert_eq!(out.nodes, truth.len());
        assert!(out.final_stress < out.initial_stress * 1e-3, "{out:?}");
        assert!(
            after.mean_error < 0.05 * before.mean_error,
            "refinement {} -> {}",
            before.mean_error,
            after.mean_error
        );
        assert!(out.iterations > 0 && out.cg_iterations > 0);
    }

    #[test]
    fn unaligned_nodes_stay_untouched() {
        let truth = grid(4, 4, 9.0);
        let set = MeasurementSet::oracle(&truth, 15.0);
        let mut positions = drifted(&truth, 5.0);
        positions.clear(NodeId(7));
        let frozen = positions.get(NodeId(3));
        let out = refine_aligned(&set, &mut positions, &RefineConfig::default()).unwrap();
        assert_eq!(out.nodes, 15);
        assert_eq!(positions.get(NodeId(7)), None, "unaligned stays unaligned");
        assert_ne!(positions.get(NodeId(3)), frozen, "aligned nodes move");
    }

    #[test]
    fn degenerate_inputs_return_none() {
        let truth = grid(3, 3, 9.0);
        let set = MeasurementSet::oracle(&truth, 15.0);
        // Zero aligned nodes.
        let mut none = PositionMap::unlocalized(truth.len());
        assert!(refine_aligned(&set, &mut none, &RefineConfig::default()).is_none());
        // One aligned node.
        let mut one = PositionMap::unlocalized(truth.len());
        one.set(NodeId(0), truth[0]);
        assert!(refine_aligned(&set, &mut one, &RefineConfig::default()).is_none());
        // Two aligned nodes without a measured edge between them.
        let mut sparse_set = MeasurementSet::new(3);
        sparse_set.insert(NodeId(0), NodeId(1), 9.0);
        let mut pair = PositionMap::unlocalized(3);
        pair.set(NodeId(0), truth[0]);
        pair.set(NodeId(2), truth[2]);
        assert!(refine_aligned(&sparse_set, &mut pair, &RefineConfig::default()).is_none());
    }

    #[test]
    fn already_optimal_configuration_converges_immediately() {
        let truth = grid(4, 3, 9.0);
        let set = MeasurementSet::oracle(&truth, 15.0);
        let mut positions = PositionMap::complete(truth.clone());
        let out = refine_aligned(&set, &mut positions, &RefineConfig::default()).unwrap();
        assert!(out.converged, "{out:?}");
        assert!(out.final_stress < 1e-12);
        for (i, &p) in truth.iter().enumerate() {
            assert!(positions.get(NodeId(i)).unwrap().distance(p) < 1e-6);
        }
    }

    #[test]
    fn refinement_is_deterministic() {
        let truth = grid(5, 4, 9.0);
        let set = MeasurementSet::oracle(&truth, 15.0);
        let run = || {
            let mut positions = drifted(&truth, 6.0);
            refine_aligned(&set, &mut positions, &RefineConfig::default());
            (0..truth.len())
                .map(|i| {
                    let p = positions.get(NodeId(i)).unwrap();
                    (p.x.to_bits(), p.y.to_bits())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn robust_reweighting_resists_a_gross_outlier_edge() {
        let truth = grid(5, 3, 9.0);
        let mut set = MeasurementSet::oracle(&truth, 15.0);
        set.insert(NodeId(0), NodeId(1), 0.5); // true 9 m, echo-style
        let robust_cfg = RefineConfig::default();
        let plain_cfg = RefineConfig {
            loss: RobustLoss::SquaredL2,
            ..RefineConfig::default()
        };
        let err_with = |cfg: &RefineConfig| {
            let mut positions = drifted(&truth, 4.0);
            refine_aligned(&set, &mut positions, cfg).unwrap();
            crate::eval::evaluate_against_truth(&positions, &truth)
                .unwrap()
                .mean_error
        };
        let robust = err_with(&robust_cfg);
        let plain = err_with(&plain_cfg);
        assert!(
            robust < plain,
            "robust {robust} should beat plain {plain} under a gross outlier"
        );
        assert!(robust < 0.5, "robust error {robust}");
    }

    #[test]
    fn empty_pin_list_is_bitwise_refine_aligned() {
        let truth = grid(5, 4, 9.0);
        let set = MeasurementSet::oracle(&truth, 15.0);
        let bits = |positions: &PositionMap| -> Vec<(u64, u64)> {
            (0..truth.len())
                .map(|i| {
                    let p = positions.get(NodeId(i)).unwrap();
                    (p.x.to_bits(), p.y.to_bits())
                })
                .collect()
        };
        let mut plain = drifted(&truth, 6.0);
        let mut anchored = plain.clone();
        let a = refine_aligned(&set, &mut plain, &RefineConfig::default()).unwrap();
        let b = refine_anchored(&set, &mut anchored, &[], &RefineConfig::default()).unwrap();
        assert_eq!(a, b);
        assert_eq!(bits(&plain), bits(&anchored));
    }

    #[test]
    fn pinned_nodes_never_move_and_pull_the_frame_home() {
        let truth = grid(6, 4, 9.0);
        let set = MeasurementSet::oracle(&truth, 15.0);
        let mut positions = drifted(&truth, 8.0);
        // Pin three spread-out nodes at their *true* positions, like
        // anchors re-surveyed each tick.
        let pins = [NodeId(0), NodeId(11), NodeId(23)];
        for &p in &pins {
            positions.set(p, truth[p.index()]);
        }
        let out = refine_anchored(&set, &mut positions, &pins, &RefineConfig::default()).unwrap();
        assert_eq!(out.nodes, truth.len() - pins.len(), "free variables only");
        for &p in &pins {
            let q = positions.get(p).unwrap();
            assert_eq!(q.x.to_bits(), truth[p.index()].x.to_bits());
            assert_eq!(q.y.to_bits(), truth[p.index()].y.to_bits());
        }
        // With exact measurements and true pins, the refit lands on the
        // truth in the absolute frame — no best-fit alignment needed.
        let mut worst = 0.0f64;
        for (i, &t) in truth.iter().enumerate() {
            worst = worst.max(positions.get(NodeId(i)).unwrap().distance(t));
        }
        assert!(worst < 1e-3, "absolute-frame residual {worst} m");
    }

    #[test]
    fn single_free_node_refines_against_pinned_neighbors() {
        // Trilateration-style: one free node, three pinned ones. The
        // all-free path would bail out (m < 2); the pinned path solves.
        let truth = vec![
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(0.0, 10.0),
            Point2::new(6.0, 6.0),
        ];
        let set = MeasurementSet::oracle(&truth, 20.0);
        let mut positions = PositionMap::complete(truth.clone());
        positions.set(NodeId(3), Point2::new(2.0, 9.0)); // perturbed
        let pins = [NodeId(0), NodeId(1), NodeId(2)];
        let out = refine_anchored(&set, &mut positions, &pins, &RefineConfig::default()).unwrap();
        assert_eq!(out.nodes, 1);
        assert!(positions.get(NodeId(3)).unwrap().distance(truth[3]) < 1e-6);
    }

    #[test]
    fn unlocalized_or_out_of_range_pins_are_ignored() {
        let truth = grid(4, 3, 9.0);
        let set = MeasurementSet::oracle(&truth, 15.0);
        let mut positions = drifted(&truth, 5.0);
        positions.clear(NodeId(2));
        // Pinning an unlocalized node and an out-of-range id must not
        // panic nor change the degenerate-input rules.
        let pins = [NodeId(2), NodeId(999)];
        let out = refine_anchored(&set, &mut positions, &pins, &RefineConfig::default());
        assert!(out.is_some());
        assert_eq!(positions.get(NodeId(2)), None);
    }

    #[test]
    fn preconditioned_warm_started_refine_matches_default_quality() {
        use rl_math::sparse::cg::PreconditionerKind;
        let truth = grid(8, 5, 9.0);
        let set = MeasurementSet::oracle(&truth, 15.0);
        let fast_cfg = RefineConfig {
            cg: CgConfig::default()
                .with_max_iterations(200)
                .with_tolerance(1e-4)
                .with_preconditioner(PreconditionerKind::Jacobi),
            cg_warm_start: true,
            ..RefineConfig::default()
        };
        let mut plain_pos = drifted(&truth, 8.0);
        let plain = refine_aligned(&set, &mut plain_pos, &RefineConfig::default()).unwrap();
        let mut fast_pos = drifted(&truth, 8.0);
        let fast = refine_aligned(&set, &mut fast_pos, &fast_cfg).unwrap();
        // Same optimization problem, same answer quality — the
        // accelerations change the path to the solution, not the
        // solution.
        assert!(fast.final_stress < fast.initial_stress * 1e-3, "{fast:?}");
        let plain_err = crate::eval::evaluate_against_truth(&plain_pos, &truth)
            .unwrap()
            .mean_error;
        let fast_err = crate::eval::evaluate_against_truth(&fast_pos, &truth)
            .unwrap()
            .mean_error;
        assert!(
            (plain_err - fast_err).abs() < 0.05,
            "plain {plain_err} vs fast {fast_err}"
        );
        assert!(fast.cg_iterations > 0 && plain.cg_iterations > 0);
    }

    #[test]
    fn warm_start_alone_preserves_refined_quality() {
        let truth = grid(6, 4, 9.0);
        let set = MeasurementSet::oracle(&truth, 15.0);
        let cfg = RefineConfig {
            cg_warm_start: true,
            ..RefineConfig::default()
        };
        let mut positions = drifted(&truth, 8.0);
        let out = refine_aligned(&set, &mut positions, &cfg).unwrap();
        assert!(out.final_stress < out.initial_stress * 1e-3, "{out:?}");
        let after = crate::eval::evaluate_against_truth(&positions, &truth).unwrap();
        assert!(
            after.mean_error < 0.5,
            "warm-started error {}",
            after.mean_error
        );
    }

    #[test]
    fn rigid_frame_is_preserved_not_recentered() {
        // The Tikhonov anchor keeps the refined map in the frame the
        // flood produced: a configuration that is already a rigid motion
        // of the truth must stay (approximately) where it is rather than
        // snapping somewhere else.
        let truth = grid(4, 3, 9.0);
        let set = MeasurementSet::oracle(&truth, 15.0);
        let moved = RigidTransform::new(0.6, false, Vec2::new(30.0, -12.0));
        let mut positions = PositionMap::complete(truth.iter().map(|&p| moved.apply(p)).collect());
        refine_aligned(&set, &mut positions, &RefineConfig::default()).unwrap();
        for (i, &p) in truth.iter().enumerate() {
            let q = positions.get(NodeId(i)).unwrap();
            assert!(
                q.distance(moved.apply(p)) < 0.1,
                "node {i} moved {} m out of frame",
                q.distance(moved.apply(p))
            );
        }
    }
}
