//! Evaluation against ground truth.
//!
//! Anchor-free LSS produces coordinates in an arbitrary frame, so the paper
//! evaluates it after a best-fit match: "the computed coordinates were
//! translated, rotated and flipped to achieve a best-fit match with the
//! actual node coordinates" (Section 4.2.2). The headline metric is the
//! **average localization error** — "the average of the distances between
//! actual node positions and the corresponding estimated positions".

use rl_geom::{fit_rigid_transform, Point2};
use rl_net::NodeId;
use serde::{Deserialize, Serialize};

use crate::types::PositionMap;
use crate::{LocalizationError, Result};

/// The outcome of comparing estimated positions with ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Number of nodes the algorithm localized.
    pub localized: usize,
    /// Total number of nodes.
    pub total: usize,
    /// Average localization error over localized nodes, meters.
    pub mean_error: f64,
    /// Largest single-node error, meters.
    pub max_error: f64,
    /// Per-node errors (only localized nodes, ordered by id).
    pub per_node: Vec<(NodeId, f64)>,
    /// Estimated positions mapped into the ground-truth frame.
    pub aligned: PositionMap,
    /// Estimates skipped because a coordinate was NaN or infinite. A
    /// non-finite estimate is a solver bug, but it must surface as this
    /// flag — not as a NaN `mean_error` silently poisoning every
    /// aggregate built on top of the evaluation.
    pub non_finite: usize,
}

impl Evaluation {
    /// Fraction of nodes localized.
    pub fn localized_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.localized as f64 / self.total as f64
        }
    }

    /// A view of the evaluation with the given nodes excluded from the
    /// metric (and cleared in [`Evaluation::aligned`]). Used to keep
    /// anchors — inputs, not estimates — out of an anchor-based
    /// algorithm's error: the paper reports multilateration error over
    /// non-anchor nodes only.
    pub fn excluding(&self, exclude: &[NodeId]) -> Evaluation {
        let ex: std::collections::BTreeSet<NodeId> = exclude.iter().copied().collect();
        let per_node: Vec<(NodeId, f64)> = self
            .per_node
            .iter()
            .filter(|(id, _)| !ex.contains(id))
            .copied()
            .collect();
        let max_error = per_node.iter().map(|&(_, e)| e).fold(0.0f64, f64::max);
        let mean_error = if per_node.is_empty() {
            0.0
        } else {
            per_node.iter().map(|&(_, e)| e).sum::<f64>() / per_node.len() as f64
        };
        let mut aligned = self.aligned.clone();
        for &id in &ex {
            if id.index() < aligned.len() {
                aligned.clear(id);
            }
        }
        Evaluation {
            localized: per_node.len(),
            total: self
                .total
                .saturating_sub(ex.iter().filter(|id| id.index() < self.total).count()),
            mean_error,
            max_error,
            per_node,
            aligned,
            non_finite: self.non_finite,
        }
    }

    /// Average error after dropping the `k` largest per-node errors (the
    /// paper reports e.g. "without the largest 5 errors, the average
    /// improves to 1.5 m").
    pub fn mean_error_without_worst(&self, k: usize) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        let mut errors: Vec<f64> = self.per_node.iter().map(|&(_, e)| e).collect();
        errors.sort_by(f64::total_cmp);
        let keep = errors.len().saturating_sub(k);
        if keep == 0 {
            return 0.0;
        }
        errors[..keep].iter().sum::<f64>() / keep as f64
    }
}

/// Splits the localized nodes into those with finite estimates and a
/// count of those with NaN/infinite coordinates: the latter are skipped
/// by the metrics and surfaced via [`Evaluation::non_finite`].
fn finite_localized(estimated: &PositionMap) -> (Vec<NodeId>, usize) {
    let mut finite = Vec::new();
    let mut non_finite = 0;
    for id in estimated.localized_nodes() {
        let p = estimated.get(id).expect("localized");
        if p.x.is_finite() && p.y.is_finite() {
            finite.push(id);
        } else {
            non_finite += 1;
        }
    }
    (finite, non_finite)
}

/// Evaluates estimates **after best-fit rigid alignment** (translation,
/// rotation, reflection) with the ground truth — the protocol for
/// anchor-free algorithms like LSS.
///
/// Only localized nodes with finite estimates participate in the
/// alignment and the metric; non-finite estimates are skipped and
/// counted in [`Evaluation::non_finite`] instead of poisoning the mean.
///
/// # Errors
///
/// * [`LocalizationError::Evaluation`] when fewer than 2 nodes have
///   finite estimates or the estimate/truth lengths disagree,
/// * geometric errors from a degenerate alignment.
pub fn evaluate_against_truth(estimated: &PositionMap, truth: &[Point2]) -> Result<Evaluation> {
    if estimated.len() != truth.len() {
        return Err(LocalizationError::Evaluation(
            "estimate and truth cover different node counts",
        ));
    }
    let (localized, non_finite) = finite_localized(estimated);
    if localized.len() < 2 {
        return Err(LocalizationError::Evaluation(
            "need at least two finitely localized nodes to align",
        ));
    }
    let source: Vec<Point2> = localized
        .iter()
        .map(|&id| estimated.get(id).expect("localized"))
        .collect();
    let target: Vec<Point2> = localized.iter().map(|&id| truth[id.index()]).collect();
    let fit = fit_rigid_transform(&source, &target, true)?;

    let mut aligned = PositionMap::unlocalized(truth.len());
    let mut per_node = Vec::with_capacity(localized.len());
    let mut max_error: f64 = 0.0;
    for (&id, &src) in localized.iter().zip(&source) {
        let mapped = fit.transform.apply(src);
        aligned.set(id, mapped);
        let err = mapped.distance(truth[id.index()]);
        max_error = max_error.max(err);
        per_node.push((id, err));
    }
    let mean_error = per_node.iter().map(|&(_, e)| e).sum::<f64>() / per_node.len() as f64;

    Ok(Evaluation {
        localized: localized.len(),
        total: truth.len(),
        mean_error,
        max_error,
        per_node,
        aligned,
        non_finite,
    })
}

/// Evaluates estimates **in the absolute frame** (no alignment) — the
/// protocol for anchor-based algorithms like multilateration, whose output
/// already lives in the anchors' coordinate system.
///
/// Non-finite estimates are skipped and counted in
/// [`Evaluation::non_finite`] instead of poisoning the mean.
///
/// # Errors
///
/// * [`LocalizationError::Evaluation`] when nothing is finitely
///   localized or the lengths disagree.
pub fn evaluate_absolute(estimated: &PositionMap, truth: &[Point2]) -> Result<Evaluation> {
    if estimated.len() != truth.len() {
        return Err(LocalizationError::Evaluation(
            "estimate and truth cover different node counts",
        ));
    }
    let (localized, non_finite) = finite_localized(estimated);
    if localized.is_empty() {
        return Err(LocalizationError::Evaluation(
            "no nodes were finitely localized",
        ));
    }
    let mut per_node = Vec::with_capacity(localized.len());
    let mut max_error: f64 = 0.0;
    let mut aligned = PositionMap::unlocalized(truth.len());
    for &id in &localized {
        let est = estimated.get(id).expect("localized");
        aligned.set(id, est);
        let err = est.distance(truth[id.index()]);
        max_error = max_error.max(err);
        per_node.push((id, err));
    }
    let mean_error = per_node.iter().map(|&(_, e)| e).sum::<f64>() / per_node.len() as f64;
    Ok(Evaluation {
        localized: localized.len(),
        total: truth.len(),
        mean_error,
        max_error,
        per_node,
        aligned,
        non_finite,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_geom::{RigidTransform, Vec2};

    fn truth() -> Vec<Point2> {
        vec![
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(10.0, 10.0),
            Point2::new(0.0, 10.0),
        ]
    }

    #[test]
    fn perfect_estimate_scores_zero() {
        let t = truth();
        let est = PositionMap::complete(t.clone());
        let eval = evaluate_against_truth(&est, &t).unwrap();
        assert_eq!(eval.localized, 4);
        assert!(eval.mean_error < 1e-10);
        assert!(eval.max_error < 1e-10);
        assert_eq!(eval.localized_fraction(), 1.0);
    }

    #[test]
    fn rotated_flipped_estimate_aligns_to_zero() {
        let t = truth();
        let hidden = RigidTransform::new(1.2, true, Vec2::new(-30.0, 12.0));
        let est = PositionMap::complete(t.iter().map(|&p| hidden.apply(p)).collect::<Vec<_>>());
        let eval = evaluate_against_truth(&est, &t).unwrap();
        assert!(eval.mean_error < 1e-9, "mean error {}", eval.mean_error);
    }

    #[test]
    fn absolute_evaluation_does_not_align() {
        let t = truth();
        let shifted: Vec<Point2> = t.iter().map(|&p| p + Vec2::new(1.0, 0.0)).collect();
        let est = PositionMap::complete(shifted);
        let absolute = evaluate_absolute(&est, &t).unwrap();
        assert!((absolute.mean_error - 1.0).abs() < 1e-12);
        // Aligned evaluation removes the shift entirely.
        let aligned = evaluate_against_truth(&est, &t).unwrap();
        assert!(aligned.mean_error < 1e-9);
    }

    #[test]
    fn partial_localization_counts() {
        let t = truth();
        let mut est = PositionMap::unlocalized(4);
        est.set(NodeId(0), t[0]);
        est.set(NodeId(2), t[2]);
        let eval = evaluate_against_truth(&est, &t).unwrap();
        assert_eq!(eval.localized, 2);
        assert_eq!(eval.total, 4);
        assert_eq!(eval.localized_fraction(), 0.5);
        assert_eq!(eval.per_node.len(), 2);
        assert!(!eval.aligned.is_localized(NodeId(1)));
    }

    #[test]
    fn mean_without_worst_drops_outliers() {
        let t = truth();
        let mut positions = t.clone();
        positions[3] = Point2::new(0.0, 30.0); // 20 m outlier
        let est = PositionMap::complete(positions);
        let eval = evaluate_absolute(&est, &t).unwrap();
        assert!(eval.mean_error > 4.0);
        let trimmed = eval.mean_error_without_worst(1);
        assert!(trimmed < 1e-12, "trimmed {trimmed}");
        // Dropping everything yields zero.
        assert_eq!(eval.mean_error_without_worst(10), 0.0);
    }

    #[test]
    fn excluding_drops_nodes_from_metric() {
        let t = truth();
        let mut positions = t.clone();
        positions[0] = Point2::new(0.0, 5.0); // 5 m error on node 0
        let eval = evaluate_absolute(&PositionMap::complete(positions), &t).unwrap();
        assert!((eval.mean_error - 1.25).abs() < 1e-12);

        let trimmed = eval.excluding(&[NodeId(0)]);
        assert_eq!(trimmed.localized, 3);
        assert_eq!(trimmed.total, 3);
        assert!(trimmed.mean_error < 1e-12, "mean {}", trimmed.mean_error);
        assert!(!trimmed.aligned.is_localized(NodeId(0)));
        assert_eq!(trimmed.per_node.len(), 3);

        // Excluding everything leaves a zeroed metric, not a panic.
        let empty = eval.excluding(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(empty.localized, 0);
        assert_eq!(empty.mean_error, 0.0);
    }

    /// A single NaN estimate must be skipped and flagged — not turn the
    /// whole campaign's mean/max into NaN.
    #[test]
    fn a_nan_node_no_longer_poisons_the_summary() {
        let t = truth();
        let mut est = PositionMap::complete(t.clone());
        est.set(NodeId(2), Point2::new(f64::NAN, 3.0));

        for eval in [
            evaluate_against_truth(&est, &t).unwrap(),
            evaluate_absolute(&est, &t).unwrap(),
        ] {
            assert_eq!(eval.non_finite, 1);
            assert_eq!(eval.localized, 3);
            assert!(eval.mean_error.is_finite(), "mean {}", eval.mean_error);
            assert!(eval.max_error.is_finite(), "max {}", eval.max_error);
            assert!(eval.mean_error < 1e-9, "finite nodes are exact");
            assert!(!eval.aligned.is_localized(NodeId(2)), "NaN node skipped");
            // The flag survives exclusion views (campaign summaries
            // aggregate those too).
            assert_eq!(eval.excluding(&[NodeId(0)]).non_finite, 1);
        }

        // An all-NaN / infinite estimate is a structured error, not NaN.
        let mut bad = PositionMap::unlocalized(4);
        bad.set(NodeId(0), Point2::new(f64::NAN, 0.0));
        bad.set(NodeId(1), Point2::new(0.0, f64::INFINITY));
        assert!(matches!(
            evaluate_against_truth(&bad, &t),
            Err(LocalizationError::Evaluation(_))
        ));
        assert!(matches!(
            evaluate_absolute(&bad, &t),
            Err(LocalizationError::Evaluation(_))
        ));
    }

    #[test]
    fn error_cases() {
        let t = truth();
        let too_few = PositionMap::unlocalized(4);
        assert!(matches!(
            evaluate_against_truth(&too_few, &t),
            Err(LocalizationError::Evaluation(_))
        ));
        assert!(matches!(
            evaluate_absolute(&too_few, &t),
            Err(LocalizationError::Evaluation(_))
        ));
        let wrong_len = PositionMap::unlocalized(3);
        assert!(evaluate_against_truth(&wrong_len, &t).is_err());
    }
}
