//! Resilient localization algorithms — the primary contribution of
//! Kwon, Mechitov, Sundresh, Kim and Agha, *"Resilient Localization for
//! Sensor Networks in Outdoor Environments"* (ICDCS 2005).
//!
//! Given the sparse, noisy distance measurements an acoustic ranging
//! service produces in the field, this crate computes node positions with
//! a family of algorithms of increasing resilience:
//!
//! * [`multilateration`] — anchor-based least-squares multilateration with
//!   the paper's *intersection consistency check* (Section 4.1) and a
//!   progressive variant; accurate when anchors abound, brittle when
//!   measurements are sparse,
//! * [`lss`] — **centralized least-squares scaling** with a
//!   minimum-node-spacing **soft constraint** (Section 4.2): anchor-free,
//!   resilient against missing measurements and large-magnitude errors,
//! * [`distributed`] — the scalable **distributed LSS** variant
//!   (Section 4.3): per-node local maps, pairwise coordinate-system
//!   transforms, and a flooding alignment phase, running on the `rl-net`
//!   discrete-event simulator,
//! * [`mds`] — classical multidimensional scaling and the MDS-MAP-style
//!   shortest-path completion, as baselines and as an LSS initializer,
//! * [`baselines`] — DV-hop (APS) and centroid localization from the
//!   paper's Related Work, for head-to-head comparisons,
//! * [`eval`] — evaluation: best-fit alignment (translate/rotate/flip)
//!   against ground truth and the paper's average-localization-error
//!   metric,
//! * [`tracking`] — online tracking: a [`Tracker`] consumes per-tick
//!   measurement deltas and keeps the solution warm with bounded
//!   Gauss–Newton refinement, falling back to a cold batch solve when
//!   churn invalidates the seed,
//! * [`problem`] — the unified solving API: a [`Problem`] (measurements +
//!   anchors + optional ground truth), a [`Solution`] (positions + solve
//!   statistics), and the object-safe [`Localizer`] trait implemented by
//!   every algorithm family above, so heterogeneous solver sets can be
//!   swept over shared problems (`Vec<Box<dyn Localizer>>`).
//!
//! # Example: anchor-free LSS on a noisy grid
//!
//! ```
//! use rl_core::eval::evaluate_against_truth;
//! use rl_core::lss::{LssConfig, LssSolver};
//! use rl_geom::Point2;
//! use rl_ranging::measurement::MeasurementSet;
//!
//! // A 3x3 grid with exact distances below a 25 m cutoff.
//! let truth: Vec<Point2> = (0..9)
//!     .map(|i| Point2::new((i % 3) as f64 * 9.0, (i / 3) as f64 * 9.0))
//!     .collect();
//! let measurements = MeasurementSet::oracle(&truth, 25.0);
//!
//! let mut rng = rl_math::rng::seeded(7);
//! let config = LssConfig::default().with_min_spacing(9.0, 10.0);
//! let solution = LssSolver::new(config).solve(&measurements, &mut rng)?;
//!
//! let eval = evaluate_against_truth(&solution.positions(), &truth)?;
//! assert!(eval.mean_error < 0.5, "mean error {}", eval.mean_error);
//! # Ok::<(), rl_core::LocalizationError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod distributed;
pub mod eval;
pub mod lss;
pub mod mds;
pub mod multilateration;
pub mod problem;
pub mod tracking;
pub mod types;

pub use eval::{evaluate_against_truth, Evaluation};
pub use lss::{LssConfig, LssSolution, LssSolver};
pub use multilateration::{MultilaterationConfig, MultilaterationSolver};
pub use problem::{Frame, Localizer, Problem, Solution, SolveStats, SolverBackend};
pub use rl_math::RobustLoss;
pub use tracking::{StreamingTracker, TickObservation, Tracker, TrackerConfig};
pub use types::{Anchor, PositionMap};

/// Error type for localization algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LocalizationError {
    /// The measurement set is empty or disconnected beyond use.
    InsufficientMeasurements(&'static str),
    /// Fewer anchors than required were supplied.
    TooFewAnchors {
        /// Anchors required.
        needed: usize,
        /// Anchors available.
        got: usize,
    },
    /// A configuration parameter was out of its documented domain.
    InvalidConfig(&'static str),
    /// Evaluation failed (e.g. nothing was localized).
    Evaluation(&'static str),
    /// A geometric subroutine failed.
    Geometry(rl_geom::GeomError),
    /// A numerical subroutine failed.
    Numerical(rl_math::MathError),
}

impl core::fmt::Display for LocalizationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LocalizationError::InsufficientMeasurements(what) => {
                write!(f, "insufficient measurements: {what}")
            }
            LocalizationError::TooFewAnchors { needed, got } => {
                write!(f, "needed {needed} anchors, got {got}")
            }
            LocalizationError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            LocalizationError::Evaluation(what) => write!(f, "evaluation failed: {what}"),
            LocalizationError::Geometry(e) => write!(f, "geometry error: {e}"),
            LocalizationError::Numerical(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl std::error::Error for LocalizationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LocalizationError::Geometry(e) => Some(e),
            LocalizationError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rl_geom::GeomError> for LocalizationError {
    fn from(e: rl_geom::GeomError) -> Self {
        LocalizationError::Geometry(e)
    }
}

impl From<rl_math::MathError> for LocalizationError {
    fn from(e: rl_math::MathError) -> Self {
        LocalizationError::Numerical(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, LocalizationError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = LocalizationError::TooFewAnchors { needed: 3, got: 1 };
        assert_eq!(e.to_string(), "needed 3 anchors, got 1");
        let wrapped: LocalizationError = rl_geom::GeomError::Degenerate("flat").into();
        assert!(wrapped.to_string().contains("degenerate"));
        use std::error::Error;
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<LocalizationError>();
    }
}
