//! The LSS stress function and its gradient.
//!
//! Centralized LSS seeks a configuration minimizing (Section 4.2.1):
//!
//! ```text
//! E = Σ_{d_ij ∈ D} w_ij (‖p_i − p_j‖ − d_ij)²
//!   + Σ_{d_ij ∉ D} w_D (min(‖p_i − p_j‖, d_min) − d_min)²
//! ```
//!
//! The first sum is the weighted least-squares-scaling stress `E_w`; the
//! second is the **minimum-spacing soft constraint**, penalizing
//! *unmeasured* pairs that are placed closer than `d_min` ("straightening
//! a plane which is incorrectly folded"). The penalized set changes
//! dynamically as the minimization progresses.
//!
//! The configuration vector is laid out `[x_0 … x_{n−1}, y_0 … y_{n−1}]`,
//! matching the paper's gradient formulas.
//!
//! # Constraint backends
//!
//! The measured sum is always evaluated over the sparse edge list, but
//! the soft constraint ranges over the *complement* of the measurement
//! graph — `O(n²)` pairs. Two interchangeable backends evaluate it
//! (selected by [`rl_core::SolverBackend`](crate::SolverBackend), `Auto`
//! by problem size):
//!
//! * **Dense** materializes the complement pair list once and scans it on
//!   every evaluation — exact, simple, `O(n²)` memory *and* time per
//!   gradient step; the reference at paper scale.
//! * **Sparse** exploits that only pairs closer than `d_min` contribute:
//!   every evaluation bins the current configuration into a uniform grid
//!   of cell size `d_min` and visits only neighboring-cell pairs, in
//!   `O(n + a)` for `a` active pairs. Because non-violating pairs
//!   contribute exactly `+0.0` to the sum (and are skipped by the dense
//!   gradient too), the sparse backend reproduces the dense objective
//!   **bit for bit** — same value, same gradient, so the whole descent
//!   trajectory is identical. `tests/sparse_parity.rs` asserts this.

use std::collections::HashSet;

use rl_math::gradient::Objective;
use rl_ranging::measurement::MeasurementSet;

use crate::problem::SolverBackend;

/// Guard against division by a vanishing computed distance.
const MIN_DISTANCE: f64 = 1e-9;

/// The minimum-spacing soft constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftConstraint {
    /// Minimum node spacing `d_min`, meters (9.14 m in the grass-grid
    /// experiment).
    pub min_spacing_m: f64,
    /// Constraint weight `w_D` (10 in the paper, versus `w_ij` = 1).
    pub weight: f64,
}

/// How the soft constraint's complement sum is evaluated (see the module
/// docs).
#[derive(Debug, Clone)]
enum ConstraintBackend {
    /// No soft constraint configured.
    Off,
    /// Materialized complement pair list, scanned per evaluation.
    Dense {
        /// Unmeasured pairs `(i, j)` with `i < j`, sorted.
        unmeasured: Vec<(usize, usize)>,
    },
    /// Spatial-grid active set, rebuilt per evaluation.
    Sparse {
        /// Measured pairs `(min, max)` for exclusion during grid sweeps.
        measured_lookup: HashSet<(usize, usize)>,
    },
}

/// The LSS stress objective over a measurement set.
#[derive(Debug, Clone)]
pub struct LssObjective {
    n: usize,
    /// Measured pairs: `(i, j, distance, weight)`.
    measured: Vec<(usize, usize, f64, f64)>,
    soft: Option<SoftConstraint>,
    backend: ConstraintBackend,
}

impl LssObjective {
    /// Builds the objective with automatic backend selection
    /// ([`SolverBackend::Auto`]): the dense complement list below the
    /// size threshold, the spatial-grid active set above it.
    pub fn new(set: &MeasurementSet, soft: Option<SoftConstraint>) -> Self {
        Self::with_backend(set, soft, SolverBackend::Auto)
    }

    /// Builds the objective on an explicit constraint backend. When
    /// `soft` is `None` the backend choice is irrelevant (the constraint
    /// machinery is skipped entirely).
    pub fn with_backend(
        set: &MeasurementSet,
        soft: Option<SoftConstraint>,
        backend: SolverBackend,
    ) -> Self {
        let n = set.node_count();
        let measured: Vec<(usize, usize, f64, f64)> = set
            .iter_weighted()
            .map(|(a, b, d, w)| (a.index(), b.index(), d, w))
            .collect();
        let backend = if soft.is_none() {
            ConstraintBackend::Off
        } else if backend.use_sparse(n) {
            ConstraintBackend::Sparse {
                measured_lookup: measured.iter().map(|&(i, j, _, _)| (i, j)).collect(),
            }
        } else {
            let mut unmeasured = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    if !set.contains(rl_net::NodeId(i), rl_net::NodeId(j)) {
                        unmeasured.push((i, j));
                    }
                }
            }
            ConstraintBackend::Dense { unmeasured }
        };
        LssObjective {
            n,
            measured,
            soft,
            backend,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of measured pairs driving `E_w`.
    pub fn measured_pairs(&self) -> usize {
        self.measured.len()
    }

    /// Number of unmeasured pairs subject to the soft constraint (the
    /// complement size; the sparse backend never materializes them but
    /// the count is the same).
    pub fn constrained_pairs(&self) -> usize {
        if self.soft.is_none() {
            return 0;
        }
        self.n * (self.n - 1) / 2 - self.measured.len()
    }

    /// Whether the spatial-grid (sparse) constraint backend is active.
    pub fn uses_sparse_constraint(&self) -> bool {
        matches!(self.backend, ConstraintBackend::Sparse { .. })
    }

    /// Extracts `(x_i, y_i)` from the flat configuration vector.
    #[inline]
    fn coords(x: &[f64], n: usize, i: usize) -> (f64, f64) {
        (x[i], x[n + i])
    }

    /// The unmeasured pairs violating the constraint at `x` (distance
    /// strictly below `d_min`) with their distances, sorted ascending by
    /// pair — the only pairs with a nonzero constraint contribution. The
    /// sort keeps the accumulation order identical to the dense backend's
    /// `i < j` scan, which is what makes the two backends bit-identical.
    fn violating_pairs(&self, x: &[f64]) -> Vec<(usize, usize, f64)> {
        let Some(soft) = self.soft else {
            return Vec::new();
        };
        let d_min = soft.min_spacing_m;
        match &self.backend {
            ConstraintBackend::Off => Vec::new(),
            ConstraintBackend::Dense { unmeasured } => unmeasured
                .iter()
                .filter_map(|&(i, j)| {
                    let (xi, yi) = Self::coords(x, self.n, i);
                    let (xj, yj) = Self::coords(x, self.n, j);
                    let dist = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
                    (dist < d_min).then_some((i, j, dist))
                })
                .collect(),
            ConstraintBackend::Sparse { measured_lookup } => {
                // Uniform grid with cell size d_min: any pair closer than
                // d_min lives in the same or an adjacent cell. The grid is
                // a flat sorted `(cell_x, cell_y, node)` index — binary
                // searched per neighbor column, no per-cell allocations.
                // f64-to-i64 casts saturate, so non-finite probe points
                // cannot panic (the optimizer rejects them by value).
                let n = self.n;
                let cell_of = |px: f64, py: f64| -> (i64, i64) {
                    ((px / d_min).floor() as i64, (py / d_min).floor() as i64)
                };
                let mut keyed: Vec<(i64, i64, u32)> = (0..n)
                    .map(|i| {
                        let (xi, yi) = Self::coords(x, n, i);
                        let (cx, cy) = cell_of(xi, yi);
                        (cx, cy, i as u32)
                    })
                    .collect();
                keyed.sort_unstable();
                let mut out = Vec::new();
                for i in 0..n {
                    let (xi, yi) = Self::coords(x, n, i);
                    let (cx, cy) = cell_of(xi, yi);
                    for dx in -1..=1i64 {
                        // Entries of column cx+dx with cell_y in
                        // [cy-1, cy+1] form one contiguous sorted run.
                        let kx = cx.saturating_add(dx);
                        let y_lo = cy.saturating_sub(1);
                        let y_hi = cy.saturating_add(1);
                        let lo = keyed.partition_point(|&(a, b, _)| (a, b) < (kx, y_lo));
                        let hi = keyed.partition_point(|&(a, b, _)| (a, b) <= (kx, y_hi));
                        for &(_, _, j) in &keyed[lo..hi] {
                            let j = j as usize;
                            if j <= i || measured_lookup.contains(&(i, j)) {
                                continue;
                            }
                            let (xj, yj) = Self::coords(x, n, j);
                            let dist = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
                            if dist < d_min {
                                out.push((i, j, dist));
                            }
                        }
                    }
                }
                out.sort_unstable_by_key(|&(i, j, _)| (i, j));
                out
            }
        }
    }

    /// How many unmeasured pairs currently violate the constraint at `x`.
    pub fn active_constraints(&self, x: &[f64]) -> usize {
        self.violating_pairs(x).len()
    }
}

impl Objective for LssObjective {
    fn dim(&self) -> usize {
        2 * self.n
    }

    fn value(&self, x: &[f64]) -> f64 {
        let n = self.n;
        let mut e = 0.0;
        for &(i, j, d, w) in &self.measured {
            let (xi, yi) = Self::coords(x, n, i);
            let (xj, yj) = Self::coords(x, n, j);
            let dc = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
            e += w * (dc - d) * (dc - d);
        }
        if let Some(soft) = self.soft {
            // Only violating pairs contribute: clamped pairs at d_min add
            // exactly +0.0, so summing the violators alone (in the same
            // i < j order) reproduces the dense full-complement scan bit
            // for bit. Violators are strictly inside d_min, so the
            // min-clamp is a no-op and the grid's distance is reused.
            for (_, _, dc) in self.violating_pairs(x) {
                let diff = dc - soft.min_spacing_m;
                e += soft.weight * diff * diff;
            }
        }
        e
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        let n = self.n;
        grad.iter_mut().for_each(|g| *g = 0.0);
        for &(i, j, d, w) in &self.measured {
            let (xi, yi) = Self::coords(x, n, i);
            let (xj, yj) = Self::coords(x, n, j);
            let dx = xi - xj;
            let dy = yi - yj;
            let dc = (dx * dx + dy * dy).sqrt().max(MIN_DISTANCE);
            let factor = 2.0 * w * (dc - d) / dc;
            grad[i] += factor * dx;
            grad[j] -= factor * dx;
            grad[n + i] += factor * dy;
            grad[n + j] -= factor * dy;
        }
        if let Some(soft) = self.soft {
            for (i, j, dist) in self.violating_pairs(x) {
                let (xi, yi) = Self::coords(x, n, i);
                let (xj, yj) = Self::coords(x, n, j);
                let dx = xi - xj;
                let dy = yi - yj;
                let dc = dist.max(MIN_DISTANCE);
                let factor = 2.0 * soft.weight * (dc - soft.min_spacing_m) / dc;
                grad[i] += factor * dx;
                grad[j] -= factor * dx;
                grad[n + i] += factor * dy;
                grad[n + j] -= factor * dy;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_net::NodeId;

    fn pair_set(d: f64) -> MeasurementSet {
        let mut set = MeasurementSet::new(2);
        set.insert(NodeId(0), NodeId(1), d);
        set
    }

    /// Finite-difference gradient check.
    fn check_gradient(obj: &LssObjective, x: &[f64]) {
        let mut grad = vec![0.0; x.len()];
        obj.gradient(x, &mut grad);
        let h = 1e-6;
        for k in 0..x.len() {
            let mut xp = x.to_vec();
            xp[k] += h;
            let mut xm = x.to_vec();
            xm[k] -= h;
            let numeric = (obj.value(&xp) - obj.value(&xm)) / (2.0 * h);
            assert!(
                (grad[k] - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "grad[{k}] = {} vs numeric {numeric}",
                grad[k]
            );
        }
    }

    #[test]
    fn stress_zero_at_exact_configuration() {
        let set = pair_set(5.0);
        let obj = LssObjective::new(&set, None);
        // Nodes at distance exactly 5.
        let x = [0.0, 5.0, 0.0, 0.0];
        assert!(obj.value(&x) < 1e-18);
        assert_eq!(obj.dim(), 4);
        assert_eq!(obj.measured_pairs(), 1);
        assert_eq!(obj.constrained_pairs(), 0);
    }

    #[test]
    fn stress_grows_quadratically() {
        let set = pair_set(5.0);
        let obj = LssObjective::new(&set, None);
        let at = |d: f64| obj.value(&[0.0, d, 0.0, 0.0]);
        assert!((at(6.0) - 1.0).abs() < 1e-12);
        assert!((at(7.0) - 4.0).abs() < 1e-12);
        assert!((at(3.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn weights_scale_stress() {
        let mut set = MeasurementSet::new(2);
        set.insert_weighted(NodeId(0), NodeId(1), 5.0, 3.0);
        let obj = LssObjective::new(&set, None);
        assert!((obj.value(&[0.0, 6.0, 0.0, 0.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut set = MeasurementSet::new(4);
        set.insert(NodeId(0), NodeId(1), 5.0);
        set.insert(NodeId(1), NodeId(2), 7.0);
        set.insert_weighted(NodeId(2), NodeId(3), 4.0, 2.5);
        let obj = LssObjective::new(&set, None);
        let x = [0.3, 4.9, 11.2, 13.0, -0.2, 0.4, 1.0, -3.0];
        check_gradient(&obj, &x);
    }

    #[test]
    fn gradient_with_soft_constraint_matches_fd() {
        let mut set = MeasurementSet::new(4);
        set.insert(NodeId(0), NodeId(1), 5.0);
        set.insert(NodeId(2), NodeId(3), 4.0);
        let soft = SoftConstraint {
            min_spacing_m: 6.0,
            weight: 10.0,
        };
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let obj = LssObjective::with_backend(&set, Some(soft), backend);
            assert_eq!(obj.constrained_pairs(), 4);
            // Configuration with some constrained pairs inside d_min and
            // some outside (avoid the non-differentiable point
            // dc == d_min).
            let x = [0.0, 5.0, 1.0, 9.0, 0.0, 0.0, 2.0, 1.5];
            check_gradient(&obj, &x);
        }
    }

    #[test]
    fn soft_constraint_penalizes_only_close_unmeasured_pairs() {
        let mut set = MeasurementSet::new(3);
        set.insert(NodeId(0), NodeId(1), 5.0);
        let soft = SoftConstraint {
            min_spacing_m: 6.0,
            weight: 10.0,
        };
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let obj = LssObjective::with_backend(&set, Some(soft), backend);
            // Pairs (0,2) and (1,2) are unmeasured. Put node 2 far away:
            // no penalty.
            let far = [0.0, 5.0, 100.0, 0.0, 0.0, 0.0];
            assert!(obj.value(&far) < 1e-18);
            assert_eq!(obj.active_constraints(&far), 0);
            // Node 2 at 3 m from node 0: one active violation of (6-3)².
            let near = [0.0, 5.0, 3.0, 0.0, 0.0, 0.0];
            let expected = 10.0 * (3.0f64 - 6.0).powi(2) + 10.0 * (2.0f64 - 6.0).powi(2);
            assert!(
                (obj.value(&near) - expected).abs() < 1e-9,
                "value {} expected {expected}",
                obj.value(&near)
            );
            assert_eq!(obj.active_constraints(&near), 2);
        }
    }

    #[test]
    fn backend_auto_selects_by_size_and_both_agree_bitwise() {
        let mut set = MeasurementSet::new(6);
        set.insert(NodeId(0), NodeId(1), 4.0);
        set.insert(NodeId(2), NodeId(4), 3.0);
        let soft = Some(SoftConstraint {
            min_spacing_m: 5.0,
            weight: 10.0,
        });
        let auto = LssObjective::new(&set, soft);
        assert!(!auto.uses_sparse_constraint(), "6 nodes stay dense");
        let dense = LssObjective::with_backend(&set, soft, SolverBackend::Dense);
        let sparse = LssObjective::with_backend(&set, soft, SolverBackend::Sparse);
        assert!(sparse.uses_sparse_constraint());
        assert_eq!(dense.constrained_pairs(), sparse.constrained_pairs());

        // A messy configuration with several violations: value and
        // gradient must agree bit for bit across backends.
        let x = [0.0, 1.0, 2.0, 7.5, 3.0, 9.0, 0.0, 0.5, 1.0, 8.0, 2.0, 7.0];
        assert_eq!(dense.value(&x).to_bits(), sparse.value(&x).to_bits());
        let mut gd = vec![0.0; 12];
        let mut gs = vec![0.0; 12];
        dense.gradient(&x, &mut gd);
        sparse.gradient(&x, &mut gs);
        for (a, b) in gd.iter().zip(&gs) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(dense.active_constraints(&x), sparse.active_constraints(&x));
    }

    #[test]
    fn sparse_backend_tolerates_non_finite_probe_points() {
        let mut set = MeasurementSet::new(3);
        set.insert(NodeId(0), NodeId(1), 5.0);
        let soft = Some(SoftConstraint {
            min_spacing_m: 6.0,
            weight: 10.0,
        });
        let obj = LssObjective::with_backend(&set, soft, SolverBackend::Sparse);
        // An overflowed descent probe must not panic; the optimizer
        // rejects it by value.
        let x = [f64::INFINITY, 5.0, 3.0, f64::NEG_INFINITY, 0.0, 0.0];
        let v = obj.value(&x);
        assert!(v.is_nan() || v.is_infinite() || v.is_finite());
    }

    #[test]
    fn coincident_points_have_finite_gradient() {
        let set = pair_set(5.0);
        let obj = LssObjective::new(&set, None);
        let x = [1.0, 1.0, 2.0, 2.0]; // identical positions
        let mut grad = vec![0.0; 4];
        obj.gradient(&x, &mut grad);
        assert!(grad.iter().all(|g| g.is_finite()));
        assert!(obj.value(&x).is_finite());
    }
}
