//! The LSS stress function and its gradient.
//!
//! Centralized LSS seeks a configuration minimizing (Section 4.2.1):
//!
//! ```text
//! E = Σ_{d_ij ∈ D} w_ij (‖p_i − p_j‖ − d_ij)²
//!   + Σ_{d_ij ∉ D} w_D (min(‖p_i − p_j‖, d_min) − d_min)²
//! ```
//!
//! The first sum is the weighted least-squares-scaling stress `E_w`; the
//! second is the **minimum-spacing soft constraint**, penalizing
//! *unmeasured* pairs that are placed closer than `d_min` ("straightening
//! a plane which is incorrectly folded"). The penalized set changes
//! dynamically as the minimization progresses.
//!
//! The configuration vector is laid out `[x_0 … x_{n−1}, y_0 … y_{n−1}]`,
//! matching the paper's gradient formulas.

use rl_math::gradient::Objective;
use rl_ranging::measurement::MeasurementSet;

/// Guard against division by a vanishing computed distance.
const MIN_DISTANCE: f64 = 1e-9;

/// The minimum-spacing soft constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftConstraint {
    /// Minimum node spacing `d_min`, meters (9.14 m in the grass-grid
    /// experiment).
    pub min_spacing_m: f64,
    /// Constraint weight `w_D` (10 in the paper, versus `w_ij` = 1).
    pub weight: f64,
}

/// The LSS stress objective over a measurement set.
#[derive(Debug, Clone)]
pub struct LssObjective {
    n: usize,
    /// Measured pairs: `(i, j, distance, weight)`.
    measured: Vec<(usize, usize, f64, f64)>,
    /// Unmeasured pairs (complement of `measured`), for the constraint.
    unmeasured: Vec<(usize, usize)>,
    soft: Option<SoftConstraint>,
}

impl LssObjective {
    /// Builds the objective. When `soft` is set, the complement pair list
    /// is materialized (O(n²) memory, fine for the paper's network sizes).
    pub fn new(set: &MeasurementSet, soft: Option<SoftConstraint>) -> Self {
        let n = set.node_count();
        let measured: Vec<(usize, usize, f64, f64)> = set
            .iter_weighted()
            .map(|(a, b, d, w)| (a.index(), b.index(), d, w))
            .collect();
        let unmeasured = if soft.is_some() {
            let mut out = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    if !set.contains(rl_net::NodeId(i), rl_net::NodeId(j)) {
                        out.push((i, j));
                    }
                }
            }
            out
        } else {
            Vec::new()
        };
        LssObjective {
            n,
            measured,
            unmeasured,
            soft,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of measured pairs driving `E_w`.
    pub fn measured_pairs(&self) -> usize {
        self.measured.len()
    }

    /// Number of unmeasured pairs subject to the soft constraint.
    pub fn constrained_pairs(&self) -> usize {
        self.unmeasured.len()
    }

    /// Extracts `(x_i, y_i)` from the flat configuration vector.
    #[inline]
    fn coords(x: &[f64], n: usize, i: usize) -> (f64, f64) {
        (x[i], x[n + i])
    }

    /// How many unmeasured pairs currently violate the constraint at `x`.
    pub fn active_constraints(&self, x: &[f64]) -> usize {
        let Some(soft) = self.soft else { return 0 };
        self.unmeasured
            .iter()
            .filter(|&&(i, j)| {
                let (xi, yi) = Self::coords(x, self.n, i);
                let (xj, yj) = Self::coords(x, self.n, j);
                ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt() < soft.min_spacing_m
            })
            .count()
    }
}

impl Objective for LssObjective {
    fn dim(&self) -> usize {
        2 * self.n
    }

    fn value(&self, x: &[f64]) -> f64 {
        let n = self.n;
        let mut e = 0.0;
        for &(i, j, d, w) in &self.measured {
            let (xi, yi) = Self::coords(x, n, i);
            let (xj, yj) = Self::coords(x, n, j);
            let dc = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
            e += w * (dc - d) * (dc - d);
        }
        if let Some(soft) = self.soft {
            for &(i, j) in &self.unmeasured {
                let (xi, yi) = Self::coords(x, n, i);
                let (xj, yj) = Self::coords(x, n, j);
                let dc = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
                let clamped = dc.min(soft.min_spacing_m);
                let diff = clamped - soft.min_spacing_m;
                e += soft.weight * diff * diff;
            }
        }
        e
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        let n = self.n;
        grad.iter_mut().for_each(|g| *g = 0.0);
        for &(i, j, d, w) in &self.measured {
            let (xi, yi) = Self::coords(x, n, i);
            let (xj, yj) = Self::coords(x, n, j);
            let dx = xi - xj;
            let dy = yi - yj;
            let dc = (dx * dx + dy * dy).sqrt().max(MIN_DISTANCE);
            let factor = 2.0 * w * (dc - d) / dc;
            grad[i] += factor * dx;
            grad[j] -= factor * dx;
            grad[n + i] += factor * dy;
            grad[n + j] -= factor * dy;
        }
        if let Some(soft) = self.soft {
            for &(i, j) in &self.unmeasured {
                let (xi, yi) = Self::coords(x, n, i);
                let (xj, yj) = Self::coords(x, n, j);
                let dx = xi - xj;
                let dy = yi - yj;
                let dc = (dx * dx + dy * dy).sqrt();
                if dc >= soft.min_spacing_m {
                    continue;
                }
                let dc = dc.max(MIN_DISTANCE);
                let factor = 2.0 * soft.weight * (dc - soft.min_spacing_m) / dc;
                grad[i] += factor * dx;
                grad[j] -= factor * dx;
                grad[n + i] += factor * dy;
                grad[n + j] -= factor * dy;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_net::NodeId;

    fn pair_set(d: f64) -> MeasurementSet {
        let mut set = MeasurementSet::new(2);
        set.insert(NodeId(0), NodeId(1), d);
        set
    }

    /// Finite-difference gradient check.
    fn check_gradient(obj: &LssObjective, x: &[f64]) {
        let mut grad = vec![0.0; x.len()];
        obj.gradient(x, &mut grad);
        let h = 1e-6;
        for k in 0..x.len() {
            let mut xp = x.to_vec();
            xp[k] += h;
            let mut xm = x.to_vec();
            xm[k] -= h;
            let numeric = (obj.value(&xp) - obj.value(&xm)) / (2.0 * h);
            assert!(
                (grad[k] - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "grad[{k}] = {} vs numeric {numeric}",
                grad[k]
            );
        }
    }

    #[test]
    fn stress_zero_at_exact_configuration() {
        let set = pair_set(5.0);
        let obj = LssObjective::new(&set, None);
        // Nodes at distance exactly 5.
        let x = [0.0, 5.0, 0.0, 0.0];
        assert!(obj.value(&x) < 1e-18);
        assert_eq!(obj.dim(), 4);
        assert_eq!(obj.measured_pairs(), 1);
        assert_eq!(obj.constrained_pairs(), 0);
    }

    #[test]
    fn stress_grows_quadratically() {
        let set = pair_set(5.0);
        let obj = LssObjective::new(&set, None);
        let at = |d: f64| obj.value(&[0.0, d, 0.0, 0.0]);
        assert!((at(6.0) - 1.0).abs() < 1e-12);
        assert!((at(7.0) - 4.0).abs() < 1e-12);
        assert!((at(3.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn weights_scale_stress() {
        let mut set = MeasurementSet::new(2);
        set.insert_weighted(NodeId(0), NodeId(1), 5.0, 3.0);
        let obj = LssObjective::new(&set, None);
        assert!((obj.value(&[0.0, 6.0, 0.0, 0.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut set = MeasurementSet::new(4);
        set.insert(NodeId(0), NodeId(1), 5.0);
        set.insert(NodeId(1), NodeId(2), 7.0);
        set.insert_weighted(NodeId(2), NodeId(3), 4.0, 2.5);
        let obj = LssObjective::new(&set, None);
        let x = [0.3, 4.9, 11.2, 13.0, -0.2, 0.4, 1.0, -3.0];
        check_gradient(&obj, &x);
    }

    #[test]
    fn gradient_with_soft_constraint_matches_fd() {
        let mut set = MeasurementSet::new(4);
        set.insert(NodeId(0), NodeId(1), 5.0);
        set.insert(NodeId(2), NodeId(3), 4.0);
        let soft = SoftConstraint {
            min_spacing_m: 6.0,
            weight: 10.0,
        };
        let obj = LssObjective::new(&set, Some(soft));
        assert_eq!(obj.constrained_pairs(), 4);
        // Configuration with some constrained pairs inside d_min and some
        // outside (avoid the non-differentiable point dc == d_min).
        let x = [0.0, 5.0, 1.0, 9.0, 0.0, 0.0, 2.0, 1.5];
        check_gradient(&obj, &x);
    }

    #[test]
    fn soft_constraint_penalizes_only_close_unmeasured_pairs() {
        let mut set = MeasurementSet::new(3);
        set.insert(NodeId(0), NodeId(1), 5.0);
        let soft = SoftConstraint {
            min_spacing_m: 6.0,
            weight: 10.0,
        };
        let obj = LssObjective::new(&set, Some(soft));
        // Pairs (0,2) and (1,2) are unmeasured. Put node 2 far away:
        // no penalty.
        let far = [0.0, 5.0, 100.0, 0.0, 0.0, 0.0];
        assert!(obj.value(&far) < 1e-18);
        assert_eq!(obj.active_constraints(&far), 0);
        // Node 2 at 3 m from node 0: one active violation of (6-3)².
        let near = [0.0, 5.0, 3.0, 0.0, 0.0, 0.0];
        let expected = 10.0 * (3.0f64 - 6.0).powi(2) + 10.0 * (2.0f64 - 6.0).powi(2);
        assert!(
            (obj.value(&near) - expected).abs() < 1e-9,
            "value {} expected {expected}",
            obj.value(&near)
        );
        assert_eq!(obj.active_constraints(&near), 2);
    }

    #[test]
    fn coincident_points_have_finite_gradient() {
        let set = pair_set(5.0);
        let obj = LssObjective::new(&set, None);
        let x = [1.0, 1.0, 2.0, 2.0]; // identical positions
        let mut grad = vec![0.0; 4];
        obj.gradient(&x, &mut grad);
        assert!(grad.iter().all(|g| g.is_finite()));
        assert!(obj.value(&x).is_finite());
    }
}
