//! Centralized least-squares scaling (LSS) with soft constraints.
//!
//! The paper's key localization algorithm (Section 4.2): an anchor-free
//! multidimensional-scaling variant that tolerates missing pairwise
//! distances, supports per-measurement confidence weights, and — crucially
//! for resilience — incorporates deployment knowledge ("a minimum distance
//! between nodes can be known in advance") as a **soft constraint** on
//! unmeasured pairs. Minimization is plain gradient descent with
//! perturbation restarts, exactly as in the paper.
//!
//! Without the soft constraint the descent routinely converges to folded
//! configurations (Figures 19/22); with it, sparse noisy field data
//! localizes every node to meter-level error (Figures 18/21).

mod error_fn;

pub use error_fn::{LssObjective, SoftConstraint};

use rand::Rng;
use rl_geom::Point2;
use rl_math::gradient::{minimize, DescentConfig, DescentTrace};
use rl_math::RobustLoss;
use rl_ranging::measurement::MeasurementSet;

use crate::problem::SolverBackend;
use crate::types::PositionMap;
use crate::{LocalizationError, Result};

/// How to seed the configuration before descent.
#[derive(Debug, Clone, PartialEq)]
pub enum InitStrategy {
    /// Uniform random positions in a square sized to the measurement
    /// scale (side ≈ mean measured distance × √n).
    Random,
    /// Uniform random positions in a square of the given side, meters.
    RandomInSquare(f64),
    /// Seed from MDS-MAP (shortest-path completion + classical MDS),
    /// falling back to [`InitStrategy::Random`] when the graph is
    /// disconnected. An extension beyond the paper that typically speeds
    /// convergence.
    MdsMap,
    /// Explicit starting coordinates (must match the node count).
    Given(Vec<Point2>),
}

/// Configuration of the centralized LSS solver.
#[derive(Debug, Clone, PartialEq)]
pub struct LssConfig {
    /// Minimum-spacing soft constraint, if any.
    pub soft_constraint: Option<SoftConstraint>,
    /// Gradient-descent settings. `descent.restarts` is the maximum number
    /// of perturbation rounds after the initial one; the solver stops
    /// early once the stress target is reached (the paper: "repeated until
    /// a reasonable minimum is reached or the maximum computation time
    /// limit expires").
    pub descent: DescentConfig,
    /// Early-exit threshold: restarting stops once
    /// `stress <= target_stress_per_pair × measured_pairs`. Set to `0.0`
    /// to always exhaust every round. The default of 0.5 (RMS residual
    /// ~0.7 m per pair) comfortably accepts `N(0, 0.33 m)` noise while
    /// rejecting folded configurations, whose stress is orders of
    /// magnitude higher.
    pub target_stress_per_pair: f64,
    /// Optional robust reweighting: after the base solve, measurement
    /// weights are multiplied by the IRLS factor of the configured
    /// [`RobustLoss`] at their residual and the problem is re-solved,
    /// which suppresses gross ranging outliers. This realizes §4.2.1's
    /// suggestion to weight measurements "depending on their confidence
    /// levels". A [`RobustLoss::SquaredL2`] loss makes the reweighting a
    /// no-op and the solver skips the extra re-solves entirely, leaving
    /// the RNG stream — and therefore the solution — bit-identical to a
    /// plain (`robust: None`) solve.
    pub robust: Option<RobustReweight>,
    /// Configuration seeding strategy.
    pub init: InitStrategy,
    /// Weight of the quadratic anchor springs used by
    /// [`LssSolver::solve_anchored`]. Ignored by plain [`LssSolver::solve`].
    pub anchor_weight: f64,
    /// Whether the unified [`Localizer`](crate::problem::Localizer) entry
    /// point may use a problem's anchors (anchored solve, absolute
    /// output). Disable to force the paper's anchor-free operation even
    /// when anchors are available — head-to-head comparisons use this to
    /// keep LSS on equal (anchor-less) footing. Ignored by the inherent
    /// [`LssSolver::solve`]/[`LssSolver::solve_anchored`] methods.
    pub use_anchors: bool,
    /// Which linear-algebra backend the solve runs on: the soft
    /// constraint's complement sum (dense materialized pair list versus
    /// the spatial-grid active set) and the MDS-MAP initializer's
    /// completion/eigen stage. The two backends produce bit-identical
    /// descent trajectories for the constraint (see
    /// [`LssObjective`]); `Auto` switches on the node count.
    pub backend: SolverBackend,
}

impl Default for LssConfig {
    fn default() -> Self {
        LssConfig {
            soft_constraint: None,
            descent: DescentConfig {
                step_size: 0.005,
                max_iterations: 4_000,
                tolerance: 1e-10,
                patience: 50,
                // Escaping folded configurations needs many perturbation
                // rounds with displacement on the scale of the node
                // spacing (the paper ran minimization for hours; we spend
                // our budget on restarts, cut short by the stress target).
                restarts: 120,
                perturbation: 6.0,
                record_trace: false,
            },
            target_stress_per_pair: 0.5,
            robust: None,
            init: InitStrategy::Random,
            anchor_weight: 100.0,
            use_anchors: true,
            backend: SolverBackend::Auto,
        }
    }
}

/// Parameters of the robust reweighting loop.
///
/// # Example
///
/// ```
/// use rl_core::lss::RobustReweight;
/// use rl_math::RobustLoss;
///
/// // The default is the historical Cauchy kernel at a 1 m scale ...
/// assert_eq!(
///     RobustReweight::default().loss,
///     RobustLoss::Cauchy { scale_m: 1.0 }
/// );
/// // ... and any loss kernel can be swapped in.
/// let huber = RobustReweight::with_loss(RobustLoss::Huber { delta_m: 1.0 });
/// assert_eq!(huber.iterations, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustReweight {
    /// Number of reweight-and-resolve passes (1-2 suffice).
    pub iterations: usize,
    /// The loss kernel supplying the IRLS weight factor. The default
    /// Cauchy loss halves a measurement's weight at a 1 m residual.
    pub loss: RobustLoss,
}

impl Default for RobustReweight {
    fn default() -> Self {
        RobustReweight {
            iterations: 2,
            loss: RobustLoss::Cauchy { scale_m: 1.0 },
        }
    }
}

impl RobustReweight {
    /// The default iteration budget with an explicit loss kernel.
    pub fn with_loss(loss: RobustLoss) -> Self {
        RobustReweight {
            loss,
            ..RobustReweight::default()
        }
    }
}

impl LssConfig {
    /// Enables the minimum-spacing soft constraint (builder style). The
    /// paper's grass-grid experiment used `d_min = 9.14 m`, `w_D = 10`.
    pub fn with_min_spacing(mut self, min_spacing_m: f64, weight: f64) -> Self {
        self.soft_constraint = Some(SoftConstraint {
            min_spacing_m,
            weight,
        });
        self
    }

    /// Disables the soft constraint (builder style).
    pub fn without_constraint(mut self) -> Self {
        self.soft_constraint = None;
        self
    }

    /// Enables recording of the error-versus-epoch trace (Figure 23).
    pub fn with_trace(mut self) -> Self {
        self.descent.record_trace = true;
        self
    }

    /// Replaces the init strategy (builder style).
    pub fn with_init(mut self, init: InitStrategy) -> Self {
        self.init = init;
        self
    }

    /// Replaces the descent configuration (builder style).
    pub fn with_descent(mut self, descent: DescentConfig) -> Self {
        self.descent = descent;
        self
    }

    /// Enables robust outlier reweighting (builder style).
    pub fn with_robust_reweight(mut self, robust: RobustReweight) -> Self {
        self.robust = Some(robust);
        self
    }

    /// Enables robust outlier reweighting with an explicit loss kernel
    /// and the default iteration budget (builder style).
    /// [`RobustLoss::SquaredL2`] turns the reweight passes into no-ops
    /// (and the solver skips them), so the same code path covers the
    /// non-robust baseline.
    pub fn with_robust_loss(self, loss: RobustLoss) -> Self {
        self.with_robust_reweight(RobustReweight::with_loss(loss))
    }

    /// Forces anchor-free operation through the unified
    /// [`Localizer`](crate::problem::Localizer) entry point (builder
    /// style): anchors in the problem are ignored and the solution stays
    /// in a relative frame, as in the paper's evaluation.
    pub fn anchor_free(mut self) -> Self {
        self.use_anchors = false;
        self
    }

    /// Replaces the linear-algebra backend (builder style). The default
    /// [`SolverBackend::Auto`] picks dense at paper scale and sparse at
    /// metro scale.
    pub fn with_backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// A configuration tuned for metro-scale deployments (hundreds to
    /// thousands of nodes): the paper's soft constraint, anchor-free
    /// operation, the MDS-MAP initializer (whose sparse path makes it
    /// cheap at this size), and a short restart schedule — a good seed
    /// makes long perturbation searches unnecessary, and each descent
    /// round already costs `O(edges)` per iteration on the sparse
    /// backend.
    pub fn metro() -> Self {
        LssConfig {
            soft_constraint: Some(SoftConstraint {
                min_spacing_m: 9.14,
                weight: 10.0,
            }),
            descent: DescentConfig {
                step_size: 0.005,
                max_iterations: 1_500,
                tolerance: 1e-9,
                patience: 40,
                restarts: 2,
                perturbation: 4.0,
                record_trace: false,
            },
            target_stress_per_pair: 1.0,
            robust: None,
            init: InitStrategy::MdsMap,
            anchor_weight: 100.0,
            use_anchors: false,
            backend: SolverBackend::Auto,
        }
    }
}

/// The result of an LSS run.
#[derive(Debug, Clone)]
pub struct LssSolution {
    coordinates: Vec<Point2>,
    stress: f64,
    iterations: usize,
    converged: bool,
    trace: Option<DescentTrace>,
}

impl LssSolution {
    /// The solved coordinates (relative frame: translation, rotation and
    /// reflection are arbitrary unless anchors were used).
    pub fn coordinates(&self) -> &[Point2] {
        &self.coordinates
    }

    /// The coordinates as a complete [`PositionMap`] — LSS always assigns
    /// every node a position.
    pub fn positions(&self) -> PositionMap {
        PositionMap::complete(self.coordinates.clone())
    }

    /// Final stress `E`.
    pub fn stress(&self) -> f64 {
        self.stress
    }

    /// Total accepted descent iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the restart loop reached its stress target
    /// (`target_stress_per_pair × measured pairs`) rather than exhausting
    /// every round. A `false` solution is the best configuration found,
    /// typically still folded.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Error-versus-epoch trace, when recording was enabled.
    pub fn trace(&self) -> Option<&DescentTrace> {
        self.trace.as_ref()
    }
}

/// The centralized LSS solver.
#[derive(Debug, Clone)]
pub struct LssSolver {
    config: LssConfig,
}

impl LssSolver {
    /// Creates a solver.
    pub fn new(config: LssConfig) -> Self {
        LssSolver { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LssConfig {
        &self.config
    }

    /// Solves for a relative configuration from the measurement set.
    ///
    /// # Errors
    ///
    /// * [`LocalizationError::InsufficientMeasurements`] for empty sets or
    ///   fewer than three nodes,
    /// * [`LocalizationError::InvalidConfig`] when a `Given` init has the
    ///   wrong length.
    pub fn solve<R: Rng + ?Sized>(&self, set: &MeasurementSet, rng: &mut R) -> Result<LssSolution> {
        let mut solution = self.solve_once(set, rng)?;
        let Some(robust) = self.config.robust else {
            return Ok(solution);
        };
        if robust.loss.is_quadratic() {
            // IRLS with the quadratic loss re-solves the identical
            // problem; skipping keeps the RNG stream (and the solution)
            // bit-identical to a non-robust solve.
            return Ok(solution);
        }
        // Robust refinement: reweight by residual, re-solve from the
        // current configuration with a short budget.
        for _ in 0..robust.iterations {
            let mut reweighted = MeasurementSet::new(set.node_count());
            for (a, b, d, w) in set.iter_weighted() {
                let pa = solution.coordinates[a.index()];
                let pb = solution.coordinates[b.index()];
                let residual = (pa.distance(pb) - d).abs();
                let factor = robust.loss.irls_factor(residual);
                reweighted.insert_weighted(a, b, d, (w * factor).max(1e-6));
            }
            let refine = LssSolver::new(LssConfig {
                robust: None,
                init: InitStrategy::Given(solution.coordinates.clone()),
                descent: DescentConfig {
                    restarts: 6,
                    ..self.config.descent.clone()
                },
                ..self.config.clone()
            });
            let refined = refine.solve_once(&reweighted, rng)?;
            solution = LssSolution {
                trace: solution.trace.take(),
                iterations: solution.iterations + refined.iterations,
                ..refined
            };
        }
        Ok(solution)
    }

    fn solve_once<R: Rng + ?Sized>(
        &self,
        set: &MeasurementSet,
        rng: &mut R,
    ) -> Result<LssSolution> {
        let n = set.node_count();
        if n < 3 {
            return Err(LocalizationError::InsufficientMeasurements(
                "LSS needs at least three nodes",
            ));
        }
        if set.is_empty() {
            return Err(LocalizationError::InsufficientMeasurements(
                "no measured pairs",
            ));
        }
        let objective =
            LssObjective::with_backend(set, self.config.soft_constraint, self.config.backend);
        let x0 = self.initial_configuration(set, rng)?;

        // Restart management lives here (not in the generic optimizer) so
        // the stress target can end the search early, as in the paper.
        let per_round = DescentConfig {
            restarts: 0,
            ..self.config.descent.clone()
        };
        let target = self.config.target_stress_per_pair * set.len() as f64;
        let mut best_x = x0.clone();
        let mut best_stress = f64::INFINITY;
        let mut iterations = 0usize;
        let mut trace = self.config.descent.record_trace.then(DescentTrace::default);
        let mut gauss = rl_math::rng::GaussianSampler::new();

        // Scale for fresh random re-seeds (see below).
        let mean_d = set.iter().map(|(_, _, d)| d).sum::<f64>() / set.len() as f64;
        let fresh_side = (mean_d * (n as f64).sqrt() * 0.7).max(1.0);
        let mut stale_rounds = 0usize;

        for round in 0..=self.config.descent.restarts {
            // Perturbing a deeply folded best configuration can orbit the
            // same basin forever, so the restart schedule mixes the paper's
            // perturb-the-best rounds with completely fresh random seeds:
            // every third round, and additionally after six fruitless
            // rounds, a fresh configuration is drawn.
            let fresh = round % 3 == 2 || stale_rounds >= 6;
            let seed_x: Vec<f64> = if round == 0 {
                x0.clone()
            } else if fresh {
                stale_rounds = 0;
                random_square(n, fresh_side, rng)
            } else {
                best_x
                    .iter()
                    .map(|&v| v + gauss.sample_with(rng, 0.0, self.config.descent.perturbation))
                    .collect()
            };
            let outcome = minimize(&objective, &seed_x, &per_round, rng);
            iterations += outcome.iterations;
            if let (Some(t), Some(rt)) = (trace.as_mut(), outcome.trace.as_ref()) {
                t.round_starts.push(t.values.len());
                t.values.extend_from_slice(&rt.values);
            }
            if outcome.value < best_stress - 1e-12 {
                best_stress = outcome.value;
                best_x = outcome.x;
                stale_rounds = 0;
            } else {
                stale_rounds += 1;
            }
            if best_stress <= target {
                break;
            }
        }

        Ok(LssSolution {
            coordinates: unflatten(&best_x, n),
            stress: best_stress,
            iterations,
            converged: best_stress <= target,
            trace,
        })
    }

    /// Solves with anchors pinned by quadratic springs of weight
    /// `config.anchor_weight`, producing coordinates directly in the
    /// anchors' (absolute) frame.
    ///
    /// This is an extension beyond the paper (which evaluates LSS
    /// anchor-free and aligns post hoc); it is useful when a deployment has
    /// a few surveyed nodes and wants absolute output.
    ///
    /// # Errors
    ///
    /// Same as [`LssSolver::solve`], plus
    /// [`LocalizationError::TooFewAnchors`] with fewer than 2 anchors.
    pub fn solve_anchored<R: Rng + ?Sized>(
        &self,
        set: &MeasurementSet,
        anchors: &[crate::types::Anchor],
        rng: &mut R,
    ) -> Result<LssSolution> {
        if anchors.len() < 2 {
            return Err(LocalizationError::TooFewAnchors {
                needed: 2,
                got: anchors.len(),
            });
        }
        let relative = self.solve(set, rng)?;
        // Align the relative solution onto the anchors (rigid fit), then
        // run a short anchored refinement with springs.
        let source: Vec<Point2> = anchors
            .iter()
            .map(|a| relative.coordinates[a.id.index()])
            .collect();
        let target: Vec<Point2> = anchors.iter().map(|a| a.position).collect();
        let fit = rl_geom::fit_rigid_transform(&source, &target, true)?;
        let seeded: Vec<Point2> = relative
            .coordinates
            .iter()
            .map(|&p| fit.transform.apply(p))
            .collect();

        let objective = AnchoredObjective {
            inner: LssObjective::with_backend(
                set,
                self.config.soft_constraint,
                self.config.backend,
            ),
            anchors: anchors.iter().map(|a| (a.id.index(), a.position)).collect(),
            weight: self.config.anchor_weight,
            n: set.node_count(),
        };
        let x0 = flatten(&seeded);
        let refine_cfg = DescentConfig {
            restarts: 0,
            record_trace: false,
            ..self.config.descent.clone()
        };
        let outcome = minimize(&objective, &x0, &refine_cfg, rng);
        Ok(LssSolution {
            coordinates: unflatten(&outcome.x, set.node_count()),
            stress: outcome.value,
            iterations: relative.iterations + outcome.iterations,
            converged: relative.converged,
            trace: relative.trace,
        })
    }

    fn initial_configuration<R: Rng + ?Sized>(
        &self,
        set: &MeasurementSet,
        rng: &mut R,
    ) -> Result<Vec<f64>> {
        let n = set.node_count();
        match &self.config.init {
            InitStrategy::Random => {
                let mean_d = set.iter().map(|(_, _, d)| d).sum::<f64>() / set.len() as f64;
                let side = (mean_d * (n as f64).sqrt() * 0.7).max(1.0);
                Ok(random_square(n, side, rng))
            }
            InitStrategy::RandomInSquare(side) => {
                if !(*side > 0.0) {
                    return Err(LocalizationError::InvalidConfig(
                        "init square side must be positive",
                    ));
                }
                Ok(random_square(n, *side, rng))
            }
            InitStrategy::MdsMap => {
                match crate::mds::mdsmap_coordinates_with(set, self.config.backend) {
                    Ok(coords) => Ok(flatten(&coords)),
                    Err(_) => {
                        let mean_d = set.iter().map(|(_, _, d)| d).sum::<f64>() / set.len() as f64;
                        let side = (mean_d * (n as f64).sqrt() * 0.7).max(1.0);
                        Ok(random_square(n, side, rng))
                    }
                }
            }
            InitStrategy::Given(coords) => {
                if coords.len() != n {
                    return Err(LocalizationError::InvalidConfig(
                        "given init has wrong node count",
                    ));
                }
                Ok(flatten(coords))
            }
        }
    }
}

impl crate::problem::Localizer for LssSolver {
    fn name(&self) -> &str {
        match (
            self.config.soft_constraint.is_some(),
            self.config.use_anchors,
        ) {
            (true, true) => "lss+constraint",
            (false, true) => "lss",
            (true, false) => "lss-anchor-free+constraint",
            (false, false) => "lss-anchor-free",
        }
    }

    /// Unified entry point collapsing the [`LssSolver::solve`] /
    /// [`LssSolver::solve_anchored`] split: with two or more anchors (and
    /// [`LssConfig::use_anchors`] left enabled) the solve is anchored and
    /// the solution is [`Frame::Absolute`]; otherwise it is anchor-free
    /// and [`Frame::Relative`].
    ///
    /// [`Frame::Absolute`]: crate::problem::Frame::Absolute
    /// [`Frame::Relative`]: crate::problem::Frame::Relative
    fn localize(
        &self,
        problem: &crate::problem::Problem,
        rng: &mut dyn rand::RngCore,
    ) -> Result<crate::problem::Solution> {
        use crate::problem::{Frame, Solution, SolveStats};
        let start = std::time::Instant::now();
        let (solution, frame) = if self.config.use_anchors && problem.anchors().len() >= 2 {
            let sol = self.solve_anchored(problem.measurements(), problem.anchors(), rng)?;
            (sol, Frame::Absolute)
        } else {
            (self.solve(problem.measurements(), rng)?, Frame::Relative)
        };
        Ok(Solution::new(
            solution.positions(),
            frame,
            SolveStats {
                iterations: solution.iterations(),
                residual: Some(solution.stress()),
                converged: Some(solution.converged()),
                // The LSS descent is gradient-based; no CG inside.
                cg_iterations: None,
                wall_time: start.elapsed(),
            },
        ))
    }
}

/// Anchored LSS objective: the plain stress plus quadratic springs pulling
/// anchors toward their surveyed positions.
#[derive(Debug)]
struct AnchoredObjective {
    inner: LssObjective,
    anchors: Vec<(usize, Point2)>,
    weight: f64,
    n: usize,
}

impl rl_math::gradient::Objective for AnchoredObjective {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let mut e = self.inner.value(x);
        for &(i, p) in &self.anchors {
            let dx = x[i] - p.x;
            let dy = x[self.n + i] - p.y;
            e += self.weight * (dx * dx + dy * dy);
        }
        e
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        self.inner.gradient(x, grad);
        for &(i, p) in &self.anchors {
            grad[i] += 2.0 * self.weight * (x[i] - p.x);
            grad[self.n + i] += 2.0 * self.weight * (x[self.n + i] - p.y);
        }
    }
}

fn random_square<R: Rng + ?Sized>(n: usize, side: f64, rng: &mut R) -> Vec<f64> {
    let mut x = Vec::with_capacity(2 * n);
    for _ in 0..n {
        x.push(rng.random::<f64>() * side);
    }
    for _ in 0..n {
        x.push(rng.random::<f64>() * side);
    }
    x
}

fn flatten(coords: &[Point2]) -> Vec<f64> {
    let n = coords.len();
    let mut x = vec![0.0; 2 * n];
    for (i, p) in coords.iter().enumerate() {
        x[i] = p.x;
        x[n + i] = p.y;
    }
    x
}

fn unflatten(x: &[f64], n: usize) -> Vec<Point2> {
    (0..n).map(|i| Point2::new(x[i], x[n + i])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_absolute, evaluate_against_truth};
    use crate::types::Anchor;
    use rl_math::rng::seeded;
    use rl_net::NodeId;

    fn grid(nx: usize, ny: usize, spacing: f64) -> Vec<Point2> {
        let mut out = Vec::new();
        for gy in 0..ny {
            for gx in 0..nx {
                out.push(Point2::new(gx as f64 * spacing, gy as f64 * spacing));
            }
        }
        out
    }

    #[test]
    fn exact_complete_distances_recover_geometry() {
        let truth = grid(3, 3, 9.0);
        let set = MeasurementSet::oracle(&truth, 1e9);
        let mut rng = seeded(1);
        let solver = LssSolver::new(LssConfig::default());
        let sol = solver.solve(&set, &mut rng).unwrap();
        let eval = evaluate_against_truth(&sol.positions(), &truth).unwrap();
        assert!(eval.mean_error < 0.05, "mean error {}", eval.mean_error);
        assert!(sol.stress() < 1e-3, "stress {}", sol.stress());
        assert!(sol.iterations() > 0);
    }

    #[test]
    fn sparse_distances_with_constraint_recover_geometry() {
        let truth = grid(4, 4, 9.0);
        // Only neighbors within 14 m are measured (4-neighborhood plus
        // diagonals) — far sparser than complete.
        let set = MeasurementSet::oracle(&truth, 14.0);
        let mut rng = seeded(2);
        let config = LssConfig::default().with_min_spacing(9.0, 10.0);
        let solver = LssSolver::new(config);
        let sol = solver.solve(&set, &mut rng).unwrap();
        let eval = evaluate_against_truth(&sol.positions(), &truth).unwrap();
        assert!(eval.mean_error < 0.8, "mean error {}", eval.mean_error);
    }

    #[test]
    fn noisy_measurements_still_converge() {
        let truth = grid(3, 3, 9.0);
        let mut rng = seeded(3);
        let mut set = MeasurementSet::new(9);
        for i in 0..9usize {
            for j in (i + 1)..9 {
                let d = truth[i].distance(truth[j]);
                if d <= 15.0 {
                    let noisy = d + rl_math::rng::normal(&mut rng, 0.0, 0.33);
                    set.insert(NodeId(i), NodeId(j), noisy.max(0.1));
                }
            }
        }
        let config = LssConfig::default().with_min_spacing(9.0, 10.0);
        let sol = LssSolver::new(config).solve(&set, &mut rng).unwrap();
        let eval = evaluate_against_truth(&sol.positions(), &truth).unwrap();
        assert!(eval.mean_error < 1.0, "mean error {}", eval.mean_error);
    }

    #[test]
    fn trace_recording_works() {
        let truth = grid(3, 3, 9.0);
        let set = MeasurementSet::oracle(&truth, 1e9);
        let mut rng = seeded(4);
        let sol = LssSolver::new(LssConfig::default().with_trace())
            .solve(&set, &mut rng)
            .unwrap();
        let trace = sol.trace().expect("trace requested");
        assert!(!trace.values.is_empty());
        // Final trace value matches reported stress.
        let best = trace.values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((best - sol.stress()).abs() < 1e-9 * (1.0 + best));
    }

    #[test]
    fn error_cases() {
        let mut rng = seeded(5);
        let solver = LssSolver::new(LssConfig::default());
        let tiny = MeasurementSet::new(2);
        assert!(matches!(
            solver.solve(&tiny, &mut rng),
            Err(LocalizationError::InsufficientMeasurements(_))
        ));
        let empty = MeasurementSet::new(5);
        assert!(matches!(
            solver.solve(&empty, &mut rng),
            Err(LocalizationError::InsufficientMeasurements(_))
        ));
        let mut set = MeasurementSet::new(3);
        set.insert(NodeId(0), NodeId(1), 5.0);
        let bad_init = LssSolver::new(
            LssConfig::default().with_init(InitStrategy::Given(vec![Point2::ORIGIN])),
        );
        assert!(matches!(
            bad_init.solve(&set, &mut rng),
            Err(LocalizationError::InvalidConfig(_))
        ));
        let bad_square =
            LssSolver::new(LssConfig::default().with_init(InitStrategy::RandomInSquare(0.0)));
        assert!(bad_square.solve(&set, &mut rng).is_err());
    }

    #[test]
    fn given_init_near_truth_converges_fast() {
        let truth = grid(3, 3, 9.0);
        let set = MeasurementSet::oracle(&truth, 1e9);
        let mut rng = seeded(6);
        let near: Vec<Point2> = truth
            .iter()
            .map(|&p| Point2::new(p.x + 0.1, p.y - 0.1))
            .collect();
        let config = LssConfig {
            descent: DescentConfig {
                restarts: 0,
                ..LssConfig::default().descent
            },
            ..LssConfig::default()
        }
        .with_init(InitStrategy::Given(near));
        let sol = LssSolver::new(config).solve(&set, &mut rng).unwrap();
        assert!(sol.stress() < 1e-6);
    }

    #[test]
    fn mdsmap_init_solves_connected_graph() {
        let truth = grid(4, 3, 9.0);
        let set = MeasurementSet::oracle(&truth, 14.0);
        let mut rng = seeded(7);
        let config = LssConfig::default()
            .with_init(InitStrategy::MdsMap)
            .with_min_spacing(9.0, 10.0);
        let sol = LssSolver::new(config).solve(&set, &mut rng).unwrap();
        let eval = evaluate_against_truth(&sol.positions(), &truth).unwrap();
        assert!(eval.mean_error < 0.5, "mean error {}", eval.mean_error);
    }

    #[test]
    fn anchored_solve_outputs_absolute_frame() {
        let truth = grid(3, 3, 9.0);
        let set = MeasurementSet::oracle(&truth, 1e9);
        let mut rng = seeded(8);
        let anchors = Anchor::from_truth(&[NodeId(0), NodeId(2), NodeId(6)], &truth);
        let sol = LssSolver::new(LssConfig::default())
            .solve_anchored(&set, &anchors, &mut rng)
            .unwrap();
        // No alignment step: positions must already be in the truth frame.
        let eval = evaluate_absolute(&sol.positions(), &truth).unwrap();
        assert!(eval.mean_error < 0.2, "mean error {}", eval.mean_error);
    }

    #[test]
    fn robust_reweighting_suppresses_gross_outlier() {
        let truth = grid(3, 3, 9.0);
        let mut set = MeasurementSet::oracle(&truth, 1e9);
        // One catastrophic underestimate (echo-style).
        set.insert(NodeId(0), NodeId(8), 2.0); // true ~25.5 m
        let mut rng = seeded(21);
        let plain = LssSolver::new(LssConfig::default())
            .solve(&set, &mut rng)
            .unwrap();
        let plain_eval = evaluate_against_truth(&plain.positions(), &truth).unwrap();

        let mut rng = seeded(21);
        let robust =
            LssSolver::new(LssConfig::default().with_robust_reweight(RobustReweight::default()))
                .solve(&set, &mut rng)
                .unwrap();
        let robust_eval = evaluate_against_truth(&robust.positions(), &truth).unwrap();
        assert!(
            robust_eval.mean_error < plain_eval.mean_error * 0.6,
            "robust {} vs plain {}",
            robust_eval.mean_error,
            plain_eval.mean_error
        );
        assert!(
            robust_eval.mean_error < 0.3,
            "robust {}",
            robust_eval.mean_error
        );
    }

    #[test]
    fn anchored_needs_two_anchors() {
        let truth = grid(3, 3, 9.0);
        let set = MeasurementSet::oracle(&truth, 1e9);
        let mut rng = seeded(9);
        let anchors = Anchor::from_truth(&[NodeId(0)], &truth);
        assert!(matches!(
            LssSolver::new(LssConfig::default()).solve_anchored(&set, &anchors, &mut rng),
            Err(LocalizationError::TooFewAnchors { needed: 2, got: 1 })
        ));
    }
}
