//! Multidimensional-scaling baselines.
//!
//! Classical MDS "requires distances between all pairs of nodes" — the
//! impracticality that motivates LSS (Section 4.2). It is implemented here
//! both as the baseline the paper compares against conceptually and,
//! combined with shortest-path completion of the sparse distance graph (the
//! MDS-MAP idea of Shang et al., discussed in Related Work), as a fast
//! initializer for the LSS descent.

use rl_geom::Point2;
use rl_math::sparse::{dijkstra_multi_into, eigen as sparse_eigen, CsrMatrix, LinearOperator};
use rl_math::{DMatrix, SymmetricEigen};
use rl_ranging::measurement::MeasurementSet;

use crate::problem::SolverBackend;
use crate::{LocalizationError, Result};

/// Classical (Torgerson) MDS: recovers a 2-D configuration from a complete
/// distance matrix via double centering and eigendecomposition.
///
/// # Errors
///
/// * [`LocalizationError::InvalidConfig`] if the matrix is not square or
///   has negative entries,
/// * numerical errors from the eigensolver.
///
/// # Example
///
/// ```
/// use rl_math::DMatrix;
/// use rl_core::mds::classical_mds;
///
/// // Three points on a line: 0, 3, 5.
/// let d = DMatrix::from_rows(&[
///     &[0.0, 3.0, 5.0],
///     &[3.0, 0.0, 2.0],
///     &[5.0, 2.0, 0.0],
/// ]).unwrap();
/// let coords = classical_mds(&d)?;
/// let d01 = coords[0].distance(coords[1]);
/// assert!((d01 - 3.0).abs() < 1e-9);
/// # Ok::<(), rl_core::LocalizationError>(())
/// ```
pub fn classical_mds(distances: &DMatrix) -> Result<Vec<Point2>> {
    if !distances.is_square() {
        return Err(LocalizationError::InvalidConfig(
            "distance matrix must be square",
        ));
    }
    let n = distances.rows();
    if n == 0 {
        return Err(LocalizationError::InvalidConfig("empty distance matrix"));
    }
    for i in 0..n {
        for j in 0..n {
            if distances[(i, j)] < 0.0 || !distances[(i, j)].is_finite() {
                return Err(LocalizationError::InvalidConfig(
                    "distances must be finite and non-negative",
                ));
            }
        }
    }
    // Squared distances, symmetrized to tolerate small asymmetries.
    let d2 = DMatrix::from_fn(n, n, |i, j| {
        let d = 0.5 * (distances[(i, j)] + distances[(j, i)]);
        d * d
    });
    let b = d2.double_center()?;
    let eigen = SymmetricEigen::new(&b)?;
    let coords = eigen.principal_coordinates(2.min(n));
    Ok((0..n)
        .map(|i| {
            Point2::new(
                coords[(i, 0)],
                if coords.cols() > 1 {
                    coords[(i, 1)]
                } else {
                    0.0
                },
            )
        })
        .collect())
}

/// MDS-MAP-style coordinates for a *sparse* measurement set: missing
/// pairwise distances are completed with shortest-path distances through
/// the measurement graph, then classical MDS is applied. Backend
/// selection is automatic ([`SolverBackend::Auto`]); see
/// [`mdsmap_coordinates_with`].
///
/// # Errors
///
/// * [`LocalizationError::InsufficientMeasurements`] when the measurement
///   graph is disconnected (shortest paths undefined) or has fewer than
///   three nodes.
pub fn mdsmap_coordinates(set: &MeasurementSet) -> Result<Vec<Point2>> {
    mdsmap_coordinates_with(set, SolverBackend::Auto)
}

/// [`mdsmap_coordinates`] on an explicit linear-algebra backend.
///
/// The two backends share the algorithm but not the machinery:
///
/// * **Dense** completes the distance matrix through
///   [`rl_net::Topology::shortest_paths`] and eigendecomposes the
///   double-centered matrix with the full `O(n^3)` Jacobi solver.
/// * **Sparse** runs per-source Dijkstra over a CSR adjacency matrix of
///   the measurement graph and extracts only the top-2 eigenpairs by
///   shifted subspace iteration — the double-centered matrix is applied
///   implicitly (`B x = -1/2 J D² J x`) and never materialized, leaving
///   the `n x n` squared-distance table as the only quadratic cost.
///
/// Both produce the same embedding up to the iterative eigensolver's
/// tolerance (and the usual sign/rotation ambiguity of the degenerate
/// case); `tests/sparse_parity.rs` asserts parity on a town-scale
/// scenario.
///
/// # Errors
///
/// Same as [`mdsmap_coordinates`], plus eigensolver convergence failures
/// surfaced as [`LocalizationError::Numerical`].
pub fn mdsmap_coordinates_with(
    set: &MeasurementSet,
    backend: SolverBackend,
) -> Result<Vec<Point2>> {
    mdsmap_impl(set, backend).map(|(coords, _)| coords)
}

/// Shared implementation returning `(coordinates, eigen iterations)`
/// (0 for the closed-form dense path).
fn mdsmap_impl(set: &MeasurementSet, backend: SolverBackend) -> Result<(Vec<Point2>, usize)> {
    let n = set.node_count();
    if n < 3 {
        return Err(LocalizationError::InsufficientMeasurements(
            "MDS-MAP needs at least three nodes",
        ));
    }
    if backend.use_sparse(n) {
        return mdsmap_sparse(set);
    }
    let topology = set.topology();
    let sp =
        topology.shortest_paths(|a, b| set.get(a, b).expect("topology edges mirror measurements"));
    let mut d = DMatrix::zeros(n, n);
    for (i, row) in sp.iter().enumerate() {
        for (j, entry) in row.iter().enumerate() {
            match entry {
                Some(dist) => d[(i, j)] = *dist,
                None => {
                    return Err(LocalizationError::InsufficientMeasurements(
                        "measurement graph is disconnected",
                    ))
                }
            }
        }
    }
    classical_mds(&d).map(|coords| (coords, 0))
}

/// The sparse MDS-MAP path: CSR Dijkstra completion plus an implicit
/// double-centering operator fed to the iterative top-2 eigensolver.
fn mdsmap_sparse(set: &MeasurementSet) -> Result<(Vec<Point2>, usize)> {
    let n = set.node_count();
    let edges: Vec<(usize, usize, f64)> = set
        .iter()
        .map(|(a, b, d)| (a.index(), b.index(), d))
        .collect();
    let adjacency =
        CsrMatrix::symmetric_from_edges(n, &edges).map_err(LocalizationError::Numerical)?;

    // Multi-source Dijkstra over the CSR structure, every node a source
    // and one reused heap across all of them; the completed distance
    // table is the one intrinsically quadratic artifact of MDS-MAP.
    let sources: Vec<usize> = (0..n).collect();
    let mut completed = vec![0.0; n * n];
    dijkstra_multi_into(&adjacency, &sources, &mut completed);
    if completed.iter().any(|d| !d.is_finite()) {
        return Err(LocalizationError::InsufficientMeasurements(
            "measurement graph is disconnected",
        ));
    }

    // Squared, symmetrized distances (mirroring the dense path's
    // tolerance for small asymmetries from summation order).
    let mut d2 = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let d = 0.5 * (completed[i * n + j] + completed[j * n + i]);
            d2[i * n + j] = d * d;
        }
    }
    let operator = CenteredOperator::new(n, d2);
    let k = 2.min(n);
    let top = sparse_eigen::topk_symmetric(&operator, k, &sparse_eigen::TopKConfig::default())
        .map_err(LocalizationError::Numerical)?;
    let coords = top.principal_coordinates();
    let points = (0..n)
        .map(|i| {
            Point2::new(
                coords[(i, 0)],
                if coords.cols() > 1 {
                    coords[(i, 1)]
                } else {
                    0.0
                },
            )
        })
        .collect();
    Ok((points, top.iterations))
}

/// The classical-MDS Gram operator `B = -1/2 J D² J` (with
/// `J = I - 11ᵀ/n`) applied without materializing `B`:
///
/// ```text
/// (B x)_i = -1/2 [ (D² x)_i  -  r_i Σx  -  Σ_j r_j x_j  +  t Σx ]
/// ```
///
/// where `r` holds the row means of `D²` and `t` its grand mean. One
/// application costs a single dense `D² x` product plus `O(n)` work.
struct CenteredOperator {
    n: usize,
    /// Row-major squared symmetrized distances.
    d2: Vec<f64>,
    /// Row means of `d2`.
    row_mean: Vec<f64>,
    /// Grand mean of `d2`.
    total_mean: f64,
}

impl CenteredOperator {
    fn new(n: usize, d2: Vec<f64>) -> Self {
        debug_assert_eq!(d2.len(), n * n);
        let mut row_mean = vec![0.0; n];
        let mut total = 0.0;
        for i in 0..n {
            let sum: f64 = d2[i * n..(i + 1) * n].iter().sum();
            row_mean[i] = sum / n as f64;
            total += sum;
        }
        CenteredOperator {
            n,
            d2,
            row_mean,
            total_mean: total / (n * n) as f64,
        }
    }
}

impl LinearOperator for CenteredOperator {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let n = self.n;
        let sum_x: f64 = x.iter().sum();
        let mean_dot: f64 = self.row_mean.iter().zip(x).map(|(r, xi)| r * xi).sum();
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.d2[i * n..(i + 1) * n];
            let d2x: f64 = row.iter().zip(x).map(|(a, b)| a * b).sum();
            *yi = -0.5 * (d2x - self.row_mean[i] * sum_x - mean_dot + self.total_mean * sum_x);
        }
    }

    /// Blocked application sharing one pass over the `n x n` distance
    /// table for the whole block — the table is the dominant memory
    /// traffic at metro scale, and the subspace-iteration eigensolver
    /// applies this operator to `k = 2` vectors every step. Each output
    /// is bit-identical to the single-vector [`Self::apply`] (the
    /// campaign fingerprints pin the eigensolver path).
    fn apply_multi(&self, xs: &[Vec<f64>], ys: &mut [Vec<f64>]) {
        let n = self.n;
        let sums: Vec<(f64, f64)> = xs
            .iter()
            .map(|x| {
                let sum_x: f64 = x.iter().sum();
                let mean_dot: f64 = self.row_mean.iter().zip(x).map(|(r, xi)| r * xi).sum();
                (sum_x, mean_dot)
            })
            .collect();
        for i in 0..n {
            let row = &self.d2[i * n..(i + 1) * n];
            for ((x, y), &(sum_x, mean_dot)) in xs.iter().zip(ys.iter_mut()).zip(&sums) {
                let d2x: f64 = row.iter().zip(x).map(|(a, b)| a * b).sum();
                y[i] = -0.5 * (d2x - self.row_mean[i] * sum_x - mean_dot + self.total_mean * sum_x);
            }
        }
    }
}

/// MDS-MAP as a [`Localizer`](crate::problem::Localizer): shortest-path
/// completion plus classical MDS, producing a relative-frame solution
/// with no per-run randomness. The heavy stages run on the configured
/// [`SolverBackend`] (`Auto` by default: dense Jacobi at paper scale,
/// CSR Dijkstra + iterative top-2 eigensolver at metro scale).
#[derive(Debug, Clone, Copy, Default)]
pub struct MdsMapLocalizer {
    backend: SolverBackend,
}

impl MdsMapLocalizer {
    /// Creates the localizer with automatic backend selection.
    pub fn new() -> Self {
        MdsMapLocalizer::default()
    }

    /// Creates the localizer on an explicit backend.
    pub fn with_backend(backend: SolverBackend) -> Self {
        MdsMapLocalizer { backend }
    }

    /// The configured backend.
    pub fn backend(&self) -> SolverBackend {
        self.backend
    }
}

impl crate::problem::Localizer for MdsMapLocalizer {
    fn name(&self) -> &str {
        "mds-map"
    }

    fn localize(
        &self,
        problem: &crate::problem::Problem,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<crate::problem::Solution> {
        use crate::problem::{Frame, Solution, SolveStats};
        let start = std::time::Instant::now();
        let (coords, eigen_iterations) = mdsmap_impl(problem.measurements(), self.backend)?;
        Ok(Solution::new(
            crate::types::PositionMap::complete(coords),
            Frame::Relative,
            SolveStats {
                iterations: eigen_iterations,
                residual: None,
                // The dense path is closed-form; the sparse path's
                // eigensolver errors out instead of returning an
                // unconverged embedding. Reaching here means converged.
                converged: Some(true),
                cg_iterations: None,
                wall_time: start.elapsed(),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_against_truth;
    use crate::types::PositionMap;
    use rl_net::NodeId;

    fn grid(nx: usize, ny: usize, spacing: f64) -> Vec<Point2> {
        let mut out = Vec::new();
        for gy in 0..ny {
            for gx in 0..nx {
                out.push(Point2::new(gx as f64 * spacing, gy as f64 * spacing));
            }
        }
        out
    }

    #[test]
    fn classical_mds_recovers_complete_geometry() {
        let truth = grid(3, 3, 5.0);
        let n = truth.len();
        let d = DMatrix::from_fn(n, n, |i, j| truth[i].distance(truth[j]));
        let coords = classical_mds(&d).unwrap();
        let eval = evaluate_against_truth(&PositionMap::complete(coords), &truth).unwrap();
        assert!(eval.mean_error < 1e-6, "mean error {}", eval.mean_error);
    }

    #[test]
    fn classical_mds_input_validation() {
        assert!(classical_mds(&DMatrix::zeros(2, 3)).is_err());
        assert!(classical_mds(&DMatrix::zeros(0, 0)).is_err());
        let negative = DMatrix::from_rows(&[&[0.0, -1.0], &[-1.0, 0.0]]).unwrap();
        assert!(classical_mds(&negative).is_err());
    }

    #[test]
    fn classical_mds_tolerates_noise() {
        let truth = grid(3, 3, 9.0);
        let n = truth.len();
        let mut rng = rl_math::rng::seeded(11);
        let d = DMatrix::from_fn(n, n, |i, j| {
            if i == j {
                0.0
            } else {
                (truth[i].distance(truth[j]) + rl_math::rng::normal(&mut rng, 0.0, 0.33)).max(0.1)
            }
        });
        let coords = classical_mds(&d).unwrap();
        let eval = evaluate_against_truth(&PositionMap::complete(coords), &truth).unwrap();
        assert!(eval.mean_error < 1.0, "mean error {}", eval.mean_error);
    }

    #[test]
    fn mdsmap_completes_sparse_graph() {
        let truth = grid(4, 4, 9.0);
        let set = MeasurementSet::oracle(&truth, 14.0);
        let coords = mdsmap_coordinates(&set).unwrap();
        let eval = evaluate_against_truth(&PositionMap::complete(coords), &truth).unwrap();
        // Shortest-path completion overestimates long distances, so the
        // reconstruction is coarse — but the layout must be recognizable.
        assert!(eval.mean_error < 4.0, "mean error {}", eval.mean_error);
    }

    #[test]
    fn mdsmap_rejects_disconnected_graphs() {
        let mut set = MeasurementSet::new(4);
        set.insert(NodeId(0), NodeId(1), 5.0);
        set.insert(NodeId(2), NodeId(3), 5.0);
        assert!(matches!(
            mdsmap_coordinates(&set),
            Err(LocalizationError::InsufficientMeasurements(_))
        ));
    }

    #[test]
    fn mdsmap_rejects_tiny_networks() {
        let set = MeasurementSet::new(2);
        assert!(mdsmap_coordinates(&set).is_err());
    }

    #[test]
    fn collinear_points_need_only_one_dimension() {
        let truth = [
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(9.0, 0.0),
        ];
        let n = truth.len();
        let d = DMatrix::from_fn(n, n, |i, j| truth[i].distance(truth[j]));
        let coords = classical_mds(&d).unwrap();
        // Second coordinate collapses to ~0 for collinear input.
        for p in &coords {
            assert!(p.y.abs() < 1e-6, "expected 1-D embedding, got {p}");
        }
    }
}
