//! Multidimensional-scaling baselines.
//!
//! Classical MDS "requires distances between all pairs of nodes" — the
//! impracticality that motivates LSS (Section 4.2). It is implemented here
//! both as the baseline the paper compares against conceptually and,
//! combined with shortest-path completion of the sparse distance graph (the
//! MDS-MAP idea of Shang et al., discussed in Related Work), as a fast
//! initializer for the LSS descent.

use rl_geom::Point2;
use rl_math::{DMatrix, SymmetricEigen};
use rl_ranging::measurement::MeasurementSet;

use crate::{LocalizationError, Result};

/// Classical (Torgerson) MDS: recovers a 2-D configuration from a complete
/// distance matrix via double centering and eigendecomposition.
///
/// # Errors
///
/// * [`LocalizationError::InvalidConfig`] if the matrix is not square or
///   has negative entries,
/// * numerical errors from the eigensolver.
///
/// # Example
///
/// ```
/// use rl_math::DMatrix;
/// use rl_core::mds::classical_mds;
///
/// // Three points on a line: 0, 3, 5.
/// let d = DMatrix::from_rows(&[
///     &[0.0, 3.0, 5.0],
///     &[3.0, 0.0, 2.0],
///     &[5.0, 2.0, 0.0],
/// ]).unwrap();
/// let coords = classical_mds(&d)?;
/// let d01 = coords[0].distance(coords[1]);
/// assert!((d01 - 3.0).abs() < 1e-9);
/// # Ok::<(), rl_core::LocalizationError>(())
/// ```
pub fn classical_mds(distances: &DMatrix) -> Result<Vec<Point2>> {
    if !distances.is_square() {
        return Err(LocalizationError::InvalidConfig(
            "distance matrix must be square",
        ));
    }
    let n = distances.rows();
    if n == 0 {
        return Err(LocalizationError::InvalidConfig("empty distance matrix"));
    }
    for i in 0..n {
        for j in 0..n {
            if distances[(i, j)] < 0.0 || !distances[(i, j)].is_finite() {
                return Err(LocalizationError::InvalidConfig(
                    "distances must be finite and non-negative",
                ));
            }
        }
    }
    // Squared distances, symmetrized to tolerate small asymmetries.
    let d2 = DMatrix::from_fn(n, n, |i, j| {
        let d = 0.5 * (distances[(i, j)] + distances[(j, i)]);
        d * d
    });
    let b = d2.double_center()?;
    let eigen = SymmetricEigen::new(&b)?;
    let coords = eigen.principal_coordinates(2.min(n));
    Ok((0..n)
        .map(|i| {
            Point2::new(
                coords[(i, 0)],
                if coords.cols() > 1 {
                    coords[(i, 1)]
                } else {
                    0.0
                },
            )
        })
        .collect())
}

/// MDS-MAP-style coordinates for a *sparse* measurement set: missing
/// pairwise distances are completed with shortest-path distances through
/// the measurement graph, then classical MDS is applied.
///
/// # Errors
///
/// * [`LocalizationError::InsufficientMeasurements`] when the measurement
///   graph is disconnected (shortest paths undefined) or has fewer than
///   three nodes.
pub fn mdsmap_coordinates(set: &MeasurementSet) -> Result<Vec<Point2>> {
    let n = set.node_count();
    if n < 3 {
        return Err(LocalizationError::InsufficientMeasurements(
            "MDS-MAP needs at least three nodes",
        ));
    }
    let topology = set.topology();
    let sp =
        topology.shortest_paths(|a, b| set.get(a, b).expect("topology edges mirror measurements"));
    let mut d = DMatrix::zeros(n, n);
    for (i, row) in sp.iter().enumerate() {
        for (j, entry) in row.iter().enumerate() {
            match entry {
                Some(dist) => d[(i, j)] = *dist,
                None => {
                    return Err(LocalizationError::InsufficientMeasurements(
                        "measurement graph is disconnected",
                    ))
                }
            }
        }
    }
    classical_mds(&d)
}

/// MDS-MAP as a [`Localizer`](crate::problem::Localizer): shortest-path
/// completion plus classical MDS, producing a relative-frame solution in
/// closed form (no iteration, no randomness).
#[derive(Debug, Clone, Copy, Default)]
pub struct MdsMapLocalizer;

impl MdsMapLocalizer {
    /// Creates the localizer.
    pub fn new() -> Self {
        MdsMapLocalizer
    }
}

impl crate::problem::Localizer for MdsMapLocalizer {
    fn name(&self) -> &str {
        "mds-map"
    }

    fn localize(
        &self,
        problem: &crate::problem::Problem,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<crate::problem::Solution> {
        use crate::problem::{Frame, Solution, SolveStats};
        let start = std::time::Instant::now();
        let coords = mdsmap_coordinates(problem.measurements())?;
        Ok(Solution::new(
            crate::types::PositionMap::complete(coords),
            Frame::Relative,
            SolveStats {
                iterations: 0,
                residual: None,
                wall_time: start.elapsed(),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_against_truth;
    use crate::types::PositionMap;
    use rl_net::NodeId;

    fn grid(nx: usize, ny: usize, spacing: f64) -> Vec<Point2> {
        let mut out = Vec::new();
        for gy in 0..ny {
            for gx in 0..nx {
                out.push(Point2::new(gx as f64 * spacing, gy as f64 * spacing));
            }
        }
        out
    }

    #[test]
    fn classical_mds_recovers_complete_geometry() {
        let truth = grid(3, 3, 5.0);
        let n = truth.len();
        let d = DMatrix::from_fn(n, n, |i, j| truth[i].distance(truth[j]));
        let coords = classical_mds(&d).unwrap();
        let eval = evaluate_against_truth(&PositionMap::complete(coords), &truth).unwrap();
        assert!(eval.mean_error < 1e-6, "mean error {}", eval.mean_error);
    }

    #[test]
    fn classical_mds_input_validation() {
        assert!(classical_mds(&DMatrix::zeros(2, 3)).is_err());
        assert!(classical_mds(&DMatrix::zeros(0, 0)).is_err());
        let negative = DMatrix::from_rows(&[&[0.0, -1.0], &[-1.0, 0.0]]).unwrap();
        assert!(classical_mds(&negative).is_err());
    }

    #[test]
    fn classical_mds_tolerates_noise() {
        let truth = grid(3, 3, 9.0);
        let n = truth.len();
        let mut rng = rl_math::rng::seeded(11);
        let d = DMatrix::from_fn(n, n, |i, j| {
            if i == j {
                0.0
            } else {
                (truth[i].distance(truth[j]) + rl_math::rng::normal(&mut rng, 0.0, 0.33)).max(0.1)
            }
        });
        let coords = classical_mds(&d).unwrap();
        let eval = evaluate_against_truth(&PositionMap::complete(coords), &truth).unwrap();
        assert!(eval.mean_error < 1.0, "mean error {}", eval.mean_error);
    }

    #[test]
    fn mdsmap_completes_sparse_graph() {
        let truth = grid(4, 4, 9.0);
        let set = MeasurementSet::oracle(&truth, 14.0);
        let coords = mdsmap_coordinates(&set).unwrap();
        let eval = evaluate_against_truth(&PositionMap::complete(coords), &truth).unwrap();
        // Shortest-path completion overestimates long distances, so the
        // reconstruction is coarse — but the layout must be recognizable.
        assert!(eval.mean_error < 4.0, "mean error {}", eval.mean_error);
    }

    #[test]
    fn mdsmap_rejects_disconnected_graphs() {
        let mut set = MeasurementSet::new(4);
        set.insert(NodeId(0), NodeId(1), 5.0);
        set.insert(NodeId(2), NodeId(3), 5.0);
        assert!(matches!(
            mdsmap_coordinates(&set),
            Err(LocalizationError::InsufficientMeasurements(_))
        ));
    }

    #[test]
    fn mdsmap_rejects_tiny_networks() {
        let set = MeasurementSet::new(2);
        assert!(mdsmap_coordinates(&set).is_err());
    }

    #[test]
    fn collinear_points_need_only_one_dimension() {
        let truth = [
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(9.0, 0.0),
        ];
        let n = truth.len();
        let d = DMatrix::from_fn(n, n, |i, j| truth[i].distance(truth[j]));
        let coords = classical_mds(&d).unwrap();
        // Second coordinate collapses to ~0 for collinear input.
        for p in &coords {
            assert!(p.y.abs() < 1e-6, "expected 1-D embedding, got {p}");
        }
    }
}
