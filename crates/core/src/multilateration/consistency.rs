//! The intersection consistency check (Section 4.1.2).
//!
//! Errors in distance measurements keep the anchors' range circles from
//! meeting in one point; instead, consistent measurements produce a tight
//! *cluster* of pairwise circle-intersection points around the node being
//! localized. The check "computes intersection points of all pairs of
//! circles and drops from consideration those anchors which have no
//! intersection points close to other intersection points (e.g., beyond 1 m
//! range)". Near-collinear anchors — whose intersections are wildly
//! displaced by small errors (Figure 11) — are filtered the same way.

use rl_geom::{pairwise_intersections, Circle, Point2};
use serde::{Deserialize, Serialize};

/// Configuration of the intersection consistency check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntersectionConsistency {
    /// Distance within which two intersection points count as "close"
    /// (1 m in the paper).
    pub cluster_radius_m: f64,
}

impl Default for IntersectionConsistency {
    fn default() -> Self {
        IntersectionConsistency {
            cluster_radius_m: 1.0,
        }
    }
}

/// One anchor's range observation: known position plus measured distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeToAnchor {
    /// Anchor position.
    pub anchor: Point2,
    /// Measured distance to the node being localized, meters.
    pub distance: f64,
    /// Confidence weight `w(c_a)`.
    pub weight: f64,
}

impl IntersectionConsistency {
    /// Returns the indices of anchors that pass the check.
    ///
    /// An anchor passes when at least one intersection point of its range
    /// circle lies within `cluster_radius_m` of an intersection point
    /// produced by a *different* circle pair. With fewer than three
    /// observations the check is vacuous and every anchor passes.
    pub fn filter(&self, observations: &[RangeToAnchor]) -> Vec<usize> {
        if observations.len() < 3 {
            return (0..observations.len()).collect();
        }
        let circles: Vec<Circle> = observations
            .iter()
            .map(|o| Circle::new(o.anchor, o.distance.max(0.0)))
            .collect();
        let points = pairwise_intersections(&circles);

        let mut keep = Vec::new();
        for a in 0..observations.len() {
            let mine: Vec<&(usize, usize, Point2)> = points
                .iter()
                .filter(|(i, j, _)| *i == a || *j == a)
                .collect();
            let close_to_other = mine.iter().any(|(i, j, p)| {
                points.iter().any(|(oi, oj, q)| {
                    (oi, oj) != (i, j) && p.distance(*q) <= self.cluster_radius_m
                })
            });
            if close_to_other {
                keep.push(a);
            }
        }
        keep
    }

    /// The "mode of the intersection points" estimator: the centroid of
    /// the densest cluster of intersection points. Returns `None` when no
    /// intersections exist.
    ///
    /// The paper suggests this as an alternative to error minimization
    /// "if the number of anchors is large enough".
    pub fn mode_of_intersections(&self, observations: &[RangeToAnchor]) -> Option<Point2> {
        let circles: Vec<Circle> = observations
            .iter()
            .map(|o| Circle::new(o.anchor, o.distance.max(0.0)))
            .collect();
        let points: Vec<Point2> = pairwise_intersections(&circles)
            .into_iter()
            .map(|(_, _, p)| p)
            .collect();
        if points.is_empty() {
            return None;
        }
        // Densest point: the one with the most neighbors within radius.
        let neighbor_count = |center: Point2| {
            points
                .iter()
                .filter(|p| p.distance(center) <= self.cluster_radius_m)
                .count()
        };
        let best = points.iter().copied().max_by_key(|&p| neighbor_count(p))?;
        let cluster: Vec<Point2> = points
            .iter()
            .copied()
            .filter(|p| p.distance(best) <= self.cluster_radius_m)
            .collect();
        rl_geom::centroid(&cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(x: f64, y: f64, d: f64) -> RangeToAnchor {
        RangeToAnchor {
            anchor: Point2::new(x, y),
            distance: d,
            weight: 1.0,
        }
    }

    /// Anchors around a hidden node at (5, 5) with exact distances.
    fn consistent_observations() -> Vec<RangeToAnchor> {
        let node = Point2::new(5.0, 5.0);
        [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)]
            .iter()
            .map(|&(x, y)| obs(x, y, Point2::new(x, y).distance(node)))
            .collect()
    }

    #[test]
    fn consistent_anchors_all_pass() {
        let check = IntersectionConsistency::default();
        let kept = check.filter(&consistent_observations());
        assert_eq!(kept, vec![0, 1, 2, 3]);
    }

    #[test]
    fn grossly_wrong_anchor_is_dropped() {
        let check = IntersectionConsistency::default();
        let mut observations = consistent_observations();
        // Anchor far away with a distance that misses the cluster: its
        // circle intersects nothing near (5, 5).
        observations.push(obs(40.0, 5.0, 10.0));
        let kept = check.filter(&observations);
        assert!(!kept.contains(&4), "bad anchor kept: {kept:?}");
        assert!(kept.len() >= 4);
    }

    #[test]
    fn near_collinear_anchor_with_error_is_dropped() {
        // The Figure 11 situation: two anchors nearly collinear with the
        // node; a small error displaces their mutual intersections far from
        // the cluster.
        let node = Point2::new(0.0, 0.0);
        let good1 = obs(-10.0, 8.0, Point2::new(-10.0, 8.0).distance(node));
        let good2 = obs(10.0, 8.0, Point2::new(10.0, 8.0).distance(node));
        let good3 = obs(0.0, -12.0, Point2::new(0.0, -12.0).distance(node));
        // Collinear pair along the x-axis, one with a +2 m error: their
        // intersection points fly far off the true position.
        let bad = obs(-30.0, 0.1, Point2::new(-30.0, 0.1).distance(node) + 2.5);
        let observations = vec![good1, good2, good3, bad];
        let check = IntersectionConsistency::default();
        let kept = check.filter(&observations);
        assert!(kept.contains(&0) && kept.contains(&1) && kept.contains(&2));
        assert!(!kept.contains(&3), "collinear+error anchor kept: {kept:?}");
    }

    #[test]
    fn fewer_than_three_is_vacuous() {
        let check = IntersectionConsistency::default();
        let two = &consistent_observations()[..2];
        assert_eq!(check.filter(two), vec![0, 1]);
        assert_eq!(check.filter(&[]), Vec::<usize>::new());
    }

    #[test]
    fn mode_of_intersections_finds_the_node() {
        let check = IntersectionConsistency::default();
        let est = check
            .mode_of_intersections(&consistent_observations())
            .unwrap();
        assert!(est.distance(Point2::new(5.0, 5.0)) < 0.5, "estimate {est}");
    }

    #[test]
    fn mode_with_no_intersections_is_none() {
        let check = IntersectionConsistency::default();
        // Two tiny, far-apart circles.
        let observations = vec![obs(0.0, 0.0, 0.5), obs(100.0, 0.0, 0.5)];
        assert_eq!(check.mode_of_intersections(&observations), None);
    }

    #[test]
    fn mode_resists_one_outlier() {
        let check = IntersectionConsistency::default();
        let mut observations = consistent_observations();
        observations.push(obs(20.0, 20.0, 5.0)); // intersects nothing near
        let est = check.mode_of_intersections(&observations).unwrap();
        assert!(est.distance(Point2::new(5.0, 5.0)) < 0.5, "estimate {est}");
    }
}
