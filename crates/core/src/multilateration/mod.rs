//! Anchor-based multilateration (Section 4.1).
//!
//! A node with distance measurements to at least three non-collinear
//! anchors estimates its position by weighted least squares:
//!
//! ```text
//! argmin Σ_{a ∈ A} w(c_a) · (‖p − p_a‖ − d_a)²
//! ```
//!
//! minimized by gradient descent, optionally after the *intersection
//! consistency check* has discarded anchors with inconsistent ranges. A
//! *progressive* variant promotes freshly localized nodes to anchors so
//! later nodes have more references — at the cost of error propagation.
//!
//! Multilateration is the paper's baseline: accurate when anchors are
//! plentiful (Figure 12) and essentially useless on sparse field data
//! (Figure 14 localized 7 of 33 nodes), which is what motivates LSS.

mod consistency;

pub use consistency::{IntersectionConsistency, RangeToAnchor};

use rand::Rng;
use rl_geom::Point2;
use rl_math::gradient::{minimize, DescentConfig, Objective};
use rl_net::NodeId;
use rl_ranging::measurement::MeasurementSet;

use crate::types::{Anchor, PositionMap};
use crate::{LocalizationError, Result};

/// Position estimator used once an anchor set is selected.
#[derive(Debug, Clone, PartialEq)]
pub enum Estimator {
    /// Weighted least squares by gradient descent (the paper's method).
    LeastSquares(DescentConfig),
    /// Centroid of the densest circle-intersection cluster.
    ModeOfIntersections,
}

impl Default for Estimator {
    fn default() -> Self {
        Estimator::LeastSquares(DescentConfig {
            step_size: 0.05,
            max_iterations: 500,
            tolerance: 1e-12,
            patience: 20,
            // A few perturbation restarts dodge the mirror-image local
            // minimum that near-collinear anchor sets produce.
            restarts: 4,
            perturbation: 5.0,
            record_trace: false,
        })
    }
}

/// Configuration of the multilateration solver.
#[derive(Debug, Clone, PartialEq)]
pub struct MultilaterationConfig {
    /// Minimum usable anchors per node (3 for an unambiguous 2-D fix).
    pub min_anchors: usize,
    /// Intersection consistency check, if enabled.
    pub consistency: Option<IntersectionConsistency>,
    /// Whether localized nodes become anchors for later nodes.
    pub progressive: bool,
    /// Weight multiplier applied to derived (non-original) anchors in
    /// progressive mode.
    pub progressive_weight: f64,
    /// The position estimator.
    pub estimator: Estimator,
    /// Whether to leave a node unlocalized when its least-squares problem
    /// has two well-separated minima of comparable residual (the
    /// mirror-image ambiguity of near-collinear anchor sets). Disabling
    /// this reproduces the paper's Figure 16 "victims of the gradient
    /// descent falling into a local minimum".
    pub reject_ambiguous: bool,
}

impl Default for MultilaterationConfig {
    fn default() -> Self {
        MultilaterationConfig {
            min_anchors: 3,
            consistency: Some(IntersectionConsistency::default()),
            progressive: false,
            progressive_weight: 0.5,
            estimator: Estimator::default(),
            reject_ambiguous: true,
        }
    }
}

impl MultilaterationConfig {
    /// The configuration used in the paper's experiments: original anchors
    /// only, constant weight 1, least squares. (The intersection check was
    /// "omitted in this localization simulation" for Figure 16; toggle it
    /// with [`MultilaterationConfig::with_consistency`].)
    pub fn paper() -> Self {
        MultilaterationConfig::default()
    }

    /// Enables or disables the intersection consistency check.
    pub fn with_consistency(mut self, enabled: bool) -> Self {
        self.consistency = enabled.then(IntersectionConsistency::default);
        self
    }

    /// Enables progressive localization (builder style).
    pub fn progressive(mut self) -> Self {
        self.progressive = true;
        self
    }

    /// Enables or disables mirror-ambiguity rejection (builder style).
    pub fn with_ambiguity_rejection(mut self, enabled: bool) -> Self {
        self.reject_ambiguous = enabled;
        self
    }
}

/// Statistics and positions from one multilateration run.
#[derive(Debug, Clone)]
pub struct MultilaterationOutcome {
    /// Estimated positions (unlocalized nodes stay `None`).
    pub positions: PositionMap,
    /// Mean number of anchor ranges available per non-anchor node before
    /// filtering (the paper reports 1.47 for the sparse grid).
    pub mean_anchors_available: f64,
    /// Total anchors dropped by the consistency check.
    pub anchors_dropped: usize,
    /// Progressive rounds executed (1 when progressive mode is off).
    pub rounds: usize,
}

/// Mean number of anchor ranges available per non-anchor node before any
/// filtering — the statistic behind the paper's "1.47 anchors per node"
/// for the sparse grid. Computed over the original anchor set; reported
/// by [`MultilaterationOutcome::mean_anchors_available`] and reusable by
/// comparison harnesses.
pub fn mean_anchors_available(measurements: &MeasurementSet, anchors: &[Anchor]) -> f64 {
    let anchor_set: std::collections::BTreeSet<NodeId> = anchors.iter().map(|a| a.id).collect();
    let mut total_available = 0usize;
    let mut non_anchor_count = 0usize;
    for i in 0..measurements.node_count() {
        if anchor_set.contains(&NodeId(i)) {
            continue;
        }
        non_anchor_count += 1;
        total_available += measurements
            .neighbors_of(NodeId(i))
            .iter()
            .filter(|(j, _)| anchor_set.contains(j))
            .count();
    }
    if non_anchor_count == 0 {
        0.0
    } else {
        total_available as f64 / non_anchor_count as f64
    }
}

/// The multilateration solver.
#[derive(Debug, Clone)]
pub struct MultilaterationSolver {
    config: MultilaterationConfig,
}

/// Least-squares objective for one node's position.
struct NodeObjective<'a> {
    observations: &'a [RangeToAnchor],
}

impl Objective for NodeObjective<'_> {
    fn dim(&self) -> usize {
        2
    }

    fn value(&self, x: &[f64]) -> f64 {
        let p = Point2::new(x[0], x[1]);
        self.observations
            .iter()
            .map(|o| {
                let diff = p.distance(o.anchor) - o.distance;
                o.weight * diff * diff
            })
            .sum()
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        let p = Point2::new(x[0], x[1]);
        grad[0] = 0.0;
        grad[1] = 0.0;
        for o in self.observations {
            let dvec = p - o.anchor;
            let dc = dvec.norm().max(1e-9);
            let factor = 2.0 * o.weight * (dc - o.distance) / dc;
            grad[0] += factor * dvec.x;
            grad[1] += factor * dvec.y;
        }
    }
}

impl MultilaterationSolver {
    /// Creates a solver.
    pub fn new(config: MultilaterationConfig) -> Self {
        MultilaterationSolver { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MultilaterationConfig {
        &self.config
    }

    /// Localizes every non-anchor node that has enough anchor ranges.
    ///
    /// Anchors appear in the output at their known positions.
    ///
    /// # Errors
    ///
    /// * [`LocalizationError::TooFewAnchors`] with fewer than
    ///   `min_anchors` anchors overall,
    /// * [`LocalizationError::InvalidConfig`] for out-of-range anchor ids.
    pub fn solve<R: Rng + ?Sized>(
        &self,
        measurements: &MeasurementSet,
        anchors: &[Anchor],
        rng: &mut R,
    ) -> Result<MultilaterationOutcome> {
        let n = measurements.node_count();
        if anchors.len() < self.config.min_anchors {
            return Err(LocalizationError::TooFewAnchors {
                needed: self.config.min_anchors,
                got: anchors.len(),
            });
        }
        for a in anchors {
            if a.id.index() >= n {
                return Err(LocalizationError::InvalidConfig("anchor id out of range"));
            }
        }

        let mut positions = PositionMap::unlocalized(n);
        // Anchor table: position plus weight (originals get weight 1).
        let mut anchor_table: Vec<Option<(Point2, f64)>> = vec![None; n];
        for a in anchors {
            anchor_table[a.id.index()] = Some((a.position, 1.0));
            positions.set(a.id, a.position);
        }

        // Availability statistic over the original anchor set only.
        let mean_anchors_available = mean_anchors_available(measurements, anchors);

        let mut anchors_dropped = 0usize;
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            let mut newly_localized = Vec::new();
            for i in 0..n {
                if anchor_table[i].is_some() || positions.is_localized(NodeId(i)) {
                    continue;
                }
                let observations: Vec<RangeToAnchor> = measurements
                    .neighbors_of(NodeId(i))
                    .into_iter()
                    .filter_map(|(j, d)| {
                        anchor_table[j.index()].map(|(pos, w)| RangeToAnchor {
                            anchor: pos,
                            distance: d,
                            weight: w,
                        })
                    })
                    .collect();
                if observations.len() < self.config.min_anchors {
                    continue;
                }
                let filtered: Vec<RangeToAnchor> = match &self.config.consistency {
                    Some(check) => {
                        let kept = check.filter(&observations);
                        anchors_dropped += observations.len() - kept.len();
                        kept.into_iter().map(|k| observations[k]).collect()
                    }
                    None => observations,
                };
                if filtered.len() < self.config.min_anchors {
                    continue;
                }
                if let Some(estimate) = self.estimate(&filtered, rng) {
                    newly_localized.push((NodeId(i), estimate));
                }
            }
            if newly_localized.is_empty() {
                break;
            }
            for (id, p) in &newly_localized {
                positions.set(*id, *p);
                if self.config.progressive {
                    anchor_table[id.index()] = Some((*p, self.config.progressive_weight));
                }
            }
            if !self.config.progressive {
                break;
            }
        }

        Ok(MultilaterationOutcome {
            positions,
            mean_anchors_available,
            anchors_dropped,
            rounds,
        })
    }

    /// Unified-trait entry point; see [`MultilaterationSolver::solve`] for
    /// the richer inherent API (availability statistics, dropped-anchor
    /// counts).
    fn localize_impl(
        &self,
        problem: &crate::problem::Problem,
        rng: &mut dyn rand::RngCore,
    ) -> Result<crate::problem::Solution> {
        use crate::problem::{Frame, Solution, SolveStats};
        let start = std::time::Instant::now();
        let out = self.solve(problem.measurements(), problem.anchors(), rng)?;
        Ok(Solution::new(
            out.positions,
            Frame::Absolute,
            SolveStats {
                iterations: out.rounds,
                residual: None,
                // A multilateration pass either localizes a node or
                // leaves it unlocalized; there is no global convergence
                // criterion to report.
                converged: None,
                cg_iterations: None,
                wall_time: start.elapsed(),
            },
        ))
    }

    fn estimate<R: Rng + ?Sized>(
        &self,
        observations: &[RangeToAnchor],
        rng: &mut R,
    ) -> Option<Point2> {
        match &self.config.estimator {
            Estimator::LeastSquares(descent) => {
                // Multistart descent: the anchor centroid plus a ring of
                // perturbed starts. A single start from the centroid (the
                // surveyor's choice) finds *a* minimum; the ring reveals
                // whether a second, mirror-image minimum competes.
                let anchors: Vec<Point2> = observations.iter().map(|o| o.anchor).collect();
                let centroid = rl_geom::centroid(&anchors)?;
                let spread = anchors
                    .iter()
                    .map(|a| a.distance(centroid))
                    .fold(0.0f64, f64::max)
                    .max(1.0);
                let objective = NodeObjective { observations };
                let per_run = DescentConfig {
                    restarts: 0,
                    ..descent.clone()
                };
                let mut minima: Vec<(Point2, f64)> = Vec::new();
                for k in 0..6 {
                    let start = if k == 0 {
                        centroid
                    } else {
                        let angle = core::f64::consts::TAU * (k - 1) as f64 / 5.0;
                        centroid + rl_geom::Vec2::new(angle.cos(), angle.sin()) * spread
                    };
                    let outcome = minimize(&objective, &[start.x, start.y], &per_run, rng);
                    let p = Point2::new(outcome.x[0], outcome.x[1]);
                    if p.is_finite() {
                        minima.push((p, outcome.value));
                    }
                }
                let &(best_p, best_v) = minima
                    .iter()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite residuals"))?;
                if self.config.reject_ambiguous {
                    let competing = minima
                        .iter()
                        .any(|&(p, v)| p.distance(best_p) > 2.0 && v <= best_v * 9.0 + 0.5);
                    if competing {
                        return None;
                    }
                }
                Some(best_p)
            }
            Estimator::ModeOfIntersections => {
                let check = self.config.consistency.unwrap_or_default();
                check.mode_of_intersections(observations)
            }
        }
    }
}

impl crate::problem::Localizer for MultilaterationSolver {
    fn name(&self) -> &str {
        if self.config.progressive {
            "multilateration-progressive"
        } else {
            "multilateration"
        }
    }

    fn localize(
        &self,
        problem: &crate::problem::Problem,
        rng: &mut dyn rand::RngCore,
    ) -> Result<crate::problem::Solution> {
        self.localize_impl(problem, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_absolute;
    use rl_math::rng::seeded;

    /// Five anchors and four hidden nodes on a 20x20 field, exact ranges.
    fn exact_setup() -> (Vec<Point2>, Vec<Anchor>, MeasurementSet) {
        let truth = vec![
            Point2::new(0.0, 0.0),   // anchor
            Point2::new(20.0, 0.0),  // anchor
            Point2::new(0.0, 20.0),  // anchor
            Point2::new(20.0, 20.0), // anchor
            Point2::new(10.0, 10.0), // anchor
            Point2::new(6.0, 9.0),
            Point2::new(14.0, 5.0),
            Point2::new(4.0, 15.0),
            Point2::new(16.0, 13.0),
        ];
        let anchors: Vec<Anchor> = (0..5).map(|i| Anchor::new(NodeId(i), truth[i])).collect();
        let set = MeasurementSet::oracle(&truth, 1e9);
        (truth, anchors, set)
    }

    #[test]
    fn exact_ranges_localize_everything() {
        let (truth, anchors, set) = exact_setup();
        let mut rng = seeded(1);
        let out = MultilaterationSolver::new(MultilaterationConfig::paper())
            .solve(&set, &anchors, &mut rng)
            .unwrap();
        assert_eq!(out.positions.localized_count(), 9);
        let eval = evaluate_absolute(&out.positions, &truth).unwrap();
        assert!(eval.mean_error < 0.05, "mean error {}", eval.mean_error);
        assert_eq!(out.rounds, 1);
        assert!((out.mean_anchors_available - 5.0).abs() < 1e-12);
    }

    #[test]
    fn too_few_anchor_ranges_leave_node_unlocalized() {
        let (_, anchors, mut set) = exact_setup();
        // Strip node 5's measurements to anchors 0-2, leaving only two.
        set.remove(NodeId(5), NodeId(0));
        set.remove(NodeId(5), NodeId(1));
        set.remove(NodeId(5), NodeId(2));
        let mut rng = seeded(2);
        let out = MultilaterationSolver::new(MultilaterationConfig::paper())
            .solve(&set, &anchors, &mut rng)
            .unwrap();
        assert!(!out.positions.is_localized(NodeId(5)));
        assert!(out.positions.is_localized(NodeId(6)));
    }

    #[test]
    fn consistency_check_rescues_outlier_measurement() {
        let (truth, anchors, mut set) = exact_setup();
        // Corrupt node 5's range to anchor 3 grossly.
        set.insert(NodeId(5), NodeId(3), 3.0); // true ≈ 17.8
        let mut rng = seeded(3);

        let with = MultilaterationSolver::new(MultilaterationConfig::paper())
            .solve(&set, &anchors, &mut rng)
            .unwrap();
        let without =
            MultilaterationSolver::new(MultilaterationConfig::paper().with_consistency(false))
                .solve(&set, &anchors, &mut rng)
                .unwrap();

        let err_with = with.positions.get(NodeId(5)).unwrap().distance(truth[5]);
        let err_without = without.positions.get(NodeId(5)).unwrap().distance(truth[5]);
        assert!(
            with.anchors_dropped >= 1,
            "dropped {}",
            with.anchors_dropped
        );
        assert!(
            err_with < err_without,
            "consistency should help: {err_with} vs {err_without}"
        );
        assert!(err_with < 0.5, "err with check {err_with}");
    }

    #[test]
    fn progressive_extends_coverage() {
        // Chain: anchors cluster on the left; node 7 only measures nodes
        // 5 and 6 plus one anchor, so it needs progressive promotion.
        let truth = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(0.0, 10.0),
            Point2::new(10.0, 10.0),
            Point2::new(5.0, 5.0),
            Point2::new(15.0, 5.0),
            Point2::new(20.0, 10.0),
            Point2::new(25.0, 5.0),
        ];
        let anchors: Vec<Anchor> = (0..4).map(|i| Anchor::new(NodeId(i), truth[i])).collect();
        let mut set = MeasurementSet::new(8);
        let mut add = |a: usize, b: usize| {
            let d = truth[a].distance(truth[b]);
            set.insert(NodeId(a), NodeId(b), d);
        };
        // Nodes 4-6 see plenty of anchors; node 7 sees only 4, 5, 6.
        for node in 4..7 {
            for anchor in 0..4 {
                add(node, anchor);
            }
        }
        add(7, 4);
        add(7, 5);
        add(7, 6);

        let mut rng = seeded(4);
        let plain = MultilaterationSolver::new(MultilaterationConfig::paper())
            .solve(&set, &anchors, &mut rng)
            .unwrap();
        assert!(!plain.positions.is_localized(NodeId(7)));

        let progressive = MultilaterationSolver::new(MultilaterationConfig::paper().progressive())
            .solve(&set, &anchors, &mut rng)
            .unwrap();
        assert!(progressive.positions.is_localized(NodeId(7)));
        assert!(progressive.rounds > 1);
        let err = progressive
            .positions
            .get(NodeId(7))
            .unwrap()
            .distance(truth[7]);
        assert!(err < 1.0, "progressive error {err}");
    }

    #[test]
    fn ambiguity_rejection_declines_collinear_anchor_fixes() {
        // Three exactly collinear anchors: the mirror image across their
        // line fits the ranges equally well.
        let truth_node = Point2::new(5.0, 7.0);
        let anchor_positions = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(20.0, 0.0),
        ];
        let mut set = MeasurementSet::new(4);
        let anchors: Vec<Anchor> = anchor_positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                set.insert(NodeId(i), NodeId(3), p.distance(truth_node));
                Anchor::new(NodeId(i), p)
            })
            .collect();
        let mut rng = seeded(8);
        // The intersection check cannot help here (all intersections
        // cluster at both the node and its mirror), so disable it to
        // isolate the ambiguity rejection.
        let rejecting =
            MultilaterationSolver::new(MultilaterationConfig::paper().with_consistency(false))
                .solve(&set, &anchors, &mut rng)
                .unwrap();
        assert!(
            !rejecting.positions.is_localized(NodeId(3)),
            "mirror-ambiguous node must stay unlocalized"
        );

        let accepting = MultilaterationSolver::new(
            MultilaterationConfig::paper()
                .with_consistency(false)
                .with_ambiguity_rejection(false),
        )
        .solve(&set, &anchors, &mut rng)
        .unwrap();
        let p = accepting.positions.get(NodeId(3)).expect("localized");
        // Without rejection the node lands at the truth or its mirror.
        let mirror = Point2::new(5.0, -7.0);
        assert!(
            p.distance(truth_node) < 0.2 || p.distance(mirror) < 0.2,
            "got {p}"
        );
    }

    #[test]
    fn mode_estimator_works_on_clean_ranges() {
        let (truth, anchors, set) = exact_setup();
        let mut rng = seeded(5);
        let config = MultilaterationConfig {
            estimator: Estimator::ModeOfIntersections,
            ..MultilaterationConfig::paper()
        };
        let out = MultilaterationSolver::new(config)
            .solve(&set, &anchors, &mut rng)
            .unwrap();
        let eval = evaluate_absolute(&out.positions, &truth).unwrap();
        assert!(eval.mean_error < 0.6, "mean error {}", eval.mean_error);
    }

    #[test]
    fn error_cases() {
        let (_, anchors, set) = exact_setup();
        let mut rng = seeded(6);
        let solver = MultilaterationSolver::new(MultilaterationConfig::paper());
        assert!(matches!(
            solver.solve(&set, &anchors[..2], &mut rng),
            Err(LocalizationError::TooFewAnchors { .. })
        ));
        let bad = vec![Anchor::new(NodeId(99), Point2::ORIGIN); 3];
        assert!(matches!(
            solver.solve(&set, &bad, &mut rng),
            Err(LocalizationError::InvalidConfig(_))
        ));
    }

    #[test]
    fn noisy_ranges_meter_level_accuracy() {
        let (truth, anchors, _) = exact_setup();
        let mut rng = seeded(7);
        let mut set = MeasurementSet::new(9);
        for i in 0..9usize {
            for j in (i + 1)..9 {
                let d = truth[i].distance(truth[j]);
                let noisy = (d + rl_math::rng::normal(&mut rng, 0.0, 0.33)).max(0.1);
                set.insert(NodeId(i), NodeId(j), noisy);
            }
        }
        let out = MultilaterationSolver::new(MultilaterationConfig::paper())
            .solve(&set, &anchors, &mut rng)
            .unwrap();
        let eval = evaluate_absolute(&out.positions, &truth).unwrap();
        // Anchors at truth + 4 localized nodes with sub-meter error.
        assert_eq!(out.positions.localized_count(), 9);
        assert!(eval.mean_error < 0.6, "mean error {}", eval.mean_error);
    }
}
