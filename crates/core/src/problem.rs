//! The unified solving API: [`Problem`] in, [`Solution`] out, through the
//! [`Localizer`] trait.
//!
//! The paper's contribution is a *family* of algorithms of increasing
//! resilience — multilateration (§4.1), centralized LSS (§4.2), distributed
//! LSS (§4.3) — evaluated head-to-head on shared deployments, alongside the
//! Related-Work baselines (DV-hop, centroid, MDS-MAP). Every family has a
//! different calling convention in its natural habitat (anchors or not,
//! ground-truth connectivity or not), so comparison harnesses used to
//! hand-roll the wiring per algorithm. This module gives them one seam:
//!
//! * [`Problem`] — the inputs every localizer draws from: a measurement
//!   set, an anchor list (possibly empty), and optional ground-truth
//!   positions (used for radio connectivity by protocol-driven solvers and
//!   for evaluation),
//! * [`Solution`] — a [`PositionMap`] plus per-run [`SolveStats`] and the
//!   coordinate [`Frame`] the positions live in,
//! * [`Localizer`] — the object-safe trait implemented by
//!   [`MultilaterationSolver`](crate::multilateration::MultilaterationSolver),
//!   [`LssSolver`](crate::lss::LssSolver),
//!   [`DistributedSolver`](crate::distributed::DistributedSolver),
//!   [`MdsMapLocalizer`](crate::mds::MdsMapLocalizer),
//!   [`DvHopLocalizer`](crate::baselines::DvHopLocalizer) and
//!   [`CentroidLocalizer`](crate::baselines::CentroidLocalizer), so a
//!   `Vec<Box<dyn Localizer>>` can sweep the whole family over one problem.
//!
//! # Example
//!
//! ```
//! use rl_core::lss::{LssConfig, LssSolver};
//! use rl_core::problem::{Localizer, Problem};
//! use rl_geom::Point2;
//! use rl_ranging::measurement::MeasurementSet;
//!
//! let truth: Vec<Point2> = (0..9)
//!     .map(|i| Point2::new((i % 3) as f64 * 9.0, (i / 3) as f64 * 9.0))
//!     .collect();
//! let problem = Problem::builder(MeasurementSet::oracle(&truth, 25.0))
//!     .truth(truth)
//!     .build()?;
//!
//! let solver: Box<dyn Localizer> = Box::new(LssSolver::new(LssConfig::default()));
//! let mut rng = rl_math::rng::seeded(7);
//! let solution = solver.localize(&problem, &mut rng)?;
//! let eval = problem.evaluate(&solution)?;
//! assert!(eval.mean_error < 0.5, "mean error {}", eval.mean_error);
//! # Ok::<(), rl_core::LocalizationError>(())
//! ```

use std::time::Duration;

use rand::RngCore;
use rl_geom::Point2;
use rl_net::NodeId;
use rl_ranging::measurement::MeasurementSet;

use crate::eval::{evaluate_absolute, evaluate_against_truth, Evaluation};
use crate::types::{Anchor, PositionMap};
use crate::{LocalizationError, Result};

/// Which linear-algebra backend a solver runs its heavy stages on.
///
/// The dense paths ([`DMatrix`](rl_math::DMatrix) products, full Jacobi
/// eigendecompositions, materialized `O(n^2)` pair lists) are exact and
/// simple but scale as `O(n^2)`–`O(n^3)`; the sparse paths
/// ([`rl_math::sparse`]: CSR mat-vec, iterative top-`k` eigensolver,
/// spatial-grid active sets) exploit the connectivity graph's sparsity
/// under the 22 m ranging cutoff and stay tractable at metro scale.
/// Solvers honoring this enum ([`LssConfig`](crate::lss::LssConfig),
/// [`MdsMapLocalizer`](crate::mds::MdsMapLocalizer)) default to
/// [`SolverBackend::Auto`], which switches on the problem's node count at
/// [`SolverBackend::AUTO_THRESHOLD`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Pick per problem: dense below [`SolverBackend::AUTO_THRESHOLD`]
    /// nodes, sparse at or above it.
    #[default]
    Auto,
    /// Force the dense path regardless of size (the small-`n` reference
    /// implementation and parity oracle).
    Dense,
    /// Force the sparse path regardless of size.
    Sparse,
}

impl SolverBackend {
    /// Node count at which [`SolverBackend::Auto`] switches to the sparse
    /// path. Below it the dense `O(n^3)` work is cheaper than the sparse
    /// machinery's constant factors; the paper-scale scenarios (town: 59
    /// nodes) stay dense, the metro ladder (250+) goes sparse.
    pub const AUTO_THRESHOLD: usize = 100;

    /// Whether the sparse path should run for an `n`-node problem.
    pub fn use_sparse(self, n: usize) -> bool {
        match self {
            SolverBackend::Auto => n >= Self::AUTO_THRESHOLD,
            SolverBackend::Dense => false,
            SolverBackend::Sparse => true,
        }
    }
}

/// The coordinate frame a solution's positions are expressed in. Decides
/// how [`Problem::evaluate`] compares them with ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    /// Positions live in the anchors' (surveyed) coordinate system and are
    /// compared with truth directly — the protocol for anchor-based
    /// algorithms like multilateration.
    Absolute,
    /// Positions live in an arbitrary relative frame (translation,
    /// rotation and reflection undetermined) and are best-fit aligned
    /// before comparison — the paper's protocol for anchor-free LSS.
    Relative,
}

/// A localization problem: everything an algorithm may draw on.
///
/// Built with [`Problem::builder`]; validation (anchor ids in range, truth
/// length matching the measurement set) happens at
/// [`ProblemBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    name: String,
    measurements: MeasurementSet,
    anchors: Vec<Anchor>,
    truth: Option<Vec<Point2>>,
}

impl Problem {
    /// Starts building a problem around a measurement set.
    pub fn builder(measurements: MeasurementSet) -> ProblemBuilder {
        ProblemBuilder {
            name: String::new(),
            measurements,
            anchors: Vec::new(),
            truth: None,
        }
    }

    /// The problem's label (empty unless set via
    /// [`ProblemBuilder::name`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pairwise distance measurements.
    pub fn measurements(&self) -> &MeasurementSet {
        &self.measurements
    }

    /// The anchors (nodes with surveyed positions); empty for anchor-free
    /// operation.
    pub fn anchors(&self) -> &[Anchor] {
        &self.anchors
    }

    /// Anchor node ids, in declaration order.
    pub fn anchor_ids(&self) -> Vec<NodeId> {
        self.anchors.iter().map(|a| a.id).collect()
    }

    /// Ground-truth positions, when known. Protocol-driven solvers
    /// (distributed LSS, DV-hop, centroid) read these for radio
    /// *connectivity* only; [`Problem::evaluate`] reads them as
    /// coordinates.
    pub fn truth(&self) -> Option<&[Point2]> {
        self.truth.as_deref()
    }

    /// Ground-truth positions, or the standard error when the problem
    /// carries none.
    ///
    /// # Errors
    ///
    /// [`LocalizationError::InvalidConfig`] without ground truth.
    pub fn truth_required(&self) -> Result<&[Point2]> {
        self.truth
            .as_deref()
            .ok_or(LocalizationError::InvalidConfig(
                "this localizer needs ground-truth positions (radio connectivity)",
            ))
    }

    /// Number of nodes in the problem.
    pub fn node_count(&self) -> usize {
        self.measurements.node_count()
    }

    /// Evaluates a solution against the problem's ground truth: absolute
    /// comparison for [`Frame::Absolute`] solutions, best-fit alignment
    /// for [`Frame::Relative`] ones. When the problem has anchors, they
    /// are excluded from the error metric (they are inputs, not
    /// estimates).
    ///
    /// # Errors
    ///
    /// * [`LocalizationError::Evaluation`] when the problem carries no
    ///   ground truth, when too few nodes are localized to evaluate, or
    ///   when no *non-anchor* node was localized.
    pub fn evaluate(&self, solution: &Solution) -> Result<Evaluation> {
        let truth = self
            .truth
            .as_deref()
            .ok_or(LocalizationError::Evaluation("problem has no ground truth"))?;
        let eval = match solution.frame() {
            Frame::Absolute => evaluate_absolute(solution.positions(), truth)?,
            Frame::Relative => evaluate_against_truth(solution.positions(), truth)?,
        };
        if self.anchors.is_empty() {
            return Ok(eval);
        }
        let eval = eval.excluding(&self.anchor_ids());
        if eval.localized == 0 {
            return Err(LocalizationError::Evaluation(
                "no non-anchor node was localized",
            ));
        }
        Ok(eval)
    }
}

/// Builder for [`Problem`].
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    name: String,
    measurements: MeasurementSet,
    anchors: Vec<Anchor>,
    truth: Option<Vec<Point2>>,
}

impl ProblemBuilder {
    /// Labels the problem (shows up in campaign tables).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Supplies the anchor list.
    pub fn anchors(mut self, anchors: Vec<Anchor>) -> Self {
        self.anchors = anchors;
        self
    }

    /// Supplies ground-truth positions (one per node).
    pub fn truth(mut self, truth: Vec<Point2>) -> Self {
        self.truth = Some(truth);
        self
    }

    /// Validates and builds the problem.
    ///
    /// # Errors
    ///
    /// [`LocalizationError::InvalidConfig`] when an anchor id is out of
    /// range or the truth length disagrees with the measurement set's node
    /// count.
    pub fn build(self) -> Result<Problem> {
        let n = self.measurements.node_count();
        for a in &self.anchors {
            if a.id.index() >= n {
                return Err(LocalizationError::InvalidConfig("anchor id out of range"));
            }
        }
        if let Some(truth) = &self.truth {
            if truth.len() != n {
                return Err(LocalizationError::InvalidConfig(
                    "truth and measurements disagree on node count",
                ));
            }
        }
        Ok(Problem {
            name: self.name,
            measurements: self.measurements,
            anchors: self.anchors,
            truth: self.truth,
        })
    }
}

/// Per-run solver statistics attached to every [`Solution`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolveStats {
    /// Algorithm-specific work counter: descent iterations for the
    /// least-squares solvers, protocol messages delivered for distributed
    /// LSS, rounds for progressive multilateration, `0` for closed-form
    /// baselines.
    pub iterations: usize,
    /// Final objective value where one exists (LSS stress, anchored
    /// refinement stress); `None` for algorithms without a scalar
    /// residual.
    pub residual: Option<f64>,
    /// Whether the solver's iteration reached its convergence criterion:
    /// the stress target for the least-squares solvers, the eigensolver
    /// residual bound for sparse MDS-MAP. `None` for algorithms with no
    /// convergence notion (closed-form baselines, protocol-driven
    /// solvers). Campaign summary tables aggregate this per cell.
    pub converged: Option<bool>,
    /// Cumulative inner conjugate-gradient iterations, for solvers whose
    /// refinement stage runs CG (distributed LSS, the tracking warm
    /// path); `None` for solvers with no CG inside. The `sparse_smoke`
    /// CI bin reads this to gate the preconditioned-CG iteration win —
    /// deliberately **not** part of any campaign fingerprint, which were
    /// pinned before the field existed.
    pub cg_iterations: Option<usize>,
    /// Wall-clock time the solve took.
    pub wall_time: Duration,
}

/// The output of one [`Localizer::localize`] call.
#[derive(Debug, Clone)]
pub struct Solution {
    positions: PositionMap,
    frame: Frame,
    stats: SolveStats,
}

impl Solution {
    /// Creates a solution.
    pub fn new(positions: PositionMap, frame: Frame, stats: SolveStats) -> Self {
        Solution {
            positions,
            frame,
            stats,
        }
    }

    /// The estimated positions (unlocalized nodes stay `None`).
    pub fn positions(&self) -> &PositionMap {
        &self.positions
    }

    /// Consumes the solution, returning the position map.
    pub fn into_positions(self) -> PositionMap {
        self.positions
    }

    /// The coordinate frame the positions are expressed in.
    pub fn frame(&self) -> Frame {
        self.frame
    }

    /// Per-run solver statistics.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }
}

/// A localization algorithm runnable through one object-safe entry point.
///
/// Implementations wrap their inherent solving methods (which remain the
/// richer, algorithm-specific API) so heterogeneous solver sets can be
/// swept over a shared [`Problem`]: `Vec<Box<dyn Localizer>>` is the
/// comparison matrix the paper's evaluation is built from.
///
/// # Thread safety
///
/// `Localizer` requires `Send + Sync` so campaign runners can fan a shared
/// `&dyn Localizer` out across worker threads (each worker solves
/// different cells of the grid with the *same* solver value). Localizers
/// are configuration, not state: [`Localizer::localize`] takes `&self`,
/// and all per-run mutability lives in the caller-supplied RNG, so plain
/// config structs satisfy the bounds automatically.
pub trait Localizer: Send + Sync {
    /// Short stable identifier for tables and reports, e.g. `"lss"`.
    fn name(&self) -> &str;

    /// Solves the problem.
    ///
    /// # Errors
    ///
    /// Algorithm-specific [`LocalizationError`]s: missing anchors for
    /// anchor-based schemes, missing ground truth for protocol-driven
    /// ones, insufficient measurements, configuration errors.
    fn localize(&self, problem: &Problem, rng: &mut dyn RngCore) -> Result<Solution>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_geom::Vec2;

    fn grid(nx: usize, ny: usize, spacing: f64) -> Vec<Point2> {
        (0..nx * ny)
            .map(|i| Point2::new((i % nx) as f64 * spacing, (i / nx) as f64 * spacing))
            .collect()
    }

    fn oracle_problem() -> Problem {
        let truth = grid(3, 3, 9.0);
        Problem::builder(MeasurementSet::oracle(&truth, 1e9))
            .name("oracle-3x3")
            .truth(truth)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_anchor_ids_and_truth_length() {
        let truth = grid(2, 2, 9.0);
        let set = MeasurementSet::oracle(&truth, 1e9);
        let bad_anchor = Problem::builder(set.clone())
            .anchors(vec![Anchor::new(NodeId(99), Point2::ORIGIN)])
            .build();
        assert!(matches!(
            bad_anchor,
            Err(LocalizationError::InvalidConfig(_))
        ));
        let bad_truth = Problem::builder(set).truth(grid(3, 3, 9.0)).build();
        assert!(matches!(
            bad_truth,
            Err(LocalizationError::InvalidConfig(_))
        ));
    }

    #[test]
    fn accessors_round_trip() {
        let p = oracle_problem();
        assert_eq!(p.name(), "oracle-3x3");
        assert_eq!(p.node_count(), 9);
        assert!(p.anchors().is_empty());
        assert!(p.anchor_ids().is_empty());
        assert_eq!(p.truth().unwrap().len(), 9);
        assert_eq!(p.truth_required().unwrap().len(), 9);
        let anonymous = Problem::builder(MeasurementSet::new(3)).build().unwrap();
        assert!(anonymous.truth().is_none());
        assert!(anonymous.truth_required().is_err());
    }

    #[test]
    fn evaluate_requires_truth_and_excludes_anchors() {
        let truth = grid(3, 3, 9.0);
        let anchors = vec![Anchor::new(NodeId(0), truth[0])];
        let with_anchors = Problem::builder(MeasurementSet::oracle(&truth, 1e9))
            .anchors(anchors)
            .truth(truth.clone())
            .build()
            .unwrap();

        // A perfect absolute solution: anchors must not count toward the
        // metric, so 8 of 9 nodes are evaluated.
        let solution = Solution::new(
            PositionMap::complete(truth.clone()),
            Frame::Absolute,
            SolveStats::default(),
        );
        let eval = with_anchors.evaluate(&solution).unwrap();
        assert_eq!(eval.localized, 8);
        assert_eq!(eval.total, 8);
        assert!(eval.mean_error < 1e-12);

        let truthless = Problem::builder(MeasurementSet::oracle(&truth, 1e9))
            .build()
            .unwrap();
        assert!(matches!(
            truthless.evaluate(&solution),
            Err(LocalizationError::Evaluation(_))
        ));
    }

    #[test]
    fn evaluate_aligns_relative_solutions() {
        let p = oracle_problem();
        let truth = p.truth().unwrap().to_vec();
        let shifted: Vec<Point2> = truth.iter().map(|&q| q + Vec2::new(50.0, -3.0)).collect();
        let relative = Solution::new(
            PositionMap::complete(shifted.clone()),
            Frame::Relative,
            SolveStats::default(),
        );
        assert!(p.evaluate(&relative).unwrap().mean_error < 1e-9);
        let absolute = Solution::new(
            PositionMap::complete(shifted),
            Frame::Absolute,
            SolveStats::default(),
        );
        assert!(p.evaluate(&absolute).unwrap().mean_error > 10.0);
    }

    #[test]
    fn evaluate_rejects_anchor_only_solutions() {
        let truth = grid(3, 3, 9.0);
        let anchors = Anchor::from_truth(&[NodeId(0), NodeId(1), NodeId(2)], &truth);
        let p = Problem::builder(MeasurementSet::oracle(&truth, 1e9))
            .anchors(anchors.clone())
            .truth(truth.clone())
            .build()
            .unwrap();
        let mut positions = PositionMap::unlocalized(9);
        for a in &anchors {
            positions.set(a.id, a.position);
        }
        let solution = Solution::new(positions, Frame::Absolute, SolveStats::default());
        assert!(matches!(
            p.evaluate(&solution),
            Err(LocalizationError::Evaluation(_))
        ));
    }

    #[test]
    fn problem_and_solutions_cross_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        // The campaign worker pool shares problems and boxed localizers by
        // reference across threads and sends solutions back.
        assert_send_sync::<Problem>();
        assert_send_sync::<Solution>();
        assert_send_sync::<Box<dyn Localizer>>();
        assert_send_sync::<crate::eval::Evaluation>();
    }

    #[test]
    fn localizer_is_object_safe() {
        struct Fixed;
        impl Localizer for Fixed {
            fn name(&self) -> &str {
                "fixed"
            }
            fn localize(&self, problem: &Problem, _rng: &mut dyn RngCore) -> Result<Solution> {
                Ok(Solution::new(
                    PositionMap::unlocalized(problem.node_count()),
                    Frame::Absolute,
                    SolveStats::default(),
                ))
            }
        }
        let solvers: Vec<Box<dyn Localizer>> = vec![Box::new(Fixed)];
        let p = oracle_problem();
        let mut rng = rl_math::rng::seeded(1);
        for s in &solvers {
            assert_eq!(s.name(), "fixed");
            let sol = s.localize(&p, &mut rng).unwrap();
            assert_eq!(sol.positions().len(), 9);
            assert_eq!(sol.frame(), Frame::Absolute);
            assert_eq!(sol.stats().iterations, 0);
        }
    }
}
