//! Online tracking: incremental localization for slowly-moving networks.
//!
//! Every solver in [`crate::problem`] is batch — one `Problem` in, one
//! `Solution` out. Real deployments are streams: nodes move a little
//! between measurement rounds, a few join or leave, and ranges are
//! re-measured every tick. Re-solving from scratch each tick throws away
//! the one thing a stream gives for free: the previous solution is an
//! excellent seed. DILAND (Khan et al.) observes that the Gauss–Newton
//! refinement iteration this crate already runs after the distributed
//! alignment flood ([`crate::distributed::refine_anchored`]) is naturally
//! incremental — seed from the last configuration, take a few damped
//! CG-backed steps against the fresh measurements, done.
//!
//! # The warm/cold split
//!
//! A [`StreamingTracker`] consumes one [`TickObservation`] per tick and
//! picks one of two paths:
//!
//! * **Warm update** — the default once a solution exists. Anchors are
//!   re-pinned at their surveyed positions (hard constraints, so the
//!   absolute frame cannot drift tick over tick), nodes that joined are
//!   seeded from the centroid of their already-positioned measured
//!   neighbors, and [`refine_anchored`] runs a bounded number of
//!   robust-loss-aware Gauss–Newton steps ([`TrackerConfig::warm`],
//!   4 by default). The warm path draws **no randomness**.
//! * **Cold solve** — the fallback when the warm seed is invalid: the
//!   first observation, a [`Tracker::reset`], a changed node universe,
//!   churn beyond [`TrackerConfig::churn_restart_fraction`], or a
//!   disconnected tick (no measured edge touches a refinable node). The
//!   configured batch [`Localizer`] solves the active subnetwork from
//!   scratch, seeded by [`cold_seed`] — a pure function of the tracker
//!   seed and the observation index, never of wall clock or thread
//!   scheduling.
//!
//! # Determinism contract
//!
//! The emitted solution stream is a pure function of
//! `(TrackerConfig, cold localizer, observation sequence)`: warm updates
//! are deterministic arithmetic, cold solves derive their RNG stream
//! from the observation index alone, and nothing depends on worker
//! count or timing (the campaign-style worker-count bit-identity of the
//! cold solver carries over to the whole stream). Replaying the same
//! observations after [`Tracker::reset`] reproduces the original stream
//! bit for bit.
//!
//! # Example
//!
//! ```
//! use rl_core::tracking::{StreamingTracker, Tracker, TrackerConfig, TickObservation};
//! use rl_core::types::{Anchor, NodeId};
//! use rl_geom::Point2;
//! use rl_ranging::measurement::MeasurementSet;
//!
//! // A 4-node square with one surveyed corner pair.
//! let truth = vec![
//!     Point2::new(0.0, 0.0),
//!     Point2::new(10.0, 0.0),
//!     Point2::new(0.0, 10.0),
//!     Point2::new(10.0, 10.0),
//! ];
//! let obs = TickObservation {
//!     tick: 0,
//!     measurements: MeasurementSet::oracle(&truth, 20.0),
//!     anchors: vec![
//!         Anchor::new(NodeId(0), truth[0]),
//!         Anchor::new(NodeId(1), truth[1]),
//!         Anchor::new(NodeId(2), truth[2]),
//!     ],
//!     active: (0..4).map(NodeId).collect(),
//!     joined: (0..4).map(NodeId).collect(),
//!     left: vec![],
//!     truth: Some(truth.clone()),
//! };
//! let mut tracker = StreamingTracker::with_lss(TrackerConfig::new(7));
//! let solution = tracker.observe(&obs)?;
//! assert_eq!(solution.positions().localized_count(), 4);
//! # Ok::<(), rl_core::LocalizationError>(())
//! ```

use std::time::Instant;

use rl_geom::Point2;
use rl_math::Fnv1a;
use rl_net::NodeId;
use rl_ranging::measurement::MeasurementSet;

use crate::distributed::{refine_anchored, RefineConfig};
use crate::lss::{LssConfig, LssSolver};
use crate::problem::{Frame, Localizer, Problem, Solution, SolveStats};
use crate::types::{Anchor, PositionMap};
use crate::{LocalizationError, Result};

/// Stream salt separating cold-solve RNG streams per observation index
/// (same role as the distributed pipeline's per-node salt: distinct
/// streams that are pure functions of identity, never of scheduling).
pub const COLD_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// The RNG seed of the cold solve at observation index `tick` for a
/// tracker configured with `seed`: a pure function of the pair, so
/// replay — on any worker count, after any reset — reproduces the same
/// stream. Exposed so tests and offline reference solves can derive the
/// exact seed a tracker used.
pub fn cold_seed(seed: u64, tick: u64) -> u64 {
    seed ^ tick.wrapping_add(1).wrapping_mul(COLD_STREAM)
}

/// One tick's worth of network change, as the tracking layer sees it:
/// fresh measurements over a **fixed node universe** plus the churn
/// delta. Node ids are stable slots — a node that leaves and later
/// rejoins keeps its id; inactive slots simply have no measured edges.
#[derive(Debug, Clone, PartialEq)]
pub struct TickObservation {
    /// Observation index in the stream, starting at 0.
    pub tick: u64,
    /// This tick's re-measured ranges, over the full slot universe
    /// (`measurements.node_count()` is the universe size; edges only
    /// ever touch active nodes).
    pub measurements: MeasurementSet,
    /// Surveyed nodes, at their surveyed positions.
    pub anchors: Vec<Anchor>,
    /// Every active slot this tick, ascending and unique.
    pub active: Vec<NodeId>,
    /// Slots that became active this tick.
    pub joined: Vec<NodeId>,
    /// Slots that became inactive this tick.
    pub left: Vec<NodeId>,
    /// Ground-truth positions for the whole universe, when the source is
    /// a simulation. Like [`Problem`]'s truth this is scaffolding, not
    /// input: protocol-driven cold solvers (distributed LSS) need it for
    /// radio connectivity, and evaluation reads it; the estimates never
    /// do.
    pub truth: Option<Vec<Point2>>,
}

/// Configuration of a [`StreamingTracker`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerConfig {
    /// Base seed of the tracker's cold-solve streams (see [`cold_seed`]).
    pub seed: u64,
    /// The warm path's bounded refinement: `warm.max_iterations` is the
    /// Gauss–Newton step budget *per tick* (default 4 — a tick's motion
    /// is small, so a few damped steps re-converge the configuration).
    pub warm: RefineConfig,
    /// Cold-restart threshold: when more than this fraction of the
    /// active nodes has no carried estimate (mass joins, post-reset
    /// churn), the warm seed is declared invalid and the tick is solved
    /// cold.
    pub churn_restart_fraction: f64,
}

impl TrackerConfig {
    /// The default tracking configuration for `seed`: 4 warm steps per
    /// tick, cold restart beyond 25% unseeded active nodes.
    pub fn new(seed: u64) -> Self {
        TrackerConfig {
            seed,
            warm: RefineConfig {
                max_iterations: 4,
                ..RefineConfig::default()
            },
            churn_restart_fraction: 0.25,
        }
    }

    /// [`TrackerConfig::new`] plus the sparse-kernel acceleration on
    /// the warm path: warm-started inner CG solves seeded from the
    /// previous accepted Gauss–Newton delta (rescaled by a one-matvec
    /// line search) — the natural fit for tracking, where consecutive
    /// ticks solve nearly identical systems and CG's never-worse guard
    /// makes the seed risk-free. Jacobi preconditioning is deliberately
    /// not enabled: metro normal equations have a near-uniform diagonal
    /// and Jacobi measured as a slight loss there (see
    /// [`DistributedConfig::metro_fast`](crate::distributed::DistributedConfig::metro_fast)).
    /// Same refinement problem as `new()`, but not bit-identical to it
    /// (the default path's solution fingerprints are pinned in
    /// `tests/tracking_golden.rs`), hence a separate opt-in preset.
    pub fn metro(seed: u64) -> Self {
        let mut config = Self::new(seed);
        config.warm.cg_warm_start = true;
        config
    }

    /// Replaces the warm-path refinement configuration (builder style).
    pub fn with_warm(mut self, warm: RefineConfig) -> Self {
        self.warm = warm;
        self
    }

    /// Sets the warm path's Gauss–Newton step budget per tick (builder
    /// style).
    pub fn with_steps_per_tick(mut self, steps: usize) -> Self {
        self.warm.max_iterations = steps;
        self
    }

    /// Sets the cold-restart churn threshold (builder style).
    pub fn with_churn_restart_fraction(mut self, fraction: f64) -> Self {
        self.churn_restart_fraction = fraction;
        self
    }
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig::new(0)
    }
}

/// An online localizer: consumes a stream of [`TickObservation`]s,
/// emits one [`Solution`] per tick.
pub trait Tracker: Send {
    /// Human-readable tracker name.
    fn name(&self) -> &str;

    /// Consumes one tick and returns the updated solution.
    ///
    /// # Errors
    ///
    /// A [`LocalizationError`] when the observation is malformed or the
    /// tick could not be solved (e.g. a cold solve on a disconnected
    /// network); the tracker stays usable and the next observation is
    /// processed normally.
    fn observe(&mut self, obs: &TickObservation) -> Result<&Solution>;

    /// Drops all carried state: the next [`Tracker::observe`] behaves
    /// exactly like the first one ever (cold-restart equivalence — a
    /// reset tracker replays a stream bit-identically to a fresh one).
    fn reset(&mut self);

    /// The most recent solution, if any tick has been solved.
    fn latest(&self) -> Option<&Solution>;
}

/// The warm-started Gauss–Newton tracker described in the
/// [module docs](self): incremental [`refine_anchored`] updates with a
/// batch [`Localizer`] as cold fallback.
pub struct StreamingTracker {
    config: TrackerConfig,
    cold: Box<dyn Localizer>,
    name: String,
    /// Carried position estimates over the current slot universe; empty
    /// until the first successful tick.
    positions: PositionMap,
    latest: Option<Solution>,
    /// Observations consumed since construction or the last reset
    /// (errors included — the cold-seed derivation must be a pure
    /// function of the observation index).
    ticks: u64,
    cold_solves: u64,
    warm_updates: u64,
}

impl StreamingTracker {
    /// Creates a tracker with an explicit cold-fallback localizer.
    pub fn new(config: TrackerConfig, cold: Box<dyn Localizer>) -> Self {
        let name = format!("tracking+{}", cold.name());
        StreamingTracker {
            config,
            cold,
            name,
            positions: PositionMap::unlocalized(0),
            latest: None,
            ticks: 0,
            cold_solves: 0,
            warm_updates: 0,
        }
    }

    /// The standard configuration: anchored sparse LSS
    /// ([`LssConfig::metro`] with anchors enabled) as the cold engine,
    /// producing absolute-frame solutions whenever two or more anchors
    /// are active.
    pub fn with_lss(config: TrackerConfig) -> Self {
        let lss = LssConfig {
            use_anchors: true,
            ..LssConfig::metro()
        };
        StreamingTracker::new(config, Box::new(LssSolver::new(lss)))
    }

    /// The tracker configuration.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// Observations consumed since construction or the last reset.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Ticks answered by the cold fallback.
    pub fn cold_solves(&self) -> u64 {
        self.cold_solves
    }

    /// Ticks answered by the warm incremental path.
    pub fn warm_updates(&self) -> u64 {
        self.warm_updates
    }

    /// Captures the tracker's complete replayable state: carried
    /// positions, the latest solution, and every stream counter. A
    /// tracker restored from this snapshot (same configuration, same
    /// cold localizer) continues the observation stream **bit-identically**
    /// to the original — the cold-seed derivation depends only on the
    /// counters carried here. The serving layer leans on this to hand a
    /// session's tracker between owners without breaking the replay
    /// contract.
    pub fn snapshot(&self) -> TrackerSnapshot {
        TrackerSnapshot {
            config: self.config.clone(),
            positions: self.positions.clone(),
            latest: self.latest.clone(),
            ticks: self.ticks,
            cold_solves: self.cold_solves,
            warm_updates: self.warm_updates,
        }
    }

    /// Replaces the tracker's state with a snapshot's.
    ///
    /// # Errors
    ///
    /// [`LocalizationError::InvalidConfig`] when the snapshot was taken
    /// under a different [`TrackerConfig`] — restoring it would silently
    /// change the stream's cold seeds and warm step budget, breaking the
    /// bit-replay contract the snapshot exists to preserve.
    pub fn restore(&mut self, snapshot: TrackerSnapshot) -> Result<()> {
        if snapshot.config != self.config {
            return Err(LocalizationError::InvalidConfig(
                "snapshot was taken under a different tracker configuration",
            ));
        }
        self.positions = snapshot.positions;
        self.latest = snapshot.latest;
        self.ticks = snapshot.ticks;
        self.cold_solves = snapshot.cold_solves;
        self.warm_updates = snapshot.warm_updates;
        Ok(())
    }

    /// Solves the active subnetwork from scratch with the cold
    /// localizer, replacing the carried estimates on success.
    fn cold_solve(&mut self, obs: &TickObservation, tick: u64) -> Result<Frame> {
        let n = obs.measurements.node_count();
        let (sub, mapping) = obs.measurements.subgraph(&obs.active);
        // Slot -> subgraph index, for anchor remapping.
        let mut sub_index = vec![usize::MAX; n];
        for (k, id) in mapping.iter().enumerate() {
            sub_index[id.index()] = k;
        }
        let mut builder = Problem::builder(sub).name("tracking-tick").anchors(
            obs.anchors
                .iter()
                .filter(|a| a.id.index() < n && sub_index[a.id.index()] != usize::MAX)
                .map(|a| Anchor::new(NodeId(sub_index[a.id.index()]), a.position))
                .collect(),
        );
        if let Some(truth) = &obs.truth {
            if truth.len() == n {
                builder = builder.truth(mapping.iter().map(|id| truth[id.index()]).collect());
            }
        }
        let problem = builder.build()?;
        let mut rng = rl_math::rng::seeded(cold_seed(self.config.seed, tick));
        let solution = self.cold.localize(&problem, &mut rng)?;
        let mut fresh = PositionMap::unlocalized(n);
        for (k, id) in mapping.iter().enumerate() {
            if let Some(p) = solution.positions().get(NodeId(k)) {
                if p.x.is_finite() && p.y.is_finite() {
                    fresh.set(*id, p);
                }
            }
        }
        self.positions = fresh;
        self.latest = None; // the carried solution no longer describes `positions`
        Ok(solution.frame())
    }

    /// One warm increment: re-pin anchors, seed joiners from positioned
    /// neighbors, refine. Returns the stats of the accepted update, or
    /// `None` when the tick has nothing refinable (disconnection — the
    /// caller falls back to a cold solve).
    fn warm_update(&mut self, obs: &TickObservation, active_mask: &[bool]) -> Option<WarmStats> {
        // Hard-pin every active anchor at its surveyed position: the
        // absolute frame is re-asserted every tick instead of drifting.
        let mut pins: Vec<NodeId> = Vec::new();
        for a in &obs.anchors {
            if a.id.index() < active_mask.len() && active_mask[a.id.index()] {
                self.positions.set(a.id, a.position);
                pins.push(a.id);
            }
        }
        // Seed unpositioned active nodes (joiners, or nodes a previous
        // tick could not place) from the centroid of their positioned
        // measured neighbors, in id order — earlier seeds serve later
        // ones. The sub-millimeter deterministic offset breaks exact
        // coincidence with a lone neighbor (a zero-length edge has no
        // usable gradient direction).
        for &id in &obs.active {
            if self.positions.is_localized(id) {
                continue;
            }
            let mut cx = 0.0;
            let mut cy = 0.0;
            let mut count = 0usize;
            for (other, _) in obs.measurements.neighbors_of(id) {
                if let Some(p) = self.positions.get(other) {
                    cx += p.x;
                    cy += p.y;
                    count += 1;
                }
            }
            if count > 0 {
                let c = count as f64;
                let angle = id.index() as f64 * 2.399_963_229_728_653;
                self.positions.set(
                    id,
                    Point2::new(cx / c + 1e-3 * angle.cos(), cy / c + 1e-3 * angle.sin()),
                );
            }
        }
        let outcome = refine_anchored(
            &obs.measurements,
            &mut self.positions,
            &pins,
            &self.config.warm,
        )?;
        // Defensive scrub: the damping loop only accepts descending
        // (finite) steps, but the no-non-finite contract is cheap to
        // enforce outright.
        for i in 0..self.positions.len() {
            if let Some(p) = self.positions.get(NodeId(i)) {
                if !p.x.is_finite() || !p.y.is_finite() {
                    self.positions.clear(NodeId(i));
                }
            }
        }
        Some(WarmStats {
            iterations: outcome.iterations,
            residual: Some(outcome.final_stress),
            converged: Some(outcome.converged),
            cg_iterations: outcome.cg_iterations,
            pins: pins.len(),
        })
    }
}

/// A point-in-time capture of a [`StreamingTracker`]'s replayable state
/// (see [`StreamingTracker::snapshot`]). Deliberately opaque: the only
/// thing to do with one is [`StreamingTracker::restore`] it into a
/// tracker of the same configuration; the accessors exist for
/// bookkeeping, not for editing the state they describe.
#[derive(Debug, Clone)]
pub struct TrackerSnapshot {
    config: TrackerConfig,
    positions: PositionMap,
    latest: Option<Solution>,
    ticks: u64,
    cold_solves: u64,
    warm_updates: u64,
}

impl TrackerSnapshot {
    /// The configuration the snapshot was taken under.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// Observations the snapshotted tracker had consumed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The snapshotted tracker's most recent solution, if any.
    pub fn latest(&self) -> Option<&Solution> {
        self.latest.as_ref()
    }
}

/// Stats of one accepted warm update, reported into [`SolveStats`].
struct WarmStats {
    /// Accepted Gauss-Newton steps of the incremental refinement.
    iterations: usize,
    /// Final robust stress.
    residual: Option<f64>,
    /// Whether the refinement converged.
    converged: Option<bool>,
    /// Cumulative inner CG iterations across the refinement's solves.
    cg_iterations: usize,
    /// Anchors hard-pinned this tick (>= 2 re-asserts the absolute frame).
    pins: usize,
}

impl Tracker for StreamingTracker {
    fn name(&self) -> &str {
        &self.name
    }

    fn observe(&mut self, obs: &TickObservation) -> Result<&Solution> {
        let start = Instant::now();
        let tick = self.ticks;
        self.ticks += 1;

        let n = obs.measurements.node_count();
        let mut active_mask = vec![false; n];
        for &id in &obs.active {
            if id.index() >= n {
                return Err(LocalizationError::InvalidConfig(
                    "active node id outside the measurement universe",
                ));
            }
            if active_mask[id.index()] {
                return Err(LocalizationError::InvalidConfig("duplicate active node id"));
            }
            active_mask[id.index()] = true;
        }
        if obs.active.is_empty() {
            return Err(LocalizationError::InsufficientMeasurements(
                "no active nodes this tick",
            ));
        }

        // Carried-state upkeep: a changed universe invalidates every
        // estimate; otherwise inactive slots (including this tick's
        // `left` list) lose theirs.
        let mut have_previous = self.latest.is_some();
        if self.positions.len() != n {
            self.positions = PositionMap::unlocalized(n);
            have_previous = false;
        }
        for (i, &active) in active_mask.iter().enumerate() {
            if !active {
                self.positions.clear(NodeId(i));
            }
        }

        let seeded = obs
            .active
            .iter()
            .filter(|id| self.positions.is_localized(**id))
            .count();
        let churn = 1.0 - seeded as f64 / obs.active.len() as f64;
        let warm_viable = have_previous && churn <= self.config.churn_restart_fraction;
        let previous_frame = self.latest.as_ref().map(|s| s.frame());

        let mut warm_stats = None;
        if warm_viable {
            warm_stats = self.warm_update(obs, &active_mask);
        }
        let (frame, iterations, residual, converged, cg_iterations) = match warm_stats {
            Some(warm) => {
                self.warm_updates += 1;
                let frame = if warm.pins >= 2 {
                    Frame::Absolute
                } else {
                    previous_frame.unwrap_or(Frame::Relative)
                };
                (
                    frame,
                    warm.iterations,
                    warm.residual,
                    warm.converged,
                    Some(warm.cg_iterations),
                )
            }
            None => {
                let frame = self.cold_solve(obs, tick)?;
                self.cold_solves += 1;
                (frame, 0usize, None, None, None)
            }
        };

        let solution = Solution::new(
            self.positions.clone(),
            frame,
            SolveStats {
                iterations,
                residual,
                converged,
                cg_iterations,
                wall_time: start.elapsed(),
            },
        );
        self.latest = Some(solution);
        Ok(self.latest.as_ref().expect("just stored"))
    }

    fn reset(&mut self) {
        self.positions = PositionMap::unlocalized(0);
        self.latest = None;
        self.ticks = 0;
        self.cold_solves = 0;
        self.warm_updates = 0;
    }

    fn latest(&self) -> Option<&Solution> {
        self.latest.as_ref()
    }
}

/// A worker-count- and wall-clock-independent digest of one solution:
/// every position bit, the frame, the iteration counter, and the
/// residual (never `SolveStats::wall_time`). Two tracker replays agree
/// tick for tick exactly when these digests agree.
pub fn solution_fingerprint(solution: &Solution) -> u64 {
    let mut h = Fnv1a::new();
    let map = solution.positions();
    h.write_u64(map.len() as u64);
    for (_, p) in map.iter() {
        match p {
            Some(p) => {
                h.write_u8(1);
                h.write_f64(p.x);
                h.write_f64(p.y);
            }
            None => h.write_u8(0),
        }
    }
    h.write_str(match solution.frame() {
        Frame::Absolute => "absolute",
        Frame::Relative => "relative",
    });
    h.write_u64(solution.stats().iterations as u64);
    h.write_opt_f64(solution.stats().residual);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A noise-free 4x4 grid universe with 3 surveyed corners.
    fn static_obs(tick: u64) -> (Vec<Point2>, TickObservation) {
        let truth: Vec<Point2> = (0..16)
            .map(|i| Point2::new((i % 4) as f64 * 9.0, (i / 4) as f64 * 9.0))
            .collect();
        let anchors = vec![
            Anchor::new(NodeId(0), truth[0]),
            Anchor::new(NodeId(3), truth[3]),
            Anchor::new(NodeId(12), truth[12]),
        ];
        let obs = TickObservation {
            tick,
            measurements: MeasurementSet::oracle(&truth, 15.0),
            anchors,
            active: (0..16).map(NodeId).collect(),
            joined: if tick == 0 {
                (0..16).map(NodeId).collect()
            } else {
                vec![]
            },
            left: vec![],
            truth: Some(truth.clone()),
        };
        (truth, obs)
    }

    #[test]
    fn first_tick_is_cold_then_warm() {
        let (_, obs) = static_obs(0);
        let mut tracker = StreamingTracker::with_lss(TrackerConfig::new(7));
        tracker.observe(&obs).unwrap();
        assert_eq!((tracker.cold_solves(), tracker.warm_updates()), (1, 0));
        tracker.observe(&static_obs(1).1).unwrap();
        assert_eq!((tracker.cold_solves(), tracker.warm_updates()), (1, 1));
        assert_eq!(tracker.ticks(), 2);
        assert!(tracker.name().starts_with("tracking+"));
    }

    #[test]
    fn warm_updates_track_the_truth_tightly() {
        let (truth, obs) = static_obs(0);
        let mut tracker = StreamingTracker::with_lss(TrackerConfig::new(7));
        tracker.observe(&obs).unwrap();
        for t in 1..6 {
            tracker.observe(&static_obs(t).1).unwrap();
        }
        let sol = tracker.latest().unwrap();
        assert_eq!(sol.frame(), Frame::Absolute);
        let eval = crate::eval::evaluate_absolute(sol.positions(), &truth).unwrap();
        assert!(eval.mean_error < 1e-3, "mean error {}", eval.mean_error);
    }

    #[test]
    fn heavy_churn_triggers_a_cold_restart() {
        let (_, obs) = static_obs(0);
        let mut tracker = StreamingTracker::with_lss(TrackerConfig::new(7));
        tracker.observe(&obs).unwrap();
        // Shrink to 8 active nodes, then jump back to 16: half the
        // active set has no carried estimate, beyond the 25% threshold.
        let (truth, mut small) = static_obs(1);
        small.active = (0..8).map(NodeId).collect();
        small.left = (8..16).map(NodeId).collect();
        small.measurements = {
            let mut set = MeasurementSet::new(16);
            let full = MeasurementSet::oracle(&truth, 15.0);
            for (a, b, d, w) in full.iter_weighted() {
                if a.index() < 8 && b.index() < 8 {
                    set.insert_weighted(a, b, d, w);
                }
            }
            set
        };
        tracker.observe(&small).unwrap();
        let cold_before = tracker.cold_solves();
        let (_, full) = static_obs(2);
        tracker.observe(&full).unwrap();
        assert_eq!(tracker.cold_solves(), cold_before + 1, "mass join is cold");
    }

    #[test]
    fn reset_replays_bit_identically() {
        let mut tracker = StreamingTracker::with_lss(TrackerConfig::new(3));
        let first: Vec<u64> = (0..4)
            .map(|t| solution_fingerprint(tracker.observe(&static_obs(t).1).unwrap()))
            .collect();
        tracker.reset();
        assert!(tracker.latest().is_none());
        let second: Vec<u64> = (0..4)
            .map(|t| solution_fingerprint(tracker.observe(&static_obs(t).1).unwrap()))
            .collect();
        assert_eq!(first, second);
    }

    #[test]
    fn snapshot_handoff_replays_bit_identically() {
        // Reference stream, solo tracker.
        let mut reference = StreamingTracker::with_lss(TrackerConfig::new(5));
        let expected: Vec<u64> = (0..6)
            .map(|t| solution_fingerprint(reference.observe(&static_obs(t).1).unwrap()))
            .collect();
        // Same stream with a mid-stream handoff: snapshot after tick 2,
        // restore into a *fresh* tracker, continue there.
        let mut first_owner = StreamingTracker::with_lss(TrackerConfig::new(5));
        let mut fps: Vec<u64> = (0..3)
            .map(|t| solution_fingerprint(first_owner.observe(&static_obs(t).1).unwrap()))
            .collect();
        let snapshot = first_owner.snapshot();
        assert_eq!(snapshot.ticks(), 3);
        assert!(snapshot.latest().is_some());
        drop(first_owner);
        let mut second_owner = StreamingTracker::with_lss(TrackerConfig::new(5));
        second_owner.restore(snapshot).unwrap();
        for t in 3..6 {
            fps.push(solution_fingerprint(
                second_owner.observe(&static_obs(t).1).unwrap(),
            ));
        }
        assert_eq!(fps, expected);
        // Counters carried over: one cold first tick, warm after.
        assert_eq!(second_owner.cold_solves(), 1);
        assert_eq!(second_owner.warm_updates(), 5);
    }

    #[test]
    fn snapshots_refuse_mismatched_configurations() {
        let mut tracker = StreamingTracker::with_lss(TrackerConfig::new(1));
        tracker.observe(&static_obs(0).1).unwrap();
        let snapshot = tracker.snapshot();
        let mut other = StreamingTracker::with_lss(TrackerConfig::new(2));
        assert!(matches!(
            other.restore(snapshot),
            Err(LocalizationError::InvalidConfig(_))
        ));
    }

    #[test]
    fn malformed_observations_are_typed_errors() {
        let (_, mut obs) = static_obs(0);
        let mut tracker = StreamingTracker::with_lss(TrackerConfig::new(1));
        obs.active.push(NodeId(99));
        assert!(matches!(
            tracker.observe(&obs),
            Err(LocalizationError::InvalidConfig(_))
        ));
        let (_, mut dup) = static_obs(1);
        dup.active.push(NodeId(0));
        assert!(matches!(
            tracker.observe(&dup),
            Err(LocalizationError::InvalidConfig(_))
        ));
        let (_, mut empty) = static_obs(2);
        empty.active.clear();
        assert!(matches!(
            tracker.observe(&empty),
            Err(LocalizationError::InsufficientMeasurements(_))
        ));
        // The tracker survives all three and solves the next good tick.
        assert!(tracker.observe(&static_obs(3).1).is_ok());
    }

    #[test]
    fn cold_seed_is_a_pure_injective_looking_function() {
        assert_eq!(cold_seed(7, 0), cold_seed(7, 0));
        assert_ne!(cold_seed(7, 0), cold_seed(7, 1));
        assert_ne!(cold_seed(7, 0), cold_seed(8, 0));
    }

    #[test]
    fn fingerprints_separate_positions_frame_and_stats() {
        let base = Solution::new(
            PositionMap::complete(vec![Point2::new(1.0, 2.0)]),
            Frame::Absolute,
            SolveStats::default(),
        );
        let moved = Solution::new(
            PositionMap::complete(vec![Point2::new(1.0, 2.5)]),
            Frame::Absolute,
            SolveStats::default(),
        );
        let relative = Solution::new(
            PositionMap::complete(vec![Point2::new(1.0, 2.0)]),
            Frame::Relative,
            SolveStats::default(),
        );
        assert_eq!(solution_fingerprint(&base), solution_fingerprint(&base));
        assert_ne!(solution_fingerprint(&base), solution_fingerprint(&moved));
        assert_ne!(solution_fingerprint(&base), solution_fingerprint(&relative));
    }
}
