//! Shared localization types.

use rl_geom::Point2;
pub use rl_net::NodeId;
use serde::{Deserialize, Serialize};

/// An anchor: a node that knows its own position (by survey, careful
/// deployment, or GPS).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Anchor {
    /// The anchor's node id.
    pub id: NodeId,
    /// Its known position.
    pub position: Point2,
}

impl Anchor {
    /// Creates an anchor.
    pub fn new(id: NodeId, position: Point2) -> Self {
        Anchor { id, position }
    }

    /// Builds anchor descriptors from ids and a ground-truth position
    /// table.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn from_truth(ids: &[NodeId], truth: &[Point2]) -> Vec<Anchor> {
        ids.iter()
            .map(|&id| Anchor::new(id, truth[id.index()]))
            .collect()
    }
}

/// Estimated positions per node; `None` marks nodes the algorithm could
/// not localize (multilateration routinely leaves nodes unlocalized —
/// Figure 14 localized only 7 of 33).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PositionMap {
    positions: Vec<Option<Point2>>,
}

impl PositionMap {
    /// A map of `n` unlocalized nodes.
    pub fn unlocalized(n: usize) -> Self {
        PositionMap {
            positions: vec![None; n],
        }
    }

    /// A map in which every node has a position.
    pub fn complete(positions: Vec<Point2>) -> Self {
        PositionMap {
            positions: positions.into_iter().map(Some).collect(),
        }
    }

    /// Number of nodes (localized or not).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the map covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The estimated position of `node`, if localized.
    pub fn get(&self, node: NodeId) -> Option<Point2> {
        self.positions.get(node.index()).copied().flatten()
    }

    /// Sets a node's position.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set(&mut self, node: NodeId, position: Point2) {
        self.positions[node.index()] = Some(position);
    }

    /// Marks a node as unlocalized.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn clear(&mut self, node: NodeId) {
        self.positions[node.index()] = None;
    }

    /// Whether `node` is localized.
    pub fn is_localized(&self, node: NodeId) -> bool {
        self.get(node).is_some()
    }

    /// Number of localized nodes.
    pub fn localized_count(&self) -> usize {
        self.positions.iter().filter(|p| p.is_some()).count()
    }

    /// Ids of localized nodes, ascending.
    pub fn localized_nodes(&self) -> Vec<NodeId> {
        self.positions
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|_| NodeId(i)))
            .collect()
    }

    /// Iterates over `(id, Option<position>)` for every node.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Option<Point2>)> + '_ {
        self.positions
            .iter()
            .enumerate()
            .map(|(i, p)| (NodeId(i), *p))
    }

    /// The raw option slice.
    pub fn as_slice(&self) -> &[Option<Point2>] {
        &self.positions
    }
}

impl From<Vec<Option<Point2>>> for PositionMap {
    fn from(positions: Vec<Option<Point2>>) -> Self {
        PositionMap { positions }
    }
}

impl FromIterator<Option<Point2>> for PositionMap {
    fn from_iter<T: IntoIterator<Item = Option<Point2>>>(iter: T) -> Self {
        PositionMap {
            positions: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlocalized_map() {
        let m = PositionMap::unlocalized(3);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.localized_count(), 0);
        assert_eq!(m.get(NodeId(1)), None);
        assert!(!m.is_localized(NodeId(1)));
        assert_eq!(m.get(NodeId(99)), None, "out of range is just None");
    }

    #[test]
    fn set_get_clear() {
        let mut m = PositionMap::unlocalized(2);
        m.set(NodeId(1), Point2::new(3.0, 4.0));
        assert_eq!(m.get(NodeId(1)), Some(Point2::new(3.0, 4.0)));
        assert_eq!(m.localized_count(), 1);
        assert_eq!(m.localized_nodes(), vec![NodeId(1)]);
        m.clear(NodeId(1));
        assert_eq!(m.localized_count(), 0);
    }

    #[test]
    fn complete_map() {
        let m = PositionMap::complete(vec![Point2::ORIGIN, Point2::new(1.0, 1.0)]);
        assert_eq!(m.localized_count(), 2);
        let collected: Vec<_> = m.iter().collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[1].1, Some(Point2::new(1.0, 1.0)));
    }

    #[test]
    fn conversions() {
        let m: PositionMap = vec![None, Some(Point2::ORIGIN)].into();
        assert_eq!(m.localized_count(), 1);
        let m2: PositionMap = m.as_slice().iter().copied().collect();
        assert_eq!(m, m2);
    }

    #[test]
    fn anchors_from_truth() {
        let truth = vec![Point2::new(0.0, 0.0), Point2::new(5.0, 5.0)];
        let anchors = Anchor::from_truth(&[NodeId(1)], &truth);
        assert_eq!(anchors.len(), 1);
        assert_eq!(anchors[0].position, Point2::new(5.0, 5.0));
    }

    #[test]
    fn serde_roundtrip() {
        let mut m = PositionMap::unlocalized(2);
        m.set(NodeId(0), Point2::new(1.5, -2.0));
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(serde_json::from_str::<PositionMap>(&json).unwrap(), m);
    }
}
