//! Anchor selection strategies.
//!
//! Hybrid localization schemes designate a subset of nodes as *anchors*
//! that know their own position. The paper randomly chose 13 anchors of 46
//! grid nodes and 18 of 59 town nodes; the parking-lot experiment used the
//! 5 loudspeaker-equipped nodes. LSS needs no anchors at all — which is
//! exactly the comparison the experiments draw.

use rand::Rng;
use rl_net::NodeId;
use serde::{Deserialize, Serialize};

use crate::Deployment;

/// How to choose anchors from a deployment.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum AnchorSelection {
    /// No anchors (anchor-free LSS operation).
    #[default]
    None,
    /// `count` anchors drawn uniformly at random.
    Random {
        /// Number of anchors.
        count: usize,
    },
    /// Every `k`-th node (deterministic, evenly spread through the id
    /// space).
    EveryKth {
        /// Stride.
        k: usize,
    },
    /// An explicit anchor list.
    Explicit(Vec<NodeId>),
}

impl AnchorSelection {
    /// Resolves the strategy into a sorted, deduplicated anchor list.
    ///
    /// # Panics
    ///
    /// Panics if an explicit anchor id is out of range, a random count
    /// exceeds the node count, or `k` is zero.
    pub fn select<R: Rng + ?Sized>(&self, deployment: &Deployment, rng: &mut R) -> Vec<NodeId> {
        let n = deployment.len();
        let mut out: Vec<NodeId> = match self {
            AnchorSelection::None => Vec::new(),
            AnchorSelection::Random { count } => {
                assert!(*count <= n, "cannot pick {count} anchors from {n} nodes");
                rl_math::rng::sample_indices(rng, n, *count)
                    .into_iter()
                    .map(NodeId)
                    .collect()
            }
            AnchorSelection::EveryKth { k } => {
                assert!(*k > 0, "stride must be positive");
                (0..n).step_by(*k).map(NodeId).collect()
            }
            AnchorSelection::Explicit(list) => {
                for id in list {
                    assert!(id.index() < n, "anchor {id} out of range (n = {n})");
                }
                list.clone()
            }
        };
        out.sort();
        out.dedup();
        out
    }
}

/// Splits node ids into `(anchors, non_anchors)` given an anchor list.
pub fn split_nodes(n: usize, anchors: &[NodeId]) -> (Vec<NodeId>, Vec<NodeId>) {
    let anchor_set: std::collections::BTreeSet<NodeId> = anchors.iter().copied().collect();
    let mut non = Vec::with_capacity(n - anchor_set.len().min(n));
    for i in 0..n {
        if !anchor_set.contains(&NodeId(i)) {
            non.push(NodeId(i));
        }
    }
    (anchor_set.into_iter().collect(), non)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_geom::Point2;
    use rl_math::rng::seeded;

    fn deployment(n: usize) -> Deployment {
        Deployment::new("test", (0..n).map(|i| Point2::new(i as f64, 0.0)).collect())
    }

    #[test]
    fn none_selects_nothing() {
        let mut rng = seeded(1);
        assert!(AnchorSelection::None
            .select(&deployment(5), &mut rng)
            .is_empty());
        assert_eq!(AnchorSelection::default(), AnchorSelection::None);
    }

    #[test]
    fn random_selects_unique_in_range() {
        let mut rng = seeded(2);
        let anchors = AnchorSelection::Random { count: 13 }.select(&deployment(46), &mut rng);
        assert_eq!(anchors.len(), 13);
        let set: std::collections::BTreeSet<_> = anchors.iter().collect();
        assert_eq!(set.len(), 13);
        assert!(anchors.iter().all(|a| a.index() < 46));
        // Sorted.
        assert!(anchors.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn every_kth_strides() {
        let mut rng = seeded(3);
        let anchors = AnchorSelection::EveryKth { k: 3 }.select(&deployment(7), &mut rng);
        assert_eq!(anchors, vec![NodeId(0), NodeId(3), NodeId(6)]);
    }

    #[test]
    fn explicit_passes_through_sorted() {
        let mut rng = seeded(4);
        let anchors = AnchorSelection::Explicit(vec![NodeId(4), NodeId(1), NodeId(4)])
            .select(&deployment(5), &mut rng);
        assert_eq!(anchors, vec![NodeId(1), NodeId(4)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explicit_out_of_range_panics() {
        let mut rng = seeded(5);
        let _ = AnchorSelection::Explicit(vec![NodeId(9)]).select(&deployment(5), &mut rng);
    }

    #[test]
    #[should_panic(expected = "cannot pick")]
    fn random_too_many_panics() {
        let mut rng = seeded(6);
        let _ = AnchorSelection::Random { count: 10 }.select(&deployment(5), &mut rng);
    }

    #[test]
    fn split_partitions() {
        let (anchors, non) = split_nodes(5, &[NodeId(1), NodeId(3)]);
        assert_eq!(anchors, vec![NodeId(1), NodeId(3)]);
        assert_eq!(non, vec![NodeId(0), NodeId(2), NodeId(4)]);
        assert_eq!(anchors.len() + non.len(), 5);
    }
}
