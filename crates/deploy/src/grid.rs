//! Offset-grid deployments (Figure 5).
//!
//! The paper's grass-field experiments place sensors "in a 7×7 offset grid
//! pattern with 9 m and 10 m grid spacing between the nearest neighbors" in
//! a ~64×64 m area, with 9.14 m (30 ft) minimum spacing used later as the
//! LSS soft constraint. The [`OffsetGrid`] generator reproduces that
//! pattern: columns every `column_spacing`, nodes every `row_spacing`
//! within a column, odd columns shifted up by half a row — making
//! within-column neighbors 9.14 m apart and cross-column neighbors
//! `sqrt(9.144² + 4.572²) ≈ 10.2 m` apart.

use rl_geom::Point2;
use serde::{Deserialize, Serialize};

use crate::Deployment;

/// Offset (quincunx) grid generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffsetGrid {
    /// Number of columns.
    pub columns: usize,
    /// Nodes per column.
    pub rows: usize,
    /// Horizontal distance between adjacent columns, meters.
    pub column_spacing: f64,
    /// Vertical distance between nodes within a column, meters.
    pub row_spacing: f64,
    /// Vertical shift of odd columns, meters (half the row spacing in the
    /// paper's layout).
    pub odd_column_offset: f64,
    /// Indices (row-major: `column * rows + row`) to drop from the full
    /// grid — deployed networks rarely have every position filled.
    pub dropped: Vec<usize>,
}

impl OffsetGrid {
    /// A full regular offset grid with the paper's half-row offset.
    pub fn new(columns: usize, rows: usize, column_spacing: f64, row_spacing: f64) -> Self {
        OffsetGrid {
            columns,
            rows,
            column_spacing,
            row_spacing,
            odd_column_offset: row_spacing / 2.0,
            dropped: Vec::new(),
        }
    }

    /// The Figure 5 deployment: 7×7 offset grid at 30 ft (9.144 m) spacing,
    /// two unfilled positions for the paper's 47 motes.
    pub fn paper_figure5() -> Self {
        OffsetGrid {
            // Drop two far-corner positions: 49 - 2 = 47 motes.
            dropped: vec![6, 48],
            ..OffsetGrid::new(7, 7, 9.144, 9.144)
        }
    }

    /// Marks grid positions as unfilled (builder style).
    pub fn with_dropped(mut self, dropped: Vec<usize>) -> Self {
        self.dropped = dropped;
        self
    }

    /// Generates the deployment.
    pub fn generate(&self) -> Deployment {
        let mut positions = Vec::with_capacity(self.columns * self.rows);
        for c in 0..self.columns {
            for r in 0..self.rows {
                let idx = c * self.rows + r;
                if self.dropped.contains(&idx) {
                    continue;
                }
                let x = c as f64 * self.column_spacing;
                let y = r as f64 * self.row_spacing
                    + if c % 2 == 1 {
                        self.odd_column_offset
                    } else {
                        0.0
                    };
                positions.push(Point2::new(x, y));
            }
        }
        Deployment::new(
            format!(
                "offset-grid-{}x{}-{}",
                self.columns,
                self.rows,
                positions.len()
            ),
            positions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_count() {
        let d = OffsetGrid::new(7, 7, 9.144, 9.144).generate();
        assert_eq!(d.len(), 49);
    }

    #[test]
    fn paper_grid_matches_figure5() {
        let d = OffsetGrid::paper_figure5().generate();
        assert_eq!(d.len(), 47);
        // Area ≈ 55 x 59 m, inside the paper's 64x64 m field.
        let (lo, hi) = d.bounding_box().unwrap();
        assert_eq!(lo, Point2::new(0.0, 0.0));
        assert!(hi.x < 64.0 && hi.y < 64.0, "bbox {hi}");
        // Nearest-neighbor spacings: 9.144 m within columns, ~10.2 m across.
        assert!((d.min_pair_distance().unwrap() - 9.144).abs() < 1e-9);
    }

    #[test]
    fn cross_column_spacing_is_about_ten_meters() {
        let d = OffsetGrid::new(2, 2, 9.144, 9.144).generate();
        // Node (0,0) and the offset node (9.144, 4.572).
        let cross = d.positions[0].distance(d.positions[2]);
        assert!(
            (cross - (9.144f64 * 9.144 + 4.572 * 4.572).sqrt()).abs() < 1e-9,
            "cross spacing {cross}"
        );
        assert!((10.0..10.5).contains(&cross));
    }

    #[test]
    fn odd_columns_are_offset() {
        let d = OffsetGrid::new(3, 2, 10.0, 8.0).generate();
        // Column 0 at y = 0, 8; column 1 at y = 4, 12; column 2 at y = 0, 8.
        assert_eq!(d.positions[0].y, 0.0);
        assert_eq!(d.positions[2].y, 4.0);
        assert_eq!(d.positions[3].y, 12.0);
        assert_eq!(d.positions[4].y, 0.0);
    }

    #[test]
    fn dropped_positions_are_skipped() {
        let d = OffsetGrid::new(2, 2, 5.0, 5.0)
            .with_dropped(vec![0, 3])
            .generate();
        assert_eq!(d.len(), 2);
        assert_eq!(d.positions[0], Point2::new(0.0, 5.0));
    }

    #[test]
    fn serde_roundtrip() {
        let g = OffsetGrid::paper_figure5();
        let json = serde_json::to_string(&g).unwrap();
        assert_eq!(serde_json::from_str::<OffsetGrid>(&json).unwrap(), g);
    }
}
