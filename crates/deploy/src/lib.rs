//! Deployment and workload generators.
//!
//! Every evaluation in the paper runs on a concrete deployment geometry:
//! the 7×7 offset grid of Figure 5 (46–47 motes on a grassy field), a
//! 15-node parking lot with 5 anchors, and "59 plausible node positions in
//! a map of a few city blocks in a small town". This crate generates those
//! geometries deterministically, selects anchors, and produces the paper's
//! synthetic distance sets (true distances under 22 m perturbed by
//! `N(0, 0.33 m)`):
//!
//! * [`grid`] — offset grids ([`grid::OffsetGrid`], including the exact
//!   Figure 5 layout),
//! * [`random`] — uniform random deployments with minimum separation,
//! * [`town`] — the street-aligned town map generator,
//! * [`metro`] — metro-scale district grids with obstruction belts
//!   (thousands of nodes, ~10× and beyond the paper's town),
//! * [`anchors`] — anchor selection strategies,
//! * [`synth`] — synthetic measurement generation and augmentation,
//! * [`scenario`] — the named paper scenarios (plus metro-scale
//!   extensions) used by the benchmark harness,
//! * [`mobility`] — time-stepped mobility scenarios (motion + churn +
//!   per-tick re-measured ranges) feeding the `rl-core` tracking layer,
//! * [`presets`] — the fixed-seed serveable preset registry the
//!   `rl-serve` server resolves client deployment names against.
//!
//! # Example
//!
//! ```
//! use rl_deploy::grid::OffsetGrid;
//!
//! let field = OffsetGrid::paper_figure5().generate();
//! assert_eq!(field.len(), 47);
//! // Nearest neighbors sit at the paper's ~9 m / ~10 m spacings.
//! let d = field.min_pair_distance().unwrap();
//! assert!((d - 9.144).abs() < 1e-9);
//! ```
//!
//! A [`Scenario`] bundles a deployment with anchors and a synthetic
//! error model, and instantiates directly into a solver-ready
//! [`Problem`](rl_core::problem::Problem):
//!
//! ```
//! use rl_deploy::Scenario;
//!
//! // The paper's 59-node town, and a metro ~10x beyond it.
//! let town = Scenario::town(7).instantiate(1);
//! assert_eq!(town.node_count(), 59);
//! let metro = Scenario::metro_sized(600, 0.1, 7);
//! assert_eq!(metro.deployment.len(), 600);
//! assert_eq!(metro.anchors.len(), 60);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anchors;
pub mod grid;
pub mod metro;
pub mod mobility;
pub mod presets;
pub mod random;
pub mod scenario;
pub mod synth;
pub mod town;

pub use anchors::AnchorSelection;
pub use metro::MetroMap;
pub use mobility::{ChurnModel, MobilityScenario, MobilityTrace, MotionModel};
pub use scenario::Scenario;
pub use synth::SyntheticRanging;

use rl_geom::Point2;
use serde::{Deserialize, Serialize};

/// A named set of node positions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// Human-readable name, e.g. `"grass-grid-47"`.
    pub name: String,
    /// Ground-truth node positions; index = node id.
    pub positions: Vec<Point2>,
}

impl Deployment {
    /// Creates a deployment.
    pub fn new(name: impl Into<String>, positions: Vec<Point2>) -> Self {
        Deployment {
            name: name.into(),
            positions,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the deployment has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Axis-aligned bounding box `(min, max)`, or `None` when empty.
    pub fn bounding_box(&self) -> Option<(Point2, Point2)> {
        let first = *self.positions.first()?;
        let mut lo = first;
        let mut hi = first;
        for p in &self.positions {
            lo.x = lo.x.min(p.x);
            lo.y = lo.y.min(p.y);
            hi.x = hi.x.max(p.x);
            hi.y = hi.y.max(p.y);
        }
        Some((lo, hi))
    }

    /// Smallest pairwise distance, or `None` with fewer than two nodes.
    pub fn min_pair_distance(&self) -> Option<f64> {
        let n = self.positions.len();
        if n < 2 {
            return None;
        }
        let mut best = f64::INFINITY;
        for i in 0..n {
            for j in (i + 1)..n {
                best = best.min(self.positions[i].distance(self.positions[j]));
            }
        }
        Some(best)
    }

    /// Number of unordered pairs with distance at most `range_m` (the
    /// paper reports e.g. "945 pairs of nodes whose Euclidean distances
    /// were less than 22 m").
    pub fn pairs_within(&self, range_m: f64) -> usize {
        let n = self.positions.len();
        let mut count = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if self.positions[i].distance(self.positions[j]) <= range_m {
                    count += 1;
                }
            }
        }
        count
    }

    /// Removes the nodes at the given indices, renumbering the rest. Used
    /// to model failed nodes ("the node at (0, 4.5) failed to report its
    /// existence").
    pub fn without_nodes(&self, indices: &[usize]) -> Deployment {
        let drop: std::collections::BTreeSet<usize> = indices.iter().copied().collect();
        Deployment {
            name: format!("{}-minus{}", self.name, indices.len()),
            positions: self
                .positions
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop.contains(i))
                .map(|(_, &p)| p)
                .collect(),
        }
    }
}

/// Error type for deployment generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeployError {
    /// A configuration parameter was out of its documented domain.
    InvalidConfig(&'static str),
    /// Random placement could not satisfy the separation constraint.
    PlacementFailed {
        /// Nodes successfully placed before giving up.
        placed: usize,
        /// Nodes requested.
        requested: usize,
    },
}

impl core::fmt::Display for DeployError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeployError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            DeployError::PlacementFailed { placed, requested } => {
                write!(f, "placed only {placed} of {requested} nodes")
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, DeployError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_basics() {
        let d = Deployment::new(
            "test",
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(3.0, 4.0),
                Point2::new(0.0, 10.0),
            ],
        );
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        let (lo, hi) = d.bounding_box().unwrap();
        assert_eq!(lo, Point2::new(0.0, 0.0));
        assert_eq!(hi, Point2::new(3.0, 10.0));
        assert_eq!(d.min_pair_distance(), Some(5.0));
        assert_eq!(d.pairs_within(5.0), 1);
        assert_eq!(d.pairs_within(7.0), 2); // adds the sqrt(45) ≈ 6.7 m pair
        assert_eq!(d.pairs_within(10.0), 3);
    }

    #[test]
    fn empty_deployment() {
        let d = Deployment::new("empty", vec![]);
        assert!(d.is_empty());
        assert_eq!(d.bounding_box(), None);
        assert_eq!(d.min_pair_distance(), None);
        assert_eq!(d.pairs_within(10.0), 0);
    }

    #[test]
    fn without_nodes_renumbers() {
        let d = Deployment::new(
            "t",
            vec![
                Point2::new(0.0, 0.0),
                Point2::new(1.0, 0.0),
                Point2::new(2.0, 0.0),
            ],
        );
        let smaller = d.without_nodes(&[1]);
        assert_eq!(smaller.len(), 2);
        assert_eq!(smaller.positions[1], Point2::new(2.0, 0.0));
        assert!(smaller.name.contains("minus1"));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            DeployError::PlacementFailed {
                placed: 3,
                requested: 10
            }
            .to_string(),
            "placed only 3 of 10 nodes"
        );
    }
}
