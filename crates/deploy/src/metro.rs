//! Metro-scale deployments: districts of city blocks separated by
//! obstruction belts.
//!
//! The paper's largest simulation is a 59-node town map. [`MetroMap`]
//! grows that geometry by an order of magnitude and more: a grid of
//! *districts*, each a street-aligned block pattern (reusing
//! [`TownMap`]), separated by *obstruction belts* — rivers, highways,
//! rail corridors — that contain no nodes at all. The result preserves
//! what stresses the algorithms at scale: anisotropic street-aligned
//! geometry, sharp density discontinuities at the belts, and thin
//! cross-belt connectivity bridging otherwise dense clusters.
//!
//! Capacity scales with the district grid — the default metro holds
//! thousands of candidate positions — so deployments ~10× (and beyond)
//! the paper's town are one [`MetroMap::generate`] call away. The
//! `metro_sweep` experiment in `rl-bench` drives these through the
//! parallel campaign runner.
//!
//! # Connectivity
//!
//! Districts stay mutually reachable under the paper's 22 m ranging
//! cutoff as long as `belt_m` plus jitter slack stays below the cutoff:
//! facing boundary streets across a belt are `belt_m` apart, and the
//! worst-case cross-belt link is roughly
//! `sqrt(belt_m² + (2·street_spacing)²) + 2·jitter` for deployments that
//! keep at least half the candidate positions. The defaults (12 m belts,
//! 4.2 m street spacing, 1.5 m jitter) leave comfortable margin; the
//! root `tests/properties.rs` suite asserts connectedness property-based.

use rand::Rng;
use rl_geom::{Point2, Vec2};
use serde::{Deserialize, Serialize};

use crate::town::TownMap;
use crate::Deployment;

/// Metro-scale deployment generator: a `districts_x × districts_y` grid
/// of street-aligned districts separated by empty obstruction belts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetroMap {
    /// Districts horizontally.
    pub districts_x: usize,
    /// Districts vertically.
    pub districts_y: usize,
    /// The street pattern of one district. Its `origin` is the metro's
    /// origin (district copies are translated from it), and its
    /// `jitter_m` applies to every node of the metro.
    pub district: TownMap,
    /// Width of the obstruction belt (river / highway / rail corridor)
    /// between adjacent districts, meters. Belts contain no candidate
    /// positions.
    pub belt_m: f64,
}

impl MetroMap {
    /// The default metro: a 4×4 district grid (each district 4×3 blocks
    /// of 16 m × 14 m) with 12 m obstruction belts — ≈1700 candidate
    /// positions spanning roughly 290 m × 200 m, an order of magnitude
    /// beyond the paper's town in both node capacity and extent.
    pub fn default_metro() -> Self {
        MetroMap {
            districts_x: 4,
            districts_y: 4,
            district: TownMap {
                blocks_x: 4,
                blocks_y: 3,
                block_w: 16.0,
                block_h: 14.0,
                street_spacing: 4.2,
                jitter_m: 1.5,
                origin: Point2::new(0.0, 0.0),
            },
            belt_m: 12.0,
        }
    }

    /// Resizes the district grid (builder style).
    pub fn with_districts(mut self, districts_x: usize, districts_y: usize) -> Self {
        self.districts_x = districts_x;
        self.districts_y = districts_y;
        self
    }

    /// Sets the obstruction-belt width (builder style).
    pub fn with_belt(mut self, belt_m: f64) -> Self {
        self.belt_m = belt_m;
        self
    }

    /// One district's street extent `(width, height)` in meters.
    pub fn district_extent(&self) -> (f64, f64) {
        (
            self.district.block_w * self.district.blocks_x as f64,
            self.district.block_h * self.district.blocks_y as f64,
        )
    }

    /// All candidate positions, district-major (row by row of districts,
    /// streets in [`TownMap::candidate_positions`] order within each).
    /// Every district is an exact translated copy of the base district's
    /// candidates, so district counts never drift apart from
    /// floating-point boundary effects.
    pub fn candidate_positions(&self) -> Vec<Point2> {
        let base = self.district.candidate_positions();
        let (w, h) = self.district_extent();
        let mut out = Vec::with_capacity(base.len() * self.districts_x * self.districts_y);
        for dy in 0..self.districts_y {
            for dx in 0..self.districts_x {
                let offset =
                    Vec2::new(dx as f64 * (w + self.belt_m), dy as f64 * (h + self.belt_m));
                out.extend(base.iter().map(|&p| p + offset));
            }
        }
        out
    }

    /// Number of candidate positions — the maximum deployable node count.
    /// Districts are identical translated copies, so this counts one
    /// district's candidates instead of materializing the full metro.
    pub fn capacity(&self) -> usize {
        self.districts_x * self.districts_y * self.district.candidate_positions().len()
    }

    /// Generates a deployment of exactly `count` jittered street
    /// positions, evenly subsampled from the candidates so every district
    /// keeps proportional coverage.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds [`MetroMap::capacity`].
    pub fn generate<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Deployment {
        let candidates = self.candidate_positions();
        assert!(
            count <= candidates.len(),
            "requested {count} nodes but the metro only has {} street positions",
            candidates.len()
        );
        let mut positions = Vec::with_capacity(count);
        for k in 0..count {
            let idx = k * candidates.len() / count;
            let base = candidates[idx];
            let jx = (rng.random::<f64>() * 2.0 - 1.0) * self.district.jitter_m;
            let jy = (rng.random::<f64>() * 2.0 - 1.0) * self.district.jitter_m;
            positions.push(Point2::new(base.x + jx, base.y + jy));
        }
        Deployment::new(format!("metro-{count}"), positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_math::rng::seeded;
    use rl_net::Topology;

    #[test]
    fn default_metro_holds_thousands() {
        let metro = MetroMap::default_metro();
        assert!(
            metro.capacity() >= 1500,
            "capacity {} should comfortably exceed 1000",
            metro.capacity()
        );
        // capacity() counts without materializing; it must agree with the
        // actual candidate set, for non-square grids too.
        assert_eq!(metro.capacity(), metro.candidate_positions().len());
        let lopsided = MetroMap::default_metro().with_districts(3, 2);
        assert_eq!(lopsided.capacity(), lopsided.candidate_positions().len());
    }

    #[test]
    fn metro_extent_is_an_order_of_magnitude_beyond_the_town() {
        let mut rng = seeded(1);
        let d = MetroMap::default_metro().generate(1000, &mut rng);
        assert_eq!(d.len(), 1000);
        let (lo, hi) = d.bounding_box().unwrap();
        // The paper's town spans ~50 m x ~35 m; the metro spans ~290 x ~200.
        assert!(hi.x - lo.x > 250.0, "width {}", hi.x - lo.x);
        assert!(hi.y - lo.y > 170.0, "height {}", hi.y - lo.y);
    }

    #[test]
    fn obstruction_belts_are_empty() {
        let metro = MetroMap::default_metro();
        let (w, h) = metro.district_extent();
        // No unjittered candidate may fall strictly inside a belt.
        for p in metro.candidate_positions() {
            let fx = (p.x - metro.district.origin.x).rem_euclid(w + metro.belt_m);
            let fy = (p.y - metro.district.origin.y).rem_euclid(h + metro.belt_m);
            assert!(fx <= w + 1e-9, "{p} sits inside a vertical belt");
            assert!(fy <= h + 1e-9, "{p} sits inside a horizontal belt");
        }
    }

    #[test]
    fn dense_metro_is_connected_under_paper_range() {
        let mut rng = seeded(2);
        let d = MetroMap::default_metro().generate(1200, &mut rng);
        let topo = Topology::from_positions(&d.positions, 22.0);
        assert!(topo.is_connected(), "1200-node metro must be connected");
    }

    #[test]
    fn small_district_grids_work() {
        let metro = MetroMap::default_metro()
            .with_districts(2, 1)
            .with_belt(9.0);
        let mut rng = seeded(3);
        let n = metro.capacity() / 2;
        let d = metro.generate(n, &mut rng);
        assert_eq!(d.len(), n);
        let topo = Topology::from_positions(&d.positions, 22.0);
        assert!(topo.is_connected());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = MetroMap::default_metro().generate(500, &mut seeded(7));
        let b = MetroMap::default_metro().generate(500, &mut seeded(7));
        assert_eq!(a, b);
        let c = MetroMap::default_metro().generate(500, &mut seeded(8));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "street positions")]
    fn requesting_beyond_capacity_panics() {
        let mut rng = seeded(9);
        let _ = MetroMap::default_metro().generate(100_000, &mut rng);
    }
}
