//! Time-stepped mobility scenarios for the tracking layer.
//!
//! A [`Scenario`] is one frozen snapshot; a [`MobilityScenario`] is the
//! same geometry set in motion. Every tick, non-anchor nodes move under a
//! [`MotionModel`], join and leave under a [`ChurnModel`], and the active
//! subnetwork re-measures its ranges through the scenario's existing
//! error-model stack ([`SyntheticRanging`](crate::SyntheticRanging) or a
//! composed [`RangingChannel`](rl_ranging::channel::RangingChannel)). The
//! result is a stream of solver-ready
//! [`TickObservation`]s — the input
//! contract of [`rl_core::tracking::Tracker`].
//!
//! # Determinism contract
//!
//! [`MobilityScenario::trace`] carries the same guarantee as
//! [`Scenario::instantiate`]: the same `(scenario, seed)` pair always
//! produces a bit-identical trace. Motion and churn draw from one
//! sequential stream with a **fixed draw order** — every non-anchor
//! draws every tick, active or not — and each tick's measurement noise
//! draws from its own salted sub-stream (a pure function of `(seed,
//! tick)`), so a tick's measurements never depend on how many pairs were
//! in range on earlier ticks.
//!
//! # Example
//!
//! ```
//! use rl_deploy::mobility::MobilityScenario;
//!
//! let mobile = MobilityScenario::town(7).with_ticks(5);
//! let trace = mobile.trace(1);
//! assert_eq!(trace.len(), 5);
//! // Same seed, bit-identical trace.
//! assert_eq!(mobile.trace(1), trace);
//! for obs in trace.iter() {
//!     assert!(!obs.active.is_empty());
//! }
//! ```

use rand::Rng;
use rl_core::tracking::TickObservation;
use rl_geom::Point2;
use rl_math::rng::{normal, seeded};
use rl_math::Fnv1a;
use rl_net::NodeId;
use rl_ranging::measurement::MeasurementSet;
use serde::{Deserialize, Serialize};

use crate::Scenario;

/// Stream salt separating each tick's measurement-noise stream from the
/// motion/churn stream (same sub-stream idiom as the distributed
/// pipeline's per-node salt).
const MEASURE_STREAM: u64 = 0xD1B5_4A32_D192_ED03;

/// How non-anchor nodes move between ticks. Anchors are surveyed
/// infrastructure and never move.
///
/// Serializable so streaming clients can declare their motion model
/// over the wire (`rl-serve`'s `OpenStream` carries one for custom
/// mobility sources).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MotionModel {
    /// Nodes hold their deployment positions (pure-churn scenarios).
    Static,
    /// Independent Gaussian steps: each tick every non-anchor moves by
    /// `N(0, step_m)` in x and y.
    RandomWalk {
        /// Per-axis step standard deviation in meters per tick.
        step_m: f64,
    },
    /// Random-waypoint motion: each node walks toward a uniformly drawn
    /// target inside the deployment's bounding box and draws a new
    /// target on arrival.
    Waypoint {
        /// Travel speed in meters per tick.
        speed_m_per_tick: f64,
    },
}

/// Per-tick join/leave churn over the non-anchor population. Anchors
/// never churn. Serializable for the same wire uses as [`MotionModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnModel {
    /// Probability that an inactive non-anchor rejoins each tick.
    pub join_probability: f64,
    /// Probability that an active non-anchor drops out each tick.
    pub leave_probability: f64,
}

impl ChurnModel {
    /// No churn at all: every node stays active forever.
    pub fn none() -> Self {
        ChurnModel {
            join_probability: 0.0,
            leave_probability: 0.0,
        }
    }

    /// Symmetric light churn: 2% of nodes leave and 2% of the absent
    /// rejoin per tick.
    pub fn light() -> Self {
        ChurnModel {
            join_probability: 0.02,
            leave_probability: 0.02,
        }
    }
}

/// A [`Scenario`] set in motion: motion + churn + per-tick re-measured
/// ranges, producing a deterministic [`MobilityTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityScenario {
    /// The underlying geometry, anchors, and error model.
    pub base: Scenario,
    /// Non-anchor motion model.
    pub motion: MotionModel,
    /// Join/leave churn model.
    pub churn: ChurnModel,
    /// Trace length in ticks.
    pub ticks: usize,
    /// Fraction of non-anchors active on tick 0 (`1.0` = everyone).
    pub initial_active_fraction: f64,
}

impl MobilityScenario {
    /// Wraps a scenario with the default mobility recipe: 0.5 m/tick
    /// random walk, light churn, 30 ticks, everyone initially active.
    pub fn new(base: Scenario) -> Self {
        MobilityScenario {
            base,
            motion: MotionModel::RandomWalk { step_m: 0.5 },
            churn: ChurnModel::light(),
            ticks: 30,
            initial_active_fraction: 1.0,
        }
    }

    /// The paper's 59-node town set in motion with the default recipe.
    pub fn town(seed: u64) -> Self {
        MobilityScenario::new(Scenario::town(seed))
    }

    /// A 250-node metro district grid set in motion with the default
    /// recipe (the tracking benchmark's large cell).
    pub fn metro_250(seed: u64) -> Self {
        MobilityScenario::new(Scenario::metro_sized(250, 0.10, seed))
    }

    /// Replaces the motion model (builder style).
    pub fn with_motion(mut self, motion: MotionModel) -> Self {
        self.motion = motion;
        self
    }

    /// Replaces the churn model (builder style).
    pub fn with_churn(mut self, churn: ChurnModel) -> Self {
        self.churn = churn;
        self
    }

    /// Sets the trace length (builder style).
    pub fn with_ticks(mut self, ticks: usize) -> Self {
        self.ticks = ticks;
        self
    }

    /// Sets the tick-0 active fraction of non-anchors (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn with_initial_active_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "initial_active_fraction {fraction} outside [0, 1]"
        );
        self.initial_active_fraction = fraction;
        self
    }

    /// Generates the full trace: one [`TickObservation`] per tick, with
    /// ground truth riding along (like [`Scenario::instantiate`]'s
    /// truth) for evaluation and protocol-driven solvers.
    ///
    /// The same `(scenario, seed)` pair always produces a bit-identical
    /// trace.
    pub fn trace(&self, seed: u64) -> MobilityTrace {
        let n = self.base.deployment.len();
        let mut is_anchor = vec![false; n];
        for a in &self.base.anchors {
            is_anchor[a.index()] = true;
        }
        let bounds = self
            .base
            .deployment
            .bounding_box()
            .unwrap_or((Point2::new(0.0, 0.0), Point2::new(0.0, 0.0)));

        let mut rng = seeded(seed);
        let mut positions = self.base.deployment.positions.clone();
        let mut active = vec![false; n];
        // Waypoint targets; drawn up front for every non-anchor so the
        // draw order is fixed regardless of the motion model's arrivals.
        let mut targets: Vec<Point2> = Vec::new();
        if let MotionModel::Waypoint { .. } = self.motion {
            targets = (0..n)
                .map(|_| {
                    Point2::new(
                        rng.gen_range(bounds.0.x..=bounds.1.x),
                        rng.gen_range(bounds.0.y..=bounds.1.y),
                    )
                })
                .collect();
        }

        let anchors = self.base.anchor_list();
        let mut observations = Vec::with_capacity(self.ticks);
        for tick in 0..self.ticks {
            let previous = active.clone();
            if tick == 0 {
                for (i, slot) in active.iter_mut().enumerate() {
                    *slot = is_anchor[i]
                        || self.initial_active_fraction >= 1.0
                        || rng.gen_bool(self.initial_active_fraction);
                }
            } else {
                // One churn draw per non-anchor, id order: active nodes
                // test leaving, inactive ones test rejoining. The draw
                // count per tick is constant, so editing the churn rates
                // never shifts the motion stream.
                for i in 0..n {
                    if is_anchor[i] {
                        continue;
                    }
                    if active[i] {
                        if rng.gen_bool(self.churn.leave_probability) {
                            active[i] = false;
                        }
                    } else if rng.gen_bool(self.churn.join_probability) {
                        active[i] = true;
                    }
                }
                // Motion applies to every non-anchor — inactive nodes
                // keep wandering while absent, so draw order is fixed
                // and positions stay continuous across a rejoin.
                match self.motion {
                    MotionModel::Static => {}
                    MotionModel::RandomWalk { step_m } => {
                        for (i, p) in positions.iter_mut().enumerate() {
                            if is_anchor[i] {
                                continue;
                            }
                            p.x =
                                (p.x + normal(&mut rng, 0.0, step_m)).clamp(bounds.0.x, bounds.1.x);
                            p.y =
                                (p.y + normal(&mut rng, 0.0, step_m)).clamp(bounds.0.y, bounds.1.y);
                        }
                    }
                    MotionModel::Waypoint { speed_m_per_tick } => {
                        for (i, p) in positions.iter_mut().enumerate() {
                            if is_anchor[i] {
                                continue;
                            }
                            let target = targets[i];
                            let dist = p.distance(target);
                            if dist <= speed_m_per_tick {
                                *p = target;
                                targets[i] = Point2::new(
                                    rng.gen_range(bounds.0.x..=bounds.1.x),
                                    rng.gen_range(bounds.0.y..=bounds.1.y),
                                );
                            } else {
                                let scale = speed_m_per_tick / dist;
                                p.x += (target.x - p.x) * scale;
                                p.y += (target.y - p.y) * scale;
                            }
                        }
                    }
                }
            }

            // Re-measure the active subnetwork through the scenario's
            // error stack, on a per-tick salted sub-stream.
            let active_ids: Vec<NodeId> = (0..n).filter(|&i| active[i]).map(NodeId).collect();
            let active_positions: Vec<Point2> =
                active_ids.iter().map(|id| positions[id.index()]).collect();
            let mut tick_rng = seeded(seed ^ (tick as u64 + 1).wrapping_mul(MEASURE_STREAM));
            let compact = match &self.base.channel {
                Some(channel) => channel.measure_all(&active_positions, &mut tick_rng),
                None => self
                    .base
                    .ranging
                    .measure_all(&active_positions, &mut tick_rng),
            };
            let mut measurements = MeasurementSet::new(n);
            for (a, b, d, w) in compact.iter_weighted() {
                measurements.insert_weighted(active_ids[a.index()], active_ids[b.index()], d, w);
            }

            let joined: Vec<NodeId> = (0..n)
                .filter(|&i| active[i] && !previous[i])
                .map(NodeId)
                .collect();
            let left: Vec<NodeId> = (0..n)
                .filter(|&i| !active[i] && previous[i])
                .map(NodeId)
                .collect();
            observations.push(TickObservation {
                tick: tick as u64,
                measurements,
                anchors: anchors.clone(),
                active: active_ids,
                joined,
                left,
                truth: Some(positions.clone()),
            });
        }
        MobilityTrace {
            name: format!("{}-mobile", self.base.name),
            observations,
        }
    }
}

/// Names of every serveable mobility preset, in registry order. Like
/// [`crate::presets::NAMES`] these are the vocabulary `rl-serve` streams
/// speak: a client opening a stream names one of these instead of
/// shipping a scenario over the wire, and both sides agree bit-for-bit
/// on what it means (everything is pinned to
/// [`PRESET_SEED`](crate::presets::PRESET_SEED)).
pub const NAMES: &[&str] = &[
    "town-mobile",
    "town-waypoint",
    "parking-lot-churn",
    "metro-250-mobile",
];

/// Resolves a mobility preset name to its scenario, or `None` for an
/// unknown name.
///
/// * `"town-mobile"` — the paper's 59-node town under the default
///   recipe: 0.5 m/tick random walk with light (2%) churn,
/// * `"town-waypoint"` — the town under 2 m/tick random-waypoint motion
///   with no churn (pure-motion tracking),
/// * `"parking-lot-churn"` — the 15-node parking lot held static under
///   5% join/leave churn (pure-churn tracking),
/// * `"metro-250-mobile"` — the 250-node metro district under the
///   default recipe (the tracking benchmark's large cell).
///
/// Trace lengths are the [`MobilityScenario::new`] default (30 ticks);
/// streaming clients generate exactly as many ticks as they push, so the
/// preset's tick count is a default, not a contract.
pub fn preset(name: &str) -> Option<MobilityScenario> {
    let seed = crate::presets::PRESET_SEED;
    match name {
        "town-mobile" => Some(MobilityScenario::town(seed)),
        "town-waypoint" => Some(
            MobilityScenario::town(seed)
                .with_motion(MotionModel::Waypoint {
                    speed_m_per_tick: 2.0,
                })
                .with_churn(ChurnModel::none()),
        ),
        "parking-lot-churn" => Some(
            MobilityScenario::new(Scenario::parking_lot(seed))
                .with_motion(MotionModel::Static)
                .with_churn(ChurnModel {
                    join_probability: 0.05,
                    leave_probability: 0.05,
                }),
        ),
        "metro-250-mobile" => Some(MobilityScenario::metro_250(seed)),
        _ => None,
    }
}

/// A generated mobility run: one observation per tick, ready to feed a
/// [`Tracker`](rl_core::tracking::Tracker).
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityTrace {
    /// Trace name, derived from the base scenario.
    pub name: String,
    /// Per-tick observations, index = tick.
    pub observations: Vec<TickObservation>,
}

impl MobilityTrace {
    /// Number of ticks.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the trace has no ticks.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Iterates the per-tick observations.
    pub fn iter(&self) -> impl Iterator<Item = &TickObservation> + '_ {
        self.observations.iter()
    }
}

/// A bit-exact digest of one tick: truth coordinates, active/joined/left
/// membership, and every weighted measurement. Golden fixtures pin these
/// against the vendored xoshiro256++ stream.
pub fn observation_fingerprint(obs: &TickObservation) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(obs.tick);
    h.write_u64(obs.measurements.node_count() as u64);
    match &obs.truth {
        Some(truth) => {
            h.write_u8(1);
            h.write_u64(truth.len() as u64);
            for p in truth {
                h.write_f64(p.x);
                h.write_f64(p.y);
            }
        }
        None => h.write_u8(0),
    }
    for list in [&obs.active, &obs.joined, &obs.left] {
        h.write_u64(list.len() as u64);
        for id in list {
            h.write_u64(id.index() as u64);
        }
    }
    for a in &obs.anchors {
        h.write_u64(a.id.index() as u64);
        h.write_f64(a.position.x);
        h.write_f64(a.position.y);
    }
    for (a, b, d, w) in obs.measurements.iter_weighted() {
        h.write_u64(a.index() as u64);
        h.write_u64(b.index() as u64);
        h.write_f64(d);
        h.write_f64(w);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MobilityScenario {
        MobilityScenario::town(3).with_ticks(6)
    }

    #[test]
    fn traces_are_bit_deterministic() {
        let m = small();
        let a = m.trace(9);
        let b = m.trace(9);
        assert_eq!(a, b);
        let fp_a: Vec<u64> = a.iter().map(observation_fingerprint).collect();
        let fp_b: Vec<u64> = b.iter().map(observation_fingerprint).collect();
        assert_eq!(fp_a, fp_b);
        assert_ne!(m.trace(10), a, "different seed, different trace");
    }

    #[test]
    fn anchors_are_immortal_and_static() {
        let m = small();
        let trace = m.trace(4);
        let anchor_truth = m.base.anchor_positions();
        for obs in trace.iter() {
            for (id, p) in &anchor_truth {
                assert!(obs.active.contains(id), "anchor {id:?} inactive");
                let truth = obs.truth.as_ref().unwrap();
                assert_eq!(truth[id.index()], *p, "anchor {id:?} moved");
            }
        }
    }

    #[test]
    fn churn_deltas_are_consistent() {
        let m = small().with_churn(ChurnModel {
            join_probability: 0.3,
            leave_probability: 0.3,
        });
        let trace = m.trace(11);
        let mut previous: Vec<NodeId> = Vec::new();
        for obs in trace.iter() {
            for id in &obs.joined {
                assert!(obs.active.contains(id) && !previous.contains(id));
            }
            for id in &obs.left {
                assert!(!obs.active.contains(id) && previous.contains(id));
            }
            // active = previous + joined − left, as sets.
            let mut rebuilt: Vec<NodeId> = previous
                .iter()
                .filter(|id| !obs.left.contains(id))
                .chain(obs.joined.iter())
                .copied()
                .collect();
            rebuilt.sort_by_key(|id| id.index());
            assert_eq!(rebuilt, obs.active);
            previous = obs.active.clone();
        }
    }

    #[test]
    fn motion_stays_in_bounds_and_finite() {
        for motion in [
            MotionModel::Static,
            MotionModel::RandomWalk { step_m: 2.0 },
            MotionModel::Waypoint {
                speed_m_per_tick: 3.0,
            },
        ] {
            let m = small().with_motion(motion);
            let (lo, hi) = m.base.deployment.bounding_box().unwrap();
            let trace = m.trace(5);
            for obs in trace.iter() {
                for p in obs.truth.as_ref().unwrap() {
                    assert!(p.x.is_finite() && p.y.is_finite());
                    assert!(p.x >= lo.x - 1e-9 && p.x <= hi.x + 1e-9);
                    assert!(p.y >= lo.y - 1e-9 && p.y <= hi.y + 1e-9);
                }
            }
            if motion == MotionModel::Static {
                let first = trace.observations[0].truth.clone();
                let last = trace.observations[trace.len() - 1].truth.clone();
                assert_eq!(first, last, "static motion must not move anyone");
            }
        }
    }

    #[test]
    fn edges_only_touch_active_nodes() {
        let m = small().with_initial_active_fraction(0.6);
        let trace = m.trace(8);
        for obs in trace.iter() {
            for (a, b, d, w) in obs.measurements.iter_weighted() {
                assert!(obs.active.contains(&a) && obs.active.contains(&b));
                assert!(d.is_finite() && w.is_finite());
            }
        }
    }

    #[test]
    fn mobility_presets_resolve_deterministically() {
        for &name in NAMES {
            let a = preset(name).unwrap_or_else(|| panic!("preset {name} must resolve"));
            assert_eq!(
                Some(a.clone()),
                preset(name),
                "{name} must be deterministic"
            );
            assert!(!a.base.deployment.is_empty());
            // Short traces stay generable and deterministic.
            let short = a.clone().with_ticks(2);
            assert_eq!(short.trace(1), short.trace(1));
        }
        assert_eq!(
            preset("town"),
            None,
            "static presets are a separate registry"
        );
        assert_eq!(preset("atlantis-mobile"), None);
    }

    #[test]
    fn motion_and_churn_models_round_trip_through_json() {
        for motion in [
            MotionModel::Static,
            MotionModel::RandomWalk { step_m: 0.5 },
            MotionModel::Waypoint {
                speed_m_per_tick: 2.0,
            },
        ] {
            let json = serde_json::to_string(&motion).unwrap();
            assert_eq!(serde_json::from_str::<MotionModel>(&json).unwrap(), motion);
        }
        let churn = ChurnModel {
            join_probability: 0.05,
            leave_probability: 0.02,
        };
        let json = serde_json::to_string(&churn).unwrap();
        assert_eq!(serde_json::from_str::<ChurnModel>(&json).unwrap(), churn);
    }

    #[test]
    fn churn_rates_do_not_shift_the_motion_stream() {
        // Same seed, different churn rates: the truth trajectories must
        // stay identical (fixed draw order per tick).
        let calm = small().with_churn(ChurnModel::none()).trace(13);
        let busy = small()
            .with_churn(ChurnModel {
                join_probability: 0.5,
                leave_probability: 0.5,
            })
            .trace(13);
        for (a, b) in calm.iter().zip(busy.iter()) {
            assert_eq!(a.truth, b.truth);
        }
    }
}
