//! Named, serveable scenario presets.
//!
//! The `rl-serve` server owns long-lived deployment state: clients name a
//! deployment (`"town"`, `"metro-250"`, …) instead of shipping geometry
//! over the wire, and the server instantiates the corresponding
//! [`Scenario`] on demand. That only works if both sides agree — bit for
//! bit — on what each name means, so every preset here is pinned to
//! [`PRESET_SEED`] and fully deterministic: the same name always yields
//! the same deployment, anchors, and synthetic error model, across
//! processes and machines.
//!
//! # Example
//!
//! ```
//! use rl_deploy::presets;
//!
//! let town = presets::preset("town").expect("town is a preset");
//! assert_eq!(town.deployment.len(), 59);
//! // Deterministic: a second lookup is the same scenario, bit for bit.
//! assert_eq!(presets::preset("town"), Some(town));
//! assert!(presets::preset("atlantis").is_none());
//! ```

use crate::scenario::Scenario;

/// The fixed seed every preset geometry is generated from (the paper's
/// publication date, matching `rl_bench::MASTER_SEED`).
pub const PRESET_SEED: u64 = 20050614;

/// Names of every serveable preset, in registry order: the paper-scale
/// scenarios first, then the metro ladder.
pub const NAMES: &[&str] = &[
    "grass-grid",
    "parking-lot",
    "town",
    "metro-250",
    "metro-500",
    "metro-1000",
    "metro-2500",
];

/// Resolves a preset name to its scenario, or `None` for an unknown name.
///
/// * `"grass-grid"` — the paper's Figure-5 grass grid (47 motes,
///   anchor-free),
/// * `"parking-lot"` — the 15-node parking lot with 5 anchors
///   (Figure 12),
/// * `"town"` — the 59-node town with 18 anchors (Figures 20–22),
/// * `"metro-250"` / `"metro-500"` / `"metro-1000"` / `"metro-2500"` —
///   the metro ladder (district grids, 10% anchors). The 2500-node rung
///   is the sparse-kernel stress tier: dense `O(n²)`–`O(n³)` paths are
///   visibly infeasible there, so it anchors the `sparse_smoke` wall
///   gates and the top `sparse_bench` rung.
pub fn preset(name: &str) -> Option<Scenario> {
    match name {
        "grass-grid" => Some(Scenario::grass_grid()),
        "parking-lot" => Some(Scenario::parking_lot(PRESET_SEED)),
        "town" => Some(Scenario::town(PRESET_SEED)),
        "metro-250" => Some(Scenario::metro_sized(250, 0.10, PRESET_SEED)),
        "metro-500" => Some(Scenario::metro_sized(500, 0.10, PRESET_SEED)),
        "metro-1000" => Some(Scenario::metro(PRESET_SEED)),
        "metro-2500" => Some(Scenario::metro_sized(2500, 0.10, PRESET_SEED)),
        _ => None,
    }
}

/// Every serveable preset as `(name, scenario)` pairs, in [`NAMES`]
/// order. Building the metro rungs generates their full district
/// geometry, so this is a startup-time call, not a per-request one.
pub fn all() -> Vec<(&'static str, Scenario)> {
    NAMES
        .iter()
        .map(|&name| (name, preset(name).expect("every listed preset resolves")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves_deterministically() {
        for &name in NAMES {
            let a = preset(name).unwrap_or_else(|| panic!("preset {name} must resolve"));
            let b = preset(name).unwrap();
            assert_eq!(a, b, "preset {name} must be deterministic");
            assert!(!a.deployment.is_empty(), "preset {name} is empty");
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert_eq!(preset(""), None);
        assert_eq!(preset("metro-9999"), None);
        assert_eq!(preset("Town"), None, "names are case-sensitive");
    }

    #[test]
    fn all_matches_names() {
        let all = all();
        assert_eq!(all.len(), NAMES.len());
        for ((name, scenario), &expected) in all.iter().zip(NAMES) {
            assert_eq!(*name, expected);
            assert_eq!(Some(scenario.clone()), preset(name));
        }
    }

    #[test]
    fn preset_scales_are_as_documented() {
        assert_eq!(preset("grass-grid").unwrap().deployment.len(), 47);
        assert_eq!(preset("parking-lot").unwrap().deployment.len(), 15);
        assert_eq!(preset("town").unwrap().deployment.len(), 59);
        let metro = preset("metro-250").unwrap();
        assert_eq!(metro.deployment.len(), 250);
        assert_eq!(metro.anchors.len(), 25);
        let metro = preset("metro-2500").unwrap();
        assert_eq!(metro.deployment.len(), 2500);
        assert_eq!(metro.anchors.len(), 250);
    }
}
