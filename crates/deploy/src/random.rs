//! Random deployments with minimum separation.
//!
//! Real deployments are rarely regular; the simulation studies need
//! arbitrary node layouts with a guaranteed minimum spacing (the quantity
//! the LSS soft constraint exploits). [`RandomDeployment`] places nodes
//! uniformly in a rectangle by rejection sampling.

use rand::Rng;
use rl_geom::Point2;
use serde::{Deserialize, Serialize};

use crate::{DeployError, Deployment, Result};

/// Uniform random placement in a rectangle with minimum pairwise
/// separation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomDeployment {
    /// Number of nodes to place.
    pub count: usize,
    /// Rectangle width, meters.
    pub width_m: f64,
    /// Rectangle height, meters.
    pub height_m: f64,
    /// Minimum pairwise separation, meters.
    pub min_separation_m: f64,
    /// Rejection attempts per node before giving up.
    pub max_attempts_per_node: usize,
}

impl RandomDeployment {
    /// A deployment of `count` nodes in a `width × height` area with the
    /// given separation.
    pub fn new(count: usize, width_m: f64, height_m: f64, min_separation_m: f64) -> Self {
        RandomDeployment {
            count,
            width_m,
            height_m,
            min_separation_m,
            max_attempts_per_node: 200,
        }
    }

    /// Generates the deployment.
    ///
    /// # Errors
    ///
    /// * [`DeployError::InvalidConfig`] for non-positive dimensions,
    /// * [`DeployError::PlacementFailed`] when the separation constraint
    ///   cannot be met within the attempt budget (area too dense).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Deployment> {
        if !(self.width_m > 0.0) || !(self.height_m > 0.0) {
            return Err(DeployError::InvalidConfig("area must have positive size"));
        }
        if self.min_separation_m < 0.0 {
            return Err(DeployError::InvalidConfig(
                "min_separation_m must be non-negative",
            ));
        }
        let mut positions: Vec<Point2> = Vec::with_capacity(self.count);
        for _ in 0..self.count {
            let mut placed = false;
            for _ in 0..self.max_attempts_per_node {
                let candidate = Point2::new(
                    rng.random::<f64>() * self.width_m,
                    rng.random::<f64>() * self.height_m,
                );
                if positions
                    .iter()
                    .all(|p| p.distance(candidate) >= self.min_separation_m)
                {
                    positions.push(candidate);
                    placed = true;
                    break;
                }
            }
            if !placed {
                return Err(DeployError::PlacementFailed {
                    placed: positions.len(),
                    requested: self.count,
                });
            }
        }
        Ok(Deployment::new(format!("random-{}", self.count), positions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rl_math::rng::seeded;

    #[test]
    fn generates_requested_count_with_separation() {
        let mut rng = seeded(1);
        let d = RandomDeployment::new(30, 100.0, 100.0, 8.0)
            .generate(&mut rng)
            .unwrap();
        assert_eq!(d.len(), 30);
        assert!(d.min_pair_distance().unwrap() >= 8.0);
        let (lo, hi) = d.bounding_box().unwrap();
        assert!(lo.x >= 0.0 && lo.y >= 0.0);
        assert!(hi.x <= 100.0 && hi.y <= 100.0);
    }

    #[test]
    fn impossible_density_fails_gracefully() {
        let mut rng = seeded(2);
        let err = RandomDeployment::new(100, 10.0, 10.0, 5.0)
            .generate(&mut rng)
            .unwrap_err();
        assert!(matches!(err, DeployError::PlacementFailed { .. }));
    }

    #[test]
    fn invalid_config_rejected() {
        let mut rng = seeded(3);
        assert!(RandomDeployment::new(5, 0.0, 10.0, 1.0)
            .generate(&mut rng)
            .is_err());
        assert!(RandomDeployment::new(5, 10.0, 10.0, -1.0)
            .generate(&mut rng)
            .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let d1 = RandomDeployment::new(10, 50.0, 50.0, 5.0)
            .generate(&mut seeded(7))
            .unwrap();
        let d2 = RandomDeployment::new(10, 50.0, 50.0, 5.0)
            .generate(&mut seeded(7))
            .unwrap();
        assert_eq!(d1, d2);
    }

    proptest! {
        #[test]
        fn prop_separation_always_respected(
            seed in 0u64..500,
            count in 2usize..20,
            sep in 1.0f64..6.0,
        ) {
            let mut rng = seeded(seed);
            if let Ok(d) = RandomDeployment::new(count, 80.0, 80.0, sep).generate(&mut rng) {
                prop_assert!(d.min_pair_distance().unwrap() >= sep);
            }
        }
    }
}
