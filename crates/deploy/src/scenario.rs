//! Named experiment scenarios.
//!
//! Each scenario bundles a deployment, an anchor set, a synthetic ranging
//! error model and the seeds that make the paper's experiments
//! reproducible bit-for-bit. The `rl-bench` harness builds every figure
//! from one of these, and [`Scenario::instantiate`] turns one directly
//! into a solver-ready [`Problem`] for the
//! unified [`Localizer`](rl_core::problem::Localizer) API.

use rand::Rng;
use rl_core::problem::Problem;
use rl_core::types::Anchor;
use rl_geom::Point2;
use rl_net::NodeId;
use rl_ranging::channel::RangingChannel;
use serde::{Deserialize, Serialize};

use crate::anchors::AnchorSelection;
use crate::grid::OffsetGrid;
use crate::metro::MetroMap;
use crate::random::RandomDeployment;
use crate::synth::SyntheticRanging;
use crate::town::TownMap;
use crate::Deployment;

/// A reproducible experiment geometry: deployment, anchors, and the
/// synthetic error model used when the scenario is instantiated into a
/// [`Problem`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name, e.g. `"grass-grid-47"`.
    pub name: String,
    /// The deployment.
    pub deployment: Deployment,
    /// Anchor node ids (sorted).
    pub anchors: Vec<NodeId>,
    /// The synthetic measurement recipe applied by
    /// [`Scenario::instantiate`] (the paper's 22 m / N(0, 0.33 m) recipe
    /// by default).
    pub ranging: SyntheticRanging,
    /// Optional composable error-channel stack. When set, it replaces
    /// `ranging` at instantiation time: NLOS bias, multipath, clock
    /// drift and adversarial contamination stages compose on top of the
    /// clean recipe. `None` (the default everywhere) keeps every
    /// existing scenario bit-identical to its pre-channel behavior.
    pub channel: Option<RangingChannel>,
}

impl Scenario {
    /// The Figure 5 grass grid: 47 motes, no anchors (LSS experiments).
    pub fn grass_grid() -> Scenario {
        let deployment = OffsetGrid::paper_figure5().generate();
        Scenario {
            name: "grass-grid-47".into(),
            deployment,
            anchors: Vec::new(),
            ranging: SyntheticRanging::paper(),
            channel: None,
        }
    }

    /// The multilateration variant of the grass grid: 13 random anchors of
    /// the 46 reporting motes (one mote failed to report, Section 4.1.3).
    pub fn grass_grid_multilateration(seed: u64) -> Scenario {
        // Drop one node to model the mote that failed to report.
        let deployment = OffsetGrid::paper_figure5().generate().without_nodes(&[0]);
        let mut rng = rl_math::rng::seeded(seed);
        let anchors = AnchorSelection::Random { count: 13 }.select(&deployment, &mut rng);
        Scenario {
            name: "grass-grid-46-13anchors".into(),
            deployment,
            anchors,
            ranging: SyntheticRanging::paper(),
            channel: None,
        }
    }

    /// The 15-node parking-lot experiment of Figure 12: 25×25 m area, the
    /// 5 loudspeaker-equipped nodes as anchors.
    pub fn parking_lot(seed: u64) -> Scenario {
        let mut rng = rl_math::rng::seeded(seed);
        let deployment = RandomDeployment::new(15, 25.0, 25.0, 4.0)
            .generate(&mut rng)
            .expect("15 nodes fit in 25x25 at 4 m separation");
        let deployment = Deployment::new("parking-lot-15", deployment.positions);
        // Anchors spread across the id space (the equipped nodes).
        let anchors = AnchorSelection::EveryKth { k: 3 }.select(&deployment, &mut rng);
        Scenario {
            name: "parking-lot-15-5anchors".into(),
            deployment,
            anchors,
            ranging: SyntheticRanging::paper(),
            channel: None,
        }
    }

    /// The town-map simulation of Figures 20–22: 59 nodes, 18 random
    /// anchors.
    pub fn town(seed: u64) -> Scenario {
        let mut rng = rl_math::rng::seeded(seed);
        let deployment = TownMap::paper_town().generate(59, &mut rng);
        let anchors = AnchorSelection::Random { count: 18 }.select(&deployment, &mut rng);
        Scenario {
            name: "town-59-18anchors".into(),
            deployment,
            anchors,
            ranging: SyntheticRanging::paper(),
            channel: None,
        }
    }

    /// The urban baseline-ranging deployment of Section 3.3: 60 motes over
    /// a few city blocks (ranging evaluation only, no anchors needed).
    pub fn urban_60(seed: u64) -> Scenario {
        let mut rng = rl_math::rng::seeded(seed);
        let deployment = TownMap {
            jitter_m: 3.0,
            ..TownMap::paper_town()
        }
        .generate(60, &mut rng);
        Scenario {
            name: "urban-60".into(),
            deployment: Deployment::new("urban-60", deployment.positions),
            anchors: Vec::new(),
            ranging: SyntheticRanging::paper(),
            channel: None,
        }
    }

    /// A metro-scale deployment an order of magnitude beyond the paper's
    /// town: 1000 nodes across an auto-sized district grid (obstruction
    /// belts between districts), 10% of them anchors.
    pub fn metro(seed: u64) -> Scenario {
        Scenario::metro_sized(1000, 0.10, seed)
    }

    /// A metro with `nodes` nodes and `round(nodes × anchor_fraction)`
    /// random anchors, on a district grid sized to the node count: the
    /// smallest square-ish grid of default districts whose capacity holds
    /// `nodes`. Auto-sizing keeps street density — and therefore
    /// connectivity under the 22 m cutoff — roughly constant across the
    /// whole scale ladder, instead of thinning a fixed map until its
    /// streets break apart. (Below ~60 nodes even one district is
    /// undersubscribed; use [`Scenario::town`] at that scale.)
    ///
    /// # Panics
    ///
    /// Panics if `anchor_fraction` is outside `[0, 1]`.
    pub fn metro_sized(nodes: usize, anchor_fraction: f64, seed: u64) -> Scenario {
        let mut map = MetroMap::default_metro().with_districts(1, 1);
        while map.capacity() < nodes {
            let (dx, dy) = (map.districts_x, map.districts_y);
            map = if dx == dy {
                map.with_districts(dx + 1, dy)
            } else {
                map.with_districts(dx, dy + 1)
            };
        }
        Scenario::metro_custom(map, nodes, anchor_fraction, seed)
    }

    /// A metro scenario on an explicit [`MetroMap`]: `nodes` nodes
    /// subsampled from the map's candidates, `round(nodes ×
    /// anchor_fraction)` random anchors, the paper's synthetic error
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` exceeds the map's capacity or `anchor_fraction`
    /// is outside `[0, 1]`.
    pub fn metro_custom(map: MetroMap, nodes: usize, anchor_fraction: f64, seed: u64) -> Scenario {
        assert!(
            (0.0..=1.0).contains(&anchor_fraction),
            "anchor_fraction {anchor_fraction} outside [0, 1]"
        );
        let mut rng = rl_math::rng::seeded(seed);
        let deployment = map.generate(nodes, &mut rng);
        let count = (nodes as f64 * anchor_fraction).round() as usize;
        let anchors = AnchorSelection::Random { count }.select(&deployment, &mut rng);
        Scenario {
            name: format!("metro-{nodes}-{count}anchors"),
            deployment,
            anchors,
            ranging: SyntheticRanging::paper(),
            channel: None,
        }
    }

    /// Ground-truth positions of the anchors.
    pub fn anchor_positions(&self) -> Vec<(NodeId, Point2)> {
        self.anchors
            .iter()
            .map(|&a| (a, self.deployment.positions[a.index()]))
            .collect()
    }

    /// Non-anchor node ids.
    pub fn non_anchors(&self) -> Vec<NodeId> {
        crate::anchors::split_nodes(self.deployment.len(), &self.anchors).1
    }

    /// Replaces the synthetic error model (builder style).
    pub fn with_ranging(mut self, ranging: SyntheticRanging) -> Self {
        self.ranging = ranging;
        self
    }

    /// Installs a composable error-channel stack (builder style): the
    /// channel replaces the plain `ranging` recipe at instantiation
    /// time. Same `(scenario, seed)` pair, same bit-identical problem —
    /// the channel draws its sub-streams from the instantiation seed.
    ///
    /// ```
    /// use rl_deploy::Scenario;
    /// use rl_ranging::channel::{ChannelStage, RangingChannel};
    ///
    /// let clean = Scenario::town(7);
    /// let hostile = clean.clone().with_channel(
    ///     RangingChannel::paper().with_stage(ChannelStage::Adversarial {
    ///         node_fraction: 0.10,
    ///         corruption_m: 40.0,
    ///     }),
    /// );
    /// // Same geometry, different measurements.
    /// let (a, b) = (clean.instantiate(1), hostile.instantiate(1));
    /// assert_eq!(a.truth(), b.truth());
    /// assert_ne!(a.measurements(), b.measurements());
    /// ```
    pub fn with_channel(mut self, channel: RangingChannel) -> Self {
        self.channel = Some(channel);
        self
    }

    /// Anchor descriptors (id + ground-truth position), ready for the
    /// anchor-based solvers.
    pub fn anchor_list(&self) -> Vec<Anchor> {
        Anchor::from_truth(&self.anchors, &self.deployment.positions)
    }

    /// Instantiates the scenario into a solver-ready
    /// [`Problem`]: the error model measures
    /// every in-range pair (seeded by `seed`), anchors are resolved to
    /// their ground-truth positions, and the deployment's positions ride
    /// along as ground truth for evaluation and radio connectivity.
    ///
    /// The same `(scenario, seed)` pair always produces a bit-identical
    /// problem.
    pub fn instantiate(&self, seed: u64) -> Problem {
        let mut rng = rl_math::rng::seeded(seed);
        let measurements = match &self.channel {
            Some(channel) => channel.measure_all(&self.deployment.positions, &mut rng),
            None => self
                .ranging
                .measure_all(&self.deployment.positions, &mut rng),
        };
        Problem::builder(measurements)
            .name(self.name.clone())
            .anchors(self.anchor_list())
            .truth(self.deployment.positions.clone())
            .build()
            .expect("scenario anchors and truth are consistent by construction")
    }

    /// Draws a fresh random anchor set of the same size (for repeated
    /// trials).
    pub fn reanchored<R: Rng + ?Sized>(&self, rng: &mut R) -> Scenario {
        let anchors = AnchorSelection::Random {
            count: self.anchors.len(),
        }
        .select(&self.deployment, rng);
        Scenario {
            name: self.name.clone(),
            deployment: self.deployment.clone(),
            anchors,
            ranging: self.ranging,
            channel: self.channel.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_math::rng::seeded;

    #[test]
    fn grass_grid_matches_paper_counts() {
        let s = Scenario::grass_grid();
        assert_eq!(s.deployment.len(), 47);
        assert!(s.anchors.is_empty());
        assert_eq!(s.non_anchors().len(), 47);
    }

    #[test]
    fn grass_multilateration_has_13_of_46() {
        let s = Scenario::grass_grid_multilateration(42);
        assert_eq!(s.deployment.len(), 46);
        assert_eq!(s.anchors.len(), 13);
        assert_eq!(s.non_anchors().len(), 33);
        assert_eq!(s.anchor_positions().len(), 13);
    }

    #[test]
    fn parking_lot_geometry() {
        let s = Scenario::parking_lot(7);
        assert_eq!(s.deployment.len(), 15);
        assert_eq!(s.anchors.len(), 5);
        let (lo, hi) = s.deployment.bounding_box().unwrap();
        assert!(hi.x - lo.x <= 25.0 && hi.y - lo.y <= 25.0);
    }

    #[test]
    fn town_has_59_nodes_18_anchors() {
        let s = Scenario::town(11);
        assert_eq!(s.deployment.len(), 59);
        assert_eq!(s.anchors.len(), 18);
    }

    #[test]
    fn urban_has_60_nodes() {
        let s = Scenario::urban_60(3);
        assert_eq!(s.deployment.len(), 60);
    }

    #[test]
    fn scenarios_are_deterministic() {
        assert_eq!(Scenario::town(5), Scenario::town(5));
        assert_ne!(Scenario::town(5), Scenario::town(6));
        assert_eq!(Scenario::metro_sized(300, 0.1, 5), {
            Scenario::metro_sized(300, 0.1, 5)
        });
    }

    #[test]
    fn metro_scenario_scales_past_the_town() {
        let s = Scenario::metro(3);
        assert_eq!(s.deployment.len(), 1000);
        assert_eq!(s.anchors.len(), 100);
        assert_eq!(s.name, "metro-1000-100anchors");
        assert_eq!(s.non_anchors().len(), 900);
        // Instantiation produces a consistent, evaluable problem at scale.
        let p = s.instantiate(1);
        assert_eq!(p.node_count(), 1000);
        assert_eq!(p.anchors().len(), 100);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn metro_rejects_bad_anchor_fraction() {
        let _ = Scenario::metro_sized(100, 1.5, 1);
    }

    #[test]
    fn reanchoring_keeps_geometry() {
        let s = Scenario::town(1);
        let mut rng = seeded(99);
        let r = s.reanchored(&mut rng);
        assert_eq!(r.deployment, s.deployment);
        assert_eq!(r.anchors.len(), s.anchors.len());
        assert_ne!(r.anchors, s.anchors);
    }

    #[test]
    fn serde_roundtrip() {
        let s = Scenario::parking_lot(1);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<Scenario>(&json).unwrap(), s);
    }

    #[test]
    fn instantiate_builds_consistent_problem() {
        let s = Scenario::town(7);
        let p = s.instantiate(13);
        assert_eq!(p.name(), s.name);
        assert_eq!(p.node_count(), 59);
        assert_eq!(p.anchors().len(), 18);
        assert_eq!(p.truth().unwrap(), &s.deployment.positions[..]);
        assert_eq!(
            p.measurements().len(),
            s.deployment.pairs_within(s.ranging.max_range_m)
        );
        // Anchors sit at their ground-truth positions.
        for a in p.anchors() {
            assert_eq!(a.position, s.deployment.positions[a.id.index()]);
        }
        // Same seed, bit-identical problem; different seed, different
        // measurements.
        assert_eq!(s.instantiate(13), p);
        assert_ne!(s.instantiate(14).measurements(), p.measurements());
    }

    #[test]
    fn with_channel_replaces_the_recipe_deterministically() {
        use rl_ranging::channel::{ChannelStage, RangingChannel};
        let clean = Scenario::town(7);
        let hostile = clean.clone().with_channel(
            RangingChannel::paper()
                .with_stage(ChannelStage::NlosBias {
                    mean_m: 1.0,
                    std_m: 0.5,
                })
                .with_stage(ChannelStage::Adversarial {
                    node_fraction: 0.10,
                    corruption_m: 40.0,
                }),
        );
        // Geometry and anchors are untouched; measurements differ.
        assert_eq!(hostile.deployment, clean.deployment);
        assert_eq!(hostile.anchors, clean.anchors);
        let (a, b) = (clean.instantiate(13), hostile.instantiate(13));
        assert_ne!(a.measurements(), b.measurements());
        // Channel instantiation is bit-deterministic per seed.
        assert_eq!(hostile.instantiate(13), b);
        assert_ne!(hostile.instantiate(14), b);
        // And survives serde + reanchoring.
        let json = serde_json::to_string(&hostile).unwrap();
        assert_eq!(serde_json::from_str::<Scenario>(&json).unwrap(), hostile);
        let mut rng = seeded(5);
        assert_eq!(hostile.reanchored(&mut rng).channel, hostile.channel);
    }

    #[test]
    fn with_ranging_changes_the_error_model() {
        let s = Scenario::grass_grid().with_ranging(SyntheticRanging::new(10.0, 0.1));
        let p = s.instantiate(1);
        assert_eq!(
            p.measurements().len(),
            s.deployment.pairs_within(10.0),
            "short-range model must shrink the pair set"
        );
    }
}
