//! Street-aligned town-map deployments.
//!
//! The paper's simulation study "selected 59 plausible node positions in a
//! map of a few city blocks in a small town" (Section 4.2.2, Figures
//! 20–22, spanning roughly −20…100 m × −20…70 m). The original map is not
//! published; [`TownMap`] substitutes a deterministic synthetic equivalent:
//! nodes placed along the street grid of a few rectangular blocks, with
//! jitter, which preserves what matters to the algorithms — anisotropic,
//! street-aligned geometry with realistic pair density below the 22 m
//! ranging cutoff.

use rand::Rng;
use rl_geom::Point2;
use serde::{Deserialize, Serialize};

use crate::Deployment;

/// Synthetic town-map generator: nodes along the streets of a block grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TownMap {
    /// Number of blocks horizontally.
    pub blocks_x: usize,
    /// Number of blocks vertically.
    pub blocks_y: usize,
    /// Block width (street-to-street), meters.
    pub block_w: f64,
    /// Block height, meters.
    pub block_h: f64,
    /// Spacing of candidate positions along the streets, meters.
    pub street_spacing: f64,
    /// Uniform positional jitter applied to each node, meters.
    pub jitter_m: f64,
    /// Origin of the block grid.
    pub origin: Point2,
}

impl TownMap {
    /// The town used for the paper's Figures 20–22: a 3×2 block grid whose
    /// candidate street positions are subsampled to exactly 59 nodes.
    ///
    /// Sized so that the number of pairs below the 22 m ranging cutoff
    /// matches the paper's reported **945 of 1711** (the paper's figure
    /// axes span ~120 m × 90 m, which is irreconcilable with that pair
    /// count; we match the measurement density, which is what the
    /// algorithms actually see).
    pub fn paper_town() -> Self {
        TownMap {
            blocks_x: 3,
            blocks_y: 2,
            block_w: 16.0,
            block_h: 14.0,
            street_spacing: 4.2,
            jitter_m: 1.5,
            origin: Point2::new(-6.0, -6.0),
        }
    }

    /// All candidate street positions (grid-line intersections and points
    /// along each street), before jitter and subsampling.
    pub fn candidate_positions(&self) -> Vec<Point2> {
        let mut out = Vec::new();
        let w = self.block_w * self.blocks_x as f64;
        let h = self.block_h * self.blocks_y as f64;
        // Horizontal streets.
        for by in 0..=self.blocks_y {
            let y = self.origin.y + by as f64 * self.block_h;
            let mut x = self.origin.x;
            while x <= self.origin.x + w + 1e-9 {
                out.push(Point2::new(x, y));
                x += self.street_spacing;
            }
        }
        // Vertical streets (skip corners already emitted).
        for bx in 0..=self.blocks_x {
            let x = self.origin.x + bx as f64 * self.block_w;
            let mut y = self.origin.y + self.street_spacing;
            while y < self.origin.y + h - 1e-9 {
                if !out
                    .iter()
                    .any(|p| (p.x - x).abs() < 1e-9 && (p.y - y).abs() < 1e-9)
                {
                    out.push(Point2::new(x, y));
                }
                y += self.street_spacing;
            }
        }
        out
    }

    /// Generates a deployment of exactly `count` jittered street positions
    /// (evenly subsampled from the candidates).
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the number of candidate positions.
    pub fn generate<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Deployment {
        let candidates = self.candidate_positions();
        assert!(
            count <= candidates.len(),
            "requested {count} nodes but the town only has {} street positions",
            candidates.len()
        );
        // Even subsampling keeps coverage of the whole map.
        let mut positions = Vec::with_capacity(count);
        for k in 0..count {
            let idx = k * candidates.len() / count;
            let base = candidates[idx];
            let jx = (rng.random::<f64>() * 2.0 - 1.0) * self.jitter_m;
            let jy = (rng.random::<f64>() * 2.0 - 1.0) * self.jitter_m;
            positions.push(Point2::new(base.x + jx, base.y + jy));
        }
        Deployment::new(format!("town-{count}"), positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_math::rng::seeded;

    #[test]
    fn paper_town_has_enough_candidates_for_59() {
        let town = TownMap::paper_town();
        let candidates = town.candidate_positions();
        assert!(
            candidates.len() >= 59,
            "only {} candidates",
            candidates.len()
        );
    }

    #[test]
    fn paper_town_59_has_anisotropic_street_geometry() {
        let mut rng = seeded(20);
        let d = TownMap::paper_town().generate(59, &mut rng);
        assert_eq!(d.len(), 59);
        let (lo, hi) = d.bounding_box().unwrap();
        assert!(lo.x >= -10.0 && lo.y >= -10.0, "lo {lo}");
        assert!(hi.x <= 60.0 && hi.y <= 40.0, "hi {hi}");
        assert!(hi.x - lo.x > 40.0, "town should be wide");
        assert!(hi.y - lo.y > 25.0, "town should be tall");
    }

    #[test]
    fn pair_density_below_22m_is_substantial() {
        // The paper reports 945 of C(59,2)=1711 pairs below 22 m (note:
        // its figure axes suggest a far larger extent, which cannot produce
        // that pair count; we reproduce the measurement density the
        // algorithms actually consume).
        let mut rng = seeded(21);
        let d = TownMap::paper_town().generate(59, &mut rng);
        let pairs = d.pairs_within(22.0);
        assert!(
            (700..=1200).contains(&pairs),
            "pairs within 22 m: {pairs} (paper: 945)"
        );
        let avg_degree = 2.0 * pairs as f64 / 59.0;
        assert!(avg_degree > 20.0, "average ranging degree {avg_degree}");
    }

    #[test]
    fn street_alignment_is_visible() {
        // Without jitter, every node lies exactly on a street line.
        let town = TownMap {
            jitter_m: 0.0,
            ..TownMap::paper_town()
        };
        let mut rng = seeded(22);
        let d = town.generate(40, &mut rng);
        for p in &d.positions {
            let on_h_street = (0..=town.blocks_y)
                .any(|by| (p.y - (town.origin.y + by as f64 * town.block_h)).abs() < 1e-9);
            let on_v_street = (0..=town.blocks_x)
                .any(|bx| (p.x - (town.origin.x + bx as f64 * town.block_w)).abs() < 1e-9);
            assert!(on_h_street || on_v_street, "{p} is off the street grid");
        }
    }

    #[test]
    #[should_panic(expected = "street positions")]
    fn requesting_too_many_nodes_panics() {
        let mut rng = seeded(23);
        let _ = TownMap::paper_town().generate(10_000, &mut rng);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = TownMap::paper_town().generate(59, &mut seeded(5));
        let b = TownMap::paper_town().generate(59, &mut seeded(5));
        assert_eq!(a, b);
    }
}
