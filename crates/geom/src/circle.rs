//! Circles and circle–circle intersection.
//!
//! Multilateration draws "an imaginary circle at each anchor `a` of radius
//! `d_a`" (Section 4.1); with noisy distance measurements these circles no
//! longer meet in one point, and the paper's *intersection consistency check*
//! (Section 4.1.2) inspects the cluster structure of all pairwise circle
//! intersection points. This module provides the underlying primitive.

use crate::Point2;
use serde::{Deserialize, Serialize};

/// A circle: anchor position plus measured range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Center of the circle (the anchor's position).
    pub center: Point2,
    /// Radius (the measured distance), must be non-negative.
    pub radius: f64,
}

/// Result of intersecting two circles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CircleIntersection {
    /// The circles do not meet: either too far apart or nested.
    None,
    /// The circles touch at a single point.
    Tangent(Point2),
    /// The circles cross at two points.
    Two(Point2, Point2),
    /// The circles are (numerically) identical; every point is shared.
    Coincident,
}

impl Circle {
    /// Creates a circle.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(center: Point2, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "circle radius must be finite and non-negative, got {radius}"
        );
        Circle { center, radius }
    }

    /// Whether `p` lies on the circle within `tol`.
    pub fn contains_on_boundary(&self, p: Point2, tol: f64) -> bool {
        (self.center.distance(p) - self.radius).abs() <= tol
    }

    /// Intersects two circles.
    ///
    /// Tangency is detected with an absolute tolerance of `1e-9` relative to
    /// the circle scale; callers performing the consistency check should rely
    /// on [`CircleIntersection::points`] and cluster with their own radius.
    ///
    /// # Example
    ///
    /// ```
    /// use rl_geom::{Circle, CircleIntersection, Point2};
    ///
    /// let a = Circle::new(Point2::new(0.0, 0.0), 5.0);
    /// let b = Circle::new(Point2::new(8.0, 0.0), 5.0);
    /// match a.intersect(&b) {
    ///     CircleIntersection::Two(p, q) => {
    ///         assert_eq!(p.x, 4.0);
    ///         assert_eq!(q.x, 4.0);
    ///         assert_eq!(p.y, -q.y);
    ///     }
    ///     other => panic!("expected two intersections, got {other:?}"),
    /// }
    /// ```
    pub fn intersect(&self, other: &Circle) -> CircleIntersection {
        let delta = other.center - self.center;
        let d = delta.norm();
        let scale = self.radius.max(other.radius).max(d).max(1.0);
        let eps = 1e-9 * scale;

        if d < eps && (self.radius - other.radius).abs() < eps {
            return if self.radius < eps {
                // Two identical points.
                CircleIntersection::Tangent(self.center)
            } else {
                CircleIntersection::Coincident
            };
        }
        if d > self.radius + other.radius + eps {
            return CircleIntersection::None;
        }
        if d < (self.radius - other.radius).abs() - eps {
            return CircleIntersection::None;
        }
        if d < eps {
            // Concentric with different radii.
            return CircleIntersection::None;
        }

        // Distance from self.center to the radical line along delta.
        let a = (d * d + self.radius * self.radius - other.radius * other.radius) / (2.0 * d);
        let h_sq = self.radius * self.radius - a * a;
        let u = delta * (1.0 / d);
        let base = self.center + u * a;
        if h_sq <= eps * eps {
            return CircleIntersection::Tangent(base);
        }
        let h = h_sq.sqrt();
        let off = u.perp() * h;
        CircleIntersection::Two(base + off, base - off)
    }
}

impl CircleIntersection {
    /// The discrete intersection points (empty for `None` / `Coincident`).
    pub fn points(&self) -> Vec<Point2> {
        match *self {
            CircleIntersection::None | CircleIntersection::Coincident => vec![],
            CircleIntersection::Tangent(p) => vec![p],
            CircleIntersection::Two(p, q) => vec![p, q],
        }
    }

    /// Whether at least one discrete intersection point exists.
    pub fn is_intersecting(&self) -> bool {
        !matches!(self, CircleIntersection::None)
    }
}

/// Computes all pairwise intersection points of a set of circles, tagged with
/// the indices of the two circles that produced them.
///
/// This is the raw material of the multilateration consistency check: each
/// entry is `(i, j, point)` with `i < j`.
pub fn pairwise_intersections(circles: &[Circle]) -> Vec<(usize, usize, Point2)> {
    let mut out = Vec::new();
    for i in 0..circles.len() {
        for j in (i + 1)..circles.len() {
            for p in circles[i].intersect(&circles[j]).points() {
                out.push((i, j, p));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_point_intersection_symmetric() {
        let a = Circle::new(Point2::new(0.0, 0.0), 5.0);
        let b = Circle::new(Point2::new(8.0, 0.0), 5.0);
        match a.intersect(&b) {
            CircleIntersection::Two(p, q) => {
                assert!((p.x - 4.0).abs() < 1e-12);
                assert!((q.x - 4.0).abs() < 1e-12);
                assert!((p.y - 3.0).abs() < 1e-12);
                assert!((q.y + 3.0).abs() < 1e-12);
            }
            other => panic!("expected Two, got {other:?}"),
        }
    }

    #[test]
    fn intersection_is_commutative() {
        let a = Circle::new(Point2::new(1.0, 2.0), 3.0);
        let b = Circle::new(Point2::new(4.0, -1.0), 2.5);
        let pa: Vec<Point2> = a.intersect(&b).points();
        let mut pb: Vec<Point2> = b.intersect(&a).points();
        pb.reverse(); // points come out in mirrored order
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(&pb) {
            assert!(x.distance(*y) < 1e-9);
        }
    }

    #[test]
    fn external_tangency() {
        let a = Circle::new(Point2::new(0.0, 0.0), 2.0);
        let b = Circle::new(Point2::new(5.0, 0.0), 3.0);
        match a.intersect(&b) {
            CircleIntersection::Tangent(p) => {
                assert!(p.distance(Point2::new(2.0, 0.0)) < 1e-9);
            }
            other => panic!("expected Tangent, got {other:?}"),
        }
    }

    #[test]
    fn internal_tangency() {
        let a = Circle::new(Point2::new(0.0, 0.0), 5.0);
        let b = Circle::new(Point2::new(2.0, 0.0), 3.0);
        match a.intersect(&b) {
            CircleIntersection::Tangent(p) => {
                assert!(p.distance(Point2::new(5.0, 0.0)) < 1e-9);
            }
            other => panic!("expected Tangent, got {other:?}"),
        }
    }

    #[test]
    fn disjoint_and_nested() {
        let a = Circle::new(Point2::new(0.0, 0.0), 1.0);
        let far = Circle::new(Point2::new(10.0, 0.0), 1.0);
        assert_eq!(a.intersect(&far), CircleIntersection::None);
        let inner = Circle::new(Point2::new(0.1, 0.0), 0.2);
        assert_eq!(a.intersect(&inner), CircleIntersection::None);
        let concentric = Circle::new(Point2::new(0.0, 0.0), 2.0);
        assert_eq!(a.intersect(&concentric), CircleIntersection::None);
    }

    #[test]
    fn coincident_circles() {
        let a = Circle::new(Point2::new(3.0, 4.0), 2.0);
        assert_eq!(a.intersect(&a), CircleIntersection::Coincident);
        assert!(a.intersect(&a).points().is_empty());
        assert!(a.intersect(&a).is_intersecting());
    }

    #[test]
    fn degenerate_zero_radius() {
        let p = Circle::new(Point2::new(1.0, 1.0), 0.0);
        match p.intersect(&p) {
            CircleIntersection::Tangent(q) => assert_eq!(q, Point2::new(1.0, 1.0)),
            other => panic!("expected point tangency, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "radius must be finite")]
    fn negative_radius_panics() {
        let _ = Circle::new(Point2::ORIGIN, -1.0);
    }

    #[test]
    fn boundary_test_tolerance() {
        let c = Circle::new(Point2::ORIGIN, 5.0);
        assert!(c.contains_on_boundary(Point2::new(5.0, 0.0), 1e-9));
        assert!(c.contains_on_boundary(Point2::new(5.05, 0.0), 0.1));
        assert!(!c.contains_on_boundary(Point2::new(6.0, 0.0), 0.1));
    }

    #[test]
    fn pairwise_intersections_count_and_tags() {
        // Three mutually intersecting circles -> 3 pairs x 2 points.
        let circles = [
            Circle::new(Point2::new(0.0, 0.0), 2.0),
            Circle::new(Point2::new(2.0, 0.0), 2.0),
            Circle::new(Point2::new(1.0, 1.5), 2.0),
        ];
        let pts = pairwise_intersections(&circles);
        assert_eq!(pts.len(), 6);
        for &(i, j, p) in &pts {
            assert!(i < j);
            assert!(circles[i].contains_on_boundary(p, 1e-6));
            assert!(circles[j].contains_on_boundary(p, 1e-6));
        }
    }

    proptest! {
        /// Every reported intersection point lies on both circles.
        #[test]
        fn prop_points_on_both_circles(
            ax in -50.0f64..50.0, ay in -50.0f64..50.0, ar in 0.1f64..30.0,
            bx in -50.0f64..50.0, by in -50.0f64..50.0, br in 0.1f64..30.0,
        ) {
            let a = Circle::new(Point2::new(ax, ay), ar);
            let b = Circle::new(Point2::new(bx, by), br);
            for p in a.intersect(&b).points() {
                prop_assert!(a.contains_on_boundary(p, 1e-6 * (ar + br + 1.0)));
                prop_assert!(b.contains_on_boundary(p, 1e-6 * (ar + br + 1.0)));
            }
        }

        /// Circles around two anchors at the true distances of a hidden node
        /// intersect at (at least) the hidden node.
        #[test]
        fn prop_trilateration_geometry(
            nx in -20.0f64..20.0, ny in -20.0f64..20.0,
            ax in -20.0f64..20.0, ay in -20.0f64..20.0,
            bx in -20.0f64..20.0, by in -20.0f64..20.0,
        ) {
            let node = Point2::new(nx, ny);
            let a = Point2::new(ax, ay);
            let b = Point2::new(bx, by);
            prop_assume!(a.distance(b) > 1e-3);
            prop_assume!(node.distance(a) > 1e-3 && node.distance(b) > 1e-3);
            let ca = Circle::new(a, a.distance(node));
            let cb = Circle::new(b, b.distance(node));
            let pts = ca.intersect(&cb).points();
            prop_assert!(!pts.is_empty());
            let closest = pts.iter().map(|p| p.distance(node)).fold(f64::INFINITY, f64::min);
            prop_assert!(closest < 1e-5);
        }
    }
}
