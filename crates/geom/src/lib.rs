//! Planar geometry for the `resilient-localization` workspace.
//!
//! Localization in the paper is strictly two-dimensional, so this crate
//! provides exactly the 2-D toolkit the algorithms need:
//!
//! * [`point`] — [`Point2`] / [`Vec2`] with the usual vector arithmetic,
//! * [`transform`] — rigid transforms (rotation + optional reflection +
//!   translation) in the paper's row-vector homogeneous-coordinate
//!   convention (Section 4.3.1),
//! * [`circle`] — circle–circle intersection, the primitive behind the
//!   multilateration *intersection consistency check* (Section 4.1.2),
//! * [`procrustes`] — closed-form best-fit rigid alignment between point
//!   sets (the paper's center-of-mass/covariance transform method, also used
//!   to align computed coordinates with ground truth for evaluation).
//!
//! # Example
//!
//! ```
//! use rl_geom::{Point2, Vec2};
//!
//! let a = Point2::new(0.0, 0.0);
//! let b = Point2::new(3.0, 4.0);
//! assert_eq!(a.distance(b), 5.0);
//! assert_eq!(b - a, Vec2::new(3.0, 4.0));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod circle;
pub mod point;
pub mod procrustes;
pub mod transform;

pub use circle::{pairwise_intersections, Circle, CircleIntersection};
pub use point::{centroid, Point2, Vec2};
pub use procrustes::{fit_rigid_transform, fit_rigid_transform_weighted, AlignmentFit};
pub use transform::RigidTransform;

/// Error type for geometric routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeomError {
    /// An operation needed more points than were supplied.
    TooFewPoints {
        /// How many points are required.
        needed: usize,
        /// How many were provided.
        got: usize,
    },
    /// Two point sets that must correspond element-wise differ in length.
    LengthMismatch {
        /// Length of the first set.
        left: usize,
        /// Length of the second set.
        right: usize,
    },
    /// The input configuration is degenerate (e.g. all points coincident).
    Degenerate(&'static str),
}

impl core::fmt::Display for GeomError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GeomError::TooFewPoints { needed, got } => {
                write!(f, "needed at least {needed} points, got {got}")
            }
            GeomError::LengthMismatch { left, right } => {
                write!(f, "point sets differ in length: {left} vs {right}")
            }
            GeomError::Degenerate(what) => write!(f, "degenerate configuration: {what}"),
        }
    }
}

impl std::error::Error for GeomError {}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, GeomError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(
            GeomError::TooFewPoints { needed: 3, got: 1 }.to_string(),
            "needed at least 3 points, got 1"
        );
        assert_eq!(
            GeomError::LengthMismatch { left: 2, right: 5 }.to_string(),
            "point sets differ in length: 2 vs 5"
        );
        assert_eq!(
            GeomError::Degenerate("coincident points").to_string(),
            "degenerate configuration: coincident points"
        );
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<GeomError>();
    }
}
