//! Points and vectors in the plane.

use serde::{Deserialize, Serialize};

/// A position in the plane, in meters.
///
/// # Example
///
/// ```
/// use rl_geom::{Point2, Vec2};
///
/// let p = Point2::new(1.0, 2.0) + Vec2::new(0.5, -0.5);
/// assert_eq!(p, Point2::new(1.5, 1.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Easting coordinate (m).
    pub x: f64,
    /// Northing coordinate (m).
    pub y: f64,
}

/// A displacement in the plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// X component (m).
    pub x: f64,
    /// Y component (m).
    pub y: f64,
}

impl Point2 {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other` (no square root).
    pub fn distance_sq(self, other: Point2) -> f64 {
        (self - other).norm_sq()
    }

    /// Interprets the point as a displacement from the origin.
    pub fn to_vec(self) -> Vec2 {
        Vec2 {
            x: self.x,
            y: self.y,
        }
    }

    /// Whether both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2 {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm.
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Returns the vector rotated counterclockwise by `angle` radians.
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2 {
            x: c * self.x - s * self.y,
            y: s * self.x + c * self.y,
        }
    }

    /// Returns the perpendicular vector (counterclockwise quarter-turn).
    pub fn perp(self) -> Vec2 {
        Vec2 {
            x: -self.y,
            y: self.x,
        }
    }

    /// Returns a unit vector in this direction, or `None` for (near-)zero
    /// vectors (norm below `1e-12`).
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(Vec2 {
                x: self.x / n,
                y: self.y / n,
            })
        }
    }

    /// Angle of the vector from the +x axis, in `(-pi, pi]`.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Interprets the displacement as a point offset from the origin.
    pub fn to_point(self) -> Point2 {
        Point2 {
            x: self.x,
            y: self.y,
        }
    }
}

impl core::ops::Sub for Point2 {
    type Output = Vec2;
    fn sub(self, rhs: Point2) -> Vec2 {
        Vec2 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl core::ops::Add<Vec2> for Point2 {
    type Output = Point2;
    fn add(self, rhs: Vec2) -> Point2 {
        Point2 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl core::ops::Sub<Vec2> for Point2 {
    type Output = Point2;
    fn sub(self, rhs: Vec2) -> Point2 {
        Point2 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl core::ops::Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl core::ops::Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl core::ops::Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, s: f64) -> Vec2 {
        Vec2 {
            x: self.x * s,
            y: self.y * s,
        }
    }
}

impl core::ops::Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2 {
            x: -self.x,
            y: -self.y,
        }
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Point2 { x, y }
    }
}

impl From<(f64, f64)> for Vec2 {
    fn from((x, y): (f64, f64)) -> Self {
        Vec2 { x, y }
    }
}

impl core::fmt::Display for Point2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl core::fmt::Display for Vec2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "<{:.3}, {:.3}>", self.x, self.y)
    }
}

/// Centroid (center of mass) of a point set, `None` when empty.
///
/// The distributed transform method of Section 4.3.1 views translation
/// between coordinate systems as translation between the centers of mass of
/// the shared-neighbor sets.
pub fn centroid(points: &[Point2]) -> Option<Point2> {
    if points.is_empty() {
        return None;
    }
    let n = points.len() as f64;
    let (sx, sy) = points
        .iter()
        .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
    Some(Point2::new(sx / n, sy / n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_and_norm() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!((b - a).norm(), 5.0);
    }

    #[test]
    fn arithmetic_ops() {
        let p = Point2::new(1.0, 1.0);
        let v = Vec2::new(2.0, -1.0);
        assert_eq!(p + v, Point2::new(3.0, 0.0));
        assert_eq!(p - v, Point2::new(-1.0, 2.0));
        assert_eq!(v + v, Vec2::new(4.0, -2.0));
        assert_eq!(v - v, Vec2::ZERO);
        assert_eq!(v * 2.0, Vec2::new(4.0, -2.0));
        assert_eq!(-v, Vec2::new(-2.0, 1.0));
    }

    #[test]
    fn dot_cross_perp() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
        assert_eq!(a.perp(), b);
    }

    #[test]
    fn rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(core::f64::consts::FRAC_PI_2);
        assert!((v.x).abs() < 1e-15);
        assert!((v.y - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalized_handles_zero() {
        assert_eq!(Vec2::ZERO.normalized(), None);
        let u = Vec2::new(3.0, 4.0).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn angle_of_axes() {
        assert_eq!(Vec2::new(1.0, 0.0).angle(), 0.0);
        assert!((Vec2::new(0.0, 1.0).angle() - core::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point2::new(1.0, 2.0));
    }

    #[test]
    fn centroid_basic() {
        assert_eq!(centroid(&[]), None);
        let c = centroid(&[
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(1.0, 3.0),
        ])
        .unwrap();
        assert!((c.x - 1.0).abs() < 1e-15);
        assert!((c.y - 1.0).abs() < 1e-15);
    }

    #[test]
    fn conversions_and_display() {
        let p: Point2 = (1.0, 2.0).into();
        let v: Vec2 = (3.0, 4.0).into();
        assert_eq!(p.to_vec(), Vec2::new(1.0, 2.0));
        assert_eq!(v.to_point(), Point2::new(3.0, 4.0));
        assert_eq!(p.to_string(), "(1.000, 2.000)");
        assert_eq!(v.to_string(), "<3.000, 4.000>");
        assert!(p.is_finite());
        assert!(!Point2::new(f64::NAN, 0.0).is_finite());
    }

    #[test]
    fn serde_roundtrip() {
        let p = Point2::new(1.25, -7.5);
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<Point2>(&json).unwrap(), p);
    }

    proptest! {
        #[test]
        fn prop_triangle_inequality(
            ax in -100.0f64..100.0, ay in -100.0f64..100.0,
            bx in -100.0f64..100.0, by in -100.0f64..100.0,
            cx in -100.0f64..100.0, cy in -100.0f64..100.0,
        ) {
            let a = Point2::new(ax, ay);
            let b = Point2::new(bx, by);
            let c = Point2::new(cx, cy);
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        }

        #[test]
        fn prop_rotation_preserves_norm(
            x in -100.0f64..100.0, y in -100.0f64..100.0, theta in -10.0f64..10.0,
        ) {
            let v = Vec2::new(x, y);
            prop_assert!((v.rotated(theta).norm() - v.norm()).abs() < 1e-9);
        }

        #[test]
        fn prop_centroid_within_bbox(
            pts in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..30)
        ) {
            let points: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let c = centroid(&points).unwrap();
            let (min_x, max_x) = points.iter().fold((f64::INFINITY, f64::NEG_INFINITY),
                |(lo, hi), p| (lo.min(p.x), hi.max(p.x)));
            prop_assert!(c.x >= min_x - 1e-9 && c.x <= max_x + 1e-9);
        }
    }
}
