//! Closed-form best-fit rigid alignment between corresponding point sets.
//!
//! This implements the computationally cheap transform-estimation method of
//! Section 4.3.1: translation is taken between the centers of mass of the
//! shared point sets, the rotation angle is the closed-form minimizer
//! obtained from the cross-covariances
//! `[C_xu + C_yv, C_xv − C_yu] · [sin θ, cos θ]^T = 0`, and the reflection
//! factor `f ∈ {1, −1}` is chosen by comparing the resulting errors.
//!
//! The same routine serves two roles in the workspace:
//!
//! 1. the pairwise local-coordinate-system transform of **distributed LSS**
//!    (source = neighbor's local map, target = own local map), and
//! 2. the **evaluation alignment** of every experiment, where "computed
//!    coordinates were translated, rotated and flipped to achieve a best-fit
//!    match with the actual node coordinates" (Section 4.2.2).

use crate::{GeomError, Point2, Result, RigidTransform, Vec2};
use serde::{Deserialize, Serialize};

/// Outcome of fitting a rigid transform `T` with `T(source[i]) ≈ target[i]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlignmentFit {
    /// The fitted transform (source frame → target frame).
    pub transform: RigidTransform,
    /// Sum of squared residuals after alignment.
    pub sse: f64,
    /// Root-mean-square residual after alignment.
    pub rmse: f64,
    /// Per-point residual distances after alignment.
    pub residuals: Vec<f64>,
}

impl AlignmentFit {
    /// Mean residual distance (the paper's "average localization error"
    /// when used for evaluation).
    pub fn mean_residual(&self) -> f64 {
        if self.residuals.is_empty() {
            0.0
        } else {
            self.residuals.iter().sum::<f64>() / self.residuals.len() as f64
        }
    }

    /// Largest per-point residual.
    pub fn max_residual(&self) -> f64 {
        self.residuals.iter().cloned().fold(0.0, f64::max)
    }
}

/// Fits the rigid transform minimizing `Σ |T(source[i]) − target[i]|²`.
///
/// When `allow_reflection` is `true`, both reflection factors are tried and
/// the better one kept (the paper always allows reflection, because a local
/// LSS map is only determined up to a flip).
///
/// # Errors
///
/// * [`GeomError::LengthMismatch`] if the slices differ in length,
/// * [`GeomError::TooFewPoints`] with fewer than 2 points (the rotation is
///   underdetermined),
/// * [`GeomError::Degenerate`] when all source or all target points
///   coincide, leaving the rotation angle undefined.
///
/// # Example
///
/// ```
/// use rl_geom::{fit_rigid_transform, Point2, RigidTransform, Vec2};
///
/// let source = [Point2::new(0.0, 0.0), Point2::new(1.0, 0.0), Point2::new(0.0, 2.0)];
/// let hidden = RigidTransform::new(0.8, true, Vec2::new(3.0, -1.0));
/// let target: Vec<Point2> = source.iter().map(|&p| hidden.apply(p)).collect();
///
/// let fit = fit_rigid_transform(&source, &target, true)?;
/// assert!(fit.rmse < 1e-9);
/// # Ok::<(), rl_geom::GeomError>(())
/// ```
pub fn fit_rigid_transform(
    source: &[Point2],
    target: &[Point2],
    allow_reflection: bool,
) -> Result<AlignmentFit> {
    fit_weighted(source, target, None, allow_reflection)
}

/// The weighted variant of [`fit_rigid_transform`]: minimizes
/// `Σ w_i |T(source[i]) − target[i]|²`, so correspondences known to be
/// less reliable pull on the fit less. Distributed LSS uses this for its
/// pairwise local-map registration, down-weighting shared nodes far from
/// the two map centers (a local LSS map is most accurate near its
/// center, where the measurement graph is densest).
///
/// With uniform weights the fit is identical to [`fit_rigid_transform`].
/// [`AlignmentFit::sse`] and [`AlignmentFit::rmse`] become their
/// weight-adjusted forms (`Σ w r²` and `√(Σ w r² / Σ w)`);
/// [`AlignmentFit::residuals`] stays the raw per-point distances.
///
/// # Errors
///
/// Same as [`fit_rigid_transform`], plus:
///
/// * [`GeomError::LengthMismatch`] when `weights` differs in length,
/// * [`GeomError::Degenerate`] for a weight that is negative or not
///   finite, or a weight vector summing to (near) zero.
pub fn fit_rigid_transform_weighted(
    source: &[Point2],
    target: &[Point2],
    weights: &[f64],
    allow_reflection: bool,
) -> Result<AlignmentFit> {
    if weights.len() != source.len() {
        return Err(GeomError::LengthMismatch {
            left: source.len(),
            right: weights.len(),
        });
    }
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return Err(GeomError::Degenerate(
            "weights must be finite and non-negative",
        ));
    }
    if weights.iter().sum::<f64>() <= 1e-18 {
        return Err(GeomError::Degenerate("weights sum to zero"));
    }
    fit_weighted(source, target, Some(weights), allow_reflection)
}

/// Shared implementation of the (weighted) rigid fit. `weights: None` is
/// the uniform case and reproduces the historical unweighted arithmetic
/// bit for bit (every factor is then exactly `1.0`).
fn fit_weighted(
    source: &[Point2],
    target: &[Point2],
    weights: Option<&[f64]>,
    allow_reflection: bool,
) -> Result<AlignmentFit> {
    if source.len() != target.len() {
        return Err(GeomError::LengthMismatch {
            left: source.len(),
            right: target.len(),
        });
    }
    if source.len() < 2 {
        return Err(GeomError::TooFewPoints {
            needed: 2,
            got: source.len(),
        });
    }
    let w_of = |i: usize| weights.map_or(1.0, |w| w[i]);
    let w_sum: f64 = (0..source.len()).map(&w_of).sum();
    let weighted_centroid = |pts: &[Point2]| {
        let (sx, sy) = pts.iter().enumerate().fold((0.0, 0.0), |(sx, sy), (i, p)| {
            (sx + w_of(i) * p.x, sy + w_of(i) * p.y)
        });
        Point2::new(sx / w_sum, sy / w_sum)
    };
    let mu_src = weighted_centroid(source);
    let mu_tgt = weighted_centroid(target);

    let spread = |pts: &[Point2], mu: Point2| {
        pts.iter()
            .enumerate()
            .map(|(i, p)| w_of(i) * p.distance_sq(mu))
            .sum::<f64>()
    };
    if spread(source, mu_src) < 1e-18 || spread(target, mu_tgt) < 1e-18 {
        return Err(GeomError::Degenerate("all points coincide"));
    }

    let factors: &[f64] = if allow_reflection {
        &[1.0, -1.0]
    } else {
        &[1.0]
    };
    let mut best: Option<AlignmentFit> = None;

    for &f in factors {
        // Centered coordinates; the reflection factor acts on the source's
        // second coordinate (matching `RigidTransform`'s convention).
        let centered: Vec<(Vec2, Vec2)> = source
            .iter()
            .zip(target)
            .map(|(&s, &t)| {
                let sc = s - mu_src;
                let tc = t - mu_tgt;
                (Vec2::new(sc.x, f * sc.y), tc)
            })
            .collect();

        // Weighted cross-covariance sums between target (x, y) and
        // f-adjusted source (u, v). Our transform applies x = c·u + s·v,
        // y = −s·u + c·v; the stationarity condition is
        // s·(S_xu − S_yv) = c·(S_xv + S_yu) ...
        // derive: minimize Σ w (c·u + s·v − x)² + w (−s·u + c·v − y)².
        // dE/dθ = 0  ⇔  s·(S_xu + S_yv) + c·(−S_xv + S_yu) = 0
        //         ⇔  θ = atan2(S_xv − S_yu, S_xu + S_yv)  (up to π).
        let (mut sxu, mut sxv, mut syu, mut syv) = (0.0, 0.0, 0.0, 0.0);
        for (i, &(sv, tv)) in centered.iter().enumerate() {
            let w = w_of(i);
            sxu += w * (tv.x * sv.x);
            sxv += w * (tv.x * sv.y);
            syu += w * (tv.y * sv.x);
            syv += w * (tv.y * sv.y);
        }
        let theta0 = (sxv - syu).atan2(sxu + syv);

        // Both θ and θ+π satisfy the stationarity equation; evaluate both.
        for theta in [theta0, theta0 + core::f64::consts::PI] {
            let linear = RigidTransform::new(theta, f < 0.0, Vec2::ZERO);
            let t = mu_tgt.to_vec() - linear.apply(mu_src).to_vec();
            let candidate = RigidTransform::new(theta, f < 0.0, t);
            let residuals: Vec<f64> = source
                .iter()
                .zip(target)
                .map(|(&s, &t)| candidate.apply(s).distance(t))
                .collect();
            let sse: f64 = residuals
                .iter()
                .enumerate()
                .map(|(i, r)| w_of(i) * (r * r))
                .sum();
            if best.as_ref().is_none_or(|b| sse < b.sse) {
                let rmse = (sse / w_sum).sqrt();
                best = Some(AlignmentFit {
                    transform: candidate,
                    sse,
                    rmse,
                    residuals,
                });
            }
        }
    }

    Ok(best.expect("at least one candidate evaluated"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centroid;
    use proptest::prelude::*;

    fn square() -> Vec<Point2> {
        vec![
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(2.0, 1.0),
            Point2::new(0.0, 1.0),
        ]
    }

    #[test]
    fn identity_when_already_aligned() {
        let pts = square();
        let fit = fit_rigid_transform(&pts, &pts, true).unwrap();
        assert!(fit.rmse < 1e-12);
        assert!(fit.sse < 1e-20);
        assert!(fit.mean_residual() < 1e-12);
        let p = Point2::new(0.5, 0.5);
        assert!(fit.transform.apply(p).distance(p) < 1e-9);
    }

    /// Full Procrustes round trip: push an irregular point set through a
    /// hidden rigid transform (rotation + reflection + translation), recover
    /// the transform from correspondences alone, and demand sub-1e-9
    /// residuals — both on the fitted points and on held-out probe points.
    #[test]
    fn round_trip_recovers_hidden_transform_below_1e9() {
        let source = vec![
            Point2::new(0.0, 0.0),
            Point2::new(9.1, 0.3),
            Point2::new(4.4, 8.2),
            Point2::new(-3.7, 5.6),
            Point2::new(1.2, -6.9),
            Point2::new(12.8, 4.1),
        ];
        for &(theta, reflected) in &[(0.8, false), (2.4, true), (-1.3, true)] {
            let hidden = RigidTransform::new(theta, reflected, Vec2::new(17.0, -42.5));
            let target: Vec<Point2> = source.iter().map(|&p| hidden.apply(p)).collect();

            let fit = fit_rigid_transform(&source, &target, true).unwrap();
            assert!(fit.rmse < 1e-9, "rmse {} for theta {theta}", fit.rmse);
            assert!(
                fit.max_residual() < 1e-9,
                "max residual {} for theta {theta}",
                fit.max_residual()
            );
            assert_eq!(fit.transform.is_reflected(), reflected);

            // The recovered map must agree with the hidden transform off the
            // fitted correspondences too.
            for &probe in &[Point2::new(100.0, -50.0), Point2::new(-8.0, 33.3)] {
                let err = fit.transform.apply(probe).distance(hidden.apply(probe));
                assert!(err < 1e-8, "probe error {err} for theta {theta}");
            }
        }
    }

    #[test]
    fn recovers_pure_translation() {
        let src = square();
        let shift = Vec2::new(10.0, -3.0);
        let tgt: Vec<Point2> = src.iter().map(|&p| p + shift).collect();
        let fit = fit_rigid_transform(&src, &tgt, true).unwrap();
        assert!(fit.rmse < 1e-12);
        assert!((fit.transform.translation_vec() - shift).norm() < 1e-9);
        assert!(!fit.transform.is_reflected());
    }

    #[test]
    fn recovers_rotation_translation() {
        let src = square();
        let hidden = RigidTransform::new(1.1, false, Vec2::new(-4.0, 2.0));
        let tgt: Vec<Point2> = src.iter().map(|&p| hidden.apply(p)).collect();
        let fit = fit_rigid_transform(&src, &tgt, true).unwrap();
        assert!(fit.rmse < 1e-10, "rmse {}", fit.rmse);
        assert!(!fit.transform.is_reflected());
    }

    #[test]
    fn recovers_reflection() {
        let src = square();
        let hidden = RigidTransform::new(-0.4, true, Vec2::new(1.0, 7.0));
        let tgt: Vec<Point2> = src.iter().map(|&p| hidden.apply(p)).collect();
        let fit = fit_rigid_transform(&src, &tgt, true).unwrap();
        assert!(fit.rmse < 1e-10, "rmse {}", fit.rmse);
        assert!(fit.transform.is_reflected());
    }

    #[test]
    fn reflection_disallowed_fits_worse() {
        let src = square();
        let hidden = RigidTransform::new(0.3, true, Vec2::ZERO);
        let tgt: Vec<Point2> = src.iter().map(|&p| hidden.apply(p)).collect();
        let with = fit_rigid_transform(&src, &tgt, true).unwrap();
        let without = fit_rigid_transform(&src, &tgt, false).unwrap();
        assert!(with.rmse < 1e-10);
        assert!(without.rmse > 0.1, "rmse {}", without.rmse);
        assert!(!without.transform.is_reflected());
    }

    #[test]
    fn noisy_fit_close_to_truth() {
        let src = square();
        let hidden = RigidTransform::new(2.0, false, Vec2::new(5.0, 5.0));
        // Perturb targets slightly and check the fit error stays small.
        let tgt: Vec<Point2> = src
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let q = hidden.apply(p);
                Point2::new(q.x + 0.01 * (i as f64 - 1.5), q.y - 0.01 * (i as f64 - 1.5))
            })
            .collect();
        let fit = fit_rigid_transform(&src, &tgt, true).unwrap();
        assert!(fit.rmse < 0.05, "rmse {}", fit.rmse);
        assert!(fit.max_residual() < 0.1);
    }

    #[test]
    fn error_cases() {
        let pts = square();
        assert!(matches!(
            fit_rigid_transform(&pts, &pts[..3], true),
            Err(GeomError::LengthMismatch { .. })
        ));
        assert!(matches!(
            fit_rigid_transform(&pts[..1], &pts[..1], true),
            Err(GeomError::TooFewPoints { .. })
        ));
        let same = vec![Point2::new(1.0, 1.0); 4];
        assert!(matches!(
            fit_rigid_transform(&same, &pts, true),
            Err(GeomError::Degenerate(_))
        ));
        assert!(matches!(
            fit_rigid_transform(&pts, &same, true),
            Err(GeomError::Degenerate(_))
        ));
    }

    #[test]
    fn uniform_weights_reproduce_unweighted_fit_bitwise() {
        let src = vec![
            Point2::new(0.0, 0.0),
            Point2::new(9.1, 0.3),
            Point2::new(4.4, 8.2),
            Point2::new(-3.7, 5.6),
        ];
        let hidden = RigidTransform::new(1.2, true, Vec2::new(3.0, -2.0));
        let tgt: Vec<Point2> = src
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let q = hidden.apply(p);
                Point2::new(q.x + 0.05 * i as f64, q.y - 0.03 * i as f64)
            })
            .collect();
        let plain = fit_rigid_transform(&src, &tgt, true).unwrap();
        let weighted = fit_rigid_transform_weighted(&src, &tgt, &[1.0; 4], true).unwrap();
        assert_eq!(plain, weighted, "uniform weights must change nothing");
    }

    #[test]
    fn weights_pull_the_fit_toward_reliable_points() {
        // Three exact correspondences plus one grossly corrupted point:
        // down-weighting the outlier must beat the uniform fit.
        let src = vec![
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(0.0, 10.0),
            Point2::new(10.0, 10.0),
        ];
        let hidden = RigidTransform::new(0.7, false, Vec2::new(4.0, 1.0));
        let mut tgt: Vec<Point2> = src.iter().map(|&p| hidden.apply(p)).collect();
        tgt[3] = Point2::new(tgt[3].x + 8.0, tgt[3].y - 6.0); // corrupted
        let uniform = fit_rigid_transform(&src, &tgt, true).unwrap();
        let weighted =
            fit_rigid_transform_weighted(&src, &tgt, &[1.0, 1.0, 1.0, 0.01], true).unwrap();
        let err = |t: &RigidTransform| {
            src[..3]
                .iter()
                .map(|&p| t.apply(p).distance(hidden.apply(p)))
                .sum::<f64>()
        };
        assert!(
            err(&weighted.transform) < 0.2 * err(&uniform.transform),
            "weighted {} vs uniform {}",
            err(&weighted.transform),
            err(&uniform.transform)
        );
    }

    #[test]
    fn weighted_error_cases() {
        let src = square();
        let tgt = square();
        assert!(matches!(
            fit_rigid_transform_weighted(&src, &tgt, &[1.0; 3], true),
            Err(GeomError::LengthMismatch { .. })
        ));
        assert!(matches!(
            fit_rigid_transform_weighted(&src, &tgt, &[1.0, -1.0, 1.0, 1.0], true),
            Err(GeomError::Degenerate(_))
        ));
        assert!(matches!(
            fit_rigid_transform_weighted(&src, &tgt, &[1.0, f64::NAN, 1.0, 1.0], true),
            Err(GeomError::Degenerate(_))
        ));
        assert!(matches!(
            fit_rigid_transform_weighted(&src, &tgt, &[0.0; 4], true),
            Err(GeomError::Degenerate(_))
        ));
    }

    #[test]
    fn two_point_fit_is_exact() {
        let src = [Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)];
        let hidden = RigidTransform::new(0.9, false, Vec2::new(2.0, 2.0));
        let tgt: Vec<Point2> = src.iter().map(|&p| hidden.apply(p)).collect();
        let fit = fit_rigid_transform(&src, &tgt, true).unwrap();
        assert!(fit.rmse < 1e-10);
    }

    proptest! {
        /// Fitting exactly transformed points recovers a zero-residual fit
        /// for any hidden rigid transform and any non-degenerate point set.
        #[test]
        fn prop_exact_recovery(
            theta in -3.1f64..3.1,
            reflected in proptest::bool::ANY,
            tx in -50.0f64..50.0,
            ty in -50.0f64..50.0,
            pts in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 3..20),
        ) {
            let source: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            // Ensure non-degenerate spread.
            let mu = centroid(&source).unwrap();
            prop_assume!(source.iter().map(|p| p.distance_sq(mu)).sum::<f64>() > 1e-6);
            let hidden = RigidTransform::new(theta, reflected, Vec2::new(tx, ty));
            let target: Vec<Point2> = source.iter().map(|&p| hidden.apply(p)).collect();
            let fit = fit_rigid_transform(&source, &target, true).unwrap();
            prop_assert!(fit.rmse < 1e-7, "rmse {}", fit.rmse);
        }

        /// The fitted transform is never worse than plain centroid
        /// translation.
        #[test]
        fn prop_at_least_as_good_as_translation(
            pairs in proptest::collection::vec(
                ((-20.0f64..20.0, -20.0f64..20.0), (-20.0f64..20.0, -20.0f64..20.0)), 3..15),
        ) {
            let source: Vec<Point2> = pairs.iter().map(|&((x, y), _)| Point2::new(x, y)).collect();
            let target: Vec<Point2> = pairs.iter().map(|&(_, (x, y))| Point2::new(x, y)).collect();
            let ms = centroid(&source).unwrap();
            let mt = centroid(&target).unwrap();
            prop_assume!(source.iter().map(|p| p.distance_sq(ms)).sum::<f64>() > 1e-6);
            prop_assume!(target.iter().map(|p| p.distance_sq(mt)).sum::<f64>() > 1e-6);
            let fit = fit_rigid_transform(&source, &target, true).unwrap();
            let translation_sse: f64 = source.iter().zip(&target)
                .map(|(&s, &t)| ((s - ms) - (t - mt)).norm_sq())
                .sum();
            prop_assert!(fit.sse <= translation_sse + 1e-9);
        }
    }
}
