//! Rigid transforms between planar coordinate systems.
//!
//! Section 4.3.1 of the paper expresses the transform between two local
//! coordinate systems as a composition of rotation, optional reflection and
//! translation, written in homogeneous coordinates with **row vectors**:
//!
//! ```text
//! [x, y, 1] = [u, v, 1] · | cos θ   -sin θ   0 |
//!                         | f sin θ  f cos θ 0 |
//!                         | tx       ty      1 |
//! ```
//!
//! with rotation angle `θ`, reflection factor `f ∈ {1, -1}` and translation
//! `(tx, ty)`. [`RigidTransform`] stores exactly these parameters and
//! provides application, composition and inversion.

use crate::{Point2, Vec2};
use serde::{Deserialize, Serialize};

/// A distance-preserving map of the plane: rotation by `theta`, reflection
/// of the *y* input axis when `reflected`, then translation.
///
/// Applying the transform to `(u, v)` yields, following the paper's matrix:
///
/// ```text
/// x = u·cosθ + v·f·sinθ + tx
/// y = -u·sinθ + v·f·cosθ + ty
/// ```
///
/// # Example
///
/// ```
/// use rl_geom::{Point2, RigidTransform, Vec2};
///
/// // Quarter-turn plus a shift; distances are preserved.
/// let t = RigidTransform::new(std::f64::consts::FRAC_PI_2, false, Vec2::new(1.0, 0.0));
/// let a = t.apply(Point2::new(1.0, 0.0));
/// let b = t.apply(Point2::new(0.0, 1.0));
/// let d = Point2::new(1.0, 0.0).distance(Point2::new(0.0, 1.0));
/// assert!((a.distance(b) - d).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RigidTransform {
    theta: f64,
    reflected: bool,
    translation: Vec2,
}

impl RigidTransform {
    /// The identity transform.
    pub const IDENTITY: RigidTransform = RigidTransform {
        theta: 0.0,
        reflected: false,
        translation: Vec2::ZERO,
    };

    /// Creates a transform with rotation `theta` (radians), reflection flag
    /// and translation.
    pub fn new(theta: f64, reflected: bool, translation: Vec2) -> Self {
        RigidTransform {
            theta,
            reflected,
            translation,
        }
    }

    /// Pure translation.
    pub fn translation(t: Vec2) -> Self {
        RigidTransform::new(0.0, false, t)
    }

    /// Pure rotation about the origin.
    pub fn rotation(theta: f64) -> Self {
        RigidTransform::new(theta, false, Vec2::ZERO)
    }

    /// Rotation angle in radians.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Whether the transform includes a reflection (`f = -1` in the paper).
    pub fn is_reflected(&self) -> bool {
        self.reflected
    }

    /// Translation component.
    pub fn translation_vec(&self) -> Vec2 {
        self.translation
    }

    /// The paper's reflection factor `f`: `-1.0` if reflected else `1.0`.
    pub fn reflection_factor(&self) -> f64 {
        if self.reflected {
            -1.0
        } else {
            1.0
        }
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: Point2) -> Point2 {
        let (s, c) = self.theta.sin_cos();
        let f = self.reflection_factor();
        Point2 {
            x: p.x * c + p.y * f * s + self.translation.x,
            y: -p.x * s + p.y * f * c + self.translation.y,
        }
    }

    /// Applies the transform to a displacement (no translation).
    pub fn apply_vec(&self, v: Vec2) -> Vec2 {
        let (s, c) = self.theta.sin_cos();
        let f = self.reflection_factor();
        Vec2 {
            x: v.x * c + v.y * f * s,
            y: -v.x * s + v.y * f * c,
        }
    }

    /// Applies the transform to every point in a slice.
    pub fn apply_all(&self, points: &[Point2]) -> Vec<Point2> {
        points.iter().map(|&p| self.apply(p)).collect()
    }

    /// Returns the transform as the paper's 3×3 row-vector homogeneous
    /// matrix, row-major: `[x, y, 1] = [u, v, 1] · M`.
    pub fn to_matrix(&self) -> [[f64; 3]; 3] {
        let (s, c) = self.theta.sin_cos();
        let f = self.reflection_factor();
        [
            [c, -s, 0.0],
            [f * s, f * c, 0.0],
            [self.translation.x, self.translation.y, 1.0],
        ]
    }

    /// Builds a transform from the paper's 3×3 row-vector matrix.
    ///
    /// Returns `None` if the matrix is not a rigid row-vector homogeneous
    /// transform (orthonormal upper-left block, last column `(0, 0, 1)`),
    /// within tolerance `1e-9`.
    pub fn from_matrix(m: &[[f64; 3]; 3]) -> Option<Self> {
        let eps = 1e-9;
        if (m[0][2]).abs() > eps || (m[1][2]).abs() > eps || (m[2][2] - 1.0).abs() > eps {
            return None;
        }
        let r0 = Vec2::new(m[0][0], m[0][1]);
        let r1 = Vec2::new(m[1][0], m[1][1]);
        if (r0.norm() - 1.0).abs() > eps || (r1.norm() - 1.0).abs() > eps || r0.dot(r1).abs() > eps
        {
            return None;
        }
        // det of the 2x2 block: +1 without reflection, -1 with.
        let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
        let reflected = det < 0.0;
        // First row is (cos θ, -sin θ) in both cases.
        let theta = (-m[0][1]).atan2(m[0][0]);
        Some(RigidTransform::new(
            theta,
            reflected,
            Vec2::new(m[2][0], m[2][1]),
        ))
    }

    /// Composition: applies `self` first, then `next`.
    ///
    /// `self.then(&next).apply(p) == next.apply(self.apply(p))`.
    pub fn then(&self, next: &RigidTransform) -> RigidTransform {
        // Compose via matrices, then re-extract parameters: with row vectors,
        // p * M_self * M_next.
        let a = self.to_matrix();
        let b = next.to_matrix();
        let mut m = [[0.0; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                for (k, bk) in b.iter().enumerate() {
                    m[i][j] += a[i][k] * bk[j];
                }
            }
        }
        RigidTransform::from_matrix(&m).expect("composition of rigid transforms is rigid")
    }

    /// The inverse transform.
    pub fn inverse(&self) -> RigidTransform {
        // Invert by applying the reverse operations: p' = R(p) + t, so
        // p = R^{-1}(p' - t). Extract the parameters of that map by probing
        // the origin and axes — cheap and avoids sign bookkeeping.
        let o = self.apply(Point2::ORIGIN);
        let reflected = self.reflected;
        // Linear block L of self (row-vector convention): rows are images of
        // the input axes. The inverse block is L^T when f = +1; when
        // reflected, invert directly.
        let theta = if reflected {
            // L = [[c, -s], [-s, -c]] (f = -1): it is its own inverse block
            // family; recompute angle from the inverse matrix.
            let m = self.to_matrix();
            // 2x2 inverse of [[a,b],[c,d]] = 1/det [[d,-b],[-c,a]], det = -1.
            let (a, b, c, d) = (m[0][0], m[0][1], m[1][0], m[1][1]);
            let det = a * d - b * c;
            let ia = d / det;
            let ib = -b / det;
            (-ib).atan2(ia)
        } else {
            -self.theta
        };
        let inv_linear = RigidTransform::new(theta, reflected, Vec2::ZERO);
        let t = inv_linear.apply_vec(-o.to_vec());
        RigidTransform::new(theta, reflected, t)
    }
}

impl Default for RigidTransform {
    fn default() -> Self {
        RigidTransform::IDENTITY
    }
}

impl core::fmt::Display for RigidTransform {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "RigidTransform(theta={:.4} rad, f={}, t={})",
            self.theta,
            self.reflection_factor(),
            self.translation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: Point2, b: Point2) -> bool {
        a.distance(b) < 1e-9
    }

    #[test]
    fn identity_fixes_points() {
        let p = Point2::new(3.0, -2.0);
        assert_eq!(RigidTransform::IDENTITY.apply(p), p);
        assert_eq!(RigidTransform::default(), RigidTransform::IDENTITY);
    }

    #[test]
    fn translation_only() {
        let t = RigidTransform::translation(Vec2::new(1.0, 2.0));
        assert!(close(t.apply(Point2::ORIGIN), Point2::new(1.0, 2.0)));
    }

    #[test]
    fn rotation_matches_paper_convention() {
        // Paper matrix with θ = 90°, f = 1: [u,v,1]·M = (u·0 + v·1, -u·1 + v·0)
        // so (1, 0) -> (0, -1): the row-vector convention rotates clockwise
        // for positive θ.
        let t = RigidTransform::rotation(core::f64::consts::FRAC_PI_2);
        let p = t.apply(Point2::new(1.0, 0.0));
        assert!(close(p, Point2::new(0.0, -1.0)), "got {p}");
    }

    #[test]
    fn reflection_flips_orientation() {
        let t = RigidTransform::new(0.0, true, Vec2::ZERO);
        // f = -1, θ = 0: (u, v) -> (u, -v).
        assert!(close(
            t.apply(Point2::new(2.0, 3.0)),
            Point2::new(2.0, -3.0)
        ));
        // Orientation of a triangle flips.
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        let orientation = |a: Point2, b: Point2, c: Point2| (b - a).cross(c - a).signum();
        assert_eq!(
            orientation(t.apply(a), t.apply(b), t.apply(c)),
            -orientation(a, b, c)
        );
    }

    #[test]
    fn matrix_roundtrip() {
        let t = RigidTransform::new(0.7, true, Vec2::new(-4.0, 9.0));
        let m = t.to_matrix();
        let back = RigidTransform::from_matrix(&m).unwrap();
        assert!((back.theta() - t.theta()).abs() < 1e-12);
        assert_eq!(back.is_reflected(), t.is_reflected());
        assert!((back.translation_vec() - t.translation_vec()).norm() < 1e-12);
    }

    #[test]
    fn from_matrix_rejects_non_rigid() {
        let scaled = [[2.0, 0.0, 0.0], [0.0, 2.0, 0.0], [0.0, 0.0, 1.0]];
        assert_eq!(RigidTransform::from_matrix(&scaled), None);
        let sheared = [[1.0, 0.5, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
        assert_eq!(RigidTransform::from_matrix(&sheared), None);
        let bad_col = [[1.0, 0.0, 0.3], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
        assert_eq!(RigidTransform::from_matrix(&bad_col), None);
    }

    #[test]
    fn composition_order() {
        let rot = RigidTransform::rotation(0.3);
        let shift = RigidTransform::translation(Vec2::new(5.0, 0.0));
        let p = Point2::new(1.0, 1.0);
        let composed = rot.then(&shift);
        assert!(close(composed.apply(p), shift.apply(rot.apply(p))));
        let other_order = shift.then(&rot);
        assert!(close(other_order.apply(p), rot.apply(shift.apply(p))));
        assert!(!close(composed.apply(p), other_order.apply(p)));
    }

    #[test]
    fn inverse_of_rotation_translation() {
        let t = RigidTransform::new(1.1, false, Vec2::new(3.0, -2.0));
        let inv = t.inverse();
        let p = Point2::new(-7.0, 2.5);
        assert!(close(inv.apply(t.apply(p)), p));
        assert!(close(t.apply(inv.apply(p)), p));
    }

    #[test]
    fn inverse_with_reflection() {
        let t = RigidTransform::new(-0.6, true, Vec2::new(1.0, 4.0));
        let inv = t.inverse();
        let p = Point2::new(2.0, 3.0);
        assert!(close(inv.apply(t.apply(p)), p));
        assert!(close(t.apply(inv.apply(p)), p));
    }

    #[test]
    fn display_mentions_parameters() {
        let t = RigidTransform::new(0.5, true, Vec2::new(1.0, 2.0));
        let s = t.to_string();
        assert!(s.contains("0.5000"));
        assert!(s.contains("f=-1"));
    }

    #[test]
    fn serde_roundtrip() {
        let t = RigidTransform::new(0.25, true, Vec2::new(-1.0, 2.0));
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<RigidTransform>(&json).unwrap(), t);
    }

    proptest! {
        #[test]
        fn prop_preserves_distances(
            theta in -6.3f64..6.3,
            reflected in proptest::bool::ANY,
            tx in -100.0f64..100.0, ty in -100.0f64..100.0,
            ax in -50.0f64..50.0, ay in -50.0f64..50.0,
            bx in -50.0f64..50.0, by in -50.0f64..50.0,
        ) {
            let t = RigidTransform::new(theta, reflected, Vec2::new(tx, ty));
            let a = Point2::new(ax, ay);
            let b = Point2::new(bx, by);
            prop_assert!((t.apply(a).distance(t.apply(b)) - a.distance(b)).abs() < 1e-9);
        }

        #[test]
        fn prop_inverse_roundtrip(
            theta in -6.3f64..6.3,
            reflected in proptest::bool::ANY,
            tx in -100.0f64..100.0, ty in -100.0f64..100.0,
            px in -50.0f64..50.0, py in -50.0f64..50.0,
        ) {
            let t = RigidTransform::new(theta, reflected, Vec2::new(tx, ty));
            let p = Point2::new(px, py);
            prop_assert!(t.inverse().apply(t.apply(p)).distance(p) < 1e-8);
        }

        #[test]
        fn prop_composition_associative(
            t1 in (-3.0f64..3.0, proptest::bool::ANY, -10.0f64..10.0, -10.0f64..10.0),
            t2 in (-3.0f64..3.0, proptest::bool::ANY, -10.0f64..10.0, -10.0f64..10.0),
            t3 in (-3.0f64..3.0, proptest::bool::ANY, -10.0f64..10.0, -10.0f64..10.0),
            px in -20.0f64..20.0, py in -20.0f64..20.0,
        ) {
            let mk = |(th, r, x, y): (f64, bool, f64, f64)| RigidTransform::new(th, r, Vec2::new(x, y));
            let (a, b, c) = (mk(t1), mk(t2), mk(t3));
            let p = Point2::new(px, py);
            let left = a.then(&b).then(&c).apply(p);
            let right = a.then(&b.then(&c)).apply(p);
            prop_assert!(left.distance(right) < 1e-8);
        }
    }
}
