//! Cyclic Jacobi eigendecomposition for symmetric matrices.
//!
//! Classical multidimensional scaling extracts node coordinates from the two
//! dominant eigenpairs of a double-centered squared-distance matrix; the
//! [`SymmetricEigen`] solver below provides them without any external linear
//! algebra dependency. The cyclic Jacobi method is simple, numerically robust
//! for symmetric input, and easily fast enough for the network sizes in the
//! paper (n ≤ a few hundred).

use crate::{DMatrix, MathError, Result};

/// Eigendecomposition of a real symmetric matrix, eigenvalues sorted in
/// descending order.
///
/// # Example
///
/// ```
/// use rl_math::{DMatrix, SymmetricEigen};
///
/// let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
/// let eig = SymmetricEigen::new(&a).unwrap();
/// assert!((eig.eigenvalues()[0] - 3.0).abs() < 1e-10);
/// assert!((eig.eigenvalues()[1] - 1.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    /// Column `k` of this matrix is the eigenvector for `eigenvalues[k]`.
    eigenvectors: DMatrix,
}

/// Maximum number of full Jacobi sweeps before declaring failure.
const MAX_SWEEPS: usize = 100;
/// Off-diagonal Frobenius mass below which the matrix counts as diagonal.
const CONVERGENCE_EPS: f64 = 1e-12;

impl SymmetricEigen {
    /// Computes the eigendecomposition of symmetric matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`MathError::NotSquare`] if `a` is rectangular.
    /// * [`MathError::InvalidArgument`] if `a` is not symmetric
    ///   (tolerance `1e-9` on the worst element pair) or is empty.
    /// * [`MathError::NoConvergence`] if Jacobi sweeps fail to drive the
    ///   off-diagonal mass below tolerance (does not happen for finite
    ///   symmetric input in practice).
    pub fn new(a: &DMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(MathError::NotSquare {
                dims: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(MathError::InvalidArgument("empty matrix"));
        }
        if a.asymmetry()? > 1e-9 {
            return Err(MathError::InvalidArgument("matrix is not symmetric"));
        }

        let mut m = a.clone();
        let mut v = DMatrix::identity(n);
        let scale = a.frobenius_norm().max(1.0);

        let mut sweeps = 0;
        loop {
            let off = off_diagonal_norm(&m);
            if off <= CONVERGENCE_EPS * scale {
                break;
            }
            if sweeps >= MAX_SWEEPS {
                return Err(MathError::NoConvergence {
                    sweeps,
                    off_diagonal: off,
                });
            }
            sweeps += 1;
            for p in 0..n {
                for q in (p + 1)..n {
                    rotate(&mut m, &mut v, p, q);
                }
            }
        }

        // Sort eigenpairs by descending eigenvalue.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            m[(j, j)]
                .partial_cmp(&m[(i, i)])
                .expect("finite eigenvalues")
        });
        let eigenvalues: Vec<f64> = order.iter().map(|&k| m[(k, k)]).collect();
        let mut eigenvectors = DMatrix::zeros(n, n);
        for (new_col, &old_col) in order.iter().enumerate() {
            for row in 0..n {
                eigenvectors[(row, new_col)] = v[(row, old_col)];
            }
        }

        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Eigenvalues in descending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Matrix whose column `k` is the unit eigenvector of `eigenvalues()[k]`.
    pub fn eigenvectors(&self) -> &DMatrix {
        &self.eigenvectors
    }

    /// Returns the eigenvector for the `k`-th largest eigenvalue.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn eigenvector(&self, k: usize) -> Vec<f64> {
        self.eigenvectors.col(k)
    }

    /// Principal-coordinate embedding: the first `dims` eigenvectors, each
    /// scaled by `sqrt(max(eigenvalue, 0))`.
    ///
    /// This is the classical-MDS configuration matrix: row `i` holds the
    /// `dims`-dimensional coordinates of point `i`. Negative eigenvalues
    /// (which arise when the input distances are non-Euclidean, e.g. noisy
    /// measurements) are clamped to zero, as is standard.
    ///
    /// # Panics
    ///
    /// Panics if `dims` exceeds the matrix dimension.
    pub fn principal_coordinates(&self, dims: usize) -> DMatrix {
        let n = self.eigenvalues.len();
        assert!(dims <= n, "requested {dims} dims from an {n}x{n} matrix");
        DMatrix::from_fn(n, dims, |i, k| {
            let lambda = self.eigenvalues[k].max(0.0);
            self.eigenvectors[(i, k)] * lambda.sqrt()
        })
    }
}

fn off_diagonal_norm(m: &DMatrix) -> f64 {
    let n = m.rows();
    let mut sum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += 2.0 * m[(i, j)] * m[(i, j)];
        }
    }
    sum.sqrt()
}

/// One Jacobi rotation zeroing `m[(p, q)]`, accumulating into `v`.
fn rotate(m: &mut DMatrix, v: &mut DMatrix, p: usize, q: usize) {
    let apq = m[(p, q)];
    if apq.abs() < f64::MIN_POSITIVE {
        return;
    }
    let app = m[(p, p)];
    let aqq = m[(q, q)];
    let theta = (aqq - app) / (2.0 * apq);
    // Stable tangent computation (Golub & Van Loan).
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        1.0 / (theta - (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;

    let n = m.rows();
    for k in 0..n {
        let mkp = m[(k, p)];
        let mkq = m[(k, q)];
        m[(k, p)] = c * mkp - s * mkq;
        m[(k, q)] = s * mkp + c * mkq;
    }
    for k in 0..n {
        let mpk = m[(p, k)];
        let mqk = m[(q, k)];
        m[(p, k)] = c * mpk - s * mqk;
        m[(q, k)] = s * mpk + c * mqk;
    }
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reconstruct(eig: &SymmetricEigen) -> DMatrix {
        // A = V * diag(lambda) * V^T
        let n = eig.eigenvalues().len();
        let v = eig.eigenvectors();
        let mut lambda = DMatrix::zeros(n, n);
        for i in 0..n {
            lambda[(i, i)] = eig.eigenvalues()[i];
        }
        v.mul(&lambda).unwrap().mul(&v.transpose()).unwrap()
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = DMatrix::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.eigenvalues()[0] - 3.0).abs() < 1e-12);
        assert!((eig.eigenvalues()[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.eigenvalues()[0] - 3.0).abs() < 1e-10);
        assert!((eig.eigenvalues()[1] - 1.0).abs() < 1e-10);
        // Eigenvector for lambda=3 is (1,1)/sqrt(2) up to sign.
        let v0 = eig.eigenvector(0);
        assert!((v0[0].abs() - core::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn rejects_asymmetric_input() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!(matches!(
            SymmetricEigen::new(&a),
            Err(MathError::InvalidArgument(_))
        ));
    }

    #[test]
    fn rejects_rectangular_and_empty() {
        assert!(matches!(
            SymmetricEigen::new(&DMatrix::zeros(2, 3)),
            Err(MathError::NotSquare { .. })
        ));
        assert!(SymmetricEigen::new(&DMatrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a =
            DMatrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        let v = eig.eigenvectors();
        let vtv = v.transpose().mul(v).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn reconstruction_matches_input() {
        let a =
            DMatrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        let r = reconstruct(&eig);
        for i in 0..3 {
            for j in 0..3 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn principal_coordinates_of_rank_one_gram() {
        // Gram matrix of centered collinear points -8/3, 1/3, 7/3.
        let xs = [-8.0 / 3.0, 1.0 / 3.0, 7.0 / 3.0];
        let g = DMatrix::from_fn(3, 3, |i, j| xs[i] * xs[j]);
        let eig = SymmetricEigen::new(&g).unwrap();
        let coords = eig.principal_coordinates(2);
        // Second dimension should be ~0; first recovers xs up to sign.
        let sign = if coords[(0, 0)] * xs[0] >= 0.0 {
            1.0
        } else {
            -1.0
        };
        for i in 0..3 {
            assert!((sign * coords[(i, 0)] - xs[i]).abs() < 1e-9);
            assert!(coords[(i, 1)].abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn principal_coordinates_rejects_excess_dims() {
        let eig = SymmetricEigen::new(&DMatrix::identity(2)).unwrap();
        let _ = eig.principal_coordinates(3);
    }

    /// `|cos| of the angle` between an unit eigenvector column and the
    /// expected direction (eigenvectors are determined up to sign).
    fn alignment(eig: &SymmetricEigen, k: usize, expected: &[f64]) -> f64 {
        let v = eig.eigenvector(k);
        let dot: f64 = v.iter().zip(expected).map(|(a, b)| a * b).sum();
        let norm: f64 = expected.iter().map(|e| e * e).sum::<f64>().sqrt();
        (dot / norm).abs()
    }

    /// Hand-computed 2x2 ground truth: `[[1, 2], [2, -2]]` has
    /// characteristic polynomial `λ² + λ − 6 = (λ − 2)(λ + 3)`, so
    /// eigenvalues 2 and −3 with eigenvectors `(2, 1)` and `(1, −2)`.
    #[test]
    fn two_by_two_matches_hand_computation() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, -2.0]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.eigenvalues()[0] - 2.0).abs() < 1e-10);
        assert!((eig.eigenvalues()[1] + 3.0).abs() < 1e-10);
        assert!((alignment(&eig, 0, &[2.0, 1.0]) - 1.0).abs() < 1e-10);
        assert!((alignment(&eig, 1, &[1.0, -2.0]) - 1.0).abs() < 1e-10);
    }

    /// Hand-computed 3x3 ground truth: the tridiagonal matrix
    /// `[[2, -1, 0], [-1, 2, -1], [0, -1, 2]]` has eigenvalues
    /// `2 + √2, 2, 2 − √2` with eigenvectors `(1, −√2, 1)`, `(1, 0, −1)`,
    /// and `(1, √2, 1)` respectively.
    #[test]
    fn three_by_three_matches_hand_computation() {
        let a = DMatrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]])
            .unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        let sqrt2 = core::f64::consts::SQRT_2;
        assert!((eig.eigenvalues()[0] - (2.0 + sqrt2)).abs() < 1e-10);
        assert!((eig.eigenvalues()[1] - 2.0).abs() < 1e-10);
        assert!((eig.eigenvalues()[2] - (2.0 - sqrt2)).abs() < 1e-10);
        assert!((alignment(&eig, 0, &[1.0, -sqrt2, 1.0]) - 1.0).abs() < 1e-10);
        assert!((alignment(&eig, 1, &[1.0, 0.0, -1.0]) - 1.0).abs() < 1e-10);
        assert!((alignment(&eig, 2, &[1.0, sqrt2, 1.0]) - 1.0).abs() < 1e-10);
    }

    proptest! {
        /// Any random symmetric matrix decomposes and reconstructs.
        #[test]
        fn prop_reconstruction(seed_vals in proptest::collection::vec(-10.0f64..10.0, 15)) {
            // Build a 5x5 symmetric matrix from 15 free entries.
            let n = 5;
            let mut a = DMatrix::zeros(n, n);
            let mut it = seed_vals.iter();
            for i in 0..n {
                for j in i..n {
                    let v = *it.next().unwrap();
                    a[(i, j)] = v;
                    a[(j, i)] = v;
                }
            }
            let eig = SymmetricEigen::new(&a).unwrap();
            let r = reconstruct(&eig);
            let scale = a.frobenius_norm().max(1.0);
            for i in 0..n {
                for j in 0..n {
                    prop_assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-8 * scale);
                }
            }
            // Eigenvalues sorted descending.
            for w in eig.eigenvalues().windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12);
            }
        }

        /// Trace is preserved (sum of eigenvalues == trace of A).
        #[test]
        fn prop_trace_preserved(diag in proptest::collection::vec(-5.0f64..5.0, 4)) {
            let n = diag.len();
            let mut a = DMatrix::zeros(n, n);
            for i in 0..n {
                a[(i, i)] = diag[i];
                if i + 1 < n {
                    a[(i, i + 1)] = 0.5;
                    a[(i + 1, i)] = 0.5;
                }
            }
            let eig = SymmetricEigen::new(&a).unwrap();
            let trace: f64 = diag.iter().sum();
            let lambda_sum: f64 = eig.eigenvalues().iter().sum();
            prop_assert!((trace - lambda_sum).abs() < 1e-9);
        }
    }
}
