//! Stable FNV-1a fingerprinting shared by the reporting and serving
//! layers.
//!
//! Several subsystems need a cheap digest that is **stable across
//! platforms, Rust versions, and process runs** (unlike
//! `std::hash::DefaultHasher`, which documents no such guarantee):
//!
//! * [`CampaignReport::fingerprint`](../../rl_bench/campaign/struct.CampaignReport.html)
//!   digests an entire campaign so serial and pooled schedules can be
//!   asserted bit-identical,
//! * the `rl-serve` solution cache keys cached solves on a fingerprint
//!   of the (deployment, solver config, seed) triple, and a stale or
//!   colliding encoding would hand the wrong positions to a client.
//!
//! The primitive is 64-bit FNV-1a. The higher-level writers keep the
//! encoded byte stream **prefix-free** — every variable-length field is
//! length-prefixed ([`Fnv1a::write_str`], [`Fnv1a::write_bytes`]) and
//! every optional field carries a one-byte discriminant
//! ([`Fnv1a::write_opt_f64`]) — so no two distinct logical records feed
//! the hash the same bytes.
//!
//! # Example
//!
//! ```
//! use rl_math::fingerprint::Fnv1a;
//!
//! let mut a = Fnv1a::new();
//! a.write_str("town");
//! a.write_u64(7);
//! let mut b = Fnv1a::new();
//! b.write_str("town");
//! b.write_u64(8);
//! assert_ne!(a.finish(), b.finish());
//!
//! // Raw digest of a byte slice in one call.
//! assert_eq!(Fnv1a::digest(b"abc"), {
//!     let mut h = Fnv1a::new();
//!     h.write(b"abc");
//!     h.finish()
//! });
//! ```

/// The FNV-1a 64-bit offset basis.
pub const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x0000_0100_0000_01B3;

/// An incremental 64-bit FNV-1a hasher with typed, prefix-free writers.
///
/// [`Fnv1a::write`] is the raw primitive (no framing); the typed writers
/// add the length prefixes and discriminant bytes that keep composite
/// encodings unambiguous.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(OFFSET_BASIS)
    }

    /// One-shot digest of a raw byte slice.
    pub fn digest(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::new();
        h.write(bytes);
        h.finish()
    }

    /// Feeds raw bytes with **no framing**. Composite encodings should
    /// prefer the typed writers, which keep the stream prefix-free.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Feeds a `u64` as its little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `f64` as the little-endian bytes of its bit pattern, so
    /// the digest is sensitive to any single-bit change (including the
    /// sign of zero and NaN payloads).
    pub fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// Feeds a length-prefixed byte slice (prefix-free framing).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write(bytes);
    }

    /// Feeds a length-prefixed UTF-8 string (prefix-free framing).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Feeds an optional `f64` behind a one-byte discriminant
    /// (`0` = absent, `1` + bits = present).
    pub fn write_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.write_u8(1);
                self.write_f64(x);
            }
            None => self.write_u8(0),
        }
    }

    /// The current digest. The hasher stays usable; `finish` is a
    /// read-out, not a terminator.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_byte_loop() {
        // The exact loop this module replaced (rl-bench's inline FNV and
        // the robust-parity test helpers): byte-for-byte identical.
        let reference = |bytes: &[u8]| -> u64 {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        };
        for bytes in [&b""[..], b"a", b"resilient", &[0xFF, 0x00, 0x7F]] {
            assert_eq!(Fnv1a::digest(bytes), reference(bytes));
        }
    }

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(Fnv1a::digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::digest(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::digest(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn typed_writers_compose_the_expected_stream() {
        let mut typed = Fnv1a::new();
        typed.write_str("ab");
        typed.write_u64(7);
        typed.write_f64(1.5);
        typed.write_opt_f64(None);
        typed.write_opt_f64(Some(-0.0));

        let mut raw = Fnv1a::new();
        raw.write(&2u64.to_le_bytes());
        raw.write(b"ab");
        raw.write(&7u64.to_le_bytes());
        raw.write(&1.5f64.to_bits().to_le_bytes());
        raw.write(&[0]);
        raw.write(&[1]);
        raw.write(&(-0.0f64).to_bits().to_le_bytes());
        assert_eq!(typed.finish(), raw.finish());
    }

    #[test]
    fn framing_is_prefix_free() {
        // Without length prefixes these two would collide.
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_digest_is_bit_sensitive() {
        let mut plus = Fnv1a::new();
        plus.write_f64(0.0);
        let mut minus = Fnv1a::new();
        minus.write_f64(-0.0);
        assert_ne!(plus.finish(), minus.finish());
    }
}
