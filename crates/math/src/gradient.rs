//! Gradient descent with perturbation restarts.
//!
//! The paper minimizes the LSS stress function by gradient descent and
//! escapes local minima by restarting "each round of minimization with seed
//! positions obtained by perturbing the best results so far" (Section 4.2.1).
//! This module provides that optimizer generically so both multilateration
//! and LSS share one well-tested implementation.
//!
//! The step rule is the paper's `x_{t+1} = x_t - alpha * grad E(x_t)`,
//! augmented with a multiplicative adaptive step size: accepted steps grow
//! `alpha` slightly, rejected steps (those that increase `E`) shrink it and
//! are retried. This keeps the fixed-step spirit while avoiding manual
//! per-problem tuning.

use rand::Rng;

/// A differentiable objective `E : R^n -> R`.
///
/// Implementors provide the dimension, the value, and the gradient. The
/// optimizer never requires the gradient and value to be consistent to
/// machine precision, but descent quality degrades if they diverge.
pub trait Objective {
    /// Dimension `n` of the search space.
    fn dim(&self) -> usize;

    /// Objective value at `x` (`x.len() == self.dim()`).
    fn value(&self, x: &[f64]) -> f64;

    /// Writes the gradient at `x` into `grad` (`grad.len() == self.dim()`).
    fn gradient(&self, x: &[f64], grad: &mut [f64]);
}

/// Configuration for [`minimize`].
#[derive(Debug, Clone, PartialEq)]
pub struct DescentConfig {
    /// Initial step size `alpha`.
    pub step_size: f64,
    /// Maximum iterations per round.
    pub max_iterations: usize,
    /// Convergence: stop a round when the relative improvement of `E` stays
    /// below this for [`DescentConfig::patience`] consecutive iterations.
    pub tolerance: f64,
    /// Consecutive low-improvement iterations tolerated before stopping.
    pub patience: usize,
    /// Number of perturbation restarts after the initial round.
    pub restarts: usize,
    /// Standard deviation of the Gaussian perturbation applied to the best
    /// configuration when seeding a restart round.
    pub perturbation: f64,
    /// Whether to record the objective value at every accepted iteration
    /// (used to reproduce the error-vs-epoch curves of Figure 23).
    pub record_trace: bool,
}

impl Default for DescentConfig {
    fn default() -> Self {
        DescentConfig {
            step_size: 0.01,
            max_iterations: 2_000,
            tolerance: 1e-9,
            patience: 25,
            restarts: 0,
            perturbation: 1.0,
            record_trace: false,
        }
    }
}

/// Objective values recorded per accepted iteration, across all rounds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DescentTrace {
    /// `E` after each accepted step, in order; round boundaries are recorded
    /// in [`DescentTrace::round_starts`].
    pub values: Vec<f64>,
    /// Index into `values` where each round begins.
    pub round_starts: Vec<usize>,
}

/// Result of a [`minimize`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct DescentOutcome {
    /// Best configuration found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Total accepted iterations across all rounds.
    pub iterations: usize,
    /// Whether at least one round terminated by the tolerance test (rather
    /// than exhausting its iteration budget).
    pub converged: bool,
    /// Objective trace, present when requested in the config.
    pub trace: Option<DescentTrace>,
}

/// Minimizes `objective` starting from `x0`.
///
/// Runs `1 + cfg.restarts` rounds of adaptive-step gradient descent. Round 0
/// starts at `x0`; each later round starts from the best configuration found
/// so far perturbed by `N(0, cfg.perturbation^2)` per coordinate, following
/// the paper's restart scheme.
///
/// # Panics
///
/// Panics if `x0.len() != objective.dim()` or the config's `step_size`,
/// `perturbation` or `max_iterations` are non-positive/zero.
///
/// # Example
///
/// ```
/// use rl_math::gradient::{minimize, DescentConfig, Objective};
///
/// struct Bowl;
/// impl Objective for Bowl {
///     fn dim(&self) -> usize { 2 }
///     fn value(&self, x: &[f64]) -> f64 { x[0].powi(2) + (x[1] - 1.0).powi(2) }
///     fn gradient(&self, x: &[f64], g: &mut [f64]) {
///         g[0] = 2.0 * x[0];
///         g[1] = 2.0 * (x[1] - 1.0);
///     }
/// }
///
/// let mut rng = rl_math::rng::seeded(0);
/// let out = minimize(&Bowl, &[5.0, -3.0], &DescentConfig::default(), &mut rng);
/// assert!(out.value < 1e-8);
/// assert!((out.x[1] - 1.0).abs() < 1e-4);
/// ```
pub fn minimize<O: Objective, R: Rng + ?Sized>(
    objective: &O,
    x0: &[f64],
    cfg: &DescentConfig,
    rng: &mut R,
) -> DescentOutcome {
    let n = objective.dim();
    assert_eq!(x0.len(), n, "x0 has wrong dimension");
    assert!(cfg.step_size > 0.0, "step_size must be positive");
    assert!(cfg.perturbation > 0.0, "perturbation must be positive");
    assert!(cfg.max_iterations > 0, "max_iterations must be nonzero");

    let mut best_x = x0.to_vec();
    let mut best_value = objective.value(x0);
    let mut trace = cfg.record_trace.then(DescentTrace::default);
    let mut total_iterations = 0usize;
    let mut converged = false;

    let mut gauss = crate::rng::GaussianSampler::new();

    for round in 0..=cfg.restarts {
        // Seed: x0 on the first round, perturbed best thereafter.
        let mut x = if round == 0 {
            x0.to_vec()
        } else {
            best_x
                .iter()
                .map(|&v| v + gauss.sample_with(rng, 0.0, cfg.perturbation))
                .collect()
        };
        if let Some(t) = trace.as_mut() {
            t.round_starts.push(t.values.len());
        }

        let mut value = objective.value(&x);
        let mut alpha = cfg.step_size;
        let mut grad = vec![0.0; n];
        let mut candidate = vec![0.0; n];
        let mut stall = 0usize;

        for _ in 0..cfg.max_iterations {
            objective.gradient(&x, &mut grad);
            let gnorm_sq: f64 = grad.iter().map(|g| g * g).sum();
            if gnorm_sq == 0.0 || !gnorm_sq.is_finite() {
                converged = gnorm_sq == 0.0 || converged;
                break;
            }

            // Backtracking: shrink alpha until the step improves E.
            let mut accepted = false;
            for _ in 0..30 {
                for i in 0..n {
                    candidate[i] = x[i] - alpha * grad[i];
                }
                let cand_value = objective.value(&candidate);
                if cand_value.is_finite() && cand_value < value {
                    let improvement = (value - cand_value) / value.abs().max(1.0);
                    core::mem::swap(&mut x, &mut candidate);
                    value = cand_value;
                    alpha *= 1.05;
                    accepted = true;
                    total_iterations += 1;
                    if let Some(t) = trace.as_mut() {
                        t.values.push(value);
                    }
                    if improvement < cfg.tolerance {
                        stall += 1;
                    } else {
                        stall = 0;
                    }
                    break;
                }
                alpha *= 0.5;
                if alpha < 1e-300 {
                    break;
                }
            }
            if !accepted {
                // Gradient step cannot improve: local minimum at this scale.
                converged = true;
                break;
            }
            if stall >= cfg.patience {
                converged = true;
                break;
            }
        }

        if value < best_value {
            best_value = value;
            best_x = x;
        }
    }

    DescentOutcome {
        x: best_x,
        value: best_value,
        iterations: total_iterations,
        converged,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    struct Bowl;
    impl Objective for Bowl {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, x: &[f64]) -> f64 {
            x[0] * x[0] + (x[1] - 1.0) * (x[1] - 1.0)
        }
        fn gradient(&self, x: &[f64], g: &mut [f64]) {
            g[0] = 2.0 * x[0];
            g[1] = 2.0 * (x[1] - 1.0);
        }
    }

    /// Double-well in 1D: minima at x = ±1, f(-1) = 0 is global only at -1
    /// after tilting. f(x) = (x^2 - 1)^2 + 0.3 x.
    struct DoubleWell;
    impl Objective for DoubleWell {
        fn dim(&self) -> usize {
            1
        }
        fn value(&self, x: &[f64]) -> f64 {
            let q = x[0] * x[0] - 1.0;
            q * q + 0.3 * x[0]
        }
        fn gradient(&self, x: &[f64], g: &mut [f64]) {
            g[0] = 4.0 * x[0] * (x[0] * x[0] - 1.0) + 0.3;
        }
    }

    #[test]
    fn bowl_converges_to_minimum() {
        let mut rng = seeded(0);
        let out = minimize(&Bowl, &[10.0, -10.0], &DescentConfig::default(), &mut rng);
        assert!(out.value < 1e-8, "value {}", out.value);
        assert!(out.x[0].abs() < 1e-4);
        assert!((out.x[1] - 1.0).abs() < 1e-4);
        assert!(out.converged);
    }

    #[test]
    fn trace_is_monotone_within_round() {
        let mut rng = seeded(1);
        let cfg = DescentConfig {
            record_trace: true,
            ..DescentConfig::default()
        };
        let out = minimize(&Bowl, &[3.0, 3.0], &cfg, &mut rng);
        let t = out.trace.expect("trace requested");
        assert!(!t.values.is_empty());
        assert_eq!(t.round_starts, vec![0]);
        for w in t.values.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "E increased within a round");
        }
    }

    #[test]
    fn restarts_escape_local_minimum() {
        // Start inside the shallow (right) well; the global minimum is near
        // x = -1.04. Without restarts descent stays in the right well.
        let stuck_cfg = DescentConfig {
            step_size: 0.01,
            restarts: 0,
            ..DescentConfig::default()
        };
        let mut rng = seeded(2);
        let stuck = minimize(&DoubleWell, &[0.9], &stuck_cfg, &mut rng);
        assert!(stuck.x[0] > 0.0, "expected to stay in right well");

        let free_cfg = DescentConfig {
            step_size: 0.01,
            restarts: 12,
            perturbation: 1.5,
            ..DescentConfig::default()
        };
        let mut rng = seeded(2);
        let freed = minimize(&DoubleWell, &[0.9], &free_cfg, &mut rng);
        assert!(
            freed.x[0] < 0.0,
            "restarts should find the global well, got {}",
            freed.x[0]
        );
        assert!(freed.value < stuck.value);
    }

    #[test]
    fn restart_rounds_recorded_in_trace() {
        let cfg = DescentConfig {
            restarts: 3,
            record_trace: true,
            max_iterations: 50,
            ..DescentConfig::default()
        };
        let mut rng = seeded(3);
        let out = minimize(&Bowl, &[1.0, 0.0], &cfg, &mut rng);
        let t = out.trace.unwrap();
        assert_eq!(t.round_starts.len(), 4);
        // Round starts are non-decreasing and within bounds.
        for w in t.round_starts.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(*t.round_starts.last().unwrap() <= t.values.len());
    }

    #[test]
    fn outcome_never_worse_than_start() {
        let mut rng = seeded(4);
        let start = [0.3, 0.7];
        let before = Bowl.value(&start);
        let out = minimize(&Bowl, &start, &DescentConfig::default(), &mut rng);
        assert!(out.value <= before);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn wrong_dimension_panics() {
        let mut rng = seeded(0);
        let _ = minimize(&Bowl, &[0.0], &DescentConfig::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "step_size")]
    fn zero_step_panics() {
        let mut rng = seeded(0);
        let cfg = DescentConfig {
            step_size: 0.0,
            ..DescentConfig::default()
        };
        let _ = minimize(&Bowl, &[0.0, 0.0], &cfg, &mut rng);
    }

    #[test]
    fn already_at_minimum_is_stable() {
        let mut rng = seeded(5);
        let out = minimize(&Bowl, &[0.0, 1.0], &DescentConfig::default(), &mut rng);
        assert!(out.value <= 1e-20);
        assert!(out.x[0].abs() < 1e-9 && (out.x[1] - 1.0).abs() < 1e-9);
    }

    /// Anisotropic quadratic bowl `Σ aᵢ (xᵢ − cᵢ)²` with known minimizer
    /// `c`, curvatures spanning a 20:1 conditioning spread.
    struct AnisotropicBowl;

    impl AnisotropicBowl {
        const CURVATURE: [f64; 4] = [0.5, 2.0, 5.0, 10.0];
        const CENTER: [f64; 4] = [-3.0, 0.25, 7.5, -1.0];
    }

    impl Objective for AnisotropicBowl {
        fn dim(&self) -> usize {
            4
        }

        fn value(&self, x: &[f64]) -> f64 {
            Self::CURVATURE
                .iter()
                .zip(Self::CENTER)
                .zip(x)
                .map(|((a, c), xi)| a * (xi - c).powi(2))
                .sum()
        }

        fn gradient(&self, x: &[f64], grad: &mut [f64]) {
            for i in 0..4 {
                grad[i] = 2.0 * Self::CURVATURE[i] * (x[i] - Self::CENTER[i]);
            }
        }
    }

    /// Gradient descent must converge to the analytic minimizer of a
    /// badly-conditioned quadratic bowl from a distant start.
    #[test]
    fn converges_on_anisotropic_quadratic_bowl() {
        let mut rng = seeded(6);
        let cfg = DescentConfig {
            max_iterations: 20_000,
            tolerance: 1e-14,
            ..DescentConfig::default()
        };
        let out = minimize(
            &AnisotropicBowl,
            &[20.0, -20.0, 20.0, -20.0],
            &cfg,
            &mut rng,
        );
        assert!(out.converged, "did not converge: value {}", out.value);
        assert!(out.value < 1e-8, "value {}", out.value);
        for (xi, c) in out.x.iter().zip(AnisotropicBowl::CENTER) {
            assert!((xi - c).abs() < 1e-4, "coordinate {xi} vs center {c}");
        }
    }

    /// Restart perturbations must not lose the best-so-far configuration:
    /// with restarts enabled on a convex bowl the outcome stays optimal.
    #[test]
    fn restarts_keep_best_on_convex_objective() {
        let mut rng = seeded(7);
        let cfg = DescentConfig {
            restarts: 3,
            perturbation: 5.0,
            ..DescentConfig::default()
        };
        let out = minimize(&AnisotropicBowl, &[10.0, 10.0, 10.0, 10.0], &cfg, &mut rng);
        assert!(out.value < 1e-6, "value {}", out.value);
    }
}
