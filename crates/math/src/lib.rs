//! Numerical substrate for the `resilient-localization` workspace.
//!
//! This crate provides the from-scratch numerical building blocks that the
//! localization algorithms of Kwon et al. (ICDCS 2005) rest on:
//!
//! * [`matrix`] — a small dense row-major matrix type ([`DMatrix`]) with the
//!   operations needed by classical multidimensional scaling (double
//!   centering, products, transposes),
//! * [`eigen`] — a cyclic Jacobi eigensolver for symmetric matrices
//!   ([`SymmetricEigen`]), used to extract principal coordinates in the
//!   classical-MDS baseline,
//! * [`stats`] — robust statistics (median, mode, MAD, quantiles,
//!   histograms) used by the ranging service's statistical filtering,
//! * [`rng`] — deterministic random sampling helpers, including Gaussian
//!   sampling via the Box–Muller transform (the `rand` crate alone ships no
//!   normal distribution),
//! * [`gradient`] — a generic gradient-descent driver with perturbation
//!   restarts and trace recording, the optimizer behind least-squares
//!   scaling (LSS) and multilateration,
//! * [`loss`] — robust loss kernels ([`RobustLoss`]: squared-L2, Huber,
//!   Cauchy) shared by every IRLS stage in the solving layers,
//! * [`fingerprint`] — stable FNV-1a digests ([`Fnv1a`]) with prefix-free
//!   typed writers, shared by campaign reports and the serving layer's
//!   solution cache,
//! * [`sparse`] — the large-`n` backend: CSR matrices ([`CsrMatrix`]),
//!   the matrix-free [`LinearOperator`] abstraction, a conjugate-gradient
//!   solver, a shifted subspace-iteration top-`k` symmetric eigensolver,
//!   and CSR Dijkstra — everything the metro-scale solver paths need
//!   without `O(n^2)` storage or `O(n^3)` factorizations.
//!
//! # Example
//!
//! ```
//! use rl_math::stats::median;
//!
//! let mut xs = [9.7, 10.3, 10.0, 21.5, 9.9];
//! // One gross outlier (21.5 m) does not move the median estimate.
//! assert_eq!(median(&mut xs), Some(10.0));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod eigen;
pub mod fingerprint;
pub mod gradient;
pub mod loss;
pub mod matrix;
pub mod rng;
pub mod sparse;
pub mod stats;

pub use eigen::SymmetricEigen;
pub use fingerprint::Fnv1a;
pub use gradient::{DescentConfig, DescentOutcome, DescentTrace, Objective};
pub use loss::RobustLoss;
pub use matrix::DMatrix;
pub use rng::GaussianSampler;
pub use sparse::{CsrMatrix, LinearOperator};

/// Error type for numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MathError {
    /// A matrix operation was attempted on incompatible dimensions.
    DimensionMismatch {
        /// Dimensions of the left-hand operand, `(rows, cols)`.
        left: (usize, usize),
        /// Dimensions of the right-hand operand, `(rows, cols)`.
        right: (usize, usize),
    },
    /// An operation requiring a square matrix received a rectangular one.
    NotSquare {
        /// Actual dimensions, `(rows, cols)`.
        dims: (usize, usize),
    },
    /// The Jacobi eigensolver did not converge within its sweep budget.
    NoConvergence {
        /// Number of sweeps performed before giving up.
        sweeps: usize,
        /// Remaining off-diagonal Frobenius mass.
        off_diagonal: f64,
    },
    /// An input argument was empty or otherwise out of its documented domain.
    InvalidArgument(&'static str),
}

impl core::fmt::Display for MathError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MathError::DimensionMismatch { left, right } => write!(
                f,
                "dimension mismatch: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MathError::NotSquare { dims } => {
                write!(f, "matrix is not square: {}x{}", dims.0, dims.1)
            }
            MathError::NoConvergence {
                sweeps,
                off_diagonal,
            } => write!(
                f,
                "eigensolver did not converge after {sweeps} sweeps \
                 (off-diagonal mass {off_diagonal:.3e})"
            ),
            MathError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for MathError {}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, MathError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = MathError::DimensionMismatch {
            left: (2, 3),
            right: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch: left is 2x3, right is 4x5"
        );
        let e = MathError::NotSquare { dims: (3, 4) };
        assert_eq!(e.to_string(), "matrix is not square: 3x4");
        let e = MathError::InvalidArgument("empty slice");
        assert_eq!(e.to_string(), "invalid argument: empty slice");
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_good_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good_error::<MathError>();
    }
}
