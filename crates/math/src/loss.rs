//! Robust loss kernels for iteratively-reweighted least squares (IRLS).
//!
//! Every least-squares stage in the workspace — centralized LSS stress
//! minimization and the distributed pipeline's Gauss–Newton refinement —
//! minimizes a sum of weighted residuals `Σ w_i · ρ(r_i)`. The choice of
//! `ρ` decides how much a single corrupted measurement can move the
//! solution:
//!
//! * [`RobustLoss::SquaredL2`] — `ρ(r) = r²`: the classical choice;
//!   statistically efficient on clean Gaussian noise but a single gross
//!   outlier has unbounded influence,
//! * [`RobustLoss::Huber`] — quadratic near zero, linear beyond
//!   `delta_m`: bounded influence, still convex,
//! * [`RobustLoss::Cauchy`] — `ρ(r) = c²/2 · ln(1 + (r/c)²)`: a
//!   redescending loss whose influence *decays* for large residuals,
//!   effectively ignoring measurements that disagree grossly with the
//!   current fit.
//!
//! The solvers never evaluate `ρ` directly; they run IRLS, re-solving the
//! weighted quadratic problem with each measurement's weight multiplied
//! by the loss's *IRLS factor* `ψ(r)/r` at the previous iterate's
//! residual. Both kernels here are exact re-expressions of formulas that
//! predate this module (the LSS robust-reweight loop and the refinement
//! stage's Cauchy weighting), preserved term for term so the promotion to
//! a shared type is bit-identical.
//!
//! # Example
//!
//! ```
//! use rl_math::loss::RobustLoss;
//!
//! let cauchy = RobustLoss::Cauchy { scale_m: 1.0 };
//! // A residual at the scale parameter is down-weighted to 1/2 ...
//! assert_eq!(cauchy.irls_factor(1.0), 0.5);
//! // ... while the quadratic loss never down-weights anything.
//! assert_eq!(RobustLoss::SquaredL2.irls_factor(1e9), 1.0);
//! ```

/// A robust loss function, represented by its IRLS weighting kernel.
///
/// See the [module docs](self) for the role each variant plays. The
/// variants carry their scale parameters in meters (`_m`), matching the
/// residual units used throughout the workspace.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum RobustLoss {
    /// The classical squared loss `ρ(r) = r²`. IRLS weights are constant:
    /// this is *not* robust, and is provided so robustness can be switched
    /// off without changing code paths (its IRLS factor is exactly `1.0`,
    /// and solvers skip reweight iterations entirely).
    SquaredL2,
    /// The Huber loss: quadratic for `|r| ≤ delta_m`, linear beyond.
    /// Bounded influence; the convex compromise between efficiency and
    /// robustness.
    Huber {
        /// The transition point between the quadratic and linear regimes,
        /// in meters. Must be positive.
        delta_m: f64,
    },
    /// The Cauchy (Lorentzian) loss `ρ(r) = c²/2 · ln(1 + (r/c)²)`:
    /// redescending, so gross outliers are asymptotically ignored.
    Cauchy {
        /// The scale parameter `c` in meters. Residuals well below `c`
        /// keep full weight; a residual of `c` is down-weighted to 1/2.
        /// Must be positive.
        scale_m: f64,
    },
}

impl Default for RobustLoss {
    /// The workspace default is the Cauchy loss at a 1 m scale — the
    /// historical `RobustReweight` kernel of the LSS solver.
    fn default() -> Self {
        RobustLoss::Cauchy { scale_m: 1.0 }
    }
}

impl RobustLoss {
    /// The multiplicative IRLS factor `ψ(r)/r ∈ (0, 1]` at residual
    /// `residual`: an existing quadratic weight is multiplied by this to
    /// get the robustified weight for the next re-solve.
    ///
    /// `SquaredL2` returns exactly `1.0`; `Cauchy` evaluates
    /// `1 / (1 + (r/c)²)` with the same floating-point expression the LSS
    /// robust-reweight loop has always used.
    pub fn irls_factor(&self, residual: f64) -> f64 {
        match *self {
            RobustLoss::SquaredL2 => 1.0,
            RobustLoss::Huber { delta_m } => {
                let a = residual.abs();
                if a <= delta_m {
                    1.0
                } else {
                    delta_m / a
                }
            }
            RobustLoss::Cauchy { scale_m } => 1.0 / (1.0 + (residual / scale_m).powi(2)),
        }
    }

    /// Applies the loss to a base weight: the robustified weight
    /// `w · ψ(r)/r` used when assembling the normal equations.
    ///
    /// For `Cauchy` this evaluates `w / (1 + (r/c)·(r/c))` — the exact
    /// expression (and floating-point evaluation order) of the
    /// refinement stage's historical Cauchy reweighting, so swapping the
    /// old `robust_scale_m: Option<f64>` for a `RobustLoss` is
    /// bit-preserving. For `SquaredL2` it returns `weight` unchanged.
    pub fn reweight(&self, weight: f64, residual: f64) -> f64 {
        match *self {
            RobustLoss::SquaredL2 => weight,
            RobustLoss::Huber { delta_m } => {
                let a = residual.abs();
                if a <= delta_m {
                    weight
                } else {
                    weight * (delta_m / a)
                }
            }
            RobustLoss::Cauchy { scale_m } => {
                weight / (1.0 + (residual / scale_m) * (residual / scale_m))
            }
        }
    }

    /// Whether this loss is the plain quadratic: IRLS reweighting is a
    /// no-op, and solvers use this to skip reweight-re-solve iterations
    /// entirely (keeping RNG streams identical to a non-robust solve).
    pub fn is_quadratic(&self) -> bool {
        matches!(self, RobustLoss::SquaredL2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_l2_never_downweights() {
        let loss = RobustLoss::SquaredL2;
        for r in [0.0, 0.5, 3.0, 1e6, -7.0] {
            assert_eq!(loss.irls_factor(r), 1.0);
            assert_eq!(loss.reweight(2.5, r), 2.5);
        }
        assert!(loss.is_quadratic());
    }

    #[test]
    fn huber_is_quadratic_inside_linear_outside() {
        let loss = RobustLoss::Huber { delta_m: 1.5 };
        assert_eq!(loss.irls_factor(1.0), 1.0);
        assert_eq!(loss.irls_factor(-1.5), 1.0);
        assert!((loss.irls_factor(3.0) - 0.5).abs() < 1e-15);
        assert!((loss.irls_factor(-3.0) - 0.5).abs() < 1e-15);
        assert!(!loss.is_quadratic());
    }

    #[test]
    fn cauchy_matches_the_historical_kernels_bitwise() {
        let c = 2.0;
        let loss = RobustLoss::Cauchy { scale_m: c };
        for r in [0.0f64, 0.1, 1.0, 2.0, 5.7, -13.0, 100.0] {
            // The LSS robust-reweight loop's expression.
            let lss = 1.0 / (1.0 + (r / c).powi(2));
            assert_eq!(loss.irls_factor(r).to_bits(), lss.to_bits());
            // The refinement stage's expression.
            let w = 0.83;
            let refine = w / (1.0 + (r / c) * (r / c));
            assert_eq!(loss.reweight(w, r).to_bits(), refine.to_bits());
        }
    }

    #[test]
    fn factors_decrease_with_residual_magnitude() {
        for loss in [
            RobustLoss::Huber { delta_m: 1.0 },
            RobustLoss::Cauchy { scale_m: 1.0 },
        ] {
            let mut prev = loss.irls_factor(0.0);
            assert_eq!(prev, 1.0);
            for r in [0.5, 1.0, 2.0, 4.0, 8.0] {
                let f = loss.irls_factor(r);
                // Non-increasing everywhere (Huber is flat inside delta),
                // strictly below 1 once past the scale parameter.
                assert!(f <= prev, "{loss:?} factor increased at r={r}");
                assert!(f > 0.0);
                if r > 1.0 {
                    assert!(f < 1.0, "{loss:?} factor not robust at r={r}");
                }
                prev = f;
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        use serde::{Deserialize, Serialize};
        for loss in [
            RobustLoss::SquaredL2,
            RobustLoss::Huber { delta_m: 1.5 },
            RobustLoss::Cauchy { scale_m: 2.0 },
            RobustLoss::default(),
        ] {
            let v = loss.to_value();
            let back = RobustLoss::from_value(&v).unwrap();
            assert_eq!(loss, back);
        }
        assert!(RobustLoss::from_value(&serde::Value::Null).is_err());
    }

    #[test]
    fn default_is_the_historical_lss_kernel() {
        assert_eq!(RobustLoss::default(), RobustLoss::Cauchy { scale_m: 1.0 });
    }
}
