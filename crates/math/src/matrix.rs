//! A small dense, row-major, `f64` matrix.
//!
//! [`DMatrix`] implements exactly the operations the workspace needs —
//! products, transposes, double centering for classical MDS, and symmetric
//! checks for the eigensolver — rather than aiming to be a general linear
//! algebra library.

use crate::{MathError, Result};
use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use rl_math::DMatrix;
///
/// let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let i = DMatrix::identity(2);
/// let prod = a.mul(&i).unwrap();
/// assert_eq!(prod, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MathError::InvalidArgument(
                "data length does not match rows * cols",
            ));
        }
        Ok(DMatrix { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if the rows are empty or have
    /// inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Err(MathError::InvalidArgument("no rows provided"));
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(MathError::InvalidArgument("rows are empty"));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(MathError::InvalidArgument("ragged rows"));
            }
            data.extend_from_slice(r);
        }
        Ok(DMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds an `n x n` matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = DMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when the inner dimensions
    /// disagree.
    pub fn mul(&self, rhs: &DMatrix) -> Result<DMatrix> {
        if self.cols != rhs.rows {
            return Err(MathError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = DMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when shapes differ.
    pub fn add(&self, rhs: &DMatrix) -> Result<DMatrix> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(MathError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(DMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> DMatrix {
        DMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> DMatrix {
        let mut out = DMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Maximum absolute asymmetry `max |a_ij - a_ji|` (0 for symmetric).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotSquare`] for rectangular matrices.
    pub fn asymmetry(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(MathError::NotSquare {
                dims: (self.rows, self.cols),
            });
        }
        let mut worst: f64 = 0.0;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        Ok(worst)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Double-centers a matrix of squared distances:
    /// `B = -1/2 * J * D2 * J` with `J = I - (1/n) * 1 1^T`.
    ///
    /// This is the classical-MDS Gram-matrix construction. `self` must be the
    /// matrix of **squared** distances.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotSquare`] for rectangular matrices.
    ///
    /// # Example
    ///
    /// ```
    /// use rl_math::DMatrix;
    ///
    /// // Three collinear points 0, 3, 5 -> squared distance matrix.
    /// let d2 = DMatrix::from_rows(&[
    ///     &[0.0, 9.0, 25.0],
    ///     &[9.0, 0.0, 4.0],
    ///     &[25.0, 4.0, 0.0],
    /// ]).unwrap();
    /// let b = d2.double_center().unwrap();
    /// // The Gram matrix of centered collinear coordinates has rank 1.
    /// assert!(b.asymmetry().unwrap() < 1e-12);
    /// ```
    pub fn double_center(&self) -> Result<DMatrix> {
        if !self.is_square() {
            return Err(MathError::NotSquare {
                dims: (self.rows, self.cols),
            });
        }
        let n = self.rows;
        let nf = n as f64;
        let mut row_mean = vec![0.0; n];
        let mut col_mean = vec![0.0; n];
        let mut total = 0.0;
        for i in 0..n {
            for j in 0..n {
                let v = self[(i, j)];
                row_mean[i] += v;
                col_mean[j] += v;
                total += v;
            }
        }
        for m in row_mean.iter_mut().chain(col_mean.iter_mut()) {
            *m /= nf;
        }
        total /= nf * nf;
        let mut b = DMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                b[(i, j)] = -0.5 * (self[(i, j)] - row_mean[i] - col_mean[j] + total);
            }
        }
        Ok(b)
    }
}

impl core::ops::Index<(usize, usize)> for DMatrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl core::ops::IndexMut<(usize, usize)> for DMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl core::fmt::Display for DMatrix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = DMatrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
        assert!(i.is_square());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(DMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            DMatrix::from_vec(2, 2, vec![1.0; 3]),
            Err(MathError::InvalidArgument(_))
        ));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0][..]]).unwrap_err();
        assert!(matches!(err, MathError::InvalidArgument(_)));
        assert!(DMatrix::from_rows(&[]).is_err());
    }

    #[test]
    fn product_against_hand_computed() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.mul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn product_dimension_mismatch() {
        let a = DMatrix::zeros(2, 3);
        let b = DMatrix::zeros(2, 3);
        assert!(matches!(
            a.mul(&b),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn add_and_scale() {
        let a = DMatrix::from_rows(&[&[1.0, -1.0]]).unwrap();
        let b = DMatrix::from_rows(&[&[2.0, 3.0]]).unwrap();
        let s = a.add(&b).unwrap();
        assert_eq!(s.as_slice(), &[3.0, 2.0]);
        assert_eq!(s.scale(2.0).as_slice(), &[6.0, 4.0]);
        assert!(a.add(&DMatrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn row_and_col_access() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "row index")]
    fn row_out_of_bounds_panics() {
        DMatrix::zeros(1, 1).row(1);
    }

    #[test]
    fn double_center_recovers_gram_matrix() {
        // Points on a line: x = 0, 3, 5. Centered coordinates: -8/3, 1/3, 7/3.
        let d2 =
            DMatrix::from_rows(&[&[0.0, 9.0, 25.0], &[9.0, 0.0, 4.0], &[25.0, 4.0, 0.0]]).unwrap();
        let b = d2.double_center().unwrap();
        let xs = [-8.0 / 3.0, 1.0 / 3.0, 7.0 / 3.0];
        for i in 0..3 {
            for j in 0..3 {
                let expected = xs[i] * xs[j];
                assert!(
                    (b[(i, j)] - expected).abs() < 1e-12,
                    "B[{i}{j}] = {} expected {expected}",
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn double_center_rejects_rectangular() {
        assert!(matches!(
            DMatrix::zeros(2, 3).double_center(),
            Err(MathError::NotSquare { .. })
        ));
    }

    #[test]
    fn asymmetry_measures_worst_pair() {
        let a = DMatrix::from_rows(&[&[0.0, 1.0], &[3.0, 0.0]]).unwrap();
        assert_eq!(a.asymmetry().unwrap(), 2.0);
        let s = DMatrix::identity(4);
        assert_eq!(s.asymmetry().unwrap(), 0.0);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((DMatrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn display_renders_all_entries() {
        let a = DMatrix::identity(2);
        let s = a.to_string();
        assert!(s.contains("1.0000"));
        assert!(s.lines().count() == 2);
    }

    #[test]
    fn serde_roundtrip() {
        let a = DMatrix::from_rows(&[&[1.5, -2.5], &[0.0, 4.0]]).unwrap();
        let json = serde_json::to_string(&a).unwrap();
        let back: DMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
