//! Deterministic random sampling helpers.
//!
//! Every stochastic component of the workspace — the acoustic channel, the
//! measurement error model, the LSS restart perturbations — draws through an
//! explicit `&mut impl Rng` so experiments are reproducible from a single
//! seed. The `rand` crate provides uniform sampling only; Gaussian deviates
//! (the paper's `N(0, 0.33 m)` synthetic ranging noise) come from the
//! Box–Muller implementation here.
//!
//! # Seeding contract
//!
//! The workspace-wide reproducibility guarantee, relied on by the
//! `tests/determinism.rs` suite at the repository root:
//!
//! 1. **One seed, one stream.** An experiment creates exactly one generator
//!    via [`seeded`] and threads `&mut` borrows of it through every
//!    stochastic call, in a fixed order. No component may create its own
//!    generator from ambient entropy, and nothing in the workspace reads
//!    OS randomness, time, or thread identity.
//! 2. **Bit-identical replay.** Two runs of the same code with the same
//!    seed must produce *bit-identical* floating-point results — not merely
//!    results within a tolerance. Iteration over unordered containers
//!    (e.g. `HashMap`) must therefore never feed the RNG or accumulate
//!    floats in iteration order; ordered containers (`BTreeMap`, `Vec`)
//!    are used wherever order can reach an observable result.
//! 3. **Seeds are part of an experiment's identity.** Scenario builders
//!    accept and record the seed they were given (see `rl_deploy::Scenario`),
//!    so a published figure can name the exact stream that produced it.
//! 4. **Different seeds, different noise.** Seeding is injective in
//!    practice: distinct seeds yield uncorrelated streams (SplitMix64
//!    expansion into xoshiro256++ state), so sweeps over `seed in 0..n`
//!    give independent replicates.
//! 5. **Parallelism never touches a stream.** Work may be sharded across
//!    threads only at boundaries where each shard owns a *whole* stream —
//!    a generator created by [`seeded`] from a seed that is a pure
//!    function of the shard's identity (e.g. `(trial seed, localizer
//!    index)` in `rl_bench::campaign`), never of scheduling, thread ids,
//!    or completion order. A single stream must not be drawn from by two
//!    threads, and shard results must be merged in a canonical order
//!    (grid order, node id order) rather than completion order before
//!    they feed anything observable. Under these rules the same seed
//!    produces a bit-identical report for *any* worker count — asserted
//!    for `workers ∈ {1, 4}` by `tests/determinism.rs` at the repository
//!    root and by the `campaign_smoke` release binary in CI.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the workspace-standard deterministic RNG from a `u64` seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
///
/// let mut a = rl_math::rng::seeded(42);
/// let mut b = rl_math::rng::seeded(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws one standard-normal deviate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Rejection-free polar-less form: u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Draws one `N(mean, std_dev^2)` deviate.
///
/// # Panics
///
/// Panics (debug assertion) if `std_dev` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    debug_assert!(std_dev >= 0.0, "negative standard deviation");
    mean + std_dev * standard_normal(rng)
}

/// A reusable Gaussian sampler caching the second Box–Muller deviate.
///
/// Useful in hot loops such as waveform synthesis where millions of noise
/// samples are drawn.
#[derive(Debug, Clone, Default)]
pub struct GaussianSampler {
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler with no cached deviate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard-normal deviate, consuming the cached spare if any.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (core::f64::consts::TAU * u2).sin_cos();
        self.spare = Some(r * s);
        r * c
    }

    /// Draws one `N(mean, std_dev^2)` deviate.
    pub fn sample_with<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.sample(rng)
    }
}

/// Samples an index in `0..weights.len()` proportionally to `weights`.
///
/// Zero-weight entries are never selected. Returns `None` if the slice is
/// empty or all weights are non-positive.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if !(total > 0.0) {
        return None;
    }
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if target < w {
            return Some(i);
        }
        target -= w;
    }
    // Floating-point slack: return the last positive-weight index.
    weights.iter().rposition(|&w| w > 0.0)
}

/// Fisher–Yates shuffles indices `0..n` and returns the first `k`.
///
/// Used for random anchor selection ("we randomly chose 13 nodes as anchors
/// from a total of 46"). `k` is clamped to `n`.
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let k = k.min(n);
    for i in 0..k {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        let va: Vec<u32> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.random()).collect();
        assert_eq!(va, vb);
        let mut c = seeded(8);
        let vc: Vec<u32> = (0..8).map(|_| c.random()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn normal_moments_are_right() {
        let mut rng = seeded(1);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 3.0, 0.33)).collect();
        let m = stats::mean(&xs).unwrap();
        let sd = stats::std_dev(&xs).unwrap();
        assert!((m - 3.0).abs() < 0.01, "mean {m}");
        assert!((sd - 0.33).abs() < 0.01, "sd {sd}");
    }

    #[test]
    fn gaussian_sampler_matches_moments_and_uses_spare() {
        let mut rng = seeded(2);
        let mut g = GaussianSampler::new();
        let xs: Vec<f64> = (0..20_001).map(|_| g.sample(&mut rng)).collect();
        let m = stats::mean(&xs).unwrap();
        let sd = stats::std_dev(&xs).unwrap();
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((sd - 1.0).abs() < 0.02, "sd {sd}");
        let y = g.sample_with(&mut rng, 10.0, 2.0);
        assert!(y.is_finite());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = seeded(3);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[weighted_index(&mut rng, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_degenerate_cases() {
        let mut rng = seeded(4);
        assert_eq!(weighted_index(&mut rng, &[]), None);
        assert_eq!(weighted_index(&mut rng, &[0.0, -1.0]), None);
        assert_eq!(weighted_index(&mut rng, &[0.0, 2.0]), Some(1));
    }

    #[test]
    fn sample_indices_are_unique_and_in_range() {
        let mut rng = seeded(5);
        let picked = sample_indices(&mut rng, 46, 13);
        assert_eq!(picked.len(), 13);
        let set: std::collections::BTreeSet<usize> = picked.iter().cloned().collect();
        assert_eq!(set.len(), 13);
        assert!(picked.iter().all(|&i| i < 46));
        // k > n clamps.
        assert_eq!(sample_indices(&mut rng, 3, 10).len(), 3);
        assert!(sample_indices(&mut rng, 0, 5).is_empty());
    }

    #[test]
    fn sample_indices_covers_everything_eventually() {
        let mut rng = seeded(6);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.extend(sample_indices(&mut rng, 10, 3));
        }
        assert_eq!(seen.len(), 10);
    }
}
