//! Conjugate gradient for symmetric positive-definite systems.
//!
//! The large-`n` solver paths need `A x = b` solves where `A` is only
//! available as a matrix-free [`LinearOperator`] — assembling a dense
//! factorization would reintroduce the `O(n^2)` storage the sparse
//! backend exists to avoid. Plain CG needs one operator application and a
//! handful of vector operations per iteration, and converges in at most
//! `n` steps in exact arithmetic (far fewer on the well-conditioned
//! systems the solvers produce).

use super::LinearOperator;
use crate::{MathError, Result};

/// Configuration for [`conjugate_gradient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgConfig {
    /// Iteration cap. `0` means "dimension of the system" (the exact-
    /// arithmetic worst case).
    pub max_iterations: usize,
    /// Convergence threshold on the *relative* residual
    /// `||b - A x|| / ||b||`.
    pub tolerance: f64,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            max_iterations: 0,
            tolerance: 1e-10,
        }
    }
}

impl CgConfig {
    /// Replaces the iteration cap (builder style); `0` means "dimension
    /// of the system".
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Replaces the relative-residual convergence threshold (builder
    /// style). Outer loops wrapping CG (e.g. Gauss–Newton refinement)
    /// typically loosen this: each linearization is only an approximation,
    /// so solving it past ~1e-6 buys nothing.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }
}

/// The result of a [`conjugate_gradient`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOutcome {
    /// The solution estimate.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `||b - A x|| / ||b||`.
    pub relative_residual: f64,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
}

/// Solves `A x = b` for a symmetric positive-definite operator `A` by
/// the conjugate-gradient method, starting from `x = 0`.
///
/// The operator's symmetry and positive-definiteness are *assumed*, not
/// checked (checking would require materializing the operator); an
/// indefinite operator typically shows up as a failure to converge.
/// The run is fully deterministic — no randomness, fixed starting point.
///
/// # Errors
///
/// * [`MathError::DimensionMismatch`] when `b.len() != a.dim()`.
/// * [`MathError::InvalidArgument`] for an empty system, a non-finite
///   right-hand side, or a breakdown (`p^T A p <= 0`, the indefinite-
///   operator signature).
/// * [`MathError::NoConvergence`] when the iteration budget runs out
///   before the tolerance is met.
pub fn conjugate_gradient<O: LinearOperator + ?Sized>(
    a: &O,
    b: &[f64],
    cfg: &CgConfig,
) -> Result<CgOutcome> {
    let n = a.dim();
    if b.len() != n {
        return Err(MathError::DimensionMismatch {
            left: (n, n),
            right: (b.len(), 1),
        });
    }
    if n == 0 {
        return Err(MathError::InvalidArgument("empty system"));
    }
    if b.iter().any(|v| !v.is_finite()) {
        return Err(MathError::InvalidArgument("right-hand side is not finite"));
    }
    let b_norm = norm(b);
    if b_norm == 0.0 {
        return Ok(CgOutcome {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
            converged: true,
        });
    }
    let max_iterations = if cfg.max_iterations == 0 {
        n
    } else {
        cfg.max_iterations
    };

    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r = b - A*0
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rs_old = dot(&r, &r);

    for iteration in 0..max_iterations {
        let rel = rs_old.sqrt() / b_norm;
        if rel <= cfg.tolerance {
            return Ok(CgOutcome {
                x,
                iterations: iteration,
                relative_residual: rel,
                converged: true,
            });
        }
        a.apply(&p, &mut ap);
        let p_ap = dot(&p, &ap);
        if !(p_ap > 0.0) || !p_ap.is_finite() {
            return Err(MathError::InvalidArgument(
                "CG breakdown: operator is not positive definite",
            ));
        }
        let alpha = rs_old / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = dot(&r, &r);
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }

    let rel = rs_old.sqrt() / b_norm;
    if rel <= cfg.tolerance {
        return Ok(CgOutcome {
            x,
            iterations: max_iterations,
            relative_residual: rel,
            converged: true,
        });
    }
    Err(MathError::NoConvergence {
        sweeps: max_iterations,
        off_diagonal: rel,
    })
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;
    use crate::{DMatrix, SymmetricEigen};
    use proptest::prelude::*;

    /// Dense SPD solve via eigendecomposition: `x = V diag(1/l) V^T b`.
    /// The parity oracle for CG.
    fn dense_spd_solve(a: &DMatrix, b: &[f64]) -> Vec<f64> {
        let eig = SymmetricEigen::new(a).unwrap();
        let n = b.len();
        let v = eig.eigenvectors();
        let mut coeffs = vec![0.0; n];
        for (k, coeff) in coeffs.iter_mut().enumerate() {
            let vk = eig.eigenvector(k);
            let proj: f64 = vk.iter().zip(b).map(|(x, y)| x * y).sum();
            *coeff = proj / eig.eigenvalues()[k];
        }
        (0..n)
            .map(|i| (0..n).map(|k| v[(i, k)] * coeffs[k]).sum())
            .collect()
    }

    /// A well-conditioned SPD matrix `Q diag(lambda) Q^T` built from the
    /// orthonormal eigenvectors of an arbitrary symmetric seed matrix.
    fn spd_from_seed(entries: &[f64], lambdas: &[f64]) -> DMatrix {
        let n = lambdas.len();
        let mut seed = DMatrix::zeros(n, n);
        let mut it = entries.iter().cycle();
        for i in 0..n {
            for j in i..n {
                let v = *it.next().unwrap();
                seed[(i, j)] = v;
                seed[(j, i)] = v;
            }
        }
        let q = SymmetricEigen::new(&seed).unwrap();
        let v = q.eigenvectors();
        let mut lambda = DMatrix::zeros(n, n);
        for (i, &l) in lambdas.iter().enumerate() {
            lambda[(i, i)] = l;
        }
        v.mul(&lambda).unwrap().mul(&v.transpose()).unwrap()
    }

    #[test]
    fn solves_laplacian_system() {
        let a = CsrMatrix::symmetric_from_edges(
            3,
            &[
                (0, 0, 2.0),
                (1, 1, 2.0),
                (2, 2, 2.0),
                (0, 1, -1.0),
                (1, 2, -1.0),
            ],
        )
        .unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let out = conjugate_gradient(&a, &b, &CgConfig::default()).unwrap();
        assert!(out.converged);
        for (xi, ti) in out.x.iter().zip(x_true) {
            assert!((xi - ti).abs() < 1e-8, "{xi} vs {ti}");
        }
    }

    #[test]
    fn zero_rhs_returns_zero_immediately() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        let out = conjugate_gradient(&a, &[0.0, 0.0], &CgConfig::default()).unwrap();
        assert_eq!(out.x, vec![0.0, 0.0]);
        assert_eq!(out.iterations, 0);
        assert!(out.converged);
    }

    #[test]
    fn error_cases() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        assert!(matches!(
            conjugate_gradient(&a, &[1.0], &CgConfig::default()),
            Err(MathError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            conjugate_gradient(&a, &[f64::NAN, 0.0], &CgConfig::default()),
            Err(MathError::InvalidArgument(_))
        ));
        let empty = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        assert!(conjugate_gradient(&empty, &[], &CgConfig::default()).is_err());
    }

    #[test]
    fn indefinite_operator_breaks_down() {
        // diag(1, -1) is symmetric but indefinite.
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, -1.0)]).unwrap();
        let err = conjugate_gradient(&a, &[0.0, 1.0], &CgConfig::default()).unwrap_err();
        assert!(matches!(err, MathError::InvalidArgument(_)));
    }

    #[test]
    fn iteration_budget_is_enforced() {
        // A 1-D Laplacian chain needs ~n iterations; 1 is not enough.
        let n = 20;
        let mut edges: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 2.0)).collect();
        edges.extend((0..n - 1).map(|i| (i, i + 1, -1.0)));
        let a = CsrMatrix::symmetric_from_edges(n, &edges).unwrap();
        let b = vec![1.0; n];
        let cfg = CgConfig {
            max_iterations: 1,
            tolerance: 1e-12,
        };
        assert!(matches!(
            conjugate_gradient(&a, &b, &cfg),
            Err(MathError::NoConvergence { .. })
        ));
    }

    proptest! {
        /// CG agrees with the dense eigendecomposition solve on random
        /// well-conditioned SPD systems (the dense<->sparse parity
        /// contract of the sparse backend).
        #[test]
        fn prop_cg_matches_dense_eigen_solve(
            entries in proptest::collection::vec(-3.0f64..3.0, 15),
            lambdas in proptest::collection::vec(1.0f64..10.0, 5),
            b in proptest::collection::vec(-5.0f64..5.0, 5),
        ) {
            let dense = spd_from_seed(&entries, &lambdas);
            let sparse = CsrMatrix::from_dense(&dense);
            let out = conjugate_gradient(&sparse, &b, &CgConfig::default()).unwrap();
            prop_assert!(out.converged);
            let oracle = dense_spd_solve(&dense, &b);
            let scale = oracle.iter().map(|v| v.abs()).fold(1.0, f64::max);
            for (xi, oi) in out.x.iter().zip(&oracle) {
                prop_assert!((xi - oi).abs() < 1e-6 * scale, "{xi} vs {oi}");
            }
        }
    }
}
