//! Conjugate gradient for symmetric positive-definite systems, with
//! optional preconditioning and warm starts.
//!
//! The large-`n` solver paths need `A x = b` solves where `A` is only
//! available as a matrix-free [`LinearOperator`] — assembling a dense
//! factorization would reintroduce the `O(n^2)` storage the sparse
//! backend exists to avoid. Plain CG needs one operator application and a
//! handful of vector operations per iteration, and converges in at most
//! `n` steps in exact arithmetic (far fewer on the well-conditioned
//! systems the solvers produce).
//!
//! Three orthogonal extensions sit on top of the plain method, all
//! **opt-in** so the historical default path stays bit-for-bit stable
//! (campaign fingerprints are pinned on it):
//!
//! * **Preconditioning** ([`Preconditioner`], [`PreconditionerKind`]) —
//!   solves `M^{-1} A x = M^{-1} b` implicitly, trading one cheap
//!   `z = M^{-1} r` application per iteration for a (often drastically)
//!   smaller iteration count. [`JacobiPreconditioner`] works for any
//!   operator that can expose its diagonal; [`IncompleteCholesky`]
//!   (IC(0)) needs a materialized [`CsrMatrix`] but handles the
//!   ill-conditioned systems Jacobi cannot.
//! * **Warm starts** — [`conjugate_gradient_with`] accepts an `x0`;
//!   outer Gauss–Newton loops seed each linearization from the previous
//!   step's delta, which shrinks the initial residual by orders of
//!   magnitude once the outer iteration is in its contraction regime.
//! * **Scratch reuse** ([`CgWorkspace`]) — the per-solve `r`/`p`/`Ap`/`z`
//!   vectors live in a caller-owned workspace, so a refinement loop
//!   running hundreds of CG solves allocates them once.

use super::{CsrMatrix, LinearOperator};
use crate::{MathError, Result};

/// Which preconditioner [`conjugate_gradient`] should build for the
/// operator (resolved by [`resolve_preconditioner`]).
///
/// The default is [`PreconditionerKind::None`]: the unpreconditioned
/// path is fingerprint-pinned by the golden tests and must stay
/// bit-identical, so presets opt *in* to preconditioning rather than
/// defaults opting out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreconditionerKind {
    /// Plain CG — the historical, fingerprint-pinned default.
    #[default]
    None,
    /// Diagonal (Jacobi) scaling: `M = diag(A)`. Works for any operator
    /// implementing [`LinearOperator::diagonal_into`]; falls back to
    /// plain CG when the diagonal is unavailable or not strictly
    /// positive.
    Jacobi,
    /// Incomplete Cholesky with zero fill-in, `M = L L^T` on the sparsity
    /// pattern of `A`. Needs a materialized [`CsrMatrix`]
    /// ([`LinearOperator::as_csr`]); falls back to Jacobi, then to plain
    /// CG, when unavailable.
    IncompleteCholesky,
}

/// Configuration for [`conjugate_gradient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgConfig {
    /// Iteration cap. `0` means "dimension of the system" (the exact-
    /// arithmetic worst case).
    pub max_iterations: usize,
    /// Convergence threshold on the *relative* residual
    /// `||b - A x|| / ||b||`.
    pub tolerance: f64,
    /// Preconditioner to build for the operator. Defaults to
    /// [`PreconditionerKind::None`] — see the type docs for why.
    pub preconditioner: PreconditionerKind,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            max_iterations: 0,
            tolerance: 1e-10,
            preconditioner: PreconditionerKind::None,
        }
    }
}

impl CgConfig {
    /// Replaces the iteration cap (builder style); `0` means "dimension
    /// of the system".
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Replaces the relative-residual convergence threshold (builder
    /// style). Outer loops wrapping CG (e.g. Gauss–Newton refinement)
    /// typically loosen this: each linearization is only an approximation,
    /// so solving it past ~1e-6 buys nothing.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Replaces the preconditioner selection (builder style).
    pub fn with_preconditioner(mut self, preconditioner: PreconditionerKind) -> Self {
        self.preconditioner = preconditioner;
        self
    }
}

/// The result of a [`conjugate_gradient`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOutcome {
    /// The solution estimate.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `||b - A x|| / ||b||`.
    pub relative_residual: f64,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
}

/// A symmetric positive-definite preconditioner `M ~ A`, applied as
/// `z = M^{-1} r` once per CG iteration.
///
/// Implementations must be SPD for preconditioned CG to retain its
/// convergence guarantees; an indefinite `M` surfaces as a breakdown
/// error mid-solve.
pub trait Preconditioner {
    /// Dimension `n` of the (square) preconditioner.
    fn dim(&self) -> usize;

    /// Writes `M^{-1} r` into `z` (`r.len() == z.len() == self.dim()`).
    fn apply_inv(&self, r: &[f64], z: &mut [f64]);
}

/// Jacobi (diagonal) preconditioner: `M = diag(d)`, applied as
/// `z_i = r_i / d_i`.
///
/// The cheapest preconditioner there is — one multiply per entry — and
/// effective whenever the diagonal carries most of the conditioning
/// (e.g. damped normal equations `J^T W J + lambda I` whose node degrees
/// vary widely).
#[derive(Debug, Clone, PartialEq)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from the diagonal of an SPD operator.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] when the diagonal is empty
    /// or any entry is non-positive or non-finite (an SPD matrix has a
    /// strictly positive diagonal).
    pub fn from_diagonal(diag: &[f64]) -> Result<Self> {
        if diag.is_empty() {
            return Err(MathError::InvalidArgument("empty diagonal"));
        }
        let mut inv_diag = Vec::with_capacity(diag.len());
        for &d in diag {
            if !(d > 0.0) || !d.is_finite() {
                return Err(MathError::InvalidArgument(
                    "Jacobi preconditioner needs a strictly positive finite diagonal",
                ));
            }
            inv_diag.push(1.0 / d);
        }
        Ok(JacobiPreconditioner { inv_diag })
    }

    /// Builds the preconditioner from an operator's diagonal, or `None`
    /// when the operator does not expose one
    /// ([`LinearOperator::diagonal_into`] returns `false`) or the
    /// diagonal is not strictly positive.
    pub fn for_operator<O: LinearOperator + ?Sized>(a: &O) -> Option<Self> {
        let mut diag = vec![0.0; a.dim()];
        if !a.diagonal_into(&mut diag) {
            return None;
        }
        Self::from_diagonal(&diag).ok()
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn apply_inv(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.inv_diag.len());
        debug_assert_eq!(z.len(), self.inv_diag.len());
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// Incomplete Cholesky factorization with zero fill-in — IC(0):
/// `M = L L^T` where `L` has exactly the lower-triangle sparsity pattern
/// of `A`.
///
/// Far stronger than Jacobi on mesh-like systems (graph Laplacians,
/// normal equations of geometric networks) at the cost of needing the
/// matrix materialized as a [`CsrMatrix`]. Application is two sparse
/// triangular solves.
///
/// IC(0) can break down on matrices that are SPD but not H-matrices; the
/// factorization retries with increasing diagonal shifts
/// (`A + alpha diag(A)`, the Manteuffel strategy) before giving up.
#[derive(Debug, Clone, PartialEq)]
pub struct IncompleteCholesky {
    n: usize,
    /// `L` in CSR (columns ascending, so the diagonal is each row's last
    /// stored entry).
    l_row_ptr: Vec<usize>,
    l_col: Vec<usize>,
    l_val: Vec<f64>,
    /// `L^T` in CSR (columns ascending, so the diagonal is each row's
    /// first stored entry) — the backward solve walks this.
    u_row_ptr: Vec<usize>,
    u_col: Vec<usize>,
    u_val: Vec<f64>,
}

impl IncompleteCholesky {
    /// Factors the lower triangle of a square, symmetric, SPD-ish CSR
    /// matrix. Only stored lower-triangle entries participate (symmetry
    /// is assumed, not checked — same contract as
    /// [`conjugate_gradient`]).
    ///
    /// # Errors
    ///
    /// * [`MathError::NotSquare`] for rectangular matrices.
    /// * [`MathError::InvalidArgument`] for an empty matrix, a
    ///   non-positive diagonal entry, or a persistent pivot breakdown
    ///   after the shift retries.
    pub fn factor(a: &CsrMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(MathError::NotSquare {
                dims: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(MathError::InvalidArgument("empty matrix"));
        }
        // Manteuffel shifts: retry `A + alpha diag(A)` with growing alpha
        // until the pivots stay positive.
        for &alpha in &[0.0, 1e-3, 1e-2, 1e-1, 1.0, 10.0] {
            if let Some(ic) = Self::try_factor(a, alpha)? {
                return Ok(ic);
            }
        }
        Err(MathError::InvalidArgument(
            "IC(0) breakdown persists under diagonal shifts",
        ))
    }

    /// One factorization attempt at shift `alpha`; `Ok(None)` signals a
    /// pivot breakdown (retry with a larger shift), `Err` a structural
    /// problem no shift can fix.
    fn try_factor(a: &CsrMatrix, alpha: f64) -> Result<Option<Self>> {
        let n = a.rows();
        let mut l_row_ptr = Vec::with_capacity(n + 1);
        let mut l_col: Vec<usize> = Vec::new();
        let mut l_val: Vec<f64> = Vec::new();
        l_row_ptr.push(0);
        for i in 0..n {
            let mut diag = None;
            for (j, v) in a.row(i) {
                if j > i {
                    break;
                }
                if j == i {
                    diag = Some(v * (1.0 + alpha));
                    continue;
                }
                // l_ij = (a_ij - sum_p l_ip l_jp) / l_jj over the shared
                // pattern p < j of rows i (partial) and j (complete).
                let mut s = v;
                let row_i = l_row_ptr[i]..l_col.len();
                let row_j = l_row_ptr[j]..l_row_ptr[j + 1];
                let mut pi = row_i.start;
                let mut pj = row_j.start;
                while pi < row_i.end && pj < row_j.end {
                    let (ci, cj) = (l_col[pi], l_col[pj]);
                    if ci >= j || cj >= j {
                        break;
                    }
                    match ci.cmp(&cj) {
                        core::cmp::Ordering::Less => pi += 1,
                        core::cmp::Ordering::Greater => pj += 1,
                        core::cmp::Ordering::Equal => {
                            s -= l_val[pi] * l_val[pj];
                            pi += 1;
                            pj += 1;
                        }
                    }
                }
                // l_jj is row j's last stored entry (columns ascend).
                let l_jj = l_val[l_row_ptr[j + 1] - 1];
                l_col.push(j);
                l_val.push(s / l_jj);
            }
            let Some(mut d) = diag else {
                return Err(MathError::InvalidArgument(
                    "IC(0) needs every diagonal entry stored",
                ));
            };
            for v in &l_val[l_row_ptr[i]..] {
                d -= v * v;
            }
            if !(d > 0.0) || !d.is_finite() {
                return Ok(None); // pivot breakdown: caller retries shifted
            }
            l_col.push(i);
            l_val.push(d.sqrt());
            l_row_ptr.push(l_col.len());
        }

        // Transpose L into U = L^T (counting sort by column).
        let nnz = l_col.len();
        let mut counts = vec![0usize; n + 1];
        for &c in &l_col {
            counts[c + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let u_row_ptr = counts.clone();
        let mut u_col = vec![0usize; nnz];
        let mut u_val = vec![0.0; nnz];
        let mut cursor = counts;
        for i in 0..n {
            for k in l_row_ptr[i]..l_row_ptr[i + 1] {
                let c = l_col[k];
                u_col[cursor[c]] = i;
                u_val[cursor[c]] = l_val[k];
                cursor[c] += 1;
            }
        }
        Ok(Some(IncompleteCholesky {
            n,
            l_row_ptr,
            l_col,
            l_val,
            u_row_ptr,
            u_col,
            u_val,
        }))
    }

    /// Number of stored entries in `L`.
    pub fn nnz(&self) -> usize {
        self.l_val.len()
    }
}

impl Preconditioner for IncompleteCholesky {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply_inv(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.n);
        debug_assert_eq!(z.len(), self.n);
        // Forward solve L y = r (y lives in z; the diagonal is each L
        // row's last entry).
        for i in 0..self.n {
            let row = self.l_row_ptr[i]..self.l_row_ptr[i + 1];
            let mut s = r[i];
            for k in row.start..row.end - 1 {
                s -= self.l_val[k] * z[self.l_col[k]];
            }
            z[i] = s / self.l_val[row.end - 1];
        }
        // Backward solve L^T z = y in place: row i of U only references
        // z[j] for j > i, which are already final.
        for i in (0..self.n).rev() {
            let row = self.u_row_ptr[i]..self.u_row_ptr[i + 1];
            let mut s = z[i];
            for k in row.start + 1..row.end {
                s -= self.u_val[k] * z[self.u_col[k]];
            }
            z[i] = s / self.u_val[row.start];
        }
    }
}

/// Builds the preconditioner a [`PreconditionerKind`] names for a
/// concrete operator, degrading gracefully: `IncompleteCholesky` needs
/// [`LinearOperator::as_csr`] and falls back to Jacobi when the operator
/// is matrix-free; `Jacobi` needs [`LinearOperator::diagonal_into`] and
/// falls back to `None` (plain CG).
///
/// Exposed so outer loops (Gauss–Newton refinement) can resolve once and
/// reuse the preconditioner across many [`conjugate_gradient_with`]
/// calls.
pub fn resolve_preconditioner<O: LinearOperator + ?Sized>(
    a: &O,
    kind: PreconditionerKind,
) -> Option<Box<dyn Preconditioner>> {
    match kind {
        PreconditionerKind::None => None,
        PreconditionerKind::Jacobi => {
            JacobiPreconditioner::for_operator(a).map(|j| Box::new(j) as Box<dyn Preconditioner>)
        }
        PreconditionerKind::IncompleteCholesky => a
            .as_csr()
            .and_then(|csr| IncompleteCholesky::factor(csr).ok())
            .map(|ic| Box::new(ic) as Box<dyn Preconditioner>)
            .or_else(|| {
                JacobiPreconditioner::for_operator(a)
                    .map(|j| Box::new(j) as Box<dyn Preconditioner>)
            }),
    }
}

/// Reusable scratch for [`conjugate_gradient_with`]: the residual,
/// search-direction, operator-image, and preconditioned-residual vectors.
///
/// A workspace is not tied to a system size — it grows to fit and is
/// reusable across solves of different dimensions.
#[derive(Debug, Clone, Default)]
pub struct CgWorkspace {
    r: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    z: Vec<f64>,
}

impl CgWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn resize(&mut self, n: usize) {
        self.r.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.ap.resize(n, 0.0);
        self.z.resize(n, 0.0);
    }
}

/// Solves `A x = b` for a symmetric positive-definite operator `A` by
/// the conjugate-gradient method, starting from `x = 0`.
///
/// The operator's symmetry and positive-definiteness are *assumed*, not
/// checked (checking would require materializing the operator); an
/// indefinite operator typically shows up as a failure to converge.
/// The run is fully deterministic — no randomness, fixed starting point.
///
/// `cfg.preconditioner` is resolved against the operator via
/// [`resolve_preconditioner`]; the default
/// ([`PreconditionerKind::None`]) reproduces the historical
/// unpreconditioned path bit for bit. For warm starts or scratch reuse,
/// call [`conjugate_gradient_with`] directly.
///
/// # Errors
///
/// * [`MathError::DimensionMismatch`] when `b.len() != a.dim()`.
/// * [`MathError::InvalidArgument`] for an empty system, a non-finite
///   right-hand side, or a breakdown (`p^T A p <= 0`, the indefinite-
///   operator signature).
/// * [`MathError::NoConvergence`] when the iteration budget runs out
///   before the tolerance is met.
pub fn conjugate_gradient<O: LinearOperator + ?Sized>(
    a: &O,
    b: &[f64],
    cfg: &CgConfig,
) -> Result<CgOutcome> {
    let m = resolve_preconditioner(a, cfg.preconditioner);
    conjugate_gradient_with(a, b, None, m.as_deref(), cfg, &mut CgWorkspace::new())
}

/// The full-control conjugate-gradient entry point: optional warm start
/// `x0`, optional explicit preconditioner `m`, and caller-owned scratch.
///
/// `cfg.preconditioner` is **ignored** here — the explicit `m` argument
/// is authoritative (resolve one with [`resolve_preconditioner`] if
/// needed). With `x0 = None` and `m = None` this is bit-for-bit the
/// historical unpreconditioned, zero-started path.
///
/// The reported `iterations` count has the same meaning in all modes:
/// operator applications spent in the main loop (a converged warm start
/// can cost 0).
///
/// Warm starts are *never worse* than cold starts by more than the one
/// operator apply spent evaluating the seed: convergence is measured
/// relative to `||b||`, so a stale `x0` whose residual is not smaller
/// than the zero start's is discarded and the solve proceeds from
/// `x = 0`.
///
/// # Errors
///
/// Same as [`conjugate_gradient`], plus
/// [`MathError::DimensionMismatch`] when `x0` or `m` disagree with the
/// operator dimension and [`MathError::InvalidArgument`] when the
/// preconditioner turns out not to be positive definite.
pub fn conjugate_gradient_with<O: LinearOperator + ?Sized>(
    a: &O,
    b: &[f64],
    x0: Option<&[f64]>,
    m: Option<&dyn Preconditioner>,
    cfg: &CgConfig,
    ws: &mut CgWorkspace,
) -> Result<CgOutcome> {
    let n = a.dim();
    if b.len() != n {
        return Err(MathError::DimensionMismatch {
            left: (n, n),
            right: (b.len(), 1),
        });
    }
    if let Some(x0) = x0 {
        if x0.len() != n {
            return Err(MathError::DimensionMismatch {
                left: (n, n),
                right: (x0.len(), 1),
            });
        }
        if x0.iter().any(|v| !v.is_finite()) {
            return Err(MathError::InvalidArgument("warm start is not finite"));
        }
    }
    if let Some(m) = &m {
        if m.dim() != n {
            return Err(MathError::DimensionMismatch {
                left: (n, n),
                right: (m.dim(), m.dim()),
            });
        }
    }
    if n == 0 {
        return Err(MathError::InvalidArgument("empty system"));
    }
    if b.iter().any(|v| !v.is_finite()) {
        return Err(MathError::InvalidArgument("right-hand side is not finite"));
    }
    let b_norm = norm(b);
    if b_norm == 0.0 {
        return Ok(CgOutcome {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
            converged: true,
        });
    }
    let max_iterations = if cfg.max_iterations == 0 {
        n
    } else {
        cfg.max_iterations
    };

    ws.resize(n);
    let mut x;
    match x0 {
        Some(x0) => {
            x = x0.to_vec();
            a.apply(&x, &mut ws.ap);
            for ((ri, bi), ai) in ws.r.iter_mut().zip(b).zip(&ws.ap) {
                *ri = bi - ai;
            }
            // Never-worse contract: convergence is measured relative to
            // ||b||, so a stale seed whose residual is not smaller than
            // the zero start's (r = b) would *cost* iterations. Fall
            // back to the cold start in that case; the warm start then
            // costs exactly one extra operator apply.
            let warm = dot(&ws.r, &ws.r);
            if !(warm < b_norm * b_norm) {
                x.iter_mut().for_each(|v| *v = 0.0);
                ws.r.copy_from_slice(b);
            }
        }
        None => {
            x = vec![0.0; n];
            ws.r.copy_from_slice(b); // r = b - A*0
        }
    }
    // rs tracks ||r||^2 (the convergence metric in every mode); rho is
    // the CG inner product r^T z — identical to rs when unpreconditioned.
    let mut rs = dot(&ws.r, &ws.r);
    let mut rho = match &m {
        Some(m) => {
            m.apply_inv(&ws.r, &mut ws.z);
            ws.p.copy_from_slice(&ws.z);
            dot(&ws.r, &ws.z)
        }
        None => {
            ws.p.copy_from_slice(&ws.r);
            rs
        }
    };

    for iteration in 0..max_iterations {
        let rel = rs.sqrt() / b_norm;
        if rel <= cfg.tolerance {
            return Ok(CgOutcome {
                x,
                iterations: iteration,
                relative_residual: rel,
                converged: true,
            });
        }
        if m.is_some() && (!(rho > 0.0) || !rho.is_finite()) {
            return Err(MathError::InvalidArgument(
                "CG breakdown: preconditioner is not positive definite",
            ));
        }
        a.apply(&ws.p, &mut ws.ap);
        let p_ap = dot(&ws.p, &ws.ap);
        if !(p_ap > 0.0) || !p_ap.is_finite() {
            return Err(MathError::InvalidArgument(
                "CG breakdown: operator is not positive definite",
            ));
        }
        let alpha = rho / p_ap;
        for (xi, pi) in x.iter_mut().zip(&ws.p) {
            *xi += alpha * pi;
        }
        for (ri, ai) in ws.r.iter_mut().zip(&ws.ap) {
            *ri -= alpha * ai;
        }
        rs = dot(&ws.r, &ws.r);
        let rho_new = match &m {
            Some(m) => {
                m.apply_inv(&ws.r, &mut ws.z);
                dot(&ws.r, &ws.z)
            }
            None => rs,
        };
        let beta = rho_new / rho;
        match &m {
            Some(_) => {
                for i in 0..n {
                    ws.p[i] = ws.z[i] + beta * ws.p[i];
                }
            }
            None => {
                for i in 0..n {
                    ws.p[i] = ws.r[i] + beta * ws.p[i];
                }
            }
        }
        rho = rho_new;
    }

    let rel = rs.sqrt() / b_norm;
    if rel <= cfg.tolerance {
        return Ok(CgOutcome {
            x,
            iterations: max_iterations,
            relative_residual: rel,
            converged: true,
        });
    }
    Err(MathError::NoConvergence {
        sweeps: max_iterations,
        off_diagonal: rel,
    })
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;
    use crate::{DMatrix, SymmetricEigen};
    use proptest::prelude::*;

    /// Dense SPD solve via eigendecomposition: `x = V diag(1/l) V^T b`.
    /// The parity oracle for CG.
    fn dense_spd_solve(a: &DMatrix, b: &[f64]) -> Vec<f64> {
        let eig = SymmetricEigen::new(a).unwrap();
        let n = b.len();
        let v = eig.eigenvectors();
        let mut coeffs = vec![0.0; n];
        for (k, coeff) in coeffs.iter_mut().enumerate() {
            let vk = eig.eigenvector(k);
            let proj: f64 = vk.iter().zip(b).map(|(x, y)| x * y).sum();
            *coeff = proj / eig.eigenvalues()[k];
        }
        (0..n)
            .map(|i| (0..n).map(|k| v[(i, k)] * coeffs[k]).sum())
            .collect()
    }

    /// A well-conditioned SPD matrix `Q diag(lambda) Q^T` built from the
    /// orthonormal eigenvectors of an arbitrary symmetric seed matrix.
    fn spd_from_seed(entries: &[f64], lambdas: &[f64]) -> DMatrix {
        let n = lambdas.len();
        let mut seed = DMatrix::zeros(n, n);
        let mut it = entries.iter().cycle();
        for i in 0..n {
            for j in i..n {
                let v = *it.next().unwrap();
                seed[(i, j)] = v;
                seed[(j, i)] = v;
            }
        }
        let q = SymmetricEigen::new(&seed).unwrap();
        let v = q.eigenvectors();
        let mut lambda = DMatrix::zeros(n, n);
        for (i, &l) in lambdas.iter().enumerate() {
            lambda[(i, i)] = l;
        }
        v.mul(&lambda).unwrap().mul(&v.transpose()).unwrap()
    }

    /// The ill-conditioned workhorse: a 1-D Laplacian chain with a huge
    /// diagonal spread, where plain CG grinds and both preconditioners
    /// shine.
    fn ill_conditioned(n: usize) -> (CsrMatrix, Vec<f64>) {
        let mut edges: Vec<(usize, usize, f64)> = (0..n)
            .map(|i| (i, i, 2.0 + 1000.0 * (i % 7) as f64))
            .collect();
        edges.extend((0..n - 1).map(|i| (i, i + 1, -1.0)));
        let a = CsrMatrix::symmetric_from_edges(n, &edges).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect();
        (a, b)
    }

    #[test]
    fn solves_laplacian_system() {
        let a = CsrMatrix::symmetric_from_edges(
            3,
            &[
                (0, 0, 2.0),
                (1, 1, 2.0),
                (2, 2, 2.0),
                (0, 1, -1.0),
                (1, 2, -1.0),
            ],
        )
        .unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let out = conjugate_gradient(&a, &b, &CgConfig::default()).unwrap();
        assert!(out.converged);
        for (xi, ti) in out.x.iter().zip(x_true) {
            assert!((xi - ti).abs() < 1e-8, "{xi} vs {ti}");
        }
    }

    #[test]
    fn zero_rhs_returns_zero_immediately() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        let out = conjugate_gradient(&a, &[0.0, 0.0], &CgConfig::default()).unwrap();
        assert_eq!(out.x, vec![0.0, 0.0]);
        assert_eq!(out.iterations, 0);
        assert!(out.converged);
    }

    #[test]
    fn error_cases() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        assert!(matches!(
            conjugate_gradient(&a, &[1.0], &CgConfig::default()),
            Err(MathError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            conjugate_gradient(&a, &[f64::NAN, 0.0], &CgConfig::default()),
            Err(MathError::InvalidArgument(_))
        ));
        let empty = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        assert!(conjugate_gradient(&empty, &[], &CgConfig::default()).is_err());
        // Warm starts and explicit preconditioners are validated too.
        assert!(matches!(
            conjugate_gradient_with(
                &a,
                &[1.0, 1.0],
                Some(&[1.0]),
                None,
                &CgConfig::default(),
                &mut CgWorkspace::new()
            ),
            Err(MathError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            conjugate_gradient_with(
                &a,
                &[1.0, 1.0],
                Some(&[f64::INFINITY, 0.0]),
                None,
                &CgConfig::default(),
                &mut CgWorkspace::new()
            ),
            Err(MathError::InvalidArgument(_))
        ));
        let wrong_m = JacobiPreconditioner::from_diagonal(&[1.0]).unwrap();
        assert!(matches!(
            conjugate_gradient_with(
                &a,
                &[1.0, 1.0],
                None,
                Some(&wrong_m),
                &CgConfig::default(),
                &mut CgWorkspace::new()
            ),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn indefinite_operator_breaks_down() {
        // diag(1, -1) is symmetric but indefinite.
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, -1.0)]).unwrap();
        let err = conjugate_gradient(&a, &[0.0, 1.0], &CgConfig::default()).unwrap_err();
        assert!(matches!(err, MathError::InvalidArgument(_)));
    }

    #[test]
    fn iteration_budget_is_enforced() {
        // A 1-D Laplacian chain needs ~n iterations; 1 is not enough.
        let n = 20;
        let mut edges: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 2.0)).collect();
        edges.extend((0..n - 1).map(|i| (i, i + 1, -1.0)));
        let a = CsrMatrix::symmetric_from_edges(n, &edges).unwrap();
        let b = vec![1.0; n];
        let cfg = CgConfig {
            max_iterations: 1,
            tolerance: 1e-12,
            preconditioner: PreconditionerKind::None,
        };
        assert!(matches!(
            conjugate_gradient(&a, &b, &cfg),
            Err(MathError::NoConvergence { .. })
        ));
    }

    /// The bitwise-stability pin: the default `CgConfig` path must
    /// reproduce the pre-refactor solver exactly — same iteration count,
    /// same residual, same solution bits. The golden values were captured
    /// from the pre-preconditioner implementation on this fixture.
    #[test]
    fn default_path_is_bitwise_stable() {
        let n = 24;
        let mut edges: Vec<(usize, usize, f64)> =
            (0..n).map(|i| (i, i, 4.0 + (i % 3) as f64)).collect();
        edges.extend((0..n - 1).map(|i| (i, i + 1, -1.0)));
        edges.extend((0..n - 2).map(|i| (i, i + 2, -0.5)));
        let a = CsrMatrix::symmetric_from_edges(n, &edges).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let out = conjugate_gradient(&a, &b, &CgConfig::default()).unwrap();
        assert_eq!(out.iterations, 18, "iteration count drifted");
        assert_eq!(
            out.relative_residual.to_bits(),
            8.635970093400802e-11f64.to_bits(),
            "residual drifted"
        );
        let mut h = crate::Fnv1a::new();
        for xi in &out.x {
            h.write_f64(*xi);
        }
        assert_eq!(h.finish(), 0x1fed314636c515f1, "solution bits drifted");
        assert_eq!(out.x[0].to_bits(), 0xbff31e57e1e919d6);
        assert_eq!(out.x[23].to_bits(), 0x3fbbcc05f7a2a7e0);
        // The explicit-plumbing entry with everything disabled is the
        // same code path.
        let again = conjugate_gradient_with(
            &a,
            &b,
            None,
            None,
            &CgConfig::default(),
            &mut CgWorkspace::new(),
        )
        .unwrap();
        assert_eq!(again, out);
    }

    #[test]
    fn jacobi_rejects_non_spd_diagonals() {
        assert!(JacobiPreconditioner::from_diagonal(&[]).is_err());
        assert!(JacobiPreconditioner::from_diagonal(&[1.0, 0.0]).is_err());
        assert!(JacobiPreconditioner::from_diagonal(&[1.0, -2.0]).is_err());
        assert!(JacobiPreconditioner::from_diagonal(&[1.0, f64::NAN]).is_err());
        assert!(JacobiPreconditioner::from_diagonal(&[4.0, 2.0]).is_ok());
    }

    #[test]
    fn ic0_factors_reproduce_full_cholesky_on_dense_pattern() {
        // With a fully dense lower triangle IC(0) *is* Cholesky, so
        // M^{-1} r must solve exactly: PCG converges in one iteration.
        let a = CsrMatrix::from_dense(&spd_from_seed(
            &[1.0, -0.5, 2.0, 0.3, -1.0, 0.7, 1.5, -0.2, 0.9, 2.2],
            &[3.0, 5.0, 8.0, 11.0],
        ));
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let b = [1.0, -2.0, 3.0, -4.0];
        let cfg = CgConfig::default();
        let out = conjugate_gradient_with(&a, &b, None, Some(&ic), &cfg, &mut CgWorkspace::new())
            .unwrap();
        assert!(out.converged);
        assert!(
            out.iterations <= 2,
            "exact factorization should solve in ~1 iteration, took {}",
            out.iterations
        );
    }

    #[test]
    fn preconditioners_cut_iterations_on_ill_conditioned_fixture() {
        let (a, b) = ill_conditioned(120);
        let plain = conjugate_gradient(&a, &b, &CgConfig::default()).unwrap();
        let jacobi = conjugate_gradient(
            &a,
            &b,
            &CgConfig::default().with_preconditioner(PreconditionerKind::Jacobi),
        )
        .unwrap();
        let ic0 = conjugate_gradient(
            &a,
            &b,
            &CgConfig::default().with_preconditioner(PreconditionerKind::IncompleteCholesky),
        )
        .unwrap();
        assert!(plain.converged && jacobi.converged && ic0.converged);
        assert!(
            jacobi.iterations < plain.iterations,
            "Jacobi ({}) must beat plain ({}) on the skewed-diagonal chain",
            jacobi.iterations,
            plain.iterations
        );
        assert!(
            ic0.iterations <= jacobi.iterations,
            "IC(0) ({}) should be at least as strong as Jacobi ({})",
            ic0.iterations,
            jacobi.iterations
        );
    }

    #[test]
    fn warm_start_from_exact_solution_costs_zero_iterations() {
        let (a, b) = ill_conditioned(60);
        let exact = conjugate_gradient(&a, &b, &CgConfig::default()).unwrap();
        let warm = conjugate_gradient_with(
            &a,
            &b,
            Some(&exact.x),
            None,
            &CgConfig::default().with_tolerance(1e-8),
            &mut CgWorkspace::new(),
        )
        .unwrap();
        assert!(warm.converged);
        assert_eq!(warm.iterations, 0);
    }

    #[test]
    fn stale_warm_start_falls_back_to_cold_start() {
        let (a, b) = ill_conditioned(60);
        let cold = conjugate_gradient(&a, &b, &CgConfig::default()).unwrap();
        // A seed pointing away from the solution has a residual larger
        // than ||b||; the never-worse guard must discard it, making the
        // solve bitwise identical to the cold start.
        let stale: Vec<f64> = (0..60).map(|i| 100.0 * (1.0 + (i % 5) as f64)).collect();
        let warm = conjugate_gradient_with(
            &a,
            &b,
            Some(&stale),
            None,
            &CgConfig::default(),
            &mut CgWorkspace::new(),
        )
        .unwrap();
        assert_eq!(warm.iterations, cold.iterations);
        for (c, w) in cold.x.iter().zip(&warm.x) {
            assert_eq!(c.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn workspace_is_reusable_across_sizes() {
        let mut ws = CgWorkspace::new();
        let (a1, b1) = ill_conditioned(40);
        let first =
            conjugate_gradient_with(&a1, &b1, None, None, &CgConfig::default(), &mut ws).unwrap();
        let (a2, b2) = ill_conditioned(80);
        let second =
            conjugate_gradient_with(&a2, &b2, None, None, &CgConfig::default(), &mut ws).unwrap();
        // Same answers as fresh-workspace runs.
        assert_eq!(
            first,
            conjugate_gradient(&a1, &b1, &CgConfig::default()).unwrap()
        );
        assert_eq!(
            second,
            conjugate_gradient(&a2, &b2, &CgConfig::default()).unwrap()
        );
    }

    #[test]
    fn resolve_falls_back_gracefully_for_matrix_free_operators() {
        /// Matrix-free operator with no diagonal and no CSR: both
        /// preconditioner kinds must degrade to plain CG (None).
        struct Opaque;
        impl crate::sparse::LinearOperator for Opaque {
            fn dim(&self) -> usize {
                3
            }
            fn apply(&self, x: &[f64], y: &mut [f64]) {
                for (yi, xi) in y.iter_mut().zip(x) {
                    *yi = 2.0 * xi;
                }
            }
        }
        assert!(resolve_preconditioner(&Opaque, PreconditionerKind::None).is_none());
        assert!(resolve_preconditioner(&Opaque, PreconditionerKind::Jacobi).is_none());
        assert!(resolve_preconditioner(&Opaque, PreconditionerKind::IncompleteCholesky).is_none());
        // A CSR resolves all three kinds.
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]).unwrap();
        assert!(resolve_preconditioner(&a, PreconditionerKind::Jacobi).is_some());
        assert!(resolve_preconditioner(&a, PreconditionerKind::IncompleteCholesky).is_some());
    }

    proptest! {
        /// CG agrees with the dense eigendecomposition solve on random
        /// well-conditioned SPD systems (the dense<->sparse parity
        /// contract of the sparse backend).
        #[test]
        fn prop_cg_matches_dense_eigen_solve(
            entries in proptest::collection::vec(-3.0f64..3.0, 15),
            lambdas in proptest::collection::vec(1.0f64..10.0, 5),
            b in proptest::collection::vec(-5.0f64..5.0, 5),
        ) {
            let dense = spd_from_seed(&entries, &lambdas);
            let sparse = CsrMatrix::from_dense(&dense);
            let out = conjugate_gradient(&sparse, &b, &CgConfig::default()).unwrap();
            prop_assert!(out.converged);
            let oracle = dense_spd_solve(&dense, &b);
            let scale = oracle.iter().map(|v| v.abs()).fold(1.0, f64::max);
            for (xi, oi) in out.x.iter().zip(&oracle) {
                prop_assert!((xi - oi).abs() < 1e-6 * scale, "{xi} vs {oi}");
            }
        }

        /// PCG parity: Jacobi and IC(0) land on the same solution as
        /// unpreconditioned CG (within tolerance) on random SPD fixtures
        /// — preconditioning changes the path, never the answer.
        #[test]
        fn prop_pcg_matches_plain_cg(
            entries in proptest::collection::vec(-3.0f64..3.0, 15),
            lambdas in proptest::collection::vec(1.0f64..10.0, 5),
            b in proptest::collection::vec(-5.0f64..5.0, 5),
        ) {
            let dense = spd_from_seed(&entries, &lambdas);
            let sparse = CsrMatrix::from_dense(&dense);
            let plain = conjugate_gradient(&sparse, &b, &CgConfig::default()).unwrap();
            let scale = plain.x.iter().map(|v| v.abs()).fold(1.0, f64::max);
            for kind in [PreconditionerKind::Jacobi, PreconditionerKind::IncompleteCholesky] {
                let pcg = conjugate_gradient(
                    &sparse,
                    &b,
                    &CgConfig::default().with_preconditioner(kind),
                ).unwrap();
                prop_assert!(pcg.converged);
                for (xi, pi) in plain.x.iter().zip(&pcg.x) {
                    prop_assert!((xi - pi).abs() < 1e-6 * scale, "{kind:?}: {xi} vs {pi}");
                }
            }
        }

        /// Warm-starting from a perturbed solution never changes the
        /// answer, only the work: the result still matches plain CG.
        #[test]
        fn prop_warm_start_matches_cold(
            entries in proptest::collection::vec(-3.0f64..3.0, 15),
            lambdas in proptest::collection::vec(1.0f64..10.0, 5),
            b in proptest::collection::vec(-5.0f64..5.0, 5),
            jitter in proptest::collection::vec(-0.1f64..0.1, 5),
        ) {
            let dense = spd_from_seed(&entries, &lambdas);
            let sparse = CsrMatrix::from_dense(&dense);
            let cold = conjugate_gradient(&sparse, &b, &CgConfig::default()).unwrap();
            let x0: Vec<f64> = cold.x.iter().zip(&jitter).map(|(x, j)| x + j).collect();
            let warm = conjugate_gradient_with(
                &sparse, &b, Some(&x0), None,
                &CgConfig::default(), &mut CgWorkspace::new(),
            ).unwrap();
            prop_assert!(warm.converged);
            let scale = cold.x.iter().map(|v| v.abs()).fold(1.0, f64::max);
            for (ci, wi) in cold.x.iter().zip(&warm.x) {
                prop_assert!((ci - wi).abs() < 1e-6 * scale, "{ci} vs {wi}");
            }
        }

        /// IC(0) really factors: `L L^T` reproduces `A` exactly on a
        /// fully stored pattern (where IC(0) degenerates to Cholesky).
        #[test]
        fn prop_ic0_is_exact_on_dense_pattern(
            entries in proptest::collection::vec(-2.0f64..2.0, 10),
            lambdas in proptest::collection::vec(1.0f64..8.0, 4),
        ) {
            let dense = spd_from_seed(&entries, &lambdas);
            let sparse = CsrMatrix::from_dense(&dense);
            if let Ok(ic) = IncompleteCholesky::factor(&sparse) {
                // M^{-1} A should act as identity: apply to random-ish b.
                let b = [1.0, -1.0, 0.5, 2.0];
                let ab = sparse.matvec(&b).unwrap();
                let mut z = vec![0.0; 4];
                ic.apply_inv(&ab, &mut z);
                for (zi, bi) in z.iter().zip(&b) {
                    prop_assert!((zi - bi).abs() < 1e-6, "{zi} vs {bi}");
                }
            }
        }
    }
}
