//! Top-`k` eigenpairs of a symmetric operator from mat-vec alone.
//!
//! Classical MDS needs only the **two** dominant eigenpairs of the
//! double-centered squared-distance matrix, but the dense Jacobi solver
//! ([`SymmetricEigen`]) computes the full
//! spectrum in `O(n^3)` — the cost that locks MDS-MAP out of metro-scale
//! problems. [`topk_symmetric`] replaces it with shifted subspace
//! (block power) iteration: each step applies the operator to `k`
//! vectors, re-orthonormalizes, and reads eigenvalue estimates off a
//! `k x k` Rayleigh–Ritz projection, for `O(k * apply_cost)` per
//! iteration and no materialized matrix.
//!
//! The shift makes the method converge to the *algebraically* largest
//! eigenvalues (what MDS needs), not the largest in magnitude: a spectral
//! radius estimate `rho` from a short power iteration turns `A` into the
//! positive-semidefinite `A + sigma I` (`sigma ~ 1.1 rho`), whose
//! magnitude order equals `A`'s algebraic order.
//!
//! The run is deterministic: starting vectors come from a fixed-seed
//! stream, so two runs on the same operator produce bit-identical
//! eigenpairs (the campaign determinism contract extends through this
//! solver).

use rand::Rng;

use super::LinearOperator;
use crate::{DMatrix, MathError, Result, SymmetricEigen};

/// Fixed seed for the deterministic starting block (see module docs).
const INIT_SEED: u64 = 0x5EED_E16E;

/// Configuration for [`topk_symmetric`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKConfig {
    /// Iteration cap for the subspace iteration.
    pub max_iterations: usize,
    /// Convergence threshold on the worst Ritz-pair *residual*:
    /// stop when `max_j ||A x_j - lambda_j x_j|| <= tolerance *
    /// max(spectral scale, 1)`. A residual bound controls the eigenvector
    /// error directly (value-settling criteria converge twice as fast as
    /// the vectors and would stop too early).
    pub tolerance: f64,
}

impl Default for TopKConfig {
    fn default() -> Self {
        TopKConfig {
            max_iterations: 2_000,
            tolerance: 1e-8,
        }
    }
}

/// The `k` algebraically largest eigenpairs of a symmetric operator,
/// eigenvalues in descending order.
#[derive(Debug, Clone)]
pub struct TopKEigen {
    /// Eigenvalue estimates, descending.
    pub eigenvalues: Vec<f64>,
    /// Unit eigenvector estimates; `eigenvectors[j]` pairs with
    /// `eigenvalues[j]` (determined up to sign, like any eigenvector).
    pub eigenvectors: Vec<Vec<f64>>,
    /// Subspace iterations performed.
    pub iterations: usize,
}

impl TopKEigen {
    /// Principal-coordinate embedding: row `i` holds the `dims = k`
    /// coordinates `eigenvectors[j][i] * sqrt(max(eigenvalues[j], 0))` —
    /// the classical-MDS configuration, mirroring
    /// [`SymmetricEigen::principal_coordinates`].
    pub fn principal_coordinates(&self) -> DMatrix {
        let k = self.eigenvalues.len();
        let n = self.eigenvectors.first().map_or(0, Vec::len);
        DMatrix::from_fn(n, k, |i, j| {
            self.eigenvectors[j][i] * self.eigenvalues[j].max(0.0).sqrt()
        })
    }
}

/// Computes the `k` algebraically largest eigenpairs of the symmetric
/// operator `a` by shifted subspace iteration.
///
/// Symmetry is assumed (the algorithm only ever applies `a`); feeding an
/// asymmetric operator produces meaningless results. Degenerate
/// eigenvalues are handled — the returned vectors then span the invariant
/// subspace, individual vectors being an arbitrary orthonormal basis of
/// it, exactly like the dense solver's.
///
/// # Errors
///
/// * [`MathError::InvalidArgument`] when `k` is zero or exceeds the
///   operator dimension, or the dimension is zero.
/// * [`MathError::NoConvergence`] when the Ritz values fail to settle
///   within the iteration budget (pathologically small eigengaps).
pub fn topk_symmetric<O: LinearOperator + ?Sized>(
    a: &O,
    k: usize,
    cfg: &TopKConfig,
) -> Result<TopKEigen> {
    let n = a.dim();
    if n == 0 {
        return Err(MathError::InvalidArgument("empty operator"));
    }
    if k == 0 || k > n {
        return Err(MathError::InvalidArgument(
            "k must be between 1 and the operator dimension",
        ));
    }

    let mut rng = crate::rng::seeded(INIT_SEED);
    let sigma = shift_for(a, &mut rng);

    // The orthonormal block V (k columns of length n) and its image under
    // the shifted operator S = A + sigma I.
    let mut v: Vec<Vec<f64>> = (0..k).map(|_| random_unit(n, &mut rng)).collect();
    orthonormalize(&mut v, &mut rng);
    let mut w: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
    let mut worst_residual = f64::INFINITY;

    // Per-iteration scratch, hoisted out of the loop: the Rayleigh-Ritz
    // projection and the Ritz-pair blocks are refilled every pass, so a
    // long subspace iteration allocates them once instead of per step.
    let mut b = DMatrix::zeros(k, k);
    let mut xs: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
    let mut sxs: Vec<Vec<f64>> = vec![vec![0.0; n]; k];

    for iteration in 1..=cfg.max_iterations {
        // One blocked application S V = A V + sigma V: operators with
        // structure (CSR, the MDS centering operator) push the whole
        // block through a single traversal.
        a.apply_multi(&v, &mut w);
        for (vj, wj) in v.iter().zip(w.iter_mut()) {
            for (wi, vi) in wj.iter_mut().zip(vj) {
                *wi += sigma * vi;
            }
        }
        // Rayleigh-Ritz on the current block: B = V^T S V, symmetrized
        // against round-off before the small dense eigensolve.
        for i in 0..k {
            for j in 0..k {
                b[(i, j)] = dot(&v[i], &w[j]);
            }
        }
        for i in 0..k {
            for j in (i + 1)..k {
                let m = 0.5 * (b[(i, j)] + b[(j, i)]);
                b[(i, j)] = m;
                b[(j, i)] = m;
            }
        }
        let ritz = SymmetricEigen::new(&b)?;
        let theta = ritz.eigenvalues();
        let u = ritz.eigenvectors();

        // Ritz pairs and their residuals, both free in extra operator
        // applications: X = V U and S X = (S V) U = W U.
        for x in xs.iter_mut() {
            x.fill(0.0);
        }
        for x in sxs.iter_mut() {
            x.fill(0.0);
        }
        for j in 0..k {
            for c in 0..k {
                let coeff = u[(c, j)];
                for i in 0..n {
                    xs[j][i] += coeff * v[c][i];
                    sxs[j][i] += coeff * w[c][i];
                }
            }
        }
        let scale = theta[0].abs().max(1.0);
        worst_residual = (0..k)
            .map(|j| {
                let r: f64 = (0..n)
                    .map(|i| {
                        let r = sxs[j][i] - theta[j] * xs[j][i];
                        r * r
                    })
                    .sum();
                r.sqrt()
            })
            .fold(0.0, f64::max);
        if worst_residual <= cfg.tolerance * scale {
            for x in xs.iter_mut() {
                normalize(x);
            }
            return Ok(TopKEigen {
                eigenvalues: theta.iter().map(|t| t - sigma).collect(),
                eigenvectors: xs,
                iterations: iteration,
            });
        }

        // Next subspace: orthonormalized image.
        core::mem::swap(&mut v, &mut w);
        orthonormalize(&mut v, &mut rng);
    }

    Err(MathError::NoConvergence {
        sweeps: cfg.max_iterations,
        off_diagonal: worst_residual,
    })
}

/// A safe positive shift `sigma >= |lambda|_max * 1.1`, estimated by a
/// short power iteration (12 applications).
fn shift_for<O: LinearOperator + ?Sized>(a: &O, rng: &mut impl Rng) -> f64 {
    let n = a.dim();
    let mut x = random_unit(n, rng);
    let mut y = vec![0.0; n];
    let mut rho = 0.0;
    for _ in 0..12 {
        a.apply(&x, &mut y);
        rho = dot(&y, &y).sqrt();
        if rho <= f64::MIN_POSITIVE || !rho.is_finite() {
            break;
        }
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / rho;
        }
    }
    if rho.is_finite() && rho > 0.0 {
        1.1 * rho
    } else {
        1.0
    }
}

/// A deterministic unit-norm starting vector.
fn random_unit(n: usize, rng: &mut impl Rng) -> Vec<f64> {
    let mut x: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    if !normalize(&mut x) {
        x[0] = 1.0;
    }
    x
}

/// In-place modified Gram-Schmidt (two passes — "twice is enough").
/// Columns that collapse to zero are replaced with fresh deterministic
/// vectors and re-orthogonalized.
fn orthonormalize(v: &mut [Vec<f64>], rng: &mut impl Rng) {
    let n = v.first().map_or(0, Vec::len);
    for j in 0..v.len() {
        let mut attempts = 0;
        loop {
            for _pass in 0..2 {
                for i in 0..j {
                    let proj = dot(&v[i], &v[j]);
                    let (head, tail) = v.split_at_mut(j);
                    for (xj, xi) in tail[0].iter_mut().zip(&head[i]) {
                        *xj -= proj * xi;
                    }
                }
            }
            if normalize(&mut v[j]) {
                break;
            }
            attempts += 1;
            assert!(attempts <= n + 1, "cannot complete orthonormal block");
            v[j] = random_unit(n, rng);
        }
    }
}

/// Normalizes in place; returns `false` when the vector is (numerically)
/// zero and was left untouched.
fn normalize(x: &mut [f64]) -> bool {
    let norm = dot(x, x).sqrt();
    if norm <= 1e-300 || !norm.is_finite() {
        return false;
    }
    for xi in x.iter_mut() {
        *xi /= norm;
    }
    true
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;
    use proptest::prelude::*;

    fn alignment(v: &[f64], expected: &[f64]) -> f64 {
        let dot: f64 = v.iter().zip(expected).map(|(a, b)| a * b).sum();
        let norm: f64 = expected.iter().map(|e| e * e).sum::<f64>().sqrt();
        (dot / norm).abs()
    }

    #[test]
    fn two_by_two_known_eigenpair() {
        let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let top = topk_symmetric(&a, 2, &TopKConfig::default()).unwrap();
        assert!((top.eigenvalues[0] - 3.0).abs() < 1e-8);
        assert!((top.eigenvalues[1] - 1.0).abs() < 1e-8);
        assert!((alignment(&top.eigenvectors[0], &[1.0, 1.0]) - 1.0).abs() < 1e-7);
        assert!((alignment(&top.eigenvectors[1], &[1.0, -1.0]) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn algebraic_order_beats_magnitude_order() {
        // diag(1, -5): the magnitude-dominant eigenvalue is -5, but MDS
        // needs the algebraically largest, +1. The shift must deliver it.
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, -5.0)]).unwrap();
        let top = topk_symmetric(&a, 1, &TopKConfig::default()).unwrap();
        assert!(
            (top.eigenvalues[0] - 1.0).abs() < 1e-8,
            "{:?}",
            top.eigenvalues
        );
        assert!((alignment(&top.eigenvectors[0], &[1.0, 0.0]) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn matches_dense_jacobi_on_tridiagonal() {
        let a = DMatrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]])
            .unwrap();
        let dense = SymmetricEigen::new(&a).unwrap();
        let sparse = CsrMatrix::from_dense(&a);
        let top = topk_symmetric(&sparse, 3, &TopKConfig::default()).unwrap();
        for j in 0..3 {
            assert!(
                (top.eigenvalues[j] - dense.eigenvalues()[j]).abs() < 1e-8,
                "lambda_{j}: {} vs {}",
                top.eigenvalues[j],
                dense.eigenvalues()[j]
            );
            assert!((alignment(&top.eigenvectors[j], &dense.eigenvector(j)) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_operator_yields_zero_eigenvalues() {
        let a = CsrMatrix::from_triplets(3, 3, &[]).unwrap();
        let top = topk_symmetric(&a, 2, &TopKConfig::default()).unwrap();
        for l in &top.eigenvalues {
            assert!(l.abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_bad_k_and_empty_operators() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        assert!(matches!(
            topk_symmetric(&a, 0, &TopKConfig::default()),
            Err(MathError::InvalidArgument(_))
        ));
        assert!(matches!(
            topk_symmetric(&a, 3, &TopKConfig::default()),
            Err(MathError::InvalidArgument(_))
        ));
        let empty = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        assert!(topk_symmetric(&empty, 1, &TopKConfig::default()).is_err());
    }

    #[test]
    fn runs_are_bit_deterministic() {
        let a =
            DMatrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]).unwrap();
        let first = topk_symmetric(&a, 2, &TopKConfig::default()).unwrap();
        let second = topk_symmetric(&a, 2, &TopKConfig::default()).unwrap();
        assert_eq!(first.eigenvalues, second.eigenvalues);
        assert_eq!(first.eigenvectors, second.eigenvectors);
    }

    #[test]
    fn principal_coordinates_recover_rank_one_gram() {
        let xs = [-8.0 / 3.0, 1.0 / 3.0, 7.0 / 3.0];
        let g = DMatrix::from_fn(3, 3, |i, j| xs[i] * xs[j]);
        let top = topk_symmetric(&g, 2, &TopKConfig::default()).unwrap();
        let coords = top.principal_coordinates();
        let sign = if coords[(0, 0)] * xs[0] >= 0.0 {
            1.0
        } else {
            -1.0
        };
        for i in 0..3 {
            assert!((sign * coords[(i, 0)] - xs[i]).abs() < 1e-6);
            // The second eigenvalue is ~0 up to the iteration tolerance;
            // the square root amplifies that error to ~sqrt(tol * l1).
            assert!(coords[(i, 1)].abs() < 1e-4);
        }
    }

    /// Builds `Q diag(lambdas) Q^T` with well-separated eigenvalues from
    /// an arbitrary symmetric seed's orthonormal eigenvectors, so the
    /// ground truth is known exactly.
    fn with_known_spectrum(entries: &[f64], lambdas: &[f64]) -> (DMatrix, DMatrix) {
        let n = lambdas.len();
        let mut seed = DMatrix::zeros(n, n);
        let mut it = entries.iter().cycle();
        for i in 0..n {
            for j in i..n {
                let v = *it.next().unwrap();
                seed[(i, j)] = v;
                seed[(j, i)] = v;
            }
        }
        let q = SymmetricEigen::new(&seed).unwrap().eigenvectors().clone();
        let mut lambda = DMatrix::zeros(n, n);
        for (i, &l) in lambdas.iter().enumerate() {
            lambda[(i, i)] = l;
        }
        let a = q.mul(&lambda).unwrap().mul(&q.transpose()).unwrap();
        (a, q)
    }

    proptest! {
        /// Top-k eigenpairs match the known spectrum (and the dense
        /// Jacobi solver) on random well-gapped symmetric matrices.
        #[test]
        fn prop_topk_matches_known_spectrum(
            entries in proptest::collection::vec(-3.0f64..3.0, 15),
            base in 1.0f64..5.0,
            gaps in proptest::collection::vec(1.0f64..4.0, 5),
            k in 1usize..4,
        ) {
            // Descending, well-separated eigenvalues.
            let mut lambdas = vec![0.0; 5];
            let mut acc = base;
            for i in (0..5).rev() {
                lambdas[i] = acc;
                acc += gaps[i];
            }
            let (a, q) = with_known_spectrum(&entries, &lambdas);
            let sparse = CsrMatrix::from_dense(&a);
            let top = topk_symmetric(&sparse, k, &TopKConfig::default()).unwrap();
            let dense = SymmetricEigen::new(&a).unwrap();
            for j in 0..k {
                prop_assert!(
                    (top.eigenvalues[j] - lambdas[j]).abs() < 1e-7 * lambdas[0],
                    "lambda_{j}: {} vs {}", top.eigenvalues[j], lambdas[j]
                );
                prop_assert!(
                    (top.eigenvalues[j] - dense.eigenvalues()[j]).abs() < 1e-7 * lambdas[0]
                );
                let expected: Vec<f64> = (0..5).map(|i| q[(i, j)]).collect();
                prop_assert!(
                    (alignment(&top.eigenvectors[j], &expected) - 1.0).abs() < 1e-5,
                    "eigenvector {j} misaligned"
                );
            }
        }
    }
}
