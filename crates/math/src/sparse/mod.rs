//! Sparse linear algebra: CSR matrices, matrix-free operators, and graph
//! shortest paths.
//!
//! Connectivity graphs under the paper's 22 m ranging cutoff are
//! inherently sparse — a metro-scale deployment of 1000 nodes measures a
//! few thousand pairs, not the half-million a dense matrix stores — so
//! the large-`n` solver paths run on this module instead of [`DMatrix`]:
//!
//! * [`CsrMatrix`] — compressed sparse row storage with a triplet
//!   builder and `O(nnz)` matrix-vector products,
//! * [`LinearOperator`] — the matrix-free abstraction the iterative
//!   solvers consume; implemented by [`CsrMatrix`], [`DMatrix`], and any
//!   problem-specific implicit operator (e.g. the double-centered MDS
//!   Gram operator, which is dense but applied without materialization),
//! * [`cg`] — a conjugate-gradient solver for symmetric
//!   positive-definite systems,
//! * [`eigen`] — a shifted subspace-iteration top-`k` eigensolver for
//!   symmetric operators, needing only mat-vec applications,
//! * [`dijkstra`] — single-source shortest paths over a CSR adjacency
//!   matrix, the sparse replacement for dense all-pairs completion.
//!
//! Dense counterparts ([`DMatrix`], [`SymmetricEigen`]) stay the
//! small-`n` fallback and the parity oracle in tests; the solver crates
//! select a backend automatically by problem size.
//!
//! [`SymmetricEigen`]: crate::SymmetricEigen
//!
//! # Example: build, multiply, solve
//!
//! ```
//! use rl_math::sparse::{cg, CsrMatrix};
//!
//! // The 1-D Laplacian [[2,-1,0],[-1,2,-1],[0,-1,2]] — SPD.
//! let a = CsrMatrix::from_triplets(3, 3, &[
//!     (0, 0, 2.0), (0, 1, -1.0),
//!     (1, 0, -1.0), (1, 1, 2.0), (1, 2, -1.0),
//!     (2, 1, -1.0), (2, 2, 2.0),
//! ]).unwrap();
//! assert_eq!(a.nnz(), 7);
//!
//! let y = a.matvec(&[1.0, 1.0, 1.0]).unwrap();
//! assert_eq!(y, vec![1.0, 0.0, 1.0]);
//!
//! // Conjugate gradient recovers x from b = A x.
//! let out = cg::conjugate_gradient(&a, &[1.0, 0.0, 1.0], &cg::CgConfig::default()).unwrap();
//! assert!(out.converged);
//! for (xi, expect) in out.x.iter().zip([1.0, 1.0, 1.0]) {
//!     assert!((xi - expect).abs() < 1e-9);
//! }
//! ```
//!
//! # Example: top-k eigenpairs without a dense matrix
//!
//! ```
//! use rl_math::sparse::{eigen, CsrMatrix};
//!
//! let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 2.0)])
//!     .unwrap();
//! let top = eigen::topk_symmetric(&a, 1, &eigen::TopKConfig::default()).unwrap();
//! assert!((top.eigenvalues[0] - 3.0).abs() < 1e-8);
//! ```

pub mod cg;
pub mod eigen;

use crate::{DMatrix, MathError, Result};

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// Entries of row `i` live at `col_idx[row_ptr[i]..row_ptr[i + 1]]` /
/// `values[row_ptr[i]..row_ptr[i + 1]]`, with column indices strictly
/// increasing within each row. Explicit zeros are allowed (the builder
/// keeps whatever the triplets sum to); symmetry is the caller's
/// responsibility where an algorithm requires it.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a `rows x cols` matrix from `(row, col, value)` triplets.
    /// Duplicate coordinates are summed; triplet order is irrelevant.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] when a triplet's coordinate
    /// is out of bounds or its value is not finite.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        for &(r, c, v) in triplets {
            if r >= rows || c >= cols {
                return Err(MathError::InvalidArgument("triplet index out of bounds"));
            }
            if !v.is_finite() {
                return Err(MathError::InvalidArgument("triplet value is not finite"));
            }
        }
        // Counting sort by row, then sort-and-merge within each row.
        let mut row_counts = vec![0usize; rows];
        for &(r, _, _) in triplets {
            row_counts[r] += 1;
        }
        let mut row_start = vec![0usize; rows + 1];
        for i in 0..rows {
            row_start[i + 1] = row_start[i] + row_counts[i];
        }
        let mut scratch: Vec<(usize, f64)> = vec![(0, 0.0); triplets.len()];
        let mut cursor = row_start.clone();
        for &(r, c, v) in triplets {
            scratch[cursor[r]] = (c, v);
            cursor[r] += 1;
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        for i in 0..rows {
            let row = &mut scratch[row_start[i]..row_start[i + 1]];
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < row.len() {
                let (c, mut v) = row[k];
                k += 1;
                while k < row.len() && row[k].0 == c {
                    v += row[k].1;
                    k += 1;
                }
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds a symmetric `n x n` matrix from upper-triangle entries:
    /// each `(i, j, v)` with `i != j` inserts both `(i, j)` and `(j, i)`.
    ///
    /// This is the natural constructor for an undirected weighted graph's
    /// adjacency matrix.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CsrMatrix::from_triplets`].
    pub fn symmetric_from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Result<Self> {
        let mut triplets = Vec::with_capacity(edges.len() * 2);
        for &(i, j, v) in edges {
            triplets.push((i, j, v));
            if i != j {
                triplets.push((j, i, v));
            }
        }
        CsrMatrix::from_triplets(n, n, &triplets)
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(dense: &DMatrix) -> Self {
        let mut triplets = Vec::new();
        for i in 0..dense.rows() {
            for j in 0..dense.cols() {
                let v = dense[(i, j)];
                if v != 0.0 {
                    triplets.push((i, j, v));
                }
            }
        }
        CsrMatrix::from_triplets(dense.rows(), dense.cols(), &triplets)
            .expect("dense entries are in bounds and finite")
    }

    /// Materializes the dense equivalent (for tests and small problems).
    pub fn to_dense(&self) -> DMatrix {
        let mut out = DMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                out[(i, j)] = v;
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The stored entries of row `i` as `(column, value)` pairs, columns
    /// strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// The stored value at `(i, j)`, or `None` for a structural zero.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i >= self.rows || j >= self.cols {
            return None;
        }
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        let cols = &self.col_idx[span.clone()];
        cols.binary_search(&j)
            .ok()
            .map(|k| self.values[span.start + k])
    }

    /// Writes `self * x` into `y`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when `x.len() != cols` or
    /// `y.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(MathError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
        Ok(())
    }

    /// Returns `self * x` as a new vector.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// Writes `self * xs[j]` into `ys[j]` for every vector in the block,
    /// traversing the CSR structure **once** instead of once per vector.
    ///
    /// For a block of `k` right-hand sides this reads each stored entry
    /// (and its column index) exactly once, amortizing the irregular
    /// memory traffic that dominates sparse mat-vec — the win the
    /// subspace-iteration eigensolver and batched request paths exploit.
    ///
    /// Each output is bit-identical to the corresponding single-vector
    /// [`CsrMatrix::matvec_into`]: per vector, the per-row accumulation
    /// visits the same entries in the same order.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when the block sizes
    /// disagree or any vector has the wrong length.
    pub fn matvec_multi_into(&self, xs: &[Vec<f64>], ys: &mut [Vec<f64>]) -> Result<()> {
        if xs.len() != ys.len() {
            return Err(MathError::DimensionMismatch {
                left: (xs.len(), 0),
                right: (ys.len(), 0),
            });
        }
        if xs.iter().any(|x| x.len() != self.cols) || ys.iter().any(|y| y.len() != self.rows) {
            return Err(MathError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (xs.first().map_or(0, Vec::len), xs.len()),
            });
        }
        for i in 0..self.rows {
            for y in ys.iter_mut() {
                y[i] = 0.0;
            }
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let c = self.col_idx[k];
                let v = self.values[k];
                for (x, y) in xs.iter().zip(ys.iter_mut()) {
                    y[i] += v * x[c];
                }
            }
        }
        Ok(())
    }

    /// Writes the main diagonal into `out` (structural zeros read as
    /// `0.0`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `out.len() != rows`.
    pub fn diagonal_into(&self, out: &mut [f64]) {
        assert!(self.is_square(), "diagonal of a rectangular matrix");
        assert_eq!(out.len(), self.rows, "diagonal buffer has wrong length");
        for (i, o) in out.iter_mut().enumerate() {
            *o = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[k] == i {
                    *o = self.values[k];
                    break;
                }
            }
        }
    }

    /// Maximum absolute asymmetry `max |a_ij - a_ji|` over stored entries
    /// (0 for symmetric matrices).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotSquare`] for rectangular matrices.
    pub fn asymmetry(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(MathError::NotSquare {
                dims: (self.rows, self.cols),
            });
        }
        let mut worst: f64 = 0.0;
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                let mirror = self.get(j, i).unwrap_or(0.0);
                worst = worst.max((v - mirror).abs());
            }
        }
        Ok(worst)
    }
}

/// A matrix-free square linear operator `x -> A x`.
///
/// The iterative solvers in [`cg`] and [`eigen`] only ever apply the
/// operator, so any structure that can multiply a vector qualifies: a
/// [`CsrMatrix`], a dense [`DMatrix`], or an implicit operator that is
/// never materialized (the MDS double-centering operator is the canonical
/// example).
pub trait LinearOperator {
    /// Dimension `n` of the (square) operator.
    fn dim(&self) -> usize;

    /// Writes `A x` into `y` (`x.len() == y.len() == self.dim()`).
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Writes `A xs[j]` into `ys[j]` for a block of vectors.
    ///
    /// The default simply loops [`LinearOperator::apply`]; operators with
    /// exploitable structure (CSR, the MDS double-centering operator)
    /// override it to share one traversal across the block. Overrides
    /// must keep each output bit-identical to the single-vector `apply` —
    /// the blocked eigensolver path is covered by the campaign
    /// determinism fingerprints.
    fn apply_multi(&self, xs: &[Vec<f64>], ys: &mut [Vec<f64>]) {
        for (x, y) in xs.iter().zip(ys.iter_mut()) {
            self.apply(x, y);
        }
    }

    /// Writes the operator's main diagonal into `out` and returns `true`,
    /// or returns `false` (leaving `out` unspecified) when the diagonal
    /// is unavailable.
    ///
    /// Powers the Jacobi preconditioner: matrix-free operators that can
    /// compute their diagonal analytically (e.g. damped normal equations
    /// over an edge list) override this to unlock preconditioned CG
    /// without materializing anything.
    fn diagonal_into(&self, out: &mut [f64]) -> bool {
        let _ = out;
        false
    }

    /// The operator's materialized CSR form, when it has one.
    ///
    /// Powers structure-hungry preconditioners (IC(0) factors the actual
    /// matrix); matrix-free operators return `None` and CG degrades to a
    /// weaker preconditioner.
    fn as_csr(&self) -> Option<&CsrMatrix> {
        None
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        debug_assert!(self.is_square(), "LinearOperator requires a square CSR");
        self.rows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_into(x, y)
            .expect("operator dimensions checked by caller");
    }

    fn apply_multi(&self, xs: &[Vec<f64>], ys: &mut [Vec<f64>]) {
        self.matvec_multi_into(xs, ys)
            .expect("operator dimensions checked by caller");
    }

    fn diagonal_into(&self, out: &mut [f64]) -> bool {
        CsrMatrix::diagonal_into(self, out);
        true
    }

    fn as_csr(&self) -> Option<&CsrMatrix> {
        Some(self)
    }
}

impl LinearOperator for DMatrix {
    fn dim(&self) -> usize {
        debug_assert!(self.is_square(), "LinearOperator requires a square matrix");
        self.rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols(), "apply: x has wrong dimension");
        assert_eq!(y.len(), self.rows(), "apply: y has wrong dimension");
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yi = acc;
        }
    }

    fn diagonal_into(&self, out: &mut [f64]) -> bool {
        assert_eq!(out.len(), self.rows(), "diagonal buffer has wrong length");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self[(i, i)];
        }
        true
    }
}

/// Single-source shortest-path distances over a CSR adjacency matrix
/// whose stored values are non-negative edge weights.
///
/// Runs binary-heap Dijkstra in `O((n + nnz) log n)`; unreachable nodes
/// get `f64::INFINITY`. Ties are broken by node id, so the result is
/// deterministic for any insertion order.
///
/// This is the sparse replacement for the dense all-pairs completion in
/// MDS-MAP: calling it once per source node costs
/// `O(n (n + nnz) log n)` total instead of touching `n^2` matrix slots
/// per source.
///
/// # Panics
///
/// Panics if the matrix is not square, `source` is out of range, or a
/// negative edge weight is encountered (debug assertions).
///
/// # Example
///
/// ```
/// use rl_math::sparse::{dijkstra, CsrMatrix};
///
/// // Path graph 0 -2.0- 1 -3.0- 2, node 3 isolated.
/// let g = CsrMatrix::symmetric_from_edges(4, &[(0, 1, 2.0), (1, 2, 3.0)]).unwrap();
/// let d = dijkstra(&g, 0);
/// assert_eq!(&d[..3], &[0.0, 2.0, 5.0]);
/// assert!(d[3].is_infinite());
/// ```
pub fn dijkstra(adjacency: &CsrMatrix, source: usize) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; adjacency.rows()];
    dijkstra_into(adjacency, source, &mut dist, &mut DijkstraWorkspace::new());
    dist
}

/// Reusable scratch for [`dijkstra_into`]: the priority-queue allocation
/// survives across calls, so an all-sources sweep pays for the heap's
/// backing storage once instead of once per source.
#[derive(Debug, Default)]
pub struct DijkstraWorkspace {
    heap: std::collections::BinaryHeap<MinCost>,
}

impl DijkstraWorkspace {
    /// An empty workspace; the heap grows to fit on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`dijkstra`] into a caller-owned distance buffer with reusable heap
/// scratch — the batched form MDS-MAP's geodesic completion runs once
/// per source.
///
/// `dist` is fully overwritten (`f64::INFINITY` for unreachable nodes);
/// results are identical to [`dijkstra`].
///
/// # Panics
///
/// Panics if the matrix is not square, `source` is out of range,
/// `dist.len()` is not the node count, or a negative edge weight is
/// encountered (debug assertions).
pub fn dijkstra_into(
    adjacency: &CsrMatrix,
    source: usize,
    dist: &mut [f64],
    ws: &mut DijkstraWorkspace,
) {
    assert!(adjacency.is_square(), "adjacency matrix must be square");
    let n = adjacency.rows();
    assert!(source < n, "source {source} out of range ({n} nodes)");
    assert_eq!(dist.len(), n, "distance buffer has wrong length");

    dist.fill(f64::INFINITY);
    dist[source] = 0.0;
    let heap = &mut ws.heap;
    heap.clear();
    heap.push(MinCost {
        cost: 0.0,
        node: source,
    });
    while let Some(MinCost { cost, node }) = heap.pop() {
        if cost > dist[node] {
            continue;
        }
        for k in adjacency.row_ptr[node]..adjacency.row_ptr[node + 1] {
            let next = adjacency.col_idx[k];
            let w = adjacency.values[k];
            debug_assert!(w >= 0.0, "negative edge weight {w}");
            let cand = cost + w;
            if cand < dist[next] {
                dist[next] = cand;
                heap.push(MinCost {
                    cost: cand,
                    node: next,
                });
            }
        }
    }
}

/// Multi-source Dijkstra into a row-major `sources.len() x n` distance
/// buffer: row `s` holds the distances from `sources[s]`.
///
/// One heap allocation serves every source (the kernel shape geodesic
/// completion needs: `n` sources over the same adjacency). Each row is
/// identical to the corresponding single-source [`dijkstra`] run.
///
/// # Panics
///
/// Same conditions as [`dijkstra_into`], plus a `dist` length that is
/// not exactly `sources.len() * n`.
pub fn dijkstra_multi_into(adjacency: &CsrMatrix, sources: &[usize], dist: &mut [f64]) {
    let n = adjacency.rows();
    assert_eq!(
        dist.len(),
        sources.len() * n,
        "distance buffer has wrong length"
    );
    let mut ws = DijkstraWorkspace::new();
    for (row, &source) in dist.chunks_exact_mut(n.max(1)).zip(sources) {
        dijkstra_into(adjacency, source, row, &mut ws);
    }
}

/// Min-heap entry for [`dijkstra`] (reversed ordering on cost, ties by
/// node id).
#[derive(Debug, PartialEq)]
struct MinCost {
    cost: f64,
    node: usize,
}

impl Eq for MinCost {}

impl Ord for MinCost {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("finite costs")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for MinCost {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn triplets_sum_duplicates_and_sort_columns() {
        let a =
            CsrMatrix::from_triplets(2, 3, &[(0, 2, 1.0), (0, 0, 2.0), (0, 2, 0.5), (1, 1, -1.0)])
                .unwrap();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 0), Some(2.0));
        assert_eq!(a.get(0, 2), Some(1.5));
        assert_eq!(a.get(0, 1), None);
        assert_eq!(a.get(1, 1), Some(-1.0));
        let row0: Vec<_> = a.row(0).collect();
        assert_eq!(row0, vec![(0, 2.0), (2, 1.5)]);
    }

    #[test]
    fn triplets_reject_out_of_bounds_and_non_finite() {
        assert!(matches!(
            CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]),
            Err(MathError::InvalidArgument(_))
        ));
        assert!(matches!(
            CsrMatrix::from_triplets(2, 2, &[(0, 0, f64::NAN)]),
            Err(MathError::InvalidArgument(_))
        ));
    }

    #[test]
    fn matvec_matches_hand_computation() {
        // [[1, 0, 2], [0, 3, 0]]
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        let y = a.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, 6.0]);
        assert!(matches!(
            a.matvec(&[1.0, 2.0]),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn dense_round_trip() {
        let dense = DMatrix::from_rows(&[&[0.0, 1.5, 0.0], &[-2.0, 0.0, 0.0]]).unwrap();
        let sparse = CsrMatrix::from_dense(&dense);
        assert_eq!(sparse.nnz(), 2);
        assert_eq!(sparse.to_dense(), dense);
    }

    #[test]
    fn symmetric_builder_mirrors_edges() {
        let a = CsrMatrix::symmetric_from_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)]).unwrap();
        assert_eq!(a.get(0, 1), Some(2.0));
        assert_eq!(a.get(1, 0), Some(2.0));
        assert_eq!(a.asymmetry().unwrap(), 0.0);
        assert_eq!(a.nnz(), 4);
    }

    #[test]
    fn asymmetry_detects_one_sided_entries() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 3.0)]).unwrap();
        assert_eq!(a.asymmetry().unwrap(), 3.0);
        let rect = CsrMatrix::from_triplets(1, 2, &[]).unwrap();
        assert!(matches!(rect.asymmetry(), Err(MathError::NotSquare { .. })));
    }

    #[test]
    fn linear_operator_agrees_between_backends() {
        let dense = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let sparse = CsrMatrix::from_dense(&dense);
        let x = [0.5, -1.5];
        let mut yd = vec![0.0; 2];
        let mut ys = vec![0.0; 2];
        dense.apply(&x, &mut yd);
        sparse.apply(&x, &mut ys);
        assert_eq!(yd, ys);
    }

    #[test]
    fn dijkstra_handles_disconnection_and_alternative_routes() {
        // Square with one expensive diagonal: 0-1-2 cheaper than 0-2.
        let g =
            CsrMatrix::symmetric_from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]).unwrap();
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], 2.0);
        assert!(d[3].is_infinite());
        let from2 = dijkstra(&g, 2);
        assert_eq!(from2[0], 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dijkstra_rejects_bad_source() {
        let g = CsrMatrix::from_triplets(2, 2, &[]).unwrap();
        let _ = dijkstra(&g, 5);
    }

    #[test]
    fn matvec_multi_matches_single_vector_bitwise() {
        let a = CsrMatrix::symmetric_from_edges(
            5,
            &[
                (0, 0, 2.5),
                (0, 1, -1.0),
                (1, 3, 0.75),
                (2, 2, 4.0),
                (3, 4, -0.125),
            ],
        )
        .unwrap();
        let xs: Vec<Vec<f64>> = (0..3)
            .map(|j| (0..5).map(|i| (i * 3 + j) as f64 * 0.37 - 1.1).collect())
            .collect();
        let mut ys = vec![vec![f64::NAN; 5]; 3];
        a.matvec_multi_into(&xs, &mut ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let single = a.matvec(x).unwrap();
            for (a, b) in single.iter().zip(y) {
                assert_eq!(a.to_bits(), b.to_bits(), "blocked matvec drifted");
            }
        }
        // Dimension mismatches are rejected.
        assert!(a
            .matvec_multi_into(&xs, &mut vec![vec![0.0; 5]; 2])
            .is_err());
        assert!(a
            .matvec_multi_into(&[vec![0.0; 4]], &mut [vec![0.0; 5]])
            .is_err());
    }

    #[test]
    fn diagonal_into_reads_structural_zeros_as_zero() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (0, 1, 5.0), (2, 2, -1.5)]).unwrap();
        let mut d = vec![f64::NAN; 3];
        CsrMatrix::diagonal_into(&a, &mut d);
        assert_eq!(d, vec![2.0, 0.0, -1.5]);
        // Through the trait: available for CSR and dense, not for opaque
        // matrix-free operators.
        assert!(LinearOperator::diagonal_into(&a, &mut d));
        let dense = a.to_dense();
        let mut dd = vec![f64::NAN; 3];
        assert!(LinearOperator::diagonal_into(&dense, &mut dd));
        assert_eq!(d, dd);
    }

    #[test]
    fn dijkstra_multi_matches_per_source_runs() {
        let g = CsrMatrix::symmetric_from_edges(
            5,
            &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 5.0), (3, 4, 0.5)],
        )
        .unwrap();
        let sources = [0, 2, 4];
        let mut all = vec![0.0; sources.len() * 5];
        dijkstra_multi_into(&g, &sources, &mut all);
        for (row, &s) in all.chunks_exact(5).zip(&sources) {
            let single = dijkstra(&g, s);
            for (a, b) in row.iter().zip(&single) {
                assert_eq!(a.to_bits(), b.to_bits(), "multi-source dijkstra drifted");
            }
        }
    }

    #[test]
    fn dijkstra_workspace_is_reusable() {
        let g = CsrMatrix::symmetric_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let mut ws = DijkstraWorkspace::new();
        let mut d = vec![0.0; 3];
        dijkstra_into(&g, 0, &mut d, &mut ws);
        assert_eq!(d, vec![0.0, 1.0, 2.0]);
        dijkstra_into(&g, 2, &mut d, &mut ws);
        assert_eq!(d, vec![2.0, 1.0, 0.0]);
    }

    proptest! {
        /// Sparse mat-vec equals the dense product for arbitrary sparse
        /// patterns (the CSR parity oracle).
        #[test]
        fn prop_matvec_matches_dense(
            triplets in proptest::collection::vec((0usize..6, 0usize..5, -10.0f64..10.0), 0..25),
            x in proptest::collection::vec(-5.0f64..5.0, 5),
        ) {
            let sparse = CsrMatrix::from_triplets(6, 5, &triplets).unwrap();
            let dense = sparse.to_dense();
            let ys = sparse.matvec(&x).unwrap();
            for i in 0..6 {
                let expected: f64 = (0..5).map(|j| dense[(i, j)] * x[j]).sum();
                prop_assert!((ys[i] - expected).abs() < 1e-9 * (1.0 + expected.abs()));
            }
        }

        /// Blocked mat-vec is bit-identical to the single-vector kernel
        /// on arbitrary sparse patterns and block sizes.
        #[test]
        fn prop_matvec_multi_is_bitwise_single(
            triplets in proptest::collection::vec((0usize..6, 0usize..6, -10.0f64..10.0), 0..30),
            xs in proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, 6), 1..4),
        ) {
            let a = CsrMatrix::from_triplets(6, 6, &triplets).unwrap();
            let mut ys = vec![vec![f64::NAN; 6]; xs.len()];
            a.matvec_multi_into(&xs, &mut ys).unwrap();
            for (x, y) in xs.iter().zip(&ys) {
                let single = a.matvec(x).unwrap();
                for (s, m) in single.iter().zip(y) {
                    prop_assert_eq!(s.to_bits(), m.to_bits());
                }
            }
        }

        /// CSR round-trips through dense regardless of triplet order.
        #[test]
        fn prop_dense_round_trip(
            triplets in proptest::collection::vec((0usize..5, 0usize..5, -4.0f64..4.0), 0..20),
        ) {
            let sparse = CsrMatrix::from_triplets(5, 5, &triplets).unwrap();
            let back = CsrMatrix::from_dense(&sparse.to_dense());
            prop_assert_eq!(back.to_dense(), sparse.to_dense());
        }
    }
}
