//! Robust statistics for ranging measurements.
//!
//! The refined ranging service of the paper relies on **median** and **mode**
//! filtering to discard uncorrelated outliers (Section 3.5, "Statistical
//! Filtering"), and the evaluation reports error histograms and summary
//! statistics. Since the Rust ecosystem has few robust-statistics crates and
//! external dependencies are restricted, this module implements them from
//! scratch.

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns `None` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(rl_math::stats::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(rl_math::stats::mean(&[]), None);
/// ```
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Unbiased sample variance (`n - 1` denominator).
///
/// Returns `None` when fewer than two samples are given.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some(ss / (xs.len() - 1) as f64)
}

/// Unbiased sample standard deviation.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Median, computed in place by sorting the provided buffer.
///
/// For an even count, the mean of the two middle elements is returned. This
/// is the statistical filter the ranging service applies to repeated
/// measurements of the same node pair.
///
/// Returns `None` for an empty slice.
pub fn median(xs: &mut [f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = xs.len();
    Some(if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    })
}

/// Median of a borrowed slice (allocates a scratch copy).
pub fn median_of(xs: &[f64]) -> Option<f64> {
    let mut buf = xs.to_vec();
    median(&mut buf)
}

/// Mode of continuous data via histogram binning.
///
/// The samples are bucketed into bins of width `bin_width`; the center of the
/// most populated bin is returned (ties resolved toward the smaller value).
/// The paper notes the mode "is more resistant to the effects of uncorrelated
/// outliers than the median, but it needs more measurements to be effective".
///
/// Returns `None` for an empty slice or non-positive bin width.
///
/// # Example
///
/// ```
/// let xs = [10.0, 10.1, 10.2, 35.0];
/// let m = rl_math::stats::mode_binned(&xs, 0.5).unwrap();
/// assert!((m - 10.1).abs() < 0.5);
/// ```
pub fn mode_binned(xs: &[f64], bin_width: f64) -> Option<f64> {
    if xs.is_empty() || !(bin_width > 0.0) {
        return None;
    }
    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut counts: std::collections::BTreeMap<i64, (usize, f64)> =
        std::collections::BTreeMap::new();
    for &x in xs {
        let bin = ((x - lo) / bin_width).floor() as i64;
        let e = counts.entry(bin).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += x;
    }
    counts
        .iter()
        .max_by(|a, b| a.1 .0.cmp(&b.1 .0).then(b.0.cmp(a.0)))
        .map(|(_, &(n, sum))| sum / n as f64)
}

/// Linear-interpolation quantile, `q` in `[0, 1]`; sorts in place.
///
/// Returns `None` for an empty slice or out-of-range `q`.
pub fn quantile(xs: &mut [f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (xs.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(xs[lo] * (1.0 - frac) + xs[hi] * frac)
}

/// Median absolute deviation (raw, not scaled to sigma-equivalent).
pub fn mad(xs: &[f64]) -> Option<f64> {
    let med = median_of(xs)?;
    let devs: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median_of(&devs)
}

/// Mean with the `trim` fraction of smallest and largest samples removed.
///
/// `trim = 0.1` discards the bottom and top 10 %. Returns `None` when the
/// slice is empty, `trim` is out of `[0, 0.5)`, or trimming removes
/// everything.
pub fn trimmed_mean(xs: &[f64], trim: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..0.5).contains(&trim) {
        return None;
    }
    let mut buf = xs.to_vec();
    buf.sort_by(|a, b| a.partial_cmp(b).expect("NaN in trimmed_mean input"));
    let k = (buf.len() as f64 * trim).floor() as usize;
    let kept = &buf[k..buf.len() - k];
    mean(kept)
}

/// A fixed-width histogram over `[lo, hi)` with out-of-range counters.
///
/// Used to reproduce the ranging-error histograms of Figures 6 and 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<usize>,
    underflow: usize,
    overflow: usize,
}

impl Histogram {
    /// Creates a histogram spanning `[lo, hi)` with `n_bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `n_bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(n_bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range is empty: [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Adds every sample from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Center coordinate of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.bins.len());
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Samples below the range.
    pub fn underflow(&self) -> usize {
        self.underflow
    }

    /// Samples at or above the upper bound.
    pub fn overflow(&self) -> usize {
        self.overflow
    }

    /// Total number of samples added, including out-of-range ones.
    pub fn total(&self) -> usize {
        self.bins.iter().sum::<usize>() + self.underflow + self.overflow
    }

    /// Fraction of in-range samples falling within `[a, b)`, computed from
    /// whole bins overlapping that interval.
    pub fn fraction_within(&self, a: f64, b: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let mut count = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            let lo = self.lo + i as f64 * w;
            let hi = lo + w;
            if lo >= a && hi <= b {
                count += c;
            }
        }
        count as f64 / total as f64
    }
}

/// Five-number-plus summary of a sample set, as reported in experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single sample).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample set. Returns `None` for empty input.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut buf = xs.to_vec();
        let med = median(&mut buf)?;
        Some(Summary {
            count: xs.len(),
            mean: mean(xs)?,
            std_dev: std_dev(xs).unwrap_or(0.0),
            min: buf[0],
            median: med,
            max: buf[buf.len() - 1],
        })
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} med={:.3} max={:.3}",
            self.count, self.mean, self.std_dev, self.min, self.median, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_and_std() {
        // Known: var([1,2,3,4]) = 5/3 (unbiased).
        let v = variance(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((v - 5.0 / 3.0).abs() < 1e-12);
        assert!(variance(&[1.0]).is_none());
        assert!((std_dev(&[1.0, 2.0, 3.0, 4.0]).unwrap() - v.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn median_odd_even() {
        let mut odd = [3.0, 1.0, 2.0];
        assert_eq!(median(&mut odd), Some(2.0));
        let mut even = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(median(&mut even), Some(2.5));
        assert_eq!(median(&mut []), None);
    }

    #[test]
    fn median_resists_outlier() {
        // Motivating case from the ranging service: one echo-induced error.
        let mut xs = [10.0, 10.1, 9.9, 10.05, 2.2];
        let m = median(&mut xs).unwrap();
        assert!((m - 10.0).abs() < 0.1);
    }

    #[test]
    fn mode_binned_finds_cluster() {
        let xs = [10.0, 10.1, 10.2, 10.15, 35.0, 2.0];
        let m = mode_binned(&xs, 0.5).unwrap();
        assert!((m - 10.11).abs() < 0.2, "mode {m}");
        assert!(mode_binned(&[], 0.5).is_none());
        assert!(mode_binned(&xs, 0.0).is_none());
        assert!(mode_binned(&xs, -1.0).is_none());
    }

    #[test]
    fn mode_binned_single_value() {
        assert_eq!(mode_binned(&[7.0], 1.0), Some(7.0));
    }

    #[test]
    fn quantile_interpolates() {
        let mut xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&mut xs.clone(), 0.0), Some(1.0));
        assert_eq!(quantile(&mut xs.clone(), 1.0), Some(4.0));
        assert_eq!(quantile(&mut xs.clone(), 0.5), Some(2.5));
        assert_eq!(quantile(&mut xs, 1.5), None);
    }

    #[test]
    fn mad_of_symmetric_data() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(mad(&xs), Some(1.0));
    }

    #[test]
    fn trimmed_mean_drops_tails() {
        let xs = [1.0, 10.0, 10.0, 10.0, 100.0];
        let t = trimmed_mean(&xs, 0.2).unwrap();
        assert_eq!(t, 10.0);
        assert!(trimmed_mean(&xs, 0.5).is_none());
        assert!(trimmed_mean(&[], 0.1).is_none());
    }

    #[test]
    fn histogram_counts_and_ranges() {
        let mut h = Histogram::new(-1.0, 1.0, 4);
        h.extend([-2.0, -0.9, -0.1, 0.1, 0.9, 1.0, 5.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins(), &[1, 1, 1, 1]);
        assert_eq!(h.total(), 7);
        assert!((h.bin_center(0) + 0.75).abs() < 1e-12);
        // Fraction within [-0.5, 0.5): the two middle bins over 7 samples.
        assert!((h.fraction_within(-0.5, 0.5) - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "range is empty")]
    fn histogram_bad_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn summary_reports_all_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(Summary::of(&[]).is_none());
        let shown = s.to_string();
        assert!(shown.contains("n=3"));
        assert!(shown.contains("med=2.000"));
    }

    proptest! {
        #[test]
        fn prop_median_is_order_statistic(mut xs in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
            let m = median(&mut xs).unwrap();
            let below = xs.iter().filter(|&&x| x <= m + 1e-12).count();
            let above = xs.iter().filter(|&&x| x >= m - 1e-12).count();
            prop_assert!(below * 2 >= xs.len());
            prop_assert!(above * 2 >= xs.len());
        }

        #[test]
        fn prop_mean_within_min_max(xs in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
            let m = mean(&xs).unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }

        #[test]
        fn prop_quantiles_monotone(mut xs in proptest::collection::vec(-100.0f64..100.0, 2..50)) {
            let q25 = quantile(&mut xs, 0.25).unwrap();
            let q50 = quantile(&mut xs, 0.50).unwrap();
            let q75 = quantile(&mut xs, 0.75).unwrap();
            prop_assert!(q25 <= q50 && q50 <= q75);
        }

        #[test]
        fn prop_histogram_total_matches(xs in proptest::collection::vec(-10.0f64..10.0, 0..100)) {
            let mut h = Histogram::new(-5.0, 5.0, 10);
            h.extend(xs.iter().cloned());
            prop_assert_eq!(h.total(), xs.len());
        }

        #[test]
        fn prop_mad_nonnegative(xs in proptest::collection::vec(-100.0f64..100.0, 1..40)) {
            prop_assert!(mad(&xs).unwrap() >= 0.0);
        }
    }
}
