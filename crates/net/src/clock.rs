//! Per-node clocks with drift, and MAC-layer time synchronization.
//!
//! Section 3.1 of the paper: source and sink are synchronized "using the
//! very same radio message used for TDoA ranging", relying on the MAC-layer
//! time stamping of the Flooding Time Synchronization Protocol (FTSP). The
//! maximum clock rate difference between two MICA2 motes is about
//! **50 µs per second**, which over the ~88 ms flight time of sound at 30 m
//! amounts to a ranging error of only ~0.15 cm — time synchronization "is
//! not a significant source of error". The [`TimeSync`] model reproduces
//! that analysis quantitatively.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A node-local clock related to global (true) time by a fixed offset and a
/// constant rate skew.
///
/// `local = offset + (1 + skew) * global`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftingClock {
    /// Offset of the local clock at global time zero, seconds.
    pub offset_s: f64,
    /// Rate skew, dimensionless: 50 µs/s corresponds to `5.0e-5`.
    pub skew: f64,
}

impl DriftingClock {
    /// A perfect clock.
    pub fn perfect() -> Self {
        DriftingClock {
            offset_s: 0.0,
            skew: 0.0,
        }
    }

    /// Draws a random clock: offset uniform in ±`max_offset_s`, skew uniform
    /// in ±`max_skew`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, max_offset_s: f64, max_skew: f64) -> Self {
        DriftingClock {
            offset_s: (rng.random::<f64>() * 2.0 - 1.0) * max_offset_s,
            skew: (rng.random::<f64>() * 2.0 - 1.0) * max_skew,
        }
    }

    /// Local reading at a global instant.
    pub fn local_from_global(&self, global_s: f64) -> f64 {
        self.offset_s + (1.0 + self.skew) * global_s
    }

    /// Global instant corresponding to a local reading.
    pub fn global_from_local(&self, local_s: f64) -> f64 {
        (local_s - self.offset_s) / (1.0 + self.skew)
    }

    /// Relative rate difference to another clock (dimensionless).
    pub fn rate_difference(&self, other: &DriftingClock) -> f64 {
        ((1.0 + self.skew) / (1.0 + other.skew) - 1.0).abs()
    }
}

impl Default for DriftingClock {
    fn default() -> Self {
        DriftingClock::perfect()
    }
}

/// FTSP-style MAC-layer timestamp synchronization between a sender and a
/// receiver.
///
/// One radio message carries the sender's local transmission timestamp; MAC
/// layer stamping removes most media-access nondeterminism, leaving a small
/// residual jitter. After the exchange, the receiver can convert the
/// sender's timestamps to its own clock with an error that grows with clock
/// skew over the elapsed time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeSync {
    /// Residual MAC-layer timestamping jitter, seconds (1σ). FTSP achieves
    /// a few microseconds on MICA2.
    pub timestamp_jitter_s: f64,
}

impl TimeSync {
    /// FTSP-like defaults on MICA2: 2 µs timestamp jitter.
    pub fn ftsp() -> Self {
        TimeSync {
            timestamp_jitter_s: 2.0e-6,
        }
    }

    /// Simulates one sync exchange at global time `t_sync` and returns the
    /// receiver-side estimate of the sender's clock offset, including the
    /// sampled timestamping error.
    ///
    /// The returned [`SyncState`] converts sender-local instants to
    /// receiver-local instants; its error grows as
    /// `rate_difference × (t − t_sync)`.
    pub fn synchronize<R: Rng + ?Sized>(
        &self,
        sender: &DriftingClock,
        receiver: &DriftingClock,
        t_sync_global: f64,
        rng: &mut R,
    ) -> SyncState {
        // Ideal mapping at the sync instant: both nodes observe the same
        // global event (first bit of the message, radio propagation treated
        // as instantaneous over <100 m).
        let sender_stamp = sender.local_from_global(t_sync_global);
        let receiver_stamp = receiver.local_from_global(t_sync_global)
            + rl_math::rng::normal(rng, 0.0, self.timestamp_jitter_s);
        SyncState {
            sender_stamp_s: sender_stamp,
            receiver_stamp_s: receiver_stamp,
        }
    }

    /// Worst-case ranging error (meters) caused by clock skew for a sound
    /// flight time over `distance_m`, per the paper's Section 3.1 analysis:
    /// the receiver measures the radio→sound interval with a clock that
    /// drifts by `max_skew` relative to the sender.
    pub fn max_ranging_error_m(max_skew: f64, distance_m: f64, speed_of_sound: f64) -> f64 {
        let flight_s = distance_m / speed_of_sound;
        let time_error_s = max_skew * flight_s;
        time_error_s * speed_of_sound
    }
}

impl Default for TimeSync {
    fn default() -> Self {
        TimeSync::ftsp()
    }
}

/// The result of one pairwise sync exchange: matching local timestamps of
/// the same global instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncState {
    /// Sender's local timestamp of the sync event, seconds.
    pub sender_stamp_s: f64,
    /// Receiver's local timestamp of the sync event (with jitter), seconds.
    pub receiver_stamp_s: f64,
}

impl SyncState {
    /// Converts a sender-local instant to receiver-local time assuming
    /// equal rates (what the mote actually does over sub-second intervals).
    pub fn sender_to_receiver(&self, sender_local_s: f64) -> f64 {
        self.receiver_stamp_s + (sender_local_s - self.sender_stamp_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_math::rng::seeded;

    #[test]
    fn perfect_clock_is_identity() {
        let c = DriftingClock::perfect();
        assert_eq!(c.local_from_global(12.5), 12.5);
        assert_eq!(c.global_from_local(12.5), 12.5);
        assert_eq!(DriftingClock::default(), c);
    }

    #[test]
    fn local_global_roundtrip() {
        let c = DriftingClock {
            offset_s: 3.2,
            skew: 4.0e-5,
        };
        let t = 1234.5;
        assert!((c.global_from_local(c.local_from_global(t)) - t).abs() < 1e-9);
    }

    #[test]
    fn sampled_clocks_within_bounds() {
        let mut rng = seeded(1);
        for _ in 0..100 {
            let c = DriftingClock::sample(&mut rng, 10.0, 5.0e-5);
            assert!(c.offset_s.abs() <= 10.0);
            assert!(c.skew.abs() <= 5.0e-5);
        }
    }

    #[test]
    fn rate_difference_is_symmetric_enough() {
        let a = DriftingClock {
            offset_s: 0.0,
            skew: 2.5e-5,
        };
        let b = DriftingClock {
            offset_s: 5.0,
            skew: -2.5e-5,
        };
        let d = a.rate_difference(&b);
        assert!((d - 5.0e-5).abs() < 1e-8, "rate diff {d}");
        // Symmetric only to first order in the skews.
        assert!((a.rate_difference(&b) - b.rate_difference(&a)).abs() < 1e-8);
    }

    #[test]
    fn paper_sync_error_bound_at_30m() {
        // Section 3.1: 50 µs/s drift ⇒ ~0.15 cm ranging error at 30 m.
        let err = TimeSync::max_ranging_error_m(5.0e-5, 30.0, 340.0);
        assert!(
            (err - 0.0015).abs() < 1e-6,
            "expected ~0.15 cm, got {} m",
            err
        );
    }

    #[test]
    fn sync_error_is_microsecond_scale() {
        let mut rng = seeded(2);
        let sync = TimeSync::ftsp();
        let a = DriftingClock::sample(&mut rng, 100.0, 5.0e-5);
        let b = DriftingClock::sample(&mut rng, 100.0, 5.0e-5);
        let t0 = 50.0;
        let state = sync.synchronize(&a, &b, t0, &mut rng);

        // A sender-local event shortly after the sync converts to
        // receiver-local time with error bounded by jitter + skew * dt.
        let dt = 0.1; // 100 ms, the scale of a ranging exchange
        let t1 = t0 + dt;
        let sender_local = a.local_from_global(t1);
        let receiver_true = b.local_from_global(t1);
        let converted = state.sender_to_receiver(sender_local);
        let err = (converted - receiver_true).abs();
        assert!(err < 20.0e-6 + 1.0e-4 * dt, "conversion error {err} s");
    }

    #[test]
    fn sync_error_grows_with_elapsed_time() {
        let mut rng = seeded(3);
        let sync = TimeSync {
            timestamp_jitter_s: 0.0,
        };
        let a = DriftingClock {
            offset_s: 0.0,
            skew: 5.0e-5,
        };
        let b = DriftingClock {
            offset_s: 7.0,
            skew: -5.0e-5,
        };
        let state = sync.synchronize(&a, &b, 0.0, &mut rng);
        let err_at = |dt: f64| {
            let sender_local = a.local_from_global(dt);
            let receiver_true = b.local_from_global(dt);
            (state.sender_to_receiver(sender_local) - receiver_true).abs()
        };
        assert!(err_at(1.0) > err_at(0.1));
        // 100 µs/s relative drift over 1 s ≈ 100 µs error.
        assert!((err_at(1.0) - 1.0e-4).abs() < 2.0e-5, "err {}", err_at(1.0));
    }

    #[test]
    fn serde_roundtrip() {
        let c = DriftingClock {
            offset_s: 1.0,
            skew: -3.0e-5,
        };
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<DriftingClock>(&json).unwrap(), c);
    }
}
