//! Network-wide flooding.
//!
//! The alignment step of distributed LSS (Section 4.3.1) is "one round of
//! flooding" from the root node; DV-hop-style baselines also need hop
//! counts from flooding. [`FloodNode`] is a reusable [`Node`] implementation
//! that rebroadcasts each origin's payload once, recording hop count and
//! parent, and [`run_flood`] wraps a full simulation run.

use rl_geom::Point2;
use serde::{Deserialize, Serialize};

use crate::sim::{Api, Node, Simulator};
use crate::{NodeId, RadioModel, Result};

/// The message carried by a flood: origin, hop count so far, and a payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloodMsg<P> {
    /// Node that started the flood.
    pub origin: NodeId,
    /// Hops traversed before this transmission.
    pub hops: usize,
    /// Application payload.
    pub payload: P,
}

/// Per-node flooding state machine.
///
/// Rebroadcasts the first copy received per origin; later copies are
/// absorbed (but a shorter-hop copy still updates the recorded distance,
/// which can happen with lossy links and timing races).
#[derive(Debug, Clone)]
pub struct FloodNode<P: Clone + core::fmt::Debug> {
    /// Payload this node floods at start, if it is an origin.
    pub initial: Option<P>,
    /// Received payloads by origin: `(hops, parent, payload)`.
    pub received: std::collections::BTreeMap<NodeId, (usize, NodeId, P)>,
    relay: bool,
}

impl<P: Clone + core::fmt::Debug> FloodNode<P> {
    /// A relay node (floods nothing of its own).
    pub fn relay() -> Self {
        FloodNode {
            initial: None,
            received: Default::default(),
            relay: true,
        }
    }

    /// An origin node that floods `payload` at start.
    pub fn origin(payload: P) -> Self {
        FloodNode {
            initial: Some(payload),
            received: Default::default(),
            relay: true,
        }
    }

    /// Hop count from `origin`, if the flood reached this node.
    pub fn hops_from(&self, origin: NodeId) -> Option<usize> {
        self.received.get(&origin).map(|(h, _, _)| *h)
    }

    /// The upstream neighbor that delivered `origin`'s flood first.
    pub fn parent_toward(&self, origin: NodeId) -> Option<NodeId> {
        self.received.get(&origin).map(|(_, p, _)| *p)
    }
}

impl<P: Clone + core::fmt::Debug> Node for FloodNode<P> {
    type Msg = FloodMsg<P>;

    fn on_start(&mut self, api: &mut Api<'_, Self::Msg>) {
        if let Some(payload) = self.initial.clone() {
            api.broadcast(FloodMsg {
                origin: api.id(),
                hops: 1,
                payload,
            });
        }
    }

    fn on_message(&mut self, from: NodeId, msg: FloodMsg<P>, api: &mut Api<'_, Self::Msg>) {
        if msg.origin == api.id() {
            return; // own flood reflected back
        }
        let better = match self.received.get(&msg.origin) {
            None => true,
            Some((hops, _, _)) => msg.hops < *hops,
        };
        if !better {
            return;
        }
        let first_time = !self.received.contains_key(&msg.origin);
        self.received
            .insert(msg.origin, (msg.hops, from, msg.payload.clone()));
        if self.relay && first_time {
            api.broadcast(FloodMsg {
                origin: msg.origin,
                hops: msg.hops + 1,
                payload: msg.payload,
            });
        }
    }
}

/// Outcome of a single-origin flood.
#[derive(Debug, Clone, PartialEq)]
pub struct FloodResult {
    /// Hop count from the root per node (`Some(0)` for the root itself).
    pub hops: Vec<Option<usize>>,
    /// Parent toward the root per node.
    pub parents: Vec<Option<NodeId>>,
    /// Fraction of nodes reached.
    pub coverage: f64,
}

/// Runs one flood from `root` over nodes at `positions` and reports hop
/// counts, parents and coverage.
///
/// # Errors
///
/// Propagates simulator errors (event budget exhaustion).
///
/// # Panics
///
/// Panics if `root` is out of range of `positions`.
pub fn run_flood(
    positions: &[Point2],
    radio: RadioModel,
    root: NodeId,
    seed: u64,
) -> Result<FloodResult> {
    assert!(root.index() < positions.len(), "root must exist");
    let nodes: Vec<FloodNode<()>> = (0..positions.len())
        .map(|i| {
            if i == root.index() {
                FloodNode::origin(())
            } else {
                FloodNode::relay()
            }
        })
        .collect();
    let mut sim = Simulator::new(nodes, positions, radio, seed);
    sim.run()?;
    let mut hops = vec![None; positions.len()];
    let mut parents = vec![None; positions.len()];
    hops[root.index()] = Some(0);
    let mut reached = 1usize;
    for (id, node) in sim.iter() {
        if id == root {
            continue;
        }
        if let Some(h) = node.hops_from(root) {
            hops[id.index()] = Some(h);
            parents[id.index()] = node.parent_toward(root);
            reached += 1;
        }
    }
    Ok(FloodResult {
        hops,
        parents,
        coverage: reached as f64 / positions.len().max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_positions(n: usize, spacing: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| Point2::new(i as f64 * spacing, 0.0))
            .collect()
    }

    #[test]
    fn flood_covers_connected_line() {
        let positions = line_positions(6, 8.0);
        let result = run_flood(&positions, RadioModel::ideal(10.0), NodeId(0), 1).unwrap();
        assert_eq!(result.coverage, 1.0);
        for (i, h) in result.hops.iter().enumerate() {
            assert_eq!(*h, Some(i), "hop count along the line");
        }
        // Parents form a chain toward the root.
        for i in 1..6 {
            assert_eq!(result.parents[i], Some(NodeId(i - 1)));
        }
    }

    #[test]
    fn flood_from_middle() {
        let positions = line_positions(5, 8.0);
        let result = run_flood(&positions, RadioModel::ideal(10.0), NodeId(2), 2).unwrap();
        assert_eq!(
            result.hops,
            vec![Some(2), Some(1), Some(0), Some(1), Some(2)]
        );
    }

    #[test]
    fn flood_does_not_cross_partitions() {
        let mut positions = line_positions(3, 8.0);
        positions.push(Point2::new(1000.0, 0.0)); // isolated node
        let result = run_flood(&positions, RadioModel::ideal(10.0), NodeId(0), 3).unwrap();
        assert_eq!(result.hops[3], None);
        assert!((result.coverage - 0.75).abs() < 1e-12);
    }

    #[test]
    fn lossless_flood_is_deterministic() {
        let positions = line_positions(10, 8.0);
        let a = run_flood(&positions, RadioModel::ideal(12.0), NodeId(0), 7).unwrap();
        let b = run_flood(&positions, RadioModel::ideal(12.0), NodeId(0), 8).unwrap();
        assert_eq!(a.hops, b.hops);
    }

    #[test]
    fn multi_origin_flood_collects_all() {
        // Every node is an origin; afterwards everyone knows hop counts to
        // everyone (DV-hop's data collection phase).
        let positions = line_positions(4, 8.0);
        let nodes: Vec<FloodNode<u32>> = (0..4).map(|i| FloodNode::origin(i as u32)).collect();
        let mut sim = Simulator::new(nodes, &positions, RadioModel::ideal(10.0), 4);
        sim.run().unwrap();
        for (id, node) in sim.iter() {
            for other in 0..4 {
                let other = NodeId(other);
                if other == id {
                    continue;
                }
                let expected = id.index().abs_diff(other.index());
                assert_eq!(
                    node.hops_from(other),
                    Some(expected),
                    "{id} hops from {other}"
                );
                // Payload carried through.
                assert_eq!(node.received[&other].2, other.index() as u32);
            }
        }
    }

    #[test]
    #[should_panic(expected = "root must exist")]
    fn flood_rejects_bad_root() {
        let _ = run_flood(&[], RadioModel::ideal(1.0), NodeId(0), 0);
    }
}
