//! Discrete-event wireless sensor network simulator.
//!
//! The distributed localization algorithm of Section 4.3 runs on a real
//! multi-hop radio network: nodes exchange local maps with neighbors and a
//! flooding wave aligns all local coordinate systems to the root's. This
//! crate provides the network substrate for that algorithm — and for the
//! clock-synchronization analysis of Section 3.1 — as a deterministic
//! discrete-event simulation:
//!
//! * [`clock`] — per-node clocks with bounded drift (the paper measured at
//!   most 50 µs/s between MICA2 motes) and FTSP-style MAC-layer timestamp
//!   synchronization,
//! * [`radio`] — a disk communication model with per-link delivery
//!   probability and MAC delay jitter,
//! * [`sim`] — the event loop: typed per-node state machines exchanging
//!   messages and timers ([`sim::Node`], [`sim::Simulator`]),
//! * [`flood`] — reusable network-wide flooding with hop counting (also the
//!   basis of a DV-hop baseline),
//! * [`pool`] — a deterministic worker pool for the per-node computation
//!   phases of simulated protocols (bit-identical output for any worker
//!   count; distributed LSS shards its local-map solves on it),
//! * [`topology`] — connectivity graphs derived from node positions and
//!   radio range.
//!
//! Everything is deterministic: the event loop is driven by one seeded
//! RNG, events at equal timestamps pop in a fixed order, and no code
//! reads ambient entropy — so a simulation replays bit-for-bit and can
//! safely run inside the sharded campaign workers of `rl-bench` (see the
//! seeding contract in `rl_math::rng`).
//!
//! # Examples
//!
//! Connectivity from geometry — the substrate every protocol runs on:
//!
//! ```
//! use rl_net::topology::Topology;
//! use rl_geom::Point2;
//!
//! let positions = vec![
//!     Point2::new(0.0, 0.0),
//!     Point2::new(8.0, 0.0),
//!     Point2::new(16.0, 0.0),
//! ];
//! let topo = Topology::from_positions(&positions, 10.0);
//! assert!(topo.are_neighbors(rl_net::NodeId(0), rl_net::NodeId(1)));
//! assert!(!topo.are_neighbors(rl_net::NodeId(0), rl_net::NodeId(2)));
//! assert!(topo.is_connected());
//! ```
//!
//! A full protocol run — flooding hop counts through the event
//! simulator over an ideal radio:
//!
//! ```
//! use rl_net::flood::run_flood;
//! use rl_net::{NodeId, RadioModel};
//! use rl_geom::Point2;
//!
//! let positions: Vec<Point2> =
//!     (0..5).map(|i| Point2::new(i as f64 * 8.0, 0.0)).collect();
//! let result = run_flood(&positions, RadioModel::ideal(10.0), NodeId(0), 7)?;
//! assert_eq!(result.coverage, 1.0, "every node hears the flood");
//! assert_eq!(result.hops[4], Some(4), "line topology: 4 hops to the end");
//! assert_eq!(result.parents[4], Some(NodeId(3)));
//! # Ok::<(), rl_net::NetError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod flood;
pub mod pool;
pub mod radio;
pub mod sim;
pub mod topology;

pub use clock::{DriftingClock, TimeSync};
pub use radio::RadioModel;
pub use sim::{Api, Node, Simulator};
pub use topology::Topology;

use serde::{Deserialize, Serialize};

/// Identifier of a sensor node, unique within a deployment.
///
/// Node ids double as indices into position/measurement arrays throughout
/// the workspace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The id as an index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Error type for network simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// A node id referenced a node that does not exist.
    UnknownNode(NodeId),
    /// The simulation exceeded its configured event budget (runaway
    /// protocol).
    EventBudgetExhausted {
        /// The budget that was exhausted.
        budget: usize,
    },
    /// A configuration parameter was out of its documented domain.
    InvalidConfig(&'static str),
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetError::UnknownNode(id) => write!(f, "unknown node {id}"),
            NetError::EventBudgetExhausted { budget } => {
                write!(f, "simulation exceeded its event budget of {budget}")
            }
            NetError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_conversion() {
        let id: NodeId = 7usize.into();
        assert_eq!(id.to_string(), "n7");
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            NetError::UnknownNode(NodeId(3)).to_string(),
            "unknown node n3"
        );
        assert_eq!(
            NetError::EventBudgetExhausted { budget: 10 }.to_string(),
            "simulation exceeded its event budget of 10"
        );
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<NetError>();
    }
}
