//! A deterministic worker pool for per-node computation phases.
//!
//! Protocols simulated on [`crate::Simulator`] often have a *computation*
//! phase before any message is exchanged — in distributed LSS every node
//! solves its own local map, which at metro scale dominates the whole
//! protocol's wall time. Those per-node computations are embarrassingly
//! parallel (each node only reads shared inputs), so this module shards
//! them across `std::thread` workers with the same work-stealing pattern
//! the `rl-bench` campaign runner uses, under the same contract:
//!
//! **The output is bit-identical for any worker count.** [`par_map_indexed`]
//! requires `f(i)` to be a pure function of the index `i` and the captured
//! (shared, immutable) inputs — any randomness must come from a stream
//! derived from `i`, never from a generator shared across calls — and it
//! returns results in index order regardless of which worker computed
//! what. This is clause 5 of the `rl_math::rng` seeding contract applied
//! to the simulator's setup phase.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested worker count: `0` means "the machine's available
/// parallelism", and the pool is never larger than the number of items.
pub fn resolve_workers(requested: usize, items: usize) -> usize {
    let requested = if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    requested.clamp(1, items.max(1))
}

/// Maps `f` over `0..n` on a pool of `workers` threads (resolved by
/// [`resolve_workers`]), returning `vec![f(0), f(1), …, f(n-1)]`.
///
/// `f(i)` must depend only on `i` and immutable captured state; under
/// that contract the result is **bit-identical for any worker count**,
/// including the serial `workers == 1` path (which calls `f` inline with
/// no thread machinery at all).
///
/// # Panics
///
/// Propagates panics from `f` (the pool joins all workers first).
///
/// # Example
///
/// ```
/// use rl_net::pool::par_map_indexed;
///
/// let serial: Vec<u64> = par_map_indexed(100, 1, |i| (i as u64) * 3 + 1);
/// let pooled: Vec<u64> = par_map_indexed(100, 4, |i| (i as u64) * 3 + 1);
/// assert_eq!(serial, pooled);
/// ```
pub fn par_map_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_workers(workers, n);
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    // Scheduling decided only who computed what; index order is restored
    // here so the output is schedule-independent.
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order() {
        let out = par_map_indexed(10, 3, |i| i * i);
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn worker_count_never_changes_the_output() {
        // Each item draws from its own derived stream — the contract the
        // distributed local-solve phase relies on.
        let run = |workers: usize| -> Vec<u64> {
            par_map_indexed(37, workers, |i| {
                use rand::Rng;
                let mut rng =
                    rl_math::rng::seeded(0xFEED ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9));
                rng.random::<u64>()
            })
        };
        let reference = run(1);
        for workers in [2, 4, 8] {
            assert_eq!(run(workers), reference, "workers={workers}");
        }
    }

    #[test]
    fn resolve_workers_clamps() {
        assert_eq!(resolve_workers(4, 2), 2);
        assert_eq!(resolve_workers(4, 100), 4);
        assert_eq!(resolve_workers(1, 0), 1);
        assert!(resolve_workers(0, 100) >= 1);
    }
}
