//! Radio propagation model.
//!
//! A simple disk model suffices for the paper's algorithms: radio reaches
//! farther than acoustic ranging (MICA2 radios cover ~100 m outdoors versus
//! ≤30 m acoustic range), so network connectivity is never the bottleneck —
//! but delivery is lossy and MAC access adds a small delay. The model is
//! deliberately parameter-light; everything the localization layer needs is
//! *who hears whom* and *when*.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Disk radio model with per-link loss and MAC delay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioModel {
    /// Communication range, meters.
    pub range_m: f64,
    /// Probability that an individual transmission is lost on a link.
    pub loss_probability: f64,
    /// Mean MAC/processing delay per hop, seconds.
    pub mac_delay_s: f64,
    /// Uniform jitter added to the MAC delay, seconds.
    pub mac_jitter_s: f64,
}

impl RadioModel {
    /// MICA2-like defaults: 100 m range, 2 % loss, ~5 ms MAC delay.
    pub fn mica2() -> Self {
        RadioModel {
            range_m: 100.0,
            loss_probability: 0.02,
            mac_delay_s: 5.0e-3,
            mac_jitter_s: 2.0e-3,
        }
    }

    /// A lossless, near-instant radio (useful in unit tests).
    pub fn ideal(range_m: f64) -> Self {
        RadioModel {
            range_m,
            loss_probability: 0.0,
            mac_delay_s: 1.0e-4,
            mac_jitter_s: 0.0,
        }
    }

    /// Whether two nodes at the given distance can communicate at all.
    pub fn in_range(&self, distance_m: f64) -> bool {
        distance_m <= self.range_m
    }

    /// Samples whether one transmission over an in-range link is delivered.
    pub fn delivered<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.loss_probability <= 0.0 || rng.random::<f64>() >= self.loss_probability
    }

    /// Samples the delivery latency of one hop, seconds.
    pub fn latency<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mac_delay_s
            + if self.mac_jitter_s > 0.0 {
                rng.random::<f64>() * self.mac_jitter_s
            } else {
                0.0
            }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NetError::InvalidConfig`] naming the violated
    /// constraint.
    pub fn validate(&self) -> crate::Result<()> {
        use crate::NetError::InvalidConfig;
        if !(self.range_m > 0.0) {
            return Err(InvalidConfig("range_m must be positive"));
        }
        if !(0.0..=1.0).contains(&self.loss_probability) {
            return Err(InvalidConfig("loss_probability must be in [0, 1]"));
        }
        if self.mac_delay_s < 0.0 || self.mac_jitter_s < 0.0 {
            return Err(InvalidConfig("delays must be non-negative"));
        }
        Ok(())
    }
}

impl Default for RadioModel {
    fn default() -> Self {
        RadioModel::mica2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_math::rng::seeded;

    #[test]
    fn presets_are_valid() {
        RadioModel::mica2().validate().unwrap();
        RadioModel::ideal(50.0).validate().unwrap();
    }

    #[test]
    fn range_check() {
        let r = RadioModel::ideal(10.0);
        assert!(r.in_range(10.0));
        assert!(!r.in_range(10.1));
    }

    #[test]
    fn ideal_radio_always_delivers() {
        let r = RadioModel::ideal(10.0);
        let mut rng = seeded(1);
        assert!((0..100).all(|_| r.delivered(&mut rng)));
        assert_eq!(r.latency(&mut rng), 1.0e-4);
    }

    #[test]
    fn lossy_radio_drops_some() {
        let r = RadioModel {
            loss_probability: 0.3,
            ..RadioModel::mica2()
        };
        let mut rng = seeded(2);
        let delivered = (0..1000).filter(|_| r.delivered(&mut rng)).count();
        assert!((600..800).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn latency_within_bounds() {
        let r = RadioModel::mica2();
        let mut rng = seeded(3);
        for _ in 0..100 {
            let l = r.latency(&mut rng);
            assert!(l >= r.mac_delay_s);
            assert!(l <= r.mac_delay_s + r.mac_jitter_s);
        }
    }

    #[test]
    fn validate_rejects_bad_params() {
        let bad_range = RadioModel {
            range_m: 0.0,
            ..RadioModel::mica2()
        };
        assert!(bad_range.validate().is_err());
        let bad_loss = RadioModel {
            loss_probability: 1.5,
            ..RadioModel::mica2()
        };
        assert!(bad_loss.validate().is_err());
        let bad_delay = RadioModel {
            mac_delay_s: -1.0,
            ..RadioModel::mica2()
        };
        assert!(bad_delay.validate().is_err());
    }
}
