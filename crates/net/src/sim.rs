//! The discrete-event loop: per-node state machines exchanging messages.
//!
//! Nodes implement the [`Node`] trait; the [`Simulator`] owns one state
//! machine per sensor node, delivers broadcast/unicast messages according to
//! the [`crate::RadioModel`] and the disk topology, and fires
//! timers. Everything is deterministic given the seed.

use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rl_geom::Point2;

use crate::{NetError, NodeId, RadioModel, Result, Topology};

/// A per-node protocol state machine.
pub trait Node {
    /// Message type exchanged by this protocol.
    type Msg: Clone + core::fmt::Debug;

    /// Called once when the simulation starts.
    fn on_start(&mut self, api: &mut Api<'_, Self::Msg>);

    /// Called when a message from `from` is delivered to this node.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, api: &mut Api<'_, Self::Msg>);

    /// Called when a timer set via [`Api::set_timer`] fires.
    fn on_timer(&mut self, timer: u64, api: &mut Api<'_, Self::Msg>) {
        let _ = (timer, api);
    }
}

/// The side-effect interface handed to node callbacks.
#[derive(Debug)]
pub struct Api<'a, M> {
    now: f64,
    me: NodeId,
    actions: &'a mut Vec<Action<M>>,
}

impl<M> Api<'_, M> {
    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The id of the node being called.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Broadcasts a message to every radio neighbor (lossy).
    pub fn broadcast(&mut self, msg: M) {
        self.actions.push(Action::Broadcast(msg));
    }

    /// Sends a message to one radio neighbor (lossy; silently dropped if
    /// `to` is out of radio range).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send(to, msg));
    }

    /// Schedules `on_timer(id)` on this node after `delay_s` seconds.
    pub fn set_timer(&mut self, delay_s: f64, id: u64) {
        self.actions.push(Action::Timer(delay_s.max(0.0), id));
    }
}

#[derive(Debug)]
enum Action<M> {
    Broadcast(M),
    Send(NodeId, M),
    Timer(f64, u64),
}

#[derive(Debug)]
enum EventKind<M> {
    Start(NodeId),
    Deliver { to: NodeId, from: NodeId, msg: M },
    Timer { node: NodeId, id: u64 },
}

struct Scheduled<M> {
    time: f64,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // BinaryHeap is a max-heap: invert so the earliest event pops first,
        // with the sequence number as a deterministic tie-breaker.
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite event times")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Statistics of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Events processed (starts + deliveries + timers).
    pub events: usize,
    /// Messages delivered to a node.
    pub delivered: usize,
    /// Messages lost to radio loss.
    pub dropped: usize,
}

/// The discrete-event simulator.
///
/// # Example
///
/// ```
/// use rl_net::{Api, Node, NodeId, RadioModel, Simulator};
/// use rl_geom::Point2;
///
/// /// Every node broadcasts a ping once; everyone counts pings heard.
/// struct Ping { heard: usize }
/// impl Node for Ping {
///     type Msg = ();
///     fn on_start(&mut self, api: &mut Api<'_, ()>) { api.broadcast(()); }
///     fn on_message(&mut self, _from: NodeId, _msg: (), _api: &mut Api<'_, ()>) {
///         self.heard += 1;
///     }
/// }
///
/// let positions = vec![Point2::new(0.0, 0.0), Point2::new(5.0, 0.0)];
/// let nodes = vec![Ping { heard: 0 }, Ping { heard: 0 }];
/// let mut sim = Simulator::new(nodes, &positions, RadioModel::ideal(10.0), 42);
/// sim.run().unwrap();
/// assert_eq!(sim.node(NodeId(0)).heard, 1);
/// assert_eq!(sim.node(NodeId(1)).heard, 1);
/// ```
pub struct Simulator<N: Node> {
    nodes: Vec<N>,
    topology: Topology,
    radio: RadioModel,
    queue: BinaryHeap<Scheduled<N::Msg>>,
    time: f64,
    seq: u64,
    rng: StdRng,
    event_budget: usize,
    stats: SimStats,
}

impl<N: Node> Simulator<N> {
    /// Creates a simulator over nodes placed at `positions`, connected by
    /// the disk radio model, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` and `positions` differ in length or the radio
    /// model is invalid.
    pub fn new(nodes: Vec<N>, positions: &[Point2], radio: RadioModel, seed: u64) -> Self {
        assert_eq!(
            nodes.len(),
            positions.len(),
            "one position per node required"
        );
        radio.validate().expect("invalid radio model");
        let topology = Topology::from_positions(positions, radio.range_m);
        Simulator {
            nodes,
            topology,
            radio,
            queue: BinaryHeap::new(),
            time: 0.0,
            seq: 0,
            rng: rl_math::rng::seeded(seed),
            event_budget: 1_000_000,
            stats: SimStats::default(),
        }
    }

    /// Overrides the runaway-protocol event budget (builder style).
    pub fn with_event_budget(mut self, budget: usize) -> Self {
        self.event_budget = budget;
        self
    }

    /// The radio topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current simulation time, seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Statistics of the run so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Immutable access to a node's state machine.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Iterates over all node state machines.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Consumes the simulator, returning the node state machines.
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }

    fn schedule(&mut self, time: f64, kind: EventKind<N::Msg>) {
        self.seq += 1;
        self.queue.push(Scheduled {
            time,
            seq: self.seq,
            kind,
        });
    }

    /// Runs the simulation to completion: schedules `on_start` on every
    /// node at time 0 and processes events until the queue drains.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EventBudgetExhausted`] if the protocol does not
    /// quiesce within the event budget.
    pub fn run(&mut self) -> Result<SimStats> {
        for i in 0..self.nodes.len() {
            self.schedule(0.0, EventKind::Start(NodeId(i)));
        }
        self.drain()
    }

    fn drain(&mut self) -> Result<SimStats> {
        while let Some(ev) = self.queue.pop() {
            if self.stats.events >= self.event_budget {
                return Err(NetError::EventBudgetExhausted {
                    budget: self.event_budget,
                });
            }
            self.stats.events += 1;
            self.time = self.time.max(ev.time);

            let mut actions = Vec::new();
            match ev.kind {
                EventKind::Start(node) => {
                    let mut api = Api {
                        now: self.time,
                        me: node,
                        actions: &mut actions,
                    };
                    self.nodes[node.index()].on_start(&mut api);
                    self.apply(node, actions);
                }
                EventKind::Deliver { to, from, msg } => {
                    self.stats.delivered += 1;
                    let mut api = Api {
                        now: self.time,
                        me: to,
                        actions: &mut actions,
                    };
                    self.nodes[to.index()].on_message(from, msg, &mut api);
                    self.apply(to, actions);
                }
                EventKind::Timer { node, id } => {
                    let mut api = Api {
                        now: self.time,
                        me: node,
                        actions: &mut actions,
                    };
                    self.nodes[node.index()].on_timer(id, &mut api);
                    self.apply(node, actions);
                }
            }
        }
        Ok(self.stats)
    }

    fn apply(&mut self, origin: NodeId, actions: Vec<Action<N::Msg>>) {
        for action in actions {
            match action {
                Action::Broadcast(msg) => {
                    let neighbors: Vec<NodeId> = self.topology.neighbors(origin).to_vec();
                    for to in neighbors {
                        self.transmit(origin, to, msg.clone());
                    }
                }
                Action::Send(to, msg) => {
                    if self.topology.are_neighbors(origin, to) {
                        self.transmit(origin, to, msg);
                    } else {
                        self.stats.dropped += 1;
                    }
                }
                Action::Timer(delay, id) => {
                    self.schedule(self.time + delay, EventKind::Timer { node: origin, id });
                }
            }
        }
    }

    fn transmit(&mut self, from: NodeId, to: NodeId, msg: N::Msg) {
        if self.radio.delivered(&mut self.rng) {
            let latency = self.radio.latency(&mut self.rng);
            self.schedule(self.time + latency, EventKind::Deliver { to, from, msg });
        } else {
            self.stats.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts pings; used by several tests.
    struct Ping {
        heard: usize,
        sent: bool,
    }

    impl Ping {
        fn new() -> Self {
            Ping {
                heard: 0,
                sent: false,
            }
        }
    }

    impl Node for Ping {
        type Msg = u32;
        fn on_start(&mut self, api: &mut Api<'_, u32>) {
            api.broadcast(7);
            self.sent = true;
        }
        fn on_message(&mut self, _from: NodeId, msg: u32, _api: &mut Api<'_, u32>) {
            assert_eq!(msg, 7);
            self.heard += 1;
        }
    }

    fn line_positions(n: usize, spacing: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| Point2::new(i as f64 * spacing, 0.0))
            .collect()
    }

    #[test]
    fn broadcast_reaches_neighbors_only() {
        let positions = line_positions(3, 8.0);
        let nodes = vec![Ping::new(), Ping::new(), Ping::new()];
        let mut sim = Simulator::new(nodes, &positions, RadioModel::ideal(10.0), 1);
        let stats = sim.run().unwrap();
        // Middle node hears both ends; ends hear only the middle.
        assert_eq!(sim.node(NodeId(0)).heard, 1);
        assert_eq!(sim.node(NodeId(1)).heard, 2);
        assert_eq!(sim.node(NodeId(2)).heard, 1);
        assert_eq!(stats.delivered, 4);
        assert_eq!(stats.dropped, 0);
        assert!(sim.time() > 0.0);
    }

    #[test]
    fn unicast_respects_range() {
        struct Sender;
        impl Node for Sender {
            type Msg = ();
            fn on_start(&mut self, api: &mut Api<'_, ()>) {
                api.send(NodeId(1), ()); // neighbor
                api.send(NodeId(2), ()); // out of range -> dropped
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _a: &mut Api<'_, ()>) {}
        }
        let positions = line_positions(3, 8.0);
        let mut sim = Simulator::new(
            vec![Sender, Sender, Sender],
            &positions,
            RadioModel::ideal(10.0),
            2,
        );
        let stats = sim.run().unwrap();
        assert_eq!(stats.dropped, 3); // each node's far send fails
        assert_eq!(stats.delivered, 3);
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timed {
            fired: Vec<u64>,
        }
        impl Node for Timed {
            type Msg = ();
            fn on_start(&mut self, api: &mut Api<'_, ()>) {
                api.set_timer(0.3, 3);
                api.set_timer(0.1, 1);
                api.set_timer(0.2, 2);
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _a: &mut Api<'_, ()>) {}
            fn on_timer(&mut self, id: u64, _api: &mut Api<'_, ()>) {
                self.fired.push(id);
            }
        }
        let mut sim = Simulator::new(
            vec![Timed { fired: vec![] }],
            &[Point2::ORIGIN],
            RadioModel::ideal(10.0),
            3,
        );
        sim.run().unwrap();
        assert_eq!(sim.node(NodeId(0)).fired, vec![1, 2, 3]);
    }

    #[test]
    fn lossy_radio_drops_messages() {
        let positions = line_positions(2, 5.0);
        let radio = RadioModel {
            loss_probability: 1.0,
            ..RadioModel::mica2()
        };
        let mut sim = Simulator::new(vec![Ping::new(), Ping::new()], &positions, radio, 4);
        let stats = sim.run().unwrap();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.dropped, 2);
        assert_eq!(sim.node(NodeId(0)).heard, 0);
    }

    #[test]
    fn event_budget_stops_runaway_protocols() {
        /// Echoes every message back forever.
        struct Echo;
        impl Node for Echo {
            type Msg = ();
            fn on_start(&mut self, api: &mut Api<'_, ()>) {
                api.broadcast(());
            }
            fn on_message(&mut self, _f: NodeId, _m: (), api: &mut Api<'_, ()>) {
                api.broadcast(());
            }
        }
        let positions = line_positions(2, 5.0);
        let mut sim = Simulator::new(vec![Echo, Echo], &positions, RadioModel::ideal(10.0), 5)
            .with_event_budget(500);
        let err = sim.run().unwrap_err();
        assert_eq!(err, NetError::EventBudgetExhausted { budget: 500 });
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let positions = line_positions(5, 8.0);
            let nodes = (0..5).map(|_| Ping::new()).collect();
            let mut sim = Simulator::new(
                nodes,
                &positions,
                RadioModel {
                    loss_probability: 0.3,
                    ..RadioModel::mica2()
                },
                seed,
            );
            sim.run().unwrap();
            sim.iter().map(|(_, n)| n.heard).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn into_nodes_returns_all_state() {
        let positions = line_positions(2, 5.0);
        let mut sim = Simulator::new(
            vec![Ping::new(), Ping::new()],
            &positions,
            RadioModel::ideal(10.0),
            6,
        );
        sim.run().unwrap();
        let nodes = sim.into_nodes();
        assert_eq!(nodes.len(), 2);
        assert!(nodes.iter().all(|n| n.sent));
    }

    #[test]
    #[should_panic(expected = "one position per node")]
    fn mismatched_positions_panic() {
        let _ = Simulator::new(vec![Ping::new()], &[], RadioModel::ideal(1.0), 0);
    }
}
