//! Connectivity graphs over node positions.
//!
//! Localization algorithms care about two graphs: the *radio* graph (who
//! can exchange messages) and the *ranging* graph (who has distance
//! measurements to whom). Both are undirected neighbor structures;
//! [`Topology`] serves either role.

use crate::NodeId;
use rl_geom::Point2;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An undirected neighbor graph over `n` nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    neighbors: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Builds the disk graph: nodes are neighbors when within `range_m`.
    ///
    /// Candidate pairs come from a uniform spatial grid of cell size
    /// `range_m` (any in-range pair shares a cell or sits in adjacent
    /// cells), so construction costs `O(n + edges)` instead of the
    /// all-pairs `O(n²)` scan — the difference between instantiating a
    /// metro-scale simulator in microseconds versus milliseconds.
    /// Adjacency lists come out sorted ascending, exactly as the
    /// all-pairs scan produced them.
    pub fn from_positions(positions: &[Point2], range_m: f64) -> Self {
        let n = positions.len();
        let mut neighbors = vec![Vec::new(); n];
        // Flat sorted (cell_x, cell_y, node) index, binary searched per
        // neighbor column — the same idiom as the LSS spatial-grid
        // constraint backend. f64-to-i64 casts saturate, so neither
        // non-finite coordinates nor degenerate ranges can panic: equal
        // points always share a cell (range 0), an infinite range puts
        // everything in cell (0, 0), and the final `<= range_m` check
        // keeps the semantics of the all-pairs scan in every case.
        let cell_of = |p: Point2| -> (i64, i64) {
            (
                (p.x / range_m).floor() as i64,
                (p.y / range_m).floor() as i64,
            )
        };
        let mut keyed: Vec<(i64, i64, u32)> = (0..n)
            .map(|i| {
                let (cx, cy) = cell_of(positions[i]);
                (cx, cy, i as u32)
            })
            .collect();
        keyed.sort_unstable();
        for i in 0..n {
            let (cx, cy) = cell_of(positions[i]);
            // Saturation can collapse adjacent column indices onto the
            // same value at the i64 extremes; visiting a collapsed
            // column twice would record the same pair twice, so
            // duplicates are skipped.
            let columns = [cx.saturating_sub(1), cx, cx.saturating_add(1)];
            for (k, &kx) in columns.iter().enumerate() {
                if columns[..k].contains(&kx) {
                    continue;
                }
                // Entries of column kx with cell_y in [cy-1, cy+1]
                // form one contiguous sorted run.
                let y_lo = cy.saturating_sub(1);
                let y_hi = cy.saturating_add(1);
                let lo = keyed.partition_point(|&(a, b, _)| (a, b) < (kx, y_lo));
                let hi = keyed.partition_point(|&(a, b, _)| (a, b) <= (kx, y_hi));
                for &(_, _, j) in &keyed[lo..hi] {
                    let j = j as usize;
                    if j <= i {
                        continue;
                    }
                    if positions[i].distance(positions[j]) <= range_m {
                        neighbors[i].push(NodeId(j));
                        neighbors[j].push(NodeId(i));
                    }
                }
            }
        }
        // The grid sweep discovers pairs in cell order, not id order;
        // sorting restores the exact adjacency lists of the all-pairs
        // scan (each list ascending), keeping `Topology` values — and
        // everything fingerprinted downstream — bit-identical.
        for list in &mut neighbors {
            list.sort_unstable();
        }
        Topology { neighbors }
    }

    /// Builds a topology from an explicit undirected edge list.
    ///
    /// Duplicate and self edges are ignored.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut neighbors = vec![Vec::new(); n];
        for (a, b) in edges {
            if a == b || a.index() >= n || b.index() >= n {
                continue;
            }
            if !neighbors[a.index()].contains(&b) {
                neighbors[a.index()].push(b);
                neighbors[b.index()].push(a);
            }
        }
        Topology { neighbors }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The neighbors of `node` (empty slice for unknown nodes).
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.neighbors
            .get(node.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether `a` and `b` are direct neighbors.
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).contains(&b)
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Mean node degree.
    pub fn average_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.neighbors.iter().map(Vec::len).sum::<usize>() as f64 / self.len() as f64
    }

    /// Breadth-first hop counts from `root`; unreachable nodes get `None`.
    pub fn hop_counts(&self, root: NodeId) -> Vec<Option<usize>> {
        let mut hops = vec![None; self.len()];
        if root.index() >= self.len() {
            return hops;
        }
        hops[root.index()] = Some(0);
        let mut queue = VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            let d = hops[u.index()].expect("visited");
            for &v in self.neighbors(u) {
                if hops[v.index()].is_none() {
                    hops[v.index()] = Some(d + 1);
                    queue.push_back(v);
                }
            }
        }
        hops
    }

    /// Whether every node is reachable from node 0 (trivially true for
    /// empty topologies).
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        self.hop_counts(NodeId(0)).iter().all(Option::is_some)
    }

    /// Connected components as sorted lists of node ids.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let mut seen = vec![false; self.len()];
        let mut out = Vec::new();
        for start in 0..self.len() {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([NodeId(start)]);
            seen[start] = true;
            while let Some(u) = queue.pop_front() {
                comp.push(u);
                for &v in self.neighbors(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        queue.push_back(v);
                    }
                }
            }
            comp.sort();
            out.push(comp);
        }
        out
    }

    /// All-pairs shortest-path distances along edges weighted by `weight`,
    /// via repeated Dijkstra. `None` marks unreachable pairs.
    ///
    /// Used by the MDS-MAP baseline, which completes a sparse distance
    /// matrix with shortest-path distances.
    pub fn shortest_paths(&self, weight: impl Fn(NodeId, NodeId) -> f64) -> Vec<Vec<Option<f64>>> {
        let n = self.len();
        let mut all = vec![vec![None; n]; n];
        for (src, row) in all.iter_mut().enumerate() {
            // Dijkstra with a binary heap of (cost, node).
            let mut dist: Vec<f64> = vec![f64::INFINITY; n];
            dist[src] = 0.0;
            let mut heap = std::collections::BinaryHeap::new();
            heap.push(HeapEntry {
                cost: 0.0,
                node: NodeId(src),
            });
            while let Some(HeapEntry { cost, node }) = heap.pop() {
                if cost > dist[node.index()] {
                    continue;
                }
                for &next in self.neighbors(node) {
                    let w = weight(node, next);
                    debug_assert!(w >= 0.0, "negative edge weight");
                    let cand = cost + w;
                    if cand < dist[next.index()] {
                        dist[next.index()] = cand;
                        heap.push(HeapEntry {
                            cost: cand,
                            node: next,
                        });
                    }
                }
            }
            for (j, d) in dist.iter().enumerate() {
                if d.is_finite() {
                    row[j] = Some(*d);
                }
            }
        }
        all
    }
}

/// Min-heap entry for Dijkstra (reversed ordering on cost).
#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reverse: smallest cost pops first.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("finite costs")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn line(n: usize, spacing: f64, range: f64) -> Topology {
        let positions: Vec<Point2> = (0..n)
            .map(|i| Point2::new(i as f64 * spacing, 0.0))
            .collect();
        Topology::from_positions(&positions, range)
    }

    #[test]
    fn disk_graph_edges() {
        let t = line(3, 8.0, 10.0);
        assert!(t.are_neighbors(NodeId(0), NodeId(1)));
        assert!(!t.are_neighbors(NodeId(0), NodeId(2)));
        assert_eq!(t.edge_count(), 2);
        assert!((t.average_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_edges_ignores_junk() {
        let t = Topology::from_edges(
            3,
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(0)), // duplicate
                (NodeId(2), NodeId(2)), // self edge
                (NodeId(0), NodeId(9)), // out of range
            ],
        );
        assert_eq!(t.edge_count(), 1);
        assert!(t.are_neighbors(NodeId(1), NodeId(0)));
    }

    #[test]
    fn hop_counts_on_a_line() {
        let t = line(5, 8.0, 10.0);
        let hops = t.hop_counts(NodeId(0));
        assert_eq!(hops, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn hop_counts_from_invalid_root() {
        let t = line(3, 8.0, 10.0);
        assert!(t.hop_counts(NodeId(99)).iter().all(Option::is_none));
    }

    #[test]
    fn connectivity_and_components() {
        let connected = line(4, 8.0, 10.0);
        assert!(connected.is_connected());
        assert_eq!(connected.components().len(), 1);

        let split = line(4, 8.0, 7.0); // spacing exceeds range
        assert!(!split.is_connected());
        assert_eq!(split.components().len(), 4);

        assert!(Topology::from_positions(&[], 5.0).is_connected());
        assert!(Topology::from_positions(&[], 5.0).is_empty());
    }

    #[test]
    fn shortest_paths_on_line_sum_spacings() {
        let t = line(4, 8.0, 10.0);
        let sp = t.shortest_paths(|_, _| 8.0);
        assert_eq!(sp[0][3], Some(24.0));
        assert_eq!(sp[3][0], Some(24.0));
        assert_eq!(sp[1][1], Some(0.0));
    }

    #[test]
    fn shortest_paths_unreachable_is_none() {
        let t = line(4, 8.0, 7.0);
        let sp = t.shortest_paths(|_, _| 1.0);
        assert_eq!(sp[0][1], None);
        assert_eq!(sp[0][0], Some(0.0));
    }

    #[test]
    fn shortest_paths_prefers_cheap_route() {
        // Triangle where direct edge is expensive: 0-1 (10), 0-2 (1), 2-1 (1).
        let t = Topology::from_edges(
            3,
            [
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(2), NodeId(1)),
            ],
        );
        let sp = t.shortest_paths(|a, b| {
            if (a.index().min(b.index()), a.index().max(b.index())) == (0, 1) {
                10.0
            } else {
                1.0
            }
        });
        assert_eq!(sp[0][1], Some(2.0));
    }

    /// The all-pairs reference the spatial-grid builder must reproduce
    /// exactly (adjacency lists ascending).
    fn from_positions_all_pairs(positions: &[Point2], range_m: f64) -> Topology {
        Topology::from_edges(
            positions.len(),
            (0..positions.len()).flat_map(|i| {
                (i + 1..positions.len())
                    .filter(move |&j| positions[i].distance(positions[j]) <= range_m)
                    .map(move |j| (NodeId(i), NodeId(j)))
            }),
        )
    }

    #[test]
    fn grid_builder_handles_degenerate_ranges() {
        let positions = [
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 0.0), // coincident with node 0
            Point2::new(5.0, 0.0),
        ];
        // Range 0 connects only coincident points.
        let zero = Topology::from_positions(&positions, 0.0);
        assert!(zero.are_neighbors(NodeId(0), NodeId(1)));
        assert_eq!(zero.edge_count(), 1);
        // An infinite range connects everything.
        let inf = Topology::from_positions(&positions, f64::INFINITY);
        assert_eq!(inf.edge_count(), 3);
        // A NaN range connects nothing.
        assert_eq!(
            Topology::from_positions(&positions, f64::NAN).edge_count(),
            0
        );
    }

    #[test]
    fn grid_builder_handles_saturated_cell_indices() {
        // Coordinates whose cell index saturates to the i64 extremes
        // collapse adjacent grid columns onto one value; each pair must
        // still be recorded exactly once.
        let coincident = [Point2::new(5.0, 0.0), Point2::new(5.0, 0.0)];
        let zero = Topology::from_positions(&coincident, 0.0); // 5/0 = +inf
        assert_eq!(zero.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(zero.edge_count(), 1);
        let negative = [Point2::new(-5.0, -3.0), Point2::new(-5.0, -3.0)];
        let neg = Topology::from_positions(&negative, 0.0); // -5/0 = -inf
        assert_eq!(neg.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(neg.edge_count(), 1);
        // Huge but finite coordinates with a tiny range saturate too.
        let huge = [Point2::new(1e300, 1e300), Point2::new(1e300, 1e300)];
        let t = Topology::from_positions(&huge, 1e-3);
        assert_eq!(t.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(t.edge_count(), 1);
    }

    proptest! {
        /// The spatial-grid disk-graph builder reproduces the all-pairs
        /// scan exactly — same neighbor sets, same (ascending) adjacency
        /// order — on arbitrary point clouds, including clustered ones
        /// spanning many grid cells.
        #[test]
        fn prop_grid_builder_matches_all_pairs(
            pts in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 0..60),
            range in 0.5f64..50.0,
        ) {
            let positions: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let grid = Topology::from_positions(&positions, range);
            let reference = from_positions_all_pairs(&positions, range);
            prop_assert_eq!(grid, reference);
        }

        /// Hop counts are symmetric for undirected graphs built from
        /// positions: hops(a)[b] == hops(b)[a].
        #[test]
        fn prop_hops_symmetric(
            pts in proptest::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 2..20),
            range in 5.0f64..40.0,
        ) {
            let positions: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let t = Topology::from_positions(&positions, range);
            let a = NodeId(0);
            let b = NodeId(positions.len() - 1);
            prop_assert_eq!(t.hop_counts(a)[b.index()], t.hop_counts(b)[a.index()]);
        }

        /// Shortest paths satisfy the triangle inequality.
        #[test]
        fn prop_shortest_paths_triangle(
            pts in proptest::collection::vec((-30.0f64..30.0, -30.0f64..30.0), 3..12),
            range in 10.0f64..60.0,
        ) {
            let positions: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let t = Topology::from_positions(&positions, range);
            let sp = t.shortest_paths(|a, b| positions[a.index()].distance(positions[b.index()]));
            let n = positions.len();
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        if let (Some(ij), Some(ik), Some(kj)) = (sp[i][j], sp[i][k], sp[k][j]) {
                            prop_assert!(ij <= ik + kj + 1e-9);
                        }
                    }
                }
            }
        }
    }
}
