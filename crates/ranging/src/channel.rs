//! Composable ranging-error channel stack.
//!
//! The synthetic recipe used throughout the paper's evaluation — true
//! distance plus `N(0, 0.33 m)` under a 22 m cutoff — is the *clean*
//! regime. Real outdoor deployments layer several distinct error
//! mechanisms on top of it, and the resilience claims of the title are
//! only meaningful against them. [`RangingChannel`] models each
//! mechanism as an independent [`ChannelStage`] and composes any subset:
//!
//! * [`ChannelStage::NlosBias`] — non-line-of-sight propagation: the
//!   first detected path is longer than the straight line, adding a
//!   positive bias (mean + spread) to every measurement,
//! * [`ChannelStage::Multipath`] — delay spread: reflections smear the
//!   detection point by an exponentially distributed excess path,
//! * [`ChannelStage::GaussianNoise`] — the familiar zero-mean
//!   measurement noise of the paper's recipe,
//! * [`ChannelStage::ClockDrift`] — per-node hardware clock frequency
//!   error, scaling each pair's time-of-flight multiplicatively,
//! * [`ChannelStage::Adversarial`] — contamination: a seeded fraction
//!   of *nodes* is compromised and reports garbage ranges; pairs between
//!   two compromised nodes are always garbage, mixed pairs survive with
//!   the honest endpoint's report about half the time (the
//!   bidirectional consistency filter keeps one directed report).
//!
//! An empty stack is the ideal channel (exact true distances under the
//! range cutoff).
//!
//! # Determinism
//!
//! `measure_all` draws exactly **one** `u64` from the caller's stream
//! and expands it into an independent sub-stream per stage *kind* (the
//! same whole-stream derivation pattern the distributed pipeline uses
//! for per-node solves — rule 5 of the `rl_math::rng` seeding
//! contract). Stages are applied in a fixed canonical kind order, so:
//!
//! * the same seed reproduces bit-identical measurements,
//! * stacks that differ only in *construction order* of distinct-kind
//!   stages produce bit-identical measurements (the models commute by
//!   canonicalization), and
//! * adding a stage never perturbs the draws of the stages already in
//!   the stack — each kind owns its stream — so error contributions
//!   compose independently.
//!
//! Duplicate stages of the same kind share that kind's stream (their
//! draws are identical, not independent); stacks are expected to carry
//! at most one stage per kind.
//!
//! # Example
//!
//! ```
//! use rl_geom::Point2;
//! use rl_ranging::channel::{ChannelStage, RangingChannel};
//!
//! let positions: Vec<Point2> = (0..9)
//!     .map(|i| Point2::new((i % 3) as f64 * 9.0, (i / 3) as f64 * 9.0))
//!     .collect();
//!
//! // The paper's clean recipe plus 10% compromised nodes.
//! let channel = RangingChannel::ideal(22.0)
//!     .with_stage(ChannelStage::GaussianNoise { sigma_m: 0.33 })
//!     .with_stage(ChannelStage::Adversarial {
//!         node_fraction: 0.10,
//!         corruption_m: 40.0,
//!     });
//!
//! let mut rng = rl_math::rng::seeded(7);
//! let set = channel.measure_all(&positions, &mut rng);
//! assert!(set.len() > 0);
//!
//! // Same seed, same bits.
//! let mut rng2 = rl_math::rng::seeded(7);
//! let set2 = channel.measure_all(&positions, &mut rng2);
//! assert_eq!(set, set2);
//! ```

use rand::rngs::StdRng;
use rand::Rng;
use rl_geom::Point2;
use rl_net::NodeId;
use serde::{Deserialize, Serialize};

use crate::measurement::MeasurementSet;

/// One error mechanism in a [`RangingChannel`] stack.
///
/// Variants are listed in their canonical application order: additive
/// path-length biases first (NLOS, multipath), then measurement noise,
/// then the multiplicative clock scaling, and adversarial replacement
/// last (a compromised node's report is garbage regardless of what the
/// physics did).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChannelStage {
    /// Non-line-of-sight bias: adds `max(0, N(mean_m, std_m²))` meters
    /// per pair — the detected path is never shorter than the true one.
    NlosBias {
        /// Mean excess path length, meters.
        mean_m: f64,
        /// Spread of the excess path length, meters.
        std_m: f64,
    },
    /// Multipath delay spread: adds an `Exp(delay_spread_m)` excess
    /// path per pair (mean `delay_spread_m` meters, heavy right tail).
    Multipath {
        /// Mean excess path of the reflected detection, meters.
        delay_spread_m: f64,
    },
    /// Zero-mean Gaussian measurement noise — the paper's
    /// `N(0, 0.33 m)` recipe is `sigma_m: 0.33`.
    GaussianNoise {
        /// Standard deviation, meters.
        sigma_m: f64,
    },
    /// Per-node hardware clock frequency error: node `i` draws
    /// `δ_i ~ N(0, (std_ppm · 10⁻⁶)²)` once, and the pair `(i, j)`
    /// measurement is scaled by `1 + (δ_i + δ_j)/2` (each endpoint's
    /// clock contributes half the time-of-flight conversion).
    ClockDrift {
        /// Per-node frequency-error spread, parts per million.
        std_ppm: f64,
    },
    /// Adversarial contamination: `round(node_fraction · n)` nodes are
    /// compromised (selected from the stage's seeded stream) and report
    /// `U(0, corruption_m)` garbage instead of real measurements. A pair
    /// between two compromised nodes is always garbage; a *mixed* pair
    /// (one honest endpoint) is garbage with probability ½ — the ranging
    /// pipeline's bidirectional consistency filter keeps one of the two
    /// directed reports, and the compromised node controls only its own.
    Adversarial {
        /// Fraction of nodes compromised, in `[0, 1]`.
        node_fraction: f64,
        /// Upper bound of the garbage range report, meters.
        corruption_m: f64,
    },
}

impl ChannelStage {
    /// Canonical application rank (also the stream-salt index).
    fn rank(&self) -> u64 {
        match self {
            ChannelStage::NlosBias { .. } => 0,
            ChannelStage::Multipath { .. } => 1,
            ChannelStage::GaussianNoise { .. } => 2,
            ChannelStage::ClockDrift { .. } => 3,
            ChannelStage::Adversarial { .. } => 4,
        }
    }
}

/// Stream-salt multiplier for per-kind sub-streams (the same derivation
/// pattern as the distributed pipeline's per-node streams).
const STAGE_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// A composable stack of ranging-error stages over a disk range cutoff.
///
/// See the [module docs](self) for the error model and determinism
/// rules, and [`ChannelStage`] for the individual mechanisms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangingChannel {
    /// Pairs farther apart than this (true distance) are not measured.
    max_range_m: f64,
    /// The error stages, as constructed (applied in canonical order).
    stages: Vec<ChannelStage>,
}

impl RangingChannel {
    /// The ideal channel: exact true distances for every pair within
    /// `max_range_m`, no error stages.
    pub fn ideal(max_range_m: f64) -> Self {
        assert!(
            max_range_m > 0.0,
            "max_range_m must be positive, got {max_range_m}"
        );
        RangingChannel {
            max_range_m,
            stages: Vec::new(),
        }
    }

    /// The paper's clean synthetic recipe as a channel stack: 22 m
    /// cutoff plus `N(0, 0.33 m)` noise.
    pub fn paper() -> Self {
        RangingChannel::ideal(22.0).with_stage(ChannelStage::GaussianNoise { sigma_m: 0.33 })
    }

    /// Adds an error stage (builder style). Construction order is
    /// irrelevant for distinct-kind stages: application follows the
    /// canonical kind order.
    pub fn with_stage(mut self, stage: ChannelStage) -> Self {
        match stage {
            ChannelStage::NlosBias { mean_m, std_m } => {
                assert!(
                    mean_m >= 0.0 && std_m >= 0.0,
                    "NLOS parameters must be non-negative"
                );
            }
            ChannelStage::Multipath { delay_spread_m } => {
                assert!(delay_spread_m >= 0.0, "delay spread must be non-negative");
            }
            ChannelStage::GaussianNoise { sigma_m } => {
                assert!(sigma_m >= 0.0, "noise sigma must be non-negative");
            }
            ChannelStage::ClockDrift { std_ppm } => {
                assert!(std_ppm >= 0.0, "clock drift must be non-negative");
            }
            ChannelStage::Adversarial { node_fraction, .. } => {
                assert!(
                    (0.0..=1.0).contains(&node_fraction),
                    "node_fraction {node_fraction} outside [0, 1]"
                );
            }
        }
        self.stages.push(stage);
        self
    }

    /// The range cutoff, meters.
    pub fn max_range_m(&self) -> f64 {
        self.max_range_m
    }

    /// The stages, in construction order.
    pub fn stages(&self) -> &[ChannelStage] {
        &self.stages
    }

    /// Measures every pair within the range cutoff, applying the error
    /// stack. Draws exactly one `u64` from `rng` (the stream base); see
    /// the [module docs](self) for the determinism guarantees. Outputs
    /// are clamped to be non-negative.
    pub fn measure_all<R: Rng + ?Sized>(
        &self,
        positions: &[Point2],
        rng: &mut R,
    ) -> MeasurementSet {
        let base: u64 = rng.random();
        let n = positions.len();
        let mut set = MeasurementSet::new(n);

        // Stable sort into canonical kind order; each stage owns the
        // sub-stream of its kind.
        let mut ordered: Vec<&ChannelStage> = self.stages.iter().collect();
        ordered.sort_by_key(|s| s.rank());
        let mut states: Vec<StageState> = ordered
            .iter()
            .map(|s| StageState::prepare(s, base, n))
            .collect();

        for i in 0..n {
            for j in (i + 1)..n {
                let true_d = positions[i].distance(positions[j]);
                if true_d > self.max_range_m {
                    continue;
                }
                let mut d = true_d;
                for state in &mut states {
                    d = state.apply(d, i, j);
                }
                set.insert(NodeId(i), NodeId(j), d.max(0.0));
            }
        }
        set
    }
}

/// Per-run state of one stage: its kind sub-stream plus any per-node
/// draws made up front (in node order, so pair iteration never touches
/// them).
enum StageState {
    Nlos {
        mean_m: f64,
        std_m: f64,
        rng: StdRng,
    },
    Multipath {
        delay_spread_m: f64,
        rng: StdRng,
    },
    Noise {
        sigma_m: f64,
        rng: StdRng,
    },
    ClockDrift {
        /// Per-node clock factor contribution `δ_i`.
        drift: Vec<f64>,
    },
    Adversarial {
        corrupted: Vec<bool>,
        corruption_m: f64,
        rng: StdRng,
    },
}

impl StageState {
    fn prepare(stage: &ChannelStage, base: u64, n: usize) -> StageState {
        let mut rng = rl_math::rng::seeded(base ^ (stage.rank() + 1).wrapping_mul(STAGE_STREAM));
        match *stage {
            ChannelStage::NlosBias { mean_m, std_m } => StageState::Nlos { mean_m, std_m, rng },
            ChannelStage::Multipath { delay_spread_m } => StageState::Multipath {
                delay_spread_m,
                rng,
            },
            ChannelStage::GaussianNoise { sigma_m } => StageState::Noise { sigma_m, rng },
            ChannelStage::ClockDrift { std_ppm } => {
                let std = std_ppm * 1e-6;
                let drift = (0..n)
                    .map(|_| rl_math::rng::normal(&mut rng, 0.0, std))
                    .collect();
                StageState::ClockDrift { drift }
            }
            ChannelStage::Adversarial {
                node_fraction,
                corruption_m,
            } => {
                let k = (node_fraction * n as f64).round() as usize;
                let mut corrupted = vec![false; n];
                for idx in rl_math::rng::sample_indices(&mut rng, n, k) {
                    corrupted[idx] = true;
                }
                StageState::Adversarial {
                    corrupted,
                    corruption_m,
                    rng,
                }
            }
        }
    }

    fn apply(&mut self, d: f64, i: usize, j: usize) -> f64 {
        match self {
            StageState::Nlos { mean_m, std_m, rng } => {
                d + rl_math::rng::normal(rng, *mean_m, *std_m).max(0.0)
            }
            StageState::Multipath {
                delay_spread_m,
                rng,
            } => {
                // Inverse-CDF exponential: u in [0, 1) keeps ln finite.
                let u: f64 = rng.random();
                d + *delay_spread_m * -(1.0 - u).ln()
            }
            StageState::Noise { sigma_m, rng } => d + rl_math::rng::normal(rng, 0.0, *sigma_m),
            StageState::ClockDrift { drift } => d * (1.0 + 0.5 * (drift[i] + drift[j])),
            StageState::Adversarial {
                corrupted,
                corruption_m,
                rng,
            } => {
                if corrupted[i] && corrupted[j] {
                    rng.random::<f64>() * *corruption_m
                } else if corrupted[i] || corrupted[j] {
                    // Mixed pair: the consistency filter keeps the honest
                    // directed report half the time.
                    if rng.random::<f64>() < 0.5 {
                        rng.random::<f64>() * *corruption_m
                    } else {
                        d
                    }
                } else {
                    d
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(nx: usize, ny: usize, spacing: f64) -> Vec<Point2> {
        (0..nx * ny)
            .map(|i| Point2::new((i % nx) as f64 * spacing, (i / nx) as f64 * spacing))
            .collect()
    }

    #[test]
    fn ideal_channel_reports_exact_distances() {
        let positions = grid(3, 3, 9.0);
        let mut rng = rl_math::rng::seeded(1);
        let set = RangingChannel::ideal(22.0).measure_all(&positions, &mut rng);
        for (a, b, d) in set.iter() {
            let true_d = positions[a.index()].distance(positions[b.index()]);
            assert_eq!(d.to_bits(), true_d.to_bits());
        }
        assert!(!set.is_empty());
    }

    #[test]
    fn range_cutoff_is_respected() {
        let positions = grid(4, 4, 9.0);
        let mut rng = rl_math::rng::seeded(2);
        let set = RangingChannel::ideal(10.0).measure_all(&positions, &mut rng);
        for (a, b, _) in set.iter() {
            assert!(positions[a.index()].distance(positions[b.index()]) <= 10.0);
        }
    }

    #[test]
    fn same_seed_same_bits_different_seed_different_bits() {
        let positions = grid(4, 4, 9.0);
        let channel = RangingChannel::paper()
            .with_stage(ChannelStage::NlosBias {
                mean_m: 1.0,
                std_m: 0.5,
            })
            .with_stage(ChannelStage::Adversarial {
                node_fraction: 0.2,
                corruption_m: 40.0,
            });
        let run = |seed: u64| {
            let mut rng = rl_math::rng::seeded(seed);
            channel.measure_all(&positions, &mut rng)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn construction_order_of_distinct_kinds_is_irrelevant() {
        let positions = grid(4, 4, 9.0);
        let forward = RangingChannel::ideal(22.0)
            .with_stage(ChannelStage::NlosBias {
                mean_m: 1.5,
                std_m: 0.5,
            })
            .with_stage(ChannelStage::GaussianNoise { sigma_m: 0.33 })
            .with_stage(ChannelStage::ClockDrift { std_ppm: 5_000.0 });
        let backward = RangingChannel::ideal(22.0)
            .with_stage(ChannelStage::ClockDrift { std_ppm: 5_000.0 })
            .with_stage(ChannelStage::GaussianNoise { sigma_m: 0.33 })
            .with_stage(ChannelStage::NlosBias {
                mean_m: 1.5,
                std_m: 0.5,
            });
        let mut ra = rl_math::rng::seeded(3);
        let mut rb = rl_math::rng::seeded(3);
        assert_eq!(
            forward.measure_all(&positions, &mut ra),
            backward.measure_all(&positions, &mut rb)
        );
    }

    #[test]
    fn adversarial_contamination_hits_selected_nodes_only() {
        let positions = grid(5, 5, 9.0);
        let channel = RangingChannel::ideal(22.0).with_stage(ChannelStage::Adversarial {
            node_fraction: 0.2,
            corruption_m: 40.0,
        });
        let mut rng = rl_math::rng::seeded(4);
        let set = channel.measure_all(&positions, &mut rng);
        // Nodes whose every measurement is exact are uncompromised; the
        // rest must be exactly round(0.2 * 25) = 5 nodes.
        let mut touched = vec![false; positions.len()];
        for (a, b, d) in set.iter() {
            let true_d = positions[a.index()].distance(positions[b.index()]);
            if d.to_bits() != true_d.to_bits() {
                touched[a.index()] = true;
                touched[b.index()] = true;
            }
        }
        // Every corrupted pair touches a compromised node, so compromised
        // nodes form a vertex cover of the perturbed pairs; with 5
        // compromised nodes out of 25, at most 10 distinct nodes appear
        // perturbed only via a compromised partner. Check the exact-pair
        // property instead: a pair of two clean nodes is always exact.
        let clean: Vec<usize> = (0..positions.len()).filter(|&i| !touched[i]).collect();
        assert!(!clean.is_empty(), "some nodes stay clean at 20%");
        for &a in &clean {
            for &b in &clean {
                if a < b {
                    if let Some(d) = set.get(NodeId(a), NodeId(b)) {
                        let true_d = positions[a].distance(positions[b]);
                        assert_eq!(d.to_bits(), true_d.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn outputs_are_always_finite_and_non_negative() {
        let positions = grid(4, 4, 9.0);
        let channel = RangingChannel::ideal(22.0)
            .with_stage(ChannelStage::GaussianNoise { sigma_m: 10.0 })
            .with_stage(ChannelStage::Adversarial {
                node_fraction: 1.0,
                corruption_m: 100.0,
            });
        let mut rng = rl_math::rng::seeded(5);
        let set = channel.measure_all(&positions, &mut rng);
        for (_, _, d) in set.iter() {
            assert!(d.is_finite() && d >= 0.0, "bad measurement {d}");
        }
    }

    #[test]
    fn serde_roundtrip() {
        use serde::{Deserialize, Serialize};
        let channel = RangingChannel::paper().with_stage(ChannelStage::Multipath {
            delay_spread_m: 2.0,
        });
        let v = channel.to_value();
        let back = RangingChannel::from_value(&v).unwrap();
        assert_eq!(channel, back);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_fraction_panics() {
        let _ = RangingChannel::ideal(22.0).with_stage(ChannelStage::Adversarial {
            node_fraction: 1.5,
            corruption_m: 10.0,
        });
    }

    /// Golden pins against the vendored xoshiro256++ stream: the exact
    /// bit patterns the full stack produces for a fixed seed. Any change
    /// to the stream derivation, the canonical stage order, or a stage's
    /// floating-point expression trips these. Not portable to upstream
    /// `rand`.
    #[test]
    fn golden_values_pin_the_vendored_rng_stream() {
        let positions = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(0.0, 12.0),
        ];
        let stacked = RangingChannel::ideal(22.0)
            .with_stage(ChannelStage::NlosBias {
                mean_m: 1.5,
                std_m: 0.5,
            })
            .with_stage(ChannelStage::Multipath {
                delay_spread_m: 2.0,
            })
            .with_stage(ChannelStage::GaussianNoise { sigma_m: 0.33 })
            .with_stage(ChannelStage::ClockDrift { std_ppm: 5_000.0 });
        let mut rng = rl_math::rng::seeded(42);
        let set = stacked.measure_all(&positions, &mut rng);
        let bits = |a: usize, b: usize| set.get(NodeId(a), NodeId(b)).unwrap().to_bits();
        assert_eq!(bits(0, 1), GOLDEN_STACKED_01);
        assert_eq!(bits(0, 2), GOLDEN_STACKED_02);
        assert_eq!(bits(1, 2), GOLDEN_STACKED_12);

        let mut rng = rl_math::rng::seeded(42);
        let noise_only = RangingChannel::ideal(22.0)
            .with_stage(ChannelStage::GaussianNoise { sigma_m: 0.33 })
            .measure_all(&positions, &mut rng);
        assert_eq!(
            noise_only.get(NodeId(0), NodeId(1)).unwrap().to_bits(),
            GOLDEN_NOISE_01
        );
    }

    const GOLDEN_STACKED_01: u64 = 0x402b_f6df_054a_e002;
    const GOLDEN_STACKED_02: u64 = 0x402a_f169_0f52_2e64;
    const GOLDEN_STACKED_12: u64 = 0x4030_a798_6863_b777;
    const GOLDEN_NOISE_01: u64 = 0x4023_380a_ccf3_b2e0;

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// All five stage kinds with the given parameters, in canonical
        /// order.
        fn five_stages(p: &StageParams) -> Vec<ChannelStage> {
            vec![
                ChannelStage::NlosBias {
                    mean_m: p.nlos_mean,
                    std_m: p.nlos_std,
                },
                ChannelStage::Multipath {
                    delay_spread_m: p.spread,
                },
                ChannelStage::GaussianNoise { sigma_m: p.sigma },
                ChannelStage::ClockDrift { std_ppm: p.ppm },
                ChannelStage::Adversarial {
                    node_fraction: p.fraction,
                    corruption_m: p.corruption,
                },
            ]
        }

        struct StageParams {
            nlos_mean: f64,
            nlos_std: f64,
            spread: f64,
            sigma: f64,
            ppm: f64,
            fraction: f64,
            corruption: f64,
        }

        fn build(stages: &[ChannelStage]) -> RangingChannel {
            stages
                .iter()
                .fold(RangingChannel::ideal(22.0), |c, &s| c.with_stage(s))
        }

        /// Sample variance of the measurement error (measured − true)
        /// across every in-range pair.
        fn error_variance(channel: &RangingChannel, positions: &[Point2], seed: u64) -> f64 {
            let mut rng = rl_math::rng::seeded(seed);
            let set = channel.measure_all(positions, &mut rng);
            let errors: Vec<f64> = set
                .iter()
                .map(|(a, b, d)| d - positions[a.index()].distance(positions[b.index()]))
                .collect();
            let mean = errors.iter().sum::<f64>() / errors.len() as f64;
            errors.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / errors.len() as f64
        }

        proptest! {
            /// Commutation: for stacks of the five distinct kinds, any
            /// construction order produces bit-identical measurements
            /// for the same seed — stages are canonicalized and each
            /// kind owns its own sub-stream.
            #[test]
            fn prop_distinct_kind_stacks_commute(
                (nlos_mean, nlos_std, spread, sigma) in (0.1f64..3.0, 0.1f64..1.5, 0.1f64..3.0, 0.05f64..2.0),
                (ppm, fraction, corruption) in (1_000.0f64..20_000.0, 0.0f64..0.5, 10.0f64..80.0),
                seed in 0u64..1_000,
                shuffle in proptest::collection::vec(0usize..5, 4),
            ) {
                let params = StageParams {
                    nlos_mean, nlos_std, spread, sigma, ppm, fraction, corruption,
                };
                let canonical = five_stages(&params);
                // Fisher–Yates driven by the sampled indices: an
                // arbitrary permutation of the five stages.
                let mut permuted = canonical.clone();
                for (k, &r) in shuffle.iter().enumerate() {
                    let pick = k + r % (permuted.len() - k);
                    permuted.swap(k, pick);
                }
                let positions = grid(5, 5, 9.0);
                let mut ra = rl_math::rng::seeded(seed);
                let mut rb = rl_math::rng::seeded(seed);
                let a = build(&canonical).measure_all(&positions, &mut ra);
                let b = build(&permuted).measure_all(&positions, &mut rb);
                prop_assert_eq!(a, b);
            }

            /// Monotonicity: growing the stack one stage at a time never
            /// reduces the error variance across pairs (up to a small
            /// sampling tolerance — per-kind streams make the shared
            /// stages' draws identical between the two stacks, so the
            /// added stage contributes an independent term).
            #[test]
            fn prop_adding_a_stage_never_reduces_error_variance(
                (nlos_mean, nlos_std, spread, sigma) in (0.3f64..3.0, 0.3f64..1.5, 0.3f64..3.0, 0.3f64..2.0),
                (ppm, fraction, corruption) in (3_000.0f64..20_000.0, 0.1f64..0.5, 20.0f64..80.0),
                seed in 0u64..1_000,
            ) {
                let params = StageParams {
                    nlos_mean, nlos_std, spread, sigma, ppm, fraction, corruption,
                };
                let stages = five_stages(&params);
                let positions = grid(5, 5, 9.0);
                let mut prev = 0.0; // the ideal channel's error variance
                for k in 1..=stages.len() {
                    let var = error_variance(&build(&stages[..k]), &positions, seed);
                    prop_assert!(
                        var >= prev * 0.95 - 1e-12,
                        "stage {} reduced error variance: {} -> {}",
                        k, prev, var
                    );
                    prev = var;
                }
            }

            /// Clamping holds for arbitrary stacks: every measurement is
            /// finite and non-negative even under extreme parameters.
            #[test]
            fn prop_measurements_stay_finite_and_non_negative(
                sigma in 0.0f64..50.0,
                fraction in 0.0f64..1.0,
                seed in 0u64..1_000,
            ) {
                let channel = RangingChannel::ideal(22.0)
                    .with_stage(ChannelStage::GaussianNoise { sigma_m: sigma })
                    .with_stage(ChannelStage::Adversarial {
                        node_fraction: fraction,
                        corruption_m: 100.0,
                    });
                let positions = grid(4, 4, 9.0);
                let mut rng = rl_math::rng::seeded(seed);
                for (_, _, d) in channel.measure_all(&positions, &mut rng).iter() {
                    prop_assert!(d.is_finite() && d >= 0.0);
                }
            }
        }
    }
}
