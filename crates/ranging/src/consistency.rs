//! Consistency checking across measurements.
//!
//! "The ranging service employs consistency checks to identify measurements
//! containing errors that may be correlated on a single node (e.g., errors
//! due to faulty hardware or persistent wide-band noise). … bidirectional
//! range estimates between a pair of nodes are discarded if they are
//! inconsistent. If three nodes have measurements to each other, we use the
//! triangle inequality to identify inconsistent one." (Section 3.5)

use rl_net::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::measurement::MeasurementSet;

/// How to merge directed estimates into undirected pair distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BidirectionalPolicy {
    /// Keep a pair only when both directions measured it *and* they agree
    /// within tolerance (the strict check behind Figure 7).
    RequireBoth,
    /// Keep agreeing bidirectional pairs and pairs measured in one
    /// direction only (the paper's parking-lot experiment had "one-way
    /// measurement data"; "sometimes it may be beneficial to retain
    /// suspicious measurements due to the scarcity of available data").
    AcceptOneWay,
}

/// Configuration of the consistency pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyConfig {
    /// Maximum |d_ij − d_ji| for a bidirectional pair to be accepted,
    /// meters.
    pub bidirectional_tolerance_m: f64,
    /// Merge policy for one-way measurements.
    pub policy: BidirectionalPolicy,
}

impl Default for ConsistencyConfig {
    fn default() -> Self {
        ConsistencyConfig {
            bidirectional_tolerance_m: 1.0,
            policy: BidirectionalPolicy::AcceptOneWay,
        }
    }
}

/// Merges per-directed-pair estimates into an undirected
/// [`MeasurementSet`], applying the bidirectional consistency check.
///
/// Agreeing bidirectional pairs contribute the mean of the two directions.
///
/// # Panics
///
/// Panics if any node id in `directed` is `>= n`.
pub fn merge_bidirectional(
    directed: &BTreeMap<(NodeId, NodeId), f64>,
    n: usize,
    config: &ConsistencyConfig,
) -> MeasurementSet {
    let mut set = MeasurementSet::new(n);
    for (&(from, to), &d_fwd) in directed {
        // Process each undirected pair once, from its smaller endpoint.
        if from.index() > to.index() {
            continue;
        }
        let reverse = directed.get(&(to, from)).copied();
        match reverse {
            Some(d_rev) => {
                if (d_fwd - d_rev).abs() <= config.bidirectional_tolerance_m {
                    set.insert(from, to, 0.5 * (d_fwd + d_rev));
                }
                // Disagreeing directions: drop the pair entirely.
            }
            None => {
                if config.policy == BidirectionalPolicy::AcceptOneWay {
                    set.insert(from, to, d_fwd);
                }
            }
        }
    }
    // One-way pairs stored under the larger-first key.
    for (&(from, to), &d) in directed {
        if from.index() < to.index() {
            continue;
        }
        if directed.contains_key(&(to, from)) {
            continue; // already handled above
        }
        if config.policy == BidirectionalPolicy::AcceptOneWay {
            set.insert(from, to, d);
        }
    }
    set
}

/// A triangle-inequality violation: the long edge of a triple whose other
/// two sides sum to less than it ("the estimates of two sides of the
/// triangle add up to less than the third").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriangleViolation {
    /// The suspiciously long edge.
    pub long_edge: (NodeId, NodeId),
    /// The third node of the violating triangle.
    pub witness: NodeId,
    /// Violation size: `d_long − (d_a + d_b)` in meters.
    pub excess_m: f64,
}

/// Finds every triangle-inequality violation among fully measured triples,
/// with a slack tolerance in meters.
pub fn triangle_violations(set: &MeasurementSet, tolerance_m: f64) -> Vec<TriangleViolation> {
    let n = set.node_count();
    let mut out = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let Some(dij) = set.get(NodeId(i), NodeId(j)) else {
                continue;
            };
            for k in (j + 1)..n {
                let (Some(dik), Some(djk)) =
                    (set.get(NodeId(i), NodeId(k)), set.get(NodeId(j), NodeId(k)))
                else {
                    continue;
                };
                // Identify the longest edge and test it against the others.
                let mut edges = [
                    (dij, (NodeId(i), NodeId(j)), NodeId(k)),
                    (dik, (NodeId(i), NodeId(k)), NodeId(j)),
                    (djk, (NodeId(j), NodeId(k)), NodeId(i)),
                ];
                edges.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite distances"));
                let (longest, long_edge, witness) = edges[0];
                let others = edges[1].0 + edges[2].0;
                if longest > others + tolerance_m {
                    out.push(TriangleViolation {
                        long_edge,
                        witness,
                        excess_m: longest - others,
                    });
                }
            }
        }
    }
    out
}

/// Removes edges implicated as the long side of at least `min_votes`
/// triangle violations. Returns the removed edges.
///
/// The paper notes no check can identify the wrong measurement with
/// certainty; requiring multiple votes implements the "retain suspicious
/// measurements when data is scarce" caveat.
pub fn drop_triangle_violators(
    set: &mut MeasurementSet,
    tolerance_m: f64,
    min_votes: usize,
) -> Vec<(NodeId, NodeId)> {
    let violations = triangle_violations(set, tolerance_m);
    let mut votes: BTreeMap<(NodeId, NodeId), usize> = BTreeMap::new();
    for v in &violations {
        *votes.entry(v.long_edge).or_insert(0) += 1;
    }
    let mut removed = Vec::new();
    for (edge, count) in votes {
        if count >= min_votes && set.remove(edge.0, edge.1).is_some() {
            removed.push(edge);
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> NodeId {
        NodeId(i)
    }

    fn directed(entries: &[((usize, usize), f64)]) -> BTreeMap<(NodeId, NodeId), f64> {
        entries
            .iter()
            .map(|&((a, b), d)| ((id(a), id(b)), d))
            .collect()
    }

    #[test]
    fn agreeing_bidirectional_pair_is_averaged() {
        let d = directed(&[((0, 1), 10.2), ((1, 0), 9.8)]);
        let set = merge_bidirectional(&d, 2, &ConsistencyConfig::default());
        assert_eq!(set.get(id(0), id(1)), Some(10.0));
    }

    #[test]
    fn disagreeing_bidirectional_pair_is_dropped() {
        let d = directed(&[((0, 1), 10.0), ((1, 0), 14.0)]);
        let cfg = ConsistencyConfig::default();
        let set = merge_bidirectional(&d, 2, &cfg);
        assert_eq!(set.get(id(0), id(1)), None);
        // Even under AcceptOneWay: disagreement is worse than absence.
        assert!(set.is_empty());
    }

    #[test]
    fn one_way_policy_controls_retention() {
        let d = directed(&[((0, 1), 10.0), ((2, 1), 7.0)]);
        let strict = merge_bidirectional(
            &d,
            3,
            &ConsistencyConfig {
                policy: BidirectionalPolicy::RequireBoth,
                ..ConsistencyConfig::default()
            },
        );
        assert!(strict.is_empty());
        let lenient = merge_bidirectional(&d, 3, &ConsistencyConfig::default());
        assert_eq!(lenient.get(id(0), id(1)), Some(10.0));
        assert_eq!(lenient.get(id(1), id(2)), Some(7.0));
        assert_eq!(lenient.len(), 2);
    }

    #[test]
    fn one_way_stored_under_either_orientation() {
        // (2, 0): from > to exercises the second loop.
        let d = directed(&[((2, 0), 8.0)]);
        let set = merge_bidirectional(&d, 3, &ConsistencyConfig::default());
        assert_eq!(set.get(id(0), id(2)), Some(8.0));
    }

    fn triangle_set(dij: f64, dik: f64, djk: f64) -> MeasurementSet {
        let mut set = MeasurementSet::new(3);
        set.insert(id(0), id(1), dij);
        set.insert(id(0), id(2), dik);
        set.insert(id(1), id(2), djk);
        set
    }

    #[test]
    fn valid_triangle_has_no_violations() {
        let set = triangle_set(3.0, 4.0, 5.0);
        assert!(triangle_violations(&set, 0.1).is_empty());
    }

    #[test]
    fn violating_triangle_flags_long_edge() {
        // 1 + 2 < 10: the 10 m edge is the suspect.
        let set = triangle_set(10.0, 1.0, 2.0);
        let vs = triangle_violations(&set, 0.1);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].long_edge, (id(0), id(1)));
        assert_eq!(vs[0].witness, id(2));
        assert!((vs[0].excess_m - 7.0).abs() < 1e-12);
    }

    #[test]
    fn tolerance_spares_borderline_triangles() {
        let set = triangle_set(5.2, 2.0, 3.0);
        assert!(triangle_violations(&set, 0.5).is_empty());
        assert_eq!(triangle_violations(&set, 0.1).len(), 1);
    }

    #[test]
    fn incomplete_triples_are_ignored() {
        let mut set = MeasurementSet::new(3);
        set.insert(id(0), id(1), 100.0);
        set.insert(id(1), id(2), 1.0);
        // No 0-2 edge: no triangle to test.
        assert!(triangle_violations(&set, 0.1).is_empty());
    }

    #[test]
    fn drop_violators_removes_voted_edges() {
        // Node 3 sits near node 0; edge 0-1 is wildly overestimated and is
        // the long edge in triangles (0,1,2) and (0,1,3).
        let mut set = MeasurementSet::new(4);
        set.insert(id(0), id(1), 20.0); // bad edge (true ~5)
        set.insert(id(0), id(2), 3.0);
        set.insert(id(1), id(2), 4.0);
        set.insert(id(0), id(3), 2.0);
        set.insert(id(1), id(3), 5.0);
        let removed = drop_triangle_violators(&mut set, 0.5, 2);
        assert_eq!(removed, vec![(id(0), id(1))]);
        assert_eq!(set.get(id(0), id(1)), None);
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn drop_violators_respects_min_votes() {
        let mut set = triangle_set(10.0, 1.0, 2.0);
        // Only one violating triangle: below the two-vote threshold.
        let removed = drop_triangle_violators(&mut set, 0.1, 2);
        assert!(removed.is_empty());
        assert_eq!(set.len(), 3);
        // With min_votes = 1 it goes.
        let removed = drop_triangle_violators(&mut set, 0.1, 1);
        assert_eq!(removed.len(), 1);
    }
}
