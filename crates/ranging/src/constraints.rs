//! Deployment-constraint filtering (§3.5.1).
//!
//! "Some sensor network deployments offer additional information about
//! sensor placement. … On a regular grid deployment, a set of possible
//! inter-node distances can be deduced from the size and shape of the grid
//! configuration. These data provide additional constraints that
//! consistent ranging measurements should satisfy." The paper leaves this
//! as future work; this module implements it: a [`DistanceCatalog`] of
//! plausible inter-node distances derived from the deployment pattern,
//! used to flag or discard measurements that cannot correspond to any
//! legal node pair.

use rl_geom::Point2;
use rl_net::NodeId;
use serde::{Deserialize, Serialize};

use crate::measurement::MeasurementSet;

/// The set of inter-node distances a deployment geometry can produce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceCatalog {
    /// Sorted plausible distances, meters (deduplicated within
    /// `merge_tolerance`).
    distances: Vec<f64>,
    /// Tolerance used both for deduplication and for membership tests.
    tolerance_m: f64,
}

impl DistanceCatalog {
    /// Builds the catalog from the planned deployment geometry, keeping
    /// distances up to `max_range_m` (beyond the ranging service's reach
    /// nothing can be measured anyway).
    ///
    /// # Panics
    ///
    /// Panics if `tolerance_m` is not positive.
    pub fn from_layout(positions: &[Point2], max_range_m: f64, tolerance_m: f64) -> Self {
        assert!(tolerance_m > 0.0, "tolerance must be positive");
        let mut distances = Vec::new();
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                let d = positions[i].distance(positions[j]);
                if d <= max_range_m {
                    distances.push(d);
                }
            }
        }
        distances.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        // Merge near-duplicates (a 7x7 grid has only a handful of distinct
        // inter-node distances).
        let mut merged: Vec<f64> = Vec::new();
        for d in distances {
            match merged.last() {
                Some(&last) if d - last <= tolerance_m => {}
                _ => merged.push(d),
            }
        }
        DistanceCatalog {
            distances: merged,
            tolerance_m,
        }
    }

    /// The distinct plausible distances.
    pub fn distances(&self) -> &[f64] {
        &self.distances
    }

    /// The nearest catalog distance to `measured`, if any lies within
    /// `slack_m`.
    pub fn nearest_within(&self, measured: f64, slack_m: f64) -> Option<f64> {
        // Binary search for the insertion point, inspect neighbors.
        let idx = self.distances.partition_point(|&d| d < measured);
        let mut best: Option<f64> = None;
        for k in idx.saturating_sub(1)..=(idx.min(self.distances.len().saturating_sub(1))) {
            if let Some(&d) = self.distances.get(k) {
                if (d - measured).abs() <= slack_m
                    && best.is_none_or(|b: f64| (d - measured).abs() < (b - measured).abs())
                {
                    best = Some(d);
                }
            }
        }
        best
    }

    /// Whether `measured` is consistent with some plausible distance,
    /// within `slack_m`.
    pub fn is_plausible(&self, measured: f64, slack_m: f64) -> bool {
        self.nearest_within(measured, slack_m).is_some()
    }

    /// Removes every measurement not within `slack_m` of a plausible
    /// distance; returns the removed pairs.
    pub fn filter(&self, set: &mut MeasurementSet, slack_m: f64) -> Vec<(NodeId, NodeId, f64)> {
        let implausible: Vec<(NodeId, NodeId, f64)> = set
            .iter()
            .filter(|&(_, _, d)| !self.is_plausible(d, slack_m))
            .collect();
        for &(a, b, _) in &implausible {
            set.remove(a, b);
        }
        implausible
    }

    /// Snaps every measurement to the nearest plausible distance when one
    /// lies within `slack_m` (a stronger use of the prior: the deployment
    /// pattern *defines* the achievable distances); measurements with no
    /// nearby plausible distance are left untouched. Returns the number of
    /// snapped measurements.
    pub fn snap(&self, set: &mut MeasurementSet, slack_m: f64) -> usize {
        let snappable: Vec<(NodeId, NodeId, f64, f64)> = set
            .iter()
            .filter_map(|(a, b, d)| {
                self.nearest_within(d, slack_m)
                    .filter(|&snap| (snap - d).abs() > f64::EPSILON)
                    .map(|snap| (a, b, d, snap))
            })
            .collect();
        let count = snappable.len();
        for (a, b, _, snap) in snappable {
            set.insert(a, b, snap);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_geom::Point2;

    fn grid_positions() -> Vec<Point2> {
        rl_deploy_like_grid(3, 3, 9.0)
    }

    fn rl_deploy_like_grid(nx: usize, ny: usize, spacing: f64) -> Vec<Point2> {
        (0..nx * ny)
            .map(|i| Point2::new((i % nx) as f64 * spacing, (i / nx) as f64 * spacing))
            .collect()
    }

    #[test]
    fn catalog_of_a_grid_is_small() {
        let catalog = DistanceCatalog::from_layout(&grid_positions(), 30.0, 0.05);
        // 3x3 grid at 9 m: distances 9, 12.73, 18, 20.12, 25.46.
        assert_eq!(catalog.distances().len(), 5, "{:?}", catalog.distances());
        assert!((catalog.distances()[0] - 9.0).abs() < 1e-9);
        assert!((catalog.distances()[1] - 12.728).abs() < 1e-2);
    }

    #[test]
    fn max_range_prunes_catalog() {
        let catalog = DistanceCatalog::from_layout(&grid_positions(), 15.0, 0.05);
        assert_eq!(catalog.distances().len(), 2); // 9 and 12.73 only
    }

    #[test]
    fn plausibility_and_nearest() {
        let catalog = DistanceCatalog::from_layout(&grid_positions(), 30.0, 0.05);
        assert!(catalog.is_plausible(9.2, 0.5));
        assert!(!catalog.is_plausible(10.8, 0.5)); // between 9 and 12.73
        assert_eq!(
            catalog.nearest_within(12.5, 0.5),
            catalog.distances().get(1).copied()
        );
        assert_eq!(catalog.nearest_within(50.0, 0.5), None);
        assert_eq!(catalog.nearest_within(0.0, 0.5), None);
    }

    #[test]
    fn filter_removes_implausible_measurements() {
        let positions = grid_positions();
        let catalog = DistanceCatalog::from_layout(&positions, 30.0, 0.05);
        let mut set = MeasurementSet::new(9);
        set.insert(NodeId(0), NodeId(1), 9.15); // plausible (9.0)
        set.insert(NodeId(0), NodeId(4), 12.60); // plausible (12.73)
        set.insert(NodeId(0), NodeId(2), 4.0); // echo-style: nothing near 4 m
        set.insert(NodeId(3), NodeId(5), 21.5); // between 20.12 and 25.46
        let removed = catalog.filter(&mut set, 0.5);
        assert_eq!(removed.len(), 2);
        assert_eq!(set.len(), 2);
        assert!(set.contains(NodeId(0), NodeId(1)));
        assert!(!set.contains(NodeId(0), NodeId(2)));
    }

    #[test]
    fn snap_moves_measurements_onto_catalog() {
        let positions = grid_positions();
        let catalog = DistanceCatalog::from_layout(&positions, 30.0, 0.05);
        let mut set = MeasurementSet::new(9);
        set.insert(NodeId(0), NodeId(1), 9.3);
        set.insert(NodeId(0), NodeId(2), 4.0); // unsnappable
        let snapped = catalog.snap(&mut set, 0.5);
        assert_eq!(snapped, 1);
        assert!((set.get(NodeId(0), NodeId(1)).unwrap() - 9.0).abs() < 1e-9);
        assert_eq!(set.get(NodeId(0), NodeId(2)), Some(4.0));
    }

    #[test]
    fn snapping_improves_localization_on_grids() {
        // End-to-end: noisy grid measurements, localize with and without
        // the deployment prior.
        let positions = rl_deploy_like_grid(4, 4, 9.0);
        let catalog = DistanceCatalog::from_layout(&positions, 25.0, 0.05);
        let mut rng = rl_math::rng::seeded(42);
        let mut noisy = MeasurementSet::new(16);
        for i in 0..16usize {
            for j in (i + 1)..16 {
                let d = positions[i].distance(positions[j]);
                if d <= 25.0 {
                    let m = (d + rl_math::rng::normal(&mut rng, 0.0, 0.33)).max(0.1);
                    noisy.insert(NodeId(i), NodeId(j), m);
                }
            }
        }
        let mut snapped = noisy.clone();
        let snap_count = catalog.snap(&mut snapped, 1.0);
        assert!(snap_count > 40, "snapped {snap_count}");
        // Snapped distances are exactly the truth for inliers, so the
        // residual sum against truth must shrink.
        let residual = |set: &MeasurementSet| -> f64 {
            set.iter()
                .map(|(a, b, d)| (d - positions[a.index()].distance(positions[b.index()])).abs())
                .sum()
        };
        assert!(
            residual(&snapped) < 0.3 * residual(&noisy),
            "snapping should shrink residuals: {} vs {}",
            residual(&snapped),
            residual(&noisy)
        );
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn zero_tolerance_panics() {
        let _ = DistanceCatalog::from_layout(&grid_positions(), 30.0, 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let catalog = DistanceCatalog::from_layout(&grid_positions(), 30.0, 0.05);
        let json = serde_json::to_string(&catalog).unwrap();
        assert_eq!(
            serde_json::from_str::<DistanceCatalog>(&json).unwrap(),
            catalog
        );
    }
}
