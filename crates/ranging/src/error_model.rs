//! Fast empirical ranging error model.
//!
//! The sample-level acoustic simulation in [`crate::service`] is faithful
//! but costly (tens of millions of Bernoulli draws per campaign). Large
//! parameter sweeps and the localization-focused experiments only need the
//! *distribution* of ranging outcomes, which the paper characterizes
//! precisely (Section 3.6.1):
//!
//! * detection probability decays with distance (none beyond the
//!   environment's maximum range),
//! * a zero-mean bell-shaped error core within ±30 cm,
//! * a small population of over-estimates clustered to the right (late
//!   detection of attenuated signals), growing with distance,
//! * rare large-magnitude outliers (noise, echoes, faulty hardware), up to
//!   ±11 m, more frequent at longer range.
//!
//! [`EmpiricalRangingModel`] samples from exactly that mixture.

use rand::Rng;
use rl_geom::Point2;
use rl_net::NodeId;
use rl_signal::env::Environment;
use serde::{Deserialize, Serialize};

use crate::measurement::MeasurementSet;

/// Parametric model of one environment's ranging behavior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalRangingModel {
    /// Detection probability at close range.
    pub p_detect_near: f64,
    /// Distance at which detection probability halves, meters.
    pub half_range_m: f64,
    /// Sigmoid roll-off width, meters.
    pub rolloff_m: f64,
    /// No detections beyond this distance, meters.
    pub max_range_m: f64,
    /// Standard deviation of the zero-mean error core, meters.
    pub sigma_core_m: f64,
    /// Probability that a detection at close range is an outlier.
    pub p_outlier_near: f64,
    /// Additional outlier probability at `max_range_m` (linear growth in
    /// between; "large-magnitude errors occur more frequently when
    /// measuring over a longer distance").
    pub p_outlier_far: f64,
    /// Fraction of outliers that are underestimates (echo/noise before the
    /// signal); the rest are late-detection overestimates.
    pub underestimate_fraction: f64,
    /// Maximum overestimate excess, meters (≈ chirp length ≈ 3 m for 8 ms
    /// chirps).
    pub overestimate_max_m: f64,
}

impl EmpiricalRangingModel {
    /// Canned parameters per environment, calibrated against the
    /// sample-level simulator and the paper's reported figures.
    pub fn from_environment(env: Environment) -> Self {
        match env {
            Environment::Grass => EmpiricalRangingModel {
                p_detect_near: 0.93,
                half_range_m: 13.0,
                rolloff_m: 2.0,
                max_range_m: 20.0,
                sigma_core_m: 0.15,
                p_outlier_near: 0.03,
                p_outlier_far: 0.10,
                underestimate_fraction: 0.45,
                overestimate_max_m: 3.0,
            },
            Environment::Pavement => EmpiricalRangingModel {
                p_detect_near: 0.97,
                half_range_m: 30.0,
                rolloff_m: 4.0,
                max_range_m: 50.0,
                sigma_core_m: 0.12,
                p_outlier_near: 0.03,
                p_outlier_far: 0.08,
                underestimate_fraction: 0.5,
                overestimate_max_m: 3.0,
            },
            Environment::Urban => EmpiricalRangingModel {
                p_detect_near: 0.95,
                half_range_m: 27.0,
                rolloff_m: 4.0,
                max_range_m: 45.0,
                sigma_core_m: 0.15,
                p_outlier_near: 0.10,
                p_outlier_far: 0.25,
                underestimate_fraction: 0.75,
                overestimate_max_m: 8.0,
            },
            Environment::Wooded => EmpiricalRangingModel {
                p_detect_near: 0.85,
                half_range_m: 8.0,
                rolloff_m: 1.8,
                max_range_m: 14.0,
                sigma_core_m: 0.20,
                p_outlier_near: 0.06,
                p_outlier_far: 0.15,
                underestimate_fraction: 0.5,
                overestimate_max_m: 3.0,
            },
        }
    }

    /// Detection probability at distance `d`.
    pub fn p_detect(&self, d: f64) -> f64 {
        if d >= self.max_range_m {
            return 0.0;
        }
        let x = (d - self.half_range_m) / self.rolloff_m;
        self.p_detect_near / (1.0 + x.exp())
    }

    /// Outlier probability at distance `d` (conditional on detection).
    pub fn p_outlier(&self, d: f64) -> f64 {
        let t = (d / self.max_range_m).clamp(0.0, 1.0);
        self.p_outlier_near + (self.p_outlier_far - self.p_outlier_near) * t
    }

    /// Samples one directed measurement at true distance `d`; `None` means
    /// no detection.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) on negative distances.
    pub fn measure<R: Rng + ?Sized>(&self, d: f64, rng: &mut R) -> Option<f64> {
        debug_assert!(d >= 0.0, "negative distance");
        if rng.random::<f64>() >= self.p_detect(d) {
            return None;
        }
        let value = if rng.random::<f64>() < self.p_outlier(d) {
            if rng.random::<f64>() < self.underestimate_fraction {
                // Echo/noise locked before the true signal: uniform over
                // the pre-signal interval, at least one meter short.
                let max_under = (d - 1.0).max(0.2);
                rng.random::<f64>() * max_under
            } else {
                // Late detection: up to a chirp length beyond the truth.
                d + 1.0 + rng.random::<f64>() * (self.overestimate_max_m - 1.0).max(0.0)
            }
        } else {
            // Core: zero-mean Gaussian with a mild distance-growing
            // rightward skew (attenuated early samples detected late).
            let skew = 0.04 * (d / self.half_range_m);
            rl_math::rng::normal(rng, skew, self.sigma_core_m) + d
        };
        Some(value.max(0.0))
    }

    /// Measures every ordered pair of a deployment once and merges
    /// same-pair results by averaging, producing a [`MeasurementSet`].
    ///
    /// This shortcut skips filtering/consistency — it is the "clean-ish
    /// field data" generator for localization experiments.
    pub fn measure_deployment<R: Rng + ?Sized>(
        &self,
        positions: &[Point2],
        rng: &mut R,
    ) -> MeasurementSet {
        let n = positions.len();
        let mut set = MeasurementSet::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = positions[i].distance(positions[j]);
                let fwd = self.measure(d, rng);
                let rev = self.measure(d, rng);
                let merged = match (fwd, rev) {
                    (Some(a), Some(b)) => Some(0.5 * (a + b)),
                    (Some(a), None) | (None, Some(a)) => Some(a),
                    (None, None) => None,
                };
                if let Some(m) = merged {
                    set.insert(NodeId(i), NodeId(j), m);
                }
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_math::rng::seeded;

    #[test]
    fn detection_probability_shape() {
        let m = EmpiricalRangingModel::from_environment(Environment::Grass);
        assert!(m.p_detect(2.0) > 0.85);
        assert!(m.p_detect(13.0) < m.p_detect(5.0));
        assert_eq!(m.p_detect(20.0), 0.0);
        assert_eq!(m.p_detect(25.0), 0.0);
    }

    #[test]
    fn outlier_rate_grows_with_distance() {
        let m = EmpiricalRangingModel::from_environment(Environment::Grass);
        assert!(m.p_outlier(18.0) > m.p_outlier(3.0));
        assert!((m.p_outlier(0.0) - m.p_outlier_near).abs() < 1e-12);
    }

    #[test]
    fn core_errors_match_sigma() {
        let m = EmpiricalRangingModel::from_environment(Environment::Grass);
        let mut rng = seeded(1);
        let d = 8.0;
        let errors: Vec<f64> = (0..8000)
            .filter_map(|_| m.measure(d, &mut rng))
            .map(|v| v - d)
            .filter(|e| e.abs() < 0.9) // core only
            .collect();
        assert!(errors.len() > 6000);
        let med = rl_math::stats::median_of(&errors).unwrap();
        let sd = rl_math::stats::std_dev(&errors).unwrap();
        assert!(med.abs() < 0.05, "median {med}");
        assert!((sd - m.sigma_core_m).abs() < 0.06, "sd {sd}");
    }

    #[test]
    fn urban_outliers_mostly_underestimate() {
        let m = EmpiricalRangingModel::from_environment(Environment::Urban);
        let mut rng = seeded(2);
        let d = 25.0;
        let mut under = 0;
        let mut over = 0;
        for _ in 0..6000 {
            if let Some(v) = m.measure(d, &mut rng) {
                let e = v - d;
                if e < -1.0 {
                    under += 1;
                } else if e > 1.0 {
                    over += 1;
                }
            }
        }
        assert!(under > over, "urban: under {under} vs over {over}");
        assert!(under > 100, "should see many underestimates, got {under}");
    }

    #[test]
    fn overestimates_bounded_by_chirp_excess() {
        let m = EmpiricalRangingModel::from_environment(Environment::Grass);
        let mut rng = seeded(3);
        let d = 10.0;
        for _ in 0..6000 {
            if let Some(v) = m.measure(d, &mut rng) {
                assert!(
                    v - d <= m.overestimate_max_m + 1e-9,
                    "overestimate {v} exceeds bound"
                );
            }
        }
    }

    #[test]
    fn measurements_are_never_negative() {
        let m = EmpiricalRangingModel::from_environment(Environment::Wooded);
        let mut rng = seeded(4);
        for _ in 0..2000 {
            if let Some(v) = m.measure(1.2, &mut rng) {
                assert!(v >= 0.0);
            }
        }
    }

    #[test]
    fn deployment_measurement_respects_range() {
        let m = EmpiricalRangingModel::from_environment(Environment::Grass);
        let mut rng = seeded(5);
        let positions = vec![
            Point2::new(0.0, 0.0),
            Point2::new(9.0, 0.0),
            Point2::new(100.0, 0.0),
        ];
        let set = m.measure_deployment(&positions, &mut rng);
        assert!(set.contains(NodeId(0), NodeId(1)));
        assert!(!set.contains(NodeId(0), NodeId(2)));
        assert!(!set.contains(NodeId(1), NodeId(2)));
    }

    #[test]
    fn deployment_graph_density_matches_probability() {
        // At 9 m on grass, nearly every pair should be measured.
        let m = EmpiricalRangingModel::from_environment(Environment::Grass);
        let mut rng = seeded(6);
        let positions: Vec<Point2> = (0..12)
            .map(|i| Point2::new((i % 4) as f64 * 9.0, (i / 4) as f64 * 9.0))
            .collect();
        let set = m.measure_deployment(&positions, &mut rng);
        // Adjacent pairs (9 m): 17 of them in a 4x3 grid.
        let mut adjacent_measured = 0;
        for i in 0..12usize {
            for j in (i + 1)..12 {
                if positions[i].distance(positions[j]) < 9.5 && set.contains(NodeId(i), NodeId(j)) {
                    adjacent_measured += 1;
                }
            }
        }
        assert!(
            adjacent_measured >= 15,
            "only {adjacent_measured}/17 adjacent pairs measured"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let m = EmpiricalRangingModel::from_environment(Environment::Urban);
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(
            serde_json::from_str::<EmpiricalRangingModel>(&json).unwrap(),
            m
        );
    }
}
