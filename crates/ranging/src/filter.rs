//! Statistical filtering of repeated measurements.
//!
//! "Assuming that the errors are not correlated, we make multiple distance
//! measurements for a pair of nodes and apply statistical filtering … we
//! take the median or mode value of the measurements, which limits the
//! effect of outliers. The mode operation is more resistant to the effects
//! of uncorrelated outliers than the median, but it needs more measurements
//! to be effective." (Section 3.5)

use rl_net::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::measurement::RangingCampaign;

/// Which statistical filter to apply to repeated measurements of a pair.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum StatFilter {
    /// Keep the first measurement only (the unfiltered baseline).
    None,
    /// Median of all measurements of the pair.
    #[default]
    Median,
    /// Mode of all measurements, binned at the given width in meters.
    Mode {
        /// Histogram bin width, meters.
        bin_width: f64,
    },
}

impl StatFilter {
    /// The paper's default mode binning (half-meter bins).
    pub fn mode_default() -> Self {
        StatFilter::Mode { bin_width: 0.5 }
    }

    /// Reduces repeated measurements of one pair to a single estimate.
    ///
    /// Returns `None` when the input is empty (or the filter cannot apply).
    pub fn reduce(&self, measurements: &[f64]) -> Option<f64> {
        match *self {
            StatFilter::None => measurements.first().copied(),
            StatFilter::Median => rl_math::stats::median_of(measurements),
            StatFilter::Mode { bin_width } => rl_math::stats::mode_binned(measurements, bin_width),
        }
    }

    /// Applies the filter to every directed pair of a campaign, producing
    /// per-directed-pair estimates.
    pub fn apply(&self, campaign: &RangingCampaign) -> BTreeMap<(NodeId, NodeId), f64> {
        let mut out = BTreeMap::new();
        for (pair, measurements) in campaign.by_directed_pair() {
            if let Some(est) = self.reduce(&measurements) {
                out.insert(pair, est);
            }
        }
        out
    }

    /// Applies the filter using only the first `max_rounds` rounds of the
    /// campaign (Figure 4 uses "median filtering of up to five
    /// measurements").
    pub fn apply_limited(
        &self,
        campaign: &RangingCampaign,
        max_rounds: usize,
    ) -> BTreeMap<(NodeId, NodeId), f64> {
        let mut grouped: BTreeMap<(NodeId, NodeId), Vec<f64>> = BTreeMap::new();
        for s in &campaign.samples {
            if s.round < max_rounds {
                grouped
                    .entry((s.from, s.to))
                    .or_default()
                    .push(s.measured_m);
            }
        }
        grouped
            .into_iter()
            .filter_map(|(pair, ms)| self.reduce(&ms).map(|est| (pair, est)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::DirectedSample;
    use rl_geom::Point2;

    fn id(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn reduce_none_takes_first() {
        assert_eq!(StatFilter::None.reduce(&[5.0, 9.0]), Some(5.0));
        assert_eq!(StatFilter::None.reduce(&[]), None);
    }

    #[test]
    fn reduce_median_suppresses_outlier() {
        let xs = [10.1, 9.9, 10.0, 3.0, 10.2];
        let m = StatFilter::Median.reduce(&xs).unwrap();
        assert!((m - 10.0).abs() < 0.15, "median {m}");
    }

    #[test]
    fn reduce_mode_survives_multiple_outliers() {
        // Two outliers out of six: the median shifts a little, the mode
        // stays on the cluster.
        let xs = [10.0, 10.1, 9.95, 10.05, 2.0, 2.1];
        let mode = StatFilter::mode_default().reduce(&xs).unwrap();
        assert!((mode - 10.02).abs() < 0.3, "mode {mode}");
    }

    fn toy_campaign() -> RangingCampaign {
        let mk = |from: usize, to: usize, round: usize, d: f64| DirectedSample {
            from: id(from),
            to: id(to),
            round,
            measured_m: d,
        };
        RangingCampaign {
            n: 2,
            true_positions: vec![Point2::new(0.0, 0.0), Point2::new(10.0, 0.0)],
            samples: vec![
                mk(0, 1, 0, 10.1),
                mk(0, 1, 1, 9.9),
                mk(0, 1, 2, 25.0), // outlier in round 2
                mk(1, 0, 0, 10.3),
            ],
        }
    }

    #[test]
    fn apply_filters_each_directed_pair() {
        let campaign = toy_campaign();
        let medians = StatFilter::Median.apply(&campaign);
        assert_eq!(medians.len(), 2);
        assert!((medians[&(id(0), id(1))] - 10.1).abs() < 1e-12);
        assert_eq!(medians[&(id(1), id(0))], 10.3);
    }

    #[test]
    fn apply_limited_restricts_rounds() {
        let campaign = toy_campaign();
        let first_two = StatFilter::Median.apply_limited(&campaign, 2);
        // Outlier was in round 2, so the two-round median is clean.
        assert!((first_two[&(id(0), id(1))] - 10.0).abs() < 1e-12);
        let all = StatFilter::Median.apply_limited(&campaign, 10);
        assert!((all[&(id(0), id(1))] - 10.1).abs() < 1e-12);
    }

    #[test]
    fn default_is_median() {
        assert_eq!(StatFilter::default(), StatFilter::Median);
    }
}
