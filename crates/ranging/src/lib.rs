//! Acoustic TDoA ranging service.
//!
//! This crate assembles the paper's Section-3 ranging pipeline on top of the
//! acoustic simulation in `rl-signal`:
//!
//! * [`measurement`] — the sparse measurement graph
//!   ([`measurement::MeasurementSet`]) consumed by every
//!   localization algorithm, plus raw per-round campaign data,
//! * [`tdoa`] — detection-index → distance conversion with `δ_const`
//!   calibration (Section 3.1's combined constant delay),
//! * [`service`] — the ranging service itself: per-node hardware variation,
//!   chirp-train simulation for every candidate pair over multiple rounds,
//!   baseline and refined modes,
//! * [`filter`] — statistical filtering (median / mode) of repeated
//!   measurements (Section 3.5),
//! * [`consistency`] — bidirectional agreement and triangle-inequality
//!   checks (Section 3.5),
//! * [`constraints`] — deployment-constraint filtering: plausible
//!   inter-node distance catalogs deduced from the deployment pattern
//!   (Section 3.5.1, implemented beyond the paper's future-work sketch),
//! * [`error_model`] — a fast empirical error model calibrated to the
//!   paper's reported distributions, for large simulation sweeps that do
//!   not need the sample-level acoustic path,
//! * [`channel`] — a composable ranging-error channel stack
//!   ([`channel::RangingChannel`]): Gaussian noise, NLOS bias, multipath
//!   delay spread, clock drift, and adversarial contamination as
//!   independently seeded, stackable stages for stress-testing the
//!   resilience claims.
//!
//! # Example
//!
//! ```
//! use rl_ranging::measurement::MeasurementSet;
//! use rl_net::NodeId;
//!
//! let mut set = MeasurementSet::new(3);
//! set.insert(NodeId(0), NodeId(1), 9.1);
//! set.insert(NodeId(1), NodeId(2), 10.3);
//! assert_eq!(set.get(NodeId(1), NodeId(0)), Some(9.1));
//! assert_eq!(set.len(), 2);
//! assert_eq!(set.neighbors_of(NodeId(1)).len(), 2);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod channel;
pub mod consistency;
pub mod constraints;
pub mod error_model;
pub mod filter;
pub mod measurement;
pub mod service;
pub mod tdoa;

pub use channel::{ChannelStage, RangingChannel};
pub use consistency::{BidirectionalPolicy, ConsistencyConfig};
pub use constraints::DistanceCatalog;
pub use error_model::EmpiricalRangingModel;
pub use filter::StatFilter;
pub use measurement::{MeasurementSet, RangingCampaign};
pub use service::{RangingService, ServiceConfig, ServiceMode};
pub use tdoa::TdoaConverter;

/// Error type for the ranging service.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RangingError {
    /// A node id was out of range for the measurement set.
    UnknownNode(rl_net::NodeId),
    /// A configuration parameter was out of its documented domain.
    InvalidConfig(&'static str),
    /// Calibration failed (no successful detections at the reference
    /// distance).
    CalibrationFailed,
}

impl core::fmt::Display for RangingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RangingError::UnknownNode(id) => write!(f, "unknown node {id}"),
            RangingError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            RangingError::CalibrationFailed => {
                write!(f, "calibration failed: no detections at reference distance")
            }
        }
    }
}

impl std::error::Error for RangingError {}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, RangingError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(
            RangingError::UnknownNode(rl_net::NodeId(4)).to_string(),
            "unknown node n4"
        );
        assert_eq!(
            RangingError::CalibrationFailed.to_string(),
            "calibration failed: no detections at reference distance"
        );
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<RangingError>();
    }
}
